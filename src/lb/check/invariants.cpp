#include "lb/check/invariants.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace lb::check {

namespace {

// Slack multiplier on the IEEE worst-case drift bound for continuous
// conservation.  The bound itself (ε·scale per paired ±f application) is
// already conservative; the slack absorbs the Σ|ℓ| scale being measured
// once at run start while loads spread during the run.
constexpr double kDriftSlack = 64.0;

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

[[noreturn]] void violated(const std::string& what) {
  throw InvariantViolation(what);
}

}  // namespace

bool env_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("LB_CHECK");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

// ---------------------------------------------------------------------------
// Conservation
// ---------------------------------------------------------------------------

template <class T>
ConservationBaseline<T> conservation_baseline(const std::vector<T>& load) {
  ConservationBaseline<T> b;
  double abs_sum = 0.0;
  for (const T v : load) {
    b.total += v;
    abs_sum += std::fabs(static_cast<double>(v));
  }
  b.abs_scale = std::max(1.0, abs_sum);
  return b;
}

template <class T>
void check_conservation(const ConservationBaseline<T>& baseline,
                        const std::vector<T>& load, std::size_t round,
                        std::size_t links, const char* where, T net_stream) {
  // Ledgered reference: what the books say the total must be now.
  const T expected = baseline.total + net_stream;
  T total{};
  for (const T v : load) total += v;
  if constexpr (std::is_integral_v<T>) {
    if (total != expected) {
      violated(format("conservation violated (%s): round %zu: total %" PRId64
                      " != ledgered total %" PRId64 " (run-start %" PRId64
                      " + net stream %" PRId64 "; delta %" PRId64
                      "); discrete load must be preserved to 0 ULP",
                      where, round, static_cast<std::int64_t>(total),
                      static_cast<std::int64_t>(expected),
                      static_cast<std::int64_t>(baseline.total),
                      static_cast<std::int64_t>(net_stream),
                      static_cast<std::int64_t>(total - expected)));
    }
  } else {
    const double drift =
        std::fabs(static_cast<double>(total) - static_cast<double>(expected));
    const double eps = std::numeric_limits<double>::epsilon();
    // The stream widens the natural error scale: the load that flowed
    // through the system contributes rounding error of its own order.
    const double scale =
        baseline.abs_scale + std::fabs(static_cast<double>(net_stream));
    const double allowed =
        kDriftSlack * eps * scale *
        (1.0 + static_cast<double>(round) * (static_cast<double>(links) + 1.0));
    if (!(drift <= allowed)) {  // !(<=) also catches NaN totals
      violated(format("conservation violated (%s): round %zu: total %.17g "
                      "drifted %.3g from ledgered total %.17g (run-start "
                      "%.17g + net stream %.17g; allowed %.3g for %zu links)",
                      where, round, static_cast<double>(total), drift,
                      static_cast<double>(expected),
                      static_cast<double>(baseline.total),
                      static_cast<double>(net_stream), allowed, links));
    }
  }
}

template <class T>
void check_conservation(const ConservationBaseline<T>& baseline,
                        const std::vector<T>& load, std::size_t round,
                        std::size_t links, const char* where) {
  check_conservation(baseline, load, round, links, where, T{});
}

// ---------------------------------------------------------------------------
// FlowProgram antisymmetry
// ---------------------------------------------------------------------------

template <class T>
void check_flow_antisymmetry(const core::FlowProgram<T>& program,
                             const graph::TopologyFrame& frame,
                             const std::vector<T>& load, std::size_t round) {
  if (program.flow == nullptr) {
    violated(format("flow antisymmetry: round %zu: planned program has no "
                    "flow function",
                    round));
  }
  const auto& edges = frame.base().edges();
  const auto check_edge = [&](std::size_t k) {
    const graph::Edge& e = edges[k];
    const double lu = static_cast<double>(load[e.u]);
    const double lv = static_cast<double>(load[e.v]);
    const double f = program.flow(k, e, lu, lv);
    const graph::Edge rev{e.v, e.u};
    const double g = program.flow(k, rev, lv, lu);
    if (!(g == -f)) {  // NaN on either side also lands here
      violated(format("flow antisymmetry violated: round %zu edge %zu "
                      "(%u,%u): flow(u,v)=%.17g but flow(v,u)=%.17g "
                      "(expected %.17g)",
                      round, k, e.u, e.v, f, g, -f));
    }
  };
  if (program.support == core::FlowProgram<T>::Support::kMatching) {
    for (const std::uint32_t k : program.matched) check_edge(k);
  } else {
    for (std::size_t k = 0; k < edges.size(); ++k) {
      if (!frame.alive(k)) continue;
      check_edge(k);
    }
  }
}

// ---------------------------------------------------------------------------
// Halo mirror equality
// ---------------------------------------------------------------------------

namespace {

const shard::HaloLink* find_link(const shard::DomainPlan& plan,
                                 std::uint32_t peer) {
  for (const shard::HaloLink& l : plan.links) {
    if (l.peer == peer) return &l;
  }
  return nullptr;
}

template <class V>
void check_mirrored_list(const std::vector<V>& send, const std::vector<V>& recv,
                         std::size_t a, std::size_t b, const char* kind) {
  if (send.size() != recv.size()) {
    violated(format("halo mirror violated: domains (%zu,%zu): %s count %zu on "
                    "the sending side but %zu on the receiving side",
                    a, b, kind, send.size(), recv.size()));
  }
  for (std::size_t i = 0; i < send.size(); ++i) {
    if (send[i] != recv[i]) {
      violated(format("halo mirror violated: domains (%zu,%zu): %s entry %zu "
                      "is %llu on the sending side but %llu on the receiving "
                      "side",
                      a, b, kind, i,
                      static_cast<unsigned long long>(send[i]),
                      static_cast<unsigned long long>(recv[i])));
    }
  }
}

}  // namespace

void check_halo_mirrors(const std::vector<shard::DomainPlan>& plans) {
  for (std::size_t a = 0; a < plans.size(); ++a) {
    for (const shard::HaloLink& l : plans[a].links) {
      if (l.peer >= plans.size()) {
        violated(format("halo mirror violated: domain %zu links to "
                        "nonexistent peer %u",
                        a, l.peer));
      }
      const shard::HaloLink* m = find_link(plans[l.peer], static_cast<std::uint32_t>(a));
      if (m == nullptr) {
        violated(format("halo mirror violated: domain %zu links to peer %u "
                        "but the peer has no mirror link back",
                        a, l.peer));
      }
      check_mirrored_list(l.send_nodes, m->recv_nodes, a, l.peer, "load-node");
      check_mirrored_list(l.recv_nodes, m->send_nodes, a, l.peer, "load-node");
      check_mirrored_list(l.send_flow_edges, m->recv_flow_edges, a, l.peer,
                          "flow-edge");
      check_mirrored_list(l.recv_flow_edges, m->send_flow_edges, a, l.peer,
                          "flow-edge");
    }
  }
}

void check_halo_mirrors(const shard::HaloExchange& halo) {
  check_halo_mirrors(halo.plans());
}

void check_domain_plan(const graph::Graph& base,
                       const std::vector<std::uint32_t>& owner, std::size_t d,
                       const shard::DomainPlan& plan) {
  const auto& edges = base.edges();
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const graph::NodeId u = plan.nodes[i];
    if (u >= base.num_nodes() || owner[u] != d) {
      violated(format("csr: domain %zu plan row %zu: node %u is out of range "
                      "or not owned by the domain",
                      d, i, u));
    }
    if (i > 0 && plan.nodes[i - 1] >= u) {
      violated(format("csr: domain %zu plan: nodes not strictly ascending at "
                      "row %zu",
                      d, i));
    }
  }
  std::size_t expected_owned = 0;
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (owner[edges[k].u] != d) continue;
    if (expected_owned >= plan.owned_edges.size() ||
        plan.owned_edges[expected_owned] != k) {
      violated(format("csr: domain %zu plan: owned_edges diverges from the "
                      "ascending owner(e.u)==d sweep at base edge %zu",
                      d, k));
    }
    ++expected_owned;
  }
  if (expected_owned != plan.owned_edges.size()) {
    violated(format("csr: domain %zu plan: %zu owned edges listed but %zu "
                    "expected",
                    d, plan.owned_edges.size(), expected_owned));
  }
  if (plan.row_ptr.size() != plan.nodes.size() + 1 || plan.row_ptr.front() != 0 ||
      plan.row_ptr.back() != plan.edge_idx.size() ||
      plan.sign.size() != plan.edge_idx.size()) {
    violated(format("csr: domain %zu plan: row_ptr/edge_idx/sign shapes are "
                    "inconsistent",
                    d));
  }
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const graph::NodeId u = plan.nodes[i];
    if (plan.row_ptr[i] > plan.row_ptr[i + 1]) {
      violated(format("csr: domain %zu plan: row_ptr not monotone at row %zu",
                      d, i));
    }
    for (std::size_t p = plan.row_ptr[i]; p < plan.row_ptr[i + 1]; ++p) {
      const std::uint32_t k = plan.edge_idx[p];
      if (k >= edges.size()) {
        violated(format("csr: domain %zu plan row %zu: edge id %u out of "
                        "range",
                        d, i, k));
      }
      if (p > plan.row_ptr[i] && plan.edge_idx[p - 1] >= k) {
        violated(format("csr: domain %zu plan row %zu (node %u): incident "
                        "edge ids not strictly ascending at slot %zu",
                        d, i, u, p));
      }
      const graph::Edge& e = edges[k];
      if (e.u != u && e.v != u) {
        violated(format("csr: domain %zu plan row %zu: node %u is not an "
                        "endpoint of edge %u (%u,%u)",
                        d, i, u, k, e.u, e.v));
      }
      const double expected_sign = (e.u == u) ? -1.0 : 1.0;
      if (plan.sign[p] != expected_sign) {
        violated(format("csr: domain %zu plan row %zu: orientation sign for "
                        "edge %u (%u,%u) at node %u is %g, expected %g",
                        d, i, k, e.u, e.v, u, plan.sign[p], expected_sign));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Comm accounting
// ---------------------------------------------------------------------------

template <class T>
std::vector<RoundCommExpectation> expected_all_edges_round_comm(
    const std::vector<shard::DomainPlan>& plans,
    const graph::TopologyFrame& frame) {
  std::vector<RoundCommExpectation> expected(plans.size());
  for (std::size_t d = 0; d < plans.size(); ++d) {
    RoundCommExpectation& e = expected[d];
    for (const shard::HaloLink& l : plans[d].links) {
      // Phase A: one load payload per nonempty recv_nodes link.  Node
      // halos are a function of the topology alone, mask ignored
      // (sharded_engine.cpp phase A).
      if (!l.recv_nodes.empty()) {
        e.messages += 1;
        e.bytes += l.recv_nodes.size() * sizeof(T);
      }
      // Phase B: one flow payload per link with >= 1 alive incoming cut
      // edge; dead edges ship nothing.
      std::size_t alive = 0;
      for (const std::uint32_t k : l.recv_flow_edges) {
        if (frame.alive(k)) ++alive;
      }
      if (alive > 0) {
        e.messages += 1;
        e.bytes += alive * sizeof(double);
      }
    }
  }
  return expected;
}

template <class T>
std::vector<RoundCommExpectation> expected_matching_round_comm(
    const std::vector<std::uint32_t>& matched,
    const std::vector<graph::Edge>& edges,
    const std::vector<std::uint32_t>& owner, std::size_t domains) {
  std::vector<RoundCommExpectation> expected(domains);
  // Per-superstep nonempty-channel tracking: a channel that carries j
  // values in a superstep still counts as ONE message at the barrier.
  std::vector<std::uint8_t> channel_used(domains * domains, 0);
  const auto mark = [&](std::size_t from, std::size_t to, std::size_t bytes) {
    expected[to].bytes += bytes;
    std::uint8_t& used = channel_used[from * domains + to];
    if (used == 0) {
      used = 1;
      expected[to].messages += 1;
    }
  };
  // Phase A: v-side ships load[e.v] (one T) to owner(e.u) per cut edge.
  for (const std::uint32_t k : matched) {
    const graph::Edge& e = edges[k];
    if (owner[e.u] == owner[e.v]) continue;
    mark(owner[e.v], owner[e.u], sizeof(T));
  }
  std::fill(channel_used.begin(), channel_used.end(), 0);
  // Phase B: owner(e.u) ships the computed flow (one double) back.
  for (const std::uint32_t k : matched) {
    const graph::Edge& e = edges[k];
    if (owner[e.u] == owner[e.v]) continue;
    mark(owner[e.u], owner[e.v], sizeof(double));
  }
  return expected;
}

void check_comm_accounting(const std::vector<RoundCommExpectation>& expected,
                           const std::vector<sim::CommTotals>& before,
                           const std::vector<sim::CommTotals>& after,
                           std::size_t round) {
  for (std::size_t d = 0; d < expected.size(); ++d) {
    const std::uint64_t messages = after[d].messages - before[d].messages;
    const std::uint64_t bytes = after[d].boundary_bytes - before[d].boundary_bytes;
    if (messages != expected[d].messages) {
      violated(format("comm accounting violated: round %zu domain %zu: "
                      "received %" PRIu64 " messages, halo plan expects %" PRIu64,
                      round, d, messages, expected[d].messages));
    }
    if (bytes != expected[d].bytes) {
      violated(format("comm accounting violated: round %zu domain %zu: "
                      "received %" PRIu64 " boundary bytes, halo plan expects "
                      "%" PRIu64,
                      round, d, bytes, expected[d].bytes));
    }
  }
}

// ---------------------------------------------------------------------------
// CSR / EdgeMask well-formedness
// ---------------------------------------------------------------------------

void check_csr_slice(const graph::Graph& base,
                     const util::IndexArray& row_ptr,
                     const std::vector<std::uint32_t>& edge_idx,
                     const std::vector<std::int8_t>& sign) {
  const std::size_t n = base.num_nodes();
  const auto& edges = base.edges();
  if (row_ptr.size() != n + 1 || row_ptr.front() != 0 ||
      row_ptr.back() != edge_idx.size() || sign.size() != edge_idx.size() ||
      edge_idx.size() != 2 * edges.size()) {
    violated(format("csr: ledger shapes inconsistent: %zu nodes, %zu edges, "
                    "row_ptr %zu entries, %zu incident slots, %zu signs",
                    n, edges.size(), row_ptr.size(), edge_idx.size(),
                    sign.size()));
  }
  std::vector<std::uint8_t> seen(edges.size(), 0);
  for (std::size_t u = 0; u < n; ++u) {
    const auto row_begin = static_cast<std::size_t>(row_ptr[u]);
    const auto row_end = static_cast<std::size_t>(row_ptr[u + 1]);
    if (row_begin > row_end) {
      violated(format("csr: ledger row_ptr not monotone at node %zu", u));
    }
    for (std::size_t p = row_begin; p < row_end; ++p) {
      const std::uint32_t k = edge_idx[p];
      if (k >= edges.size()) {
        violated(format("csr: ledger node %zu: edge id %u out of range", u, k));
      }
      if (p > row_begin && edge_idx[p - 1] >= k) {
        violated(format("csr: ledger node %zu: incident edge ids not strictly "
                        "ascending at slot %zu",
                        u, p));
      }
      const graph::Edge& e = edges[k];
      if (e.u != u && e.v != u) {
        violated(format("csr: ledger node %zu is not an endpoint of its "
                        "incident edge %u (%u,%u)",
                        u, k, e.u, e.v));
      }
      const int expected_sign = (e.u == u) ? -1 : 1;
      if (sign[p] != expected_sign) {
        violated(format("csr: ledger node %zu: orientation sign for edge %u "
                        "(%u,%u) is %d, expected %d",
                        u, k, e.u, e.v, static_cast<int>(sign[p]), expected_sign));
      }
      ++seen[k];
    }
  }
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (seen[k] != 2) {
      violated(format("csr: ledger edge %zu (%u,%u) appears %u times across "
                      "node rows, expected exactly 2",
                      k, edges[k].u, edges[k].v, seen[k]));
    }
  }
}

void check_ledger(const core::FlowLedger& ledger, const graph::Graph& base) {
  if (!ledger.valid_for(base)) {
    violated(format("csr: ledger checked against a graph it was not built "
                    "for (ledger %zu nodes / %zu edges, graph %zu / %zu)",
                    ledger.num_nodes(), ledger.num_edges(), base.num_nodes(),
                    base.num_edges()));
  }
  check_csr_slice(base, ledger.row_ptr(), ledger.edge_indices(), ledger.signs());
}

void check_mask_arrays(const graph::Graph& base,
                       const std::vector<std::uint8_t>& alive,
                       std::size_t claimed_alive_edges,
                       const std::vector<std::uint32_t>& claimed_degrees,
                       std::size_t claimed_max, std::size_t claimed_min) {
  const auto& edges = base.edges();
  if (alive.size() != edges.size() || claimed_degrees.size() != base.num_nodes()) {
    violated(format("edge mask inconsistent: %zu alive bits for %zu base "
                    "edges, %zu degrees for %zu nodes",
                    alive.size(), edges.size(), claimed_degrees.size(),
                    base.num_nodes()));
  }
  std::size_t alive_edges = 0;
  std::vector<std::uint32_t> degrees(base.num_nodes(), 0);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (alive[k] == 0) continue;
    ++alive_edges;
    ++degrees[edges[k].u];
    ++degrees[edges[k].v];
  }
  if (alive_edges != claimed_alive_edges) {
    violated(format("edge mask inconsistent: bitmap has %zu alive edges but "
                    "the mask claims %zu",
                    alive_edges, claimed_alive_edges));
  }
  std::size_t max_deg = 0;
  std::size_t min_deg = base.num_nodes() == 0 ? 0 : degrees[0];
  for (std::size_t u = 0; u < degrees.size(); ++u) {
    if (degrees[u] != claimed_degrees[u]) {
      violated(format("edge mask inconsistent: node %zu alive-degree is %u "
                      "by recount but the mask claims %u",
                      u, degrees[u], claimed_degrees[u]));
    }
    max_deg = std::max<std::size_t>(max_deg, degrees[u]);
    min_deg = std::min<std::size_t>(min_deg, degrees[u]);
  }
  if (max_deg != claimed_max || min_deg != claimed_min) {
    violated(format("edge mask inconsistent: recounted degree range [%zu,%zu] "
                    "but the mask claims [%zu,%zu]",
                    min_deg, max_deg, claimed_min, claimed_max));
  }
}

void check_mask(const graph::EdgeMask& mask) {
  const graph::Graph& base = mask.base();
  std::vector<std::uint8_t> alive(base.num_edges());
  for (std::size_t k = 0; k < alive.size(); ++k) {
    alive[k] = mask.alive(k) ? 1 : 0;
  }
  std::vector<std::uint32_t> degrees(base.num_nodes());
  for (std::size_t u = 0; u < degrees.size(); ++u) {
    degrees[u] =
        static_cast<std::uint32_t>(mask.alive_degree(static_cast<graph::NodeId>(u)));
  }
  check_mask_arrays(base, alive, mask.alive_edges(), degrees,
                    mask.max_alive_degree(), mask.min_alive_degree());
}

// ---------------------------------------------------------------------------

#define LB_INSTANTIATE(T)                                                      \
  template ConservationBaseline<T> conservation_baseline<T>(                   \
      const std::vector<T>&);                                                  \
  template void check_conservation<T>(const ConservationBaseline<T>&,          \
                                      const std::vector<T>&, std::size_t,      \
                                      std::size_t, const char*);               \
  template void check_conservation<T>(const ConservationBaseline<T>&,          \
                                      const std::vector<T>&, std::size_t,      \
                                      std::size_t, const char*, T);            \
  template void check_flow_antisymmetry<T>(const core::FlowProgram<T>&,        \
                                           const graph::TopologyFrame&,        \
                                           const std::vector<T>&, std::size_t); \
  template std::vector<RoundCommExpectation> expected_all_edges_round_comm<T>( \
      const std::vector<shard::DomainPlan>&, const graph::TopologyFrame&);     \
  template std::vector<RoundCommExpectation> expected_matching_round_comm<T>(  \
      const std::vector<std::uint32_t>&, const std::vector<graph::Edge>&,      \
      const std::vector<std::uint32_t>&, std::size_t);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::check
