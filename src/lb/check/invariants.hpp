// Runtime invariant layer: the determinism/conservation contract of
// DESIGN.md §§2–7 as executable checks instead of prose.
//
// Every check here is a *redundant* recomputation of something the
// engine already believes — total load, halo mirror tables, CSR
// well-formedness, modeled message accounting — from first principles,
// so a silent bug in the fast paths (a dropped flow message, a flipped
// orientation sign, a stale alive-degree) trips a named diagnostic
// instead of corrupting results.  Checks are gated: the engines run them
// only when EngineConfig::check_invariants is set or the LB_CHECK
// environment variable is truthy, so release-path cost is one branch per
// round.
//
// Violations throw InvariantViolation with a message that names the
// invariant and the (round, edge, domain) coordinates of the failure —
// the mutation tests in tests/test_check.cpp assert on those names, so
// the checker itself is pinned against becoming a no-op (DESIGN.md §8).
//
// Layering: lb::check sits above core/graph/shard/sim and is called
// *from* the engines; nothing below includes it.  The low-level
// overloads that take raw arrays (check_csr_slice, check_mask_arrays,
// check_halo_mirrors on a plan vector) exist so the mutation tests can
// seed violations that the public APIs of the checked classes make
// unrepresentable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "lb/core/flow_ledger.hpp"
#include "lb/core/flow_program.hpp"
#include "lb/graph/edge_mask.hpp"
#include "lb/graph/graph.hpp"
#include "lb/shard/halo.hpp"
#include "lb/sim/comm.hpp"

namespace lb::check {

/// Thrown by every check below on a contract violation.  The what()
/// string always begins with the invariant's name ("conservation",
/// "flow antisymmetry", "halo mirror", "comm accounting", "csr",
/// "edge mask") followed by round/edge/domain coordinates.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// True when the LB_CHECK environment variable is set to anything but
/// "" or "0".  Read once per process; the engines OR this with
/// EngineConfig::check_invariants.
bool env_enabled();

// ---------------------------------------------------------------------------
// Conservation
// ---------------------------------------------------------------------------

/// Run-start reference for the conservation check.  For Tokens the total
/// is exact and must be preserved to 0 ULP; for Real the reference also
/// carries Σ|ℓ_i| (the natural scale of per-round rounding error) so the
/// allowed drift can be stated in ULPs of the data rather than as an
/// arbitrary epsilon.
template <class T>
struct ConservationBaseline {
  T total{};               ///< left-to-right sequential sum
  double abs_scale = 1.0;  ///< max(1, Σ|ℓ_i|) at run start
};

template <class T>
ConservationBaseline<T> conservation_baseline(const std::vector<T>& load);

/// Verify total load is preserved after round `round`.  Discrete: the
/// int64 totals must be equal (0 ULP).  Continuous: each of the round's
/// ≤ `links` paired ±f applications contributes at most one rounding
/// error of order ε·scale, so the accumulated drift after R rounds is
/// bounded by kDriftSlack·ε·scale·(1 + R·(links+1)) — generous against
/// IEEE rounding, still ~10 orders of magnitude below one lost token.
template <class T>
void check_conservation(const ConservationBaseline<T>& baseline,
                        const std::vector<T>& load, std::size_t round,
                        std::size_t links, const char* where);

/// Ledgered conservation for open-system runs (DESIGN.md §11): the
/// balancer still conserves, but the stream moved the books, so the
/// invariant is post_total == pre_total + arrivals − departures.
/// `net_stream` is the cumulative APPLIED net (Σ arrivals − Σ applied
/// departures, from workload::tally_stream_delta) since the baseline was
/// taken.  Discrete stays 0 ULP; continuous widens the scale by |net| so
/// the drift bound tracks the load actually flowing through the system.
/// The closed-system check above is exactly this with net_stream == 0.
template <class T>
void check_conservation(const ConservationBaseline<T>& baseline,
                        const std::vector<T>& load, std::size_t round,
                        std::size_t links, const char* where, T net_stream);

// ---------------------------------------------------------------------------
// FlowProgram antisymmetry
// ---------------------------------------------------------------------------

/// Verify the program's flow function is orientation-antisymmetric on the
/// current load: for every in-support edge k = (u, v),
///   flow(k, {v, u}, ℓ_v, ℓ_u) == -flow(k, {u, v}, ℓ_u, ℓ_v)
/// bit for bit.  This is the property that makes "owner of e.u computes
/// the flow" a *convention* rather than a result-changing choice — a
/// flow function that secretly depends on endpoint order would produce
/// different trajectories under a different ownership map.  kAllEdges
/// programs are checked over every alive edge, kMatching programs over
/// the matched list.  Flows must be pure (flow_program.hpp), so the
/// extra evaluations cannot disturb the round.
template <class T>
void check_flow_antisymmetry(const core::FlowProgram<T>& program,
                             const graph::TopologyFrame& frame,
                             const std::vector<T>& load, std::size_t round);

// ---------------------------------------------------------------------------
// Halo mirror equality
// ---------------------------------------------------------------------------

/// Verify every link's send lists equal the peer's corresponding recv
/// lists entry for entry (and vice versa): the property that lets the
/// comm channels run as FIFOs with no per-message framing.  The vector
/// overload is the mutation-testable core; the HaloExchange overload
/// checks a live exchange.
void check_halo_mirrors(const std::vector<shard::DomainPlan>& plans);
void check_halo_mirrors(const shard::HaloExchange& halo);

/// Verify one domain plan against the base graph and ownership vector:
/// nodes ascending and owned by `d`; owned_edges exactly the ascending
/// base edges with owner(e.u) == d; the CSR slice well-formed (row_ptr
/// monotone and sized, incident edge ids ascending per row, each row's
/// node an endpoint of every listed edge, sign −1 exactly when the node
/// is the edge's u).
void check_domain_plan(const graph::Graph& base,
                       const std::vector<std::uint32_t>& owner, std::size_t d,
                       const shard::DomainPlan& plan);

// ---------------------------------------------------------------------------
// Comm accounting
// ---------------------------------------------------------------------------

/// Expected modeled traffic INTO one domain over one round.
struct RoundCommExpectation {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Expectation for one kAllEdges halo round, derived from the plans and
/// the frame's alive mask alone: phase A delivers one load payload per
/// nonempty recv_nodes link (sizeof(T) per node), phase B one flow
/// payload per link with ≥ 1 alive recv_flow_edge (sizeof(double) per
/// alive edge).
template <class T>
std::vector<RoundCommExpectation> expected_all_edges_round_comm(
    const std::vector<shard::DomainPlan>& plans,
    const graph::TopologyFrame& frame);

/// Expectation for one kMatching round: phase A ships one T per matched
/// cut edge v-side → u-side, phase B one double back per such edge;
/// messages count nonempty (sender, receiver) channels per superstep.
template <class T>
std::vector<RoundCommExpectation> expected_matching_round_comm(
    const std::vector<std::uint32_t>& matched,
    const std::vector<graph::Edge>& edges,
    const std::vector<std::uint32_t>& owner, std::size_t domains);

/// Verify the comm engine's per-domain totals moved by exactly the
/// expected amount across the round: a dropped, duplicated or truncated
/// halo message shows up as a message-count or byte-count mismatch here.
void check_comm_accounting(const std::vector<RoundCommExpectation>& expected,
                           const std::vector<sim::CommTotals>& before,
                           const std::vector<sim::CommTotals>& after,
                           std::size_t round);

// ---------------------------------------------------------------------------
// CSR / EdgeMask well-formedness
// ---------------------------------------------------------------------------

/// Verify a FlowLedger-layout CSR over ALL of `base`'s nodes: row_ptr
/// monotone with the right endpoints, incident edge ids in range and
/// ascending per row, each row's node an endpoint with sign −1 exactly
/// when it is the edge's u, and every base edge appearing exactly twice
/// (once per endpoint).
void check_csr_slice(const graph::Graph& base,
                     const util::IndexArray& row_ptr,
                     const std::vector<std::uint32_t>& edge_idx,
                     const std::vector<std::int8_t>& sign);

/// Verify a live ledger (must be valid_for(base)).
void check_ledger(const core::FlowLedger& ledger, const graph::Graph& base);

/// Verify claimed mask summaries against a recount of the alive bitmap:
/// per-node alive-degrees, the alive-edge count, and the max/min
/// alive-degree.  The arrays overload is the mutation-testable core.
void check_mask_arrays(const graph::Graph& base,
                       const std::vector<std::uint8_t>& alive,
                       std::size_t claimed_alive_edges,
                       const std::vector<std::uint32_t>& claimed_degrees,
                       std::size_t claimed_max, std::size_t claimed_min);

/// Verify a live mask after a commit (wired into the engines on every
/// mask-revision change).
void check_mask(const graph::EdgeMask& mask);

}  // namespace lb::check
