// Cyclic Jacobi eigensolver for dense symmetric matrices.
//
// Robust and simple; O(n^3) per sweep, so intended for n up to ~512 (the
// sizes at which the benches need full spectra, e.g. OPS needs every
// distinct Laplacian eigenvalue).  For larger n the library uses
// tridiagonalization + QL (tridiag.hpp) or Lanczos (lanczos.hpp).
#pragma once

#include <vector>

#include "lb/linalg/dense.hpp"

namespace lb::linalg {

struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  Vector values;
  /// Optional: column k of `vectors` is the unit eigenvector for values[k].
  DenseMatrix vectors;
  /// Number of sweeps performed.
  std::size_t sweeps = 0;
  bool converged = false;
};

struct JacobiOptions {
  double tolerance = 1e-12;    ///< stop when off-diagonal Frobenius norm <= tol * ||A||_F
  std::size_t max_sweeps = 64;
  bool compute_vectors = true;
};

/// Full eigendecomposition of a symmetric matrix (asserts symmetry).
EigenDecomposition jacobi_eigen(const DenseMatrix& a, const JacobiOptions& opts = {});

}  // namespace lb::linalg
