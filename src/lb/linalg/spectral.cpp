#include "lb/linalg/spectral.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>

#include "lb/linalg/jacobi_eigen.hpp"
#include "lb/linalg/lanczos.hpp"
#include "lb/linalg/tridiag.hpp"
#include "lb/util/assert.hpp"

namespace lb::linalg {

namespace {

constexpr double kPi = 3.14159265358979323846;

Vector ones_vector(std::size_t n) { return Vector(n, 1.0); }

/// Dense Laplacian spectrum via tridiagonal QL.
Vector dense_spectrum(const graph::Graph& g, bool need_vectors, DenseMatrix* vectors) {
  const DenseMatrix l = laplacian_dense(g);
  TridiagOptions opts;
  opts.compute_vectors = need_vectors;
  EigenDecomposition d = symmetric_eigen(l, opts);
  LB_ASSERT_MSG(d.converged, "tridiagonal QL failed to converge on a Laplacian");
  if (need_vectors && vectors) *vectors = std::move(d.vectors);
  return d.values;
}

}  // namespace

// A full graph is the degenerate (unmasked) frame, so the Graph
// overloads delegate to the frame assemblers — one copy of each loop.
CsrMatrix laplacian_csr(const graph::Graph& g) {
  return laplacian_csr(graph::TopologyFrame(g));
}

DenseMatrix laplacian_dense(const graph::Graph& g) {
  return laplacian_dense(graph::TopologyFrame(g));
}

CsrMatrix laplacian_csr(const graph::TopologyFrame& frame) {
  const std::size_t n = frame.num_nodes();
  std::vector<std::size_t> rows, cols;
  std::vector<double> vals;
  rows.reserve(n + 2 * frame.num_edges());
  cols.reserve(rows.capacity());
  vals.reserve(rows.capacity());
  for (std::size_t u = 0; u < n; ++u) {
    rows.push_back(u);
    cols.push_back(u);
    vals.push_back(static_cast<double>(frame.degree(static_cast<graph::NodeId>(u))));
  }
  const auto& edges = frame.base().edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (!frame.alive(k)) continue;
    rows.push_back(edges[k].u);
    cols.push_back(edges[k].v);
    vals.push_back(-1.0);
    rows.push_back(edges[k].v);
    cols.push_back(edges[k].u);
    vals.push_back(-1.0);
  }
  return CsrMatrix::from_triplets(n, std::move(rows), std::move(cols), std::move(vals));
}

DenseMatrix laplacian_dense(const graph::TopologyFrame& frame) {
  const std::size_t n = frame.num_nodes();
  DenseMatrix l(n, n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    l(u, u) = static_cast<double>(frame.degree(static_cast<graph::NodeId>(u)));
  }
  const auto& edges = frame.base().edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (!frame.alive(k)) continue;
    l(edges[k].u, edges[k].v) = -1.0;
    l(edges[k].v, edges[k].u) = -1.0;
  }
  return l;
}

CsrMatrix diffusion_matrix_csr(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  const double alpha = 1.0 / (static_cast<double>(g.max_degree()) + 1.0);
  std::vector<std::size_t> rows, cols;
  std::vector<double> vals;
  for (std::size_t u = 0; u < n; ++u) {
    rows.push_back(u);
    cols.push_back(u);
    vals.push_back(1.0 - alpha * static_cast<double>(
                             g.degree(static_cast<graph::NodeId>(u))));
  }
  for (const graph::Edge& e : g.edges()) {
    rows.push_back(e.u);
    cols.push_back(e.v);
    vals.push_back(alpha);
    rows.push_back(e.v);
    cols.push_back(e.u);
    vals.push_back(alpha);
  }
  return CsrMatrix::from_triplets(n, std::move(rows), std::move(cols), std::move(vals));
}

DenseMatrix diffusion_matrix_dense(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  const double alpha = 1.0 / (static_cast<double>(g.max_degree()) + 1.0);
  DenseMatrix m(n, n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    m(u, u) = 1.0 - alpha * static_cast<double>(g.degree(static_cast<graph::NodeId>(u)));
  }
  for (const graph::Edge& e : g.edges()) {
    m(e.u, e.v) = alpha;
    m(e.v, e.u) = alpha;
  }
  return m;
}

namespace {

// Override state: -1 = no override (env/default applies).
std::atomic<long long> g_max_spectral_override{-1};
std::atomic<long long> g_max_lanczos_override{-1};

std::size_t env_ceiling(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && parsed >= 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

std::size_t env_max_spectral_n() {
  static const std::size_t cached =
      env_ceiling("LB_MAX_SPECTRAL_N", std::size_t{131072});  // 2^17
  return cached;
}

std::size_t env_max_lanczos_spectral_n() {
  static const std::size_t cached =
      env_ceiling("LB_MAX_LANCZOS_SPECTRAL_N", std::size_t{2097152});  // 2^21
  return cached;
}

}  // namespace

std::size_t max_spectral_n() {
  const long long ceiling = g_max_spectral_override.load(std::memory_order_relaxed);
  if (ceiling >= 0) return static_cast<std::size_t>(ceiling);
  return env_max_spectral_n();
}

std::size_t max_lanczos_spectral_n() {
  const long long ceiling = g_max_lanczos_override.load(std::memory_order_relaxed);
  if (ceiling >= 0) return static_cast<std::size_t>(ceiling);
  return env_max_lanczos_spectral_n();
}

void set_max_spectral_n(long long ceiling) {
  // Historical hard-ceiling hook: sets both paths' ceilings so existing
  // callers (scale tests/benches) keep their "no spectral work above n"
  // semantics.  set_max_lanczos_spectral_n() can re-split afterwards.
  const long long stored = ceiling < 0 ? -1 : ceiling;
  g_max_spectral_override.store(stored, std::memory_order_relaxed);
  g_max_lanczos_override.store(stored, std::memory_order_relaxed);
}

void set_max_lanczos_spectral_n(long long ceiling) {
  g_max_lanczos_override.store(ceiling < 0 ? -1 : ceiling,
                               std::memory_order_relaxed);
}

SpectralGuard spectral_guard(std::size_t num_nodes, std::size_t dense_cutoff) {
  if (num_nodes <= dense_cutoff) {
    const std::size_t ceiling = max_spectral_n();
    return ceiling != 0 && num_nodes > ceiling ? SpectralGuard::kDense
                                               : SpectralGuard::kNone;
  }
  const std::size_t ceiling = max_lanczos_spectral_n();
  return ceiling != 0 && num_nodes > ceiling ? SpectralGuard::kLanczos
                                             : SpectralGuard::kNone;
}

bool spectral_guard_active(std::size_t num_nodes) {
  return spectral_guard(num_nodes) != SpectralGuard::kNone;
}

double lambda2(const graph::Graph& g, std::size_t dense_cutoff) {
  return lambda2(graph::TopologyFrame(g), dense_cutoff);
}

double lambda2(const graph::TopologyFrame& frame, std::size_t dense_cutoff) {
  const std::size_t n = frame.num_nodes();
  LB_ASSERT_MSG(n >= 2, "lambda2 needs at least two nodes");
  if (spectral_guard(n, dense_cutoff) != SpectralGuard::kNone) {
    return 0.0;  // deterministic degraded value
  }
  if (n <= dense_cutoff) {
    const DenseMatrix l = laplacian_dense(frame);
    TridiagOptions opts;
    opts.compute_vectors = false;
    EigenDecomposition d = symmetric_eigen(l, opts);
    LB_ASSERT_MSG(d.converged, "tridiagonal QL failed to converge on a Laplacian");
    return d.values[1];
  }
  const CsrMatrix l = laplacian_csr(frame);
  LanczosOptions opts;
  opts.deflate = {ones_vector(n)};
  opts.max_dim = std::min<std::size_t>(n - 1, 600);
  const LanczosResult r = lanczos_smallest(l, opts);
  LB_ASSERT_MSG(r.converged, "Lanczos failed to converge for lambda2");
  // Clamp the tiny negative values rounding can produce for near-
  // disconnected graphs.
  return std::max(r.eigenvalue, 0.0);
}

double lambda_max(const graph::Graph& g, std::size_t dense_cutoff) {
  const std::size_t n = g.num_nodes();
  LB_ASSERT_MSG(n >= 2, "lambda_max needs at least two nodes");
  if (spectral_guard(n, dense_cutoff) != SpectralGuard::kNone) {
    return 0.0;  // deterministic degraded value
  }
  if (n <= dense_cutoff) {
    const Vector spec = dense_spectrum(g, false, nullptr);
    return spec.back();
  }
  const CsrMatrix l = laplacian_csr(g);
  LanczosOptions opts;
  opts.max_dim = std::min<std::size_t>(n, 600);
  const LanczosResult r = lanczos_largest(l, opts);
  LB_ASSERT_MSG(r.converged, "Lanczos failed to converge for lambda_max");
  return r.eigenvalue;
}

double diffusion_gamma(const graph::Graph& g, std::size_t dense_cutoff) {
  // Guarded directly — NOT composed from the guarded λ2/λmax, whose 0.0
  // degradations would compose to γ = 1 here and trip the optimal_beta
  // domain assert.  γ = 0 degrades SOS's auto-β to 1 (a plain FOS step).
  if (spectral_guard(g.num_nodes(), dense_cutoff) != SpectralGuard::kNone) return 0.0;
  // With uniform alpha = 1/(δ+1), M = I − L/(δ+1) exactly, so the
  // spectrum of M is {1 − λ_i/(δ+1)} and γ follows from λ2 and λ_max.
  const double dp1 = static_cast<double>(g.max_degree()) + 1.0;
  const double l2 = lambda2(g, dense_cutoff);
  const double lmax = lambda_max(g, dense_cutoff);
  return std::max(std::fabs(1.0 - l2 / dp1), std::fabs(1.0 - lmax / dp1));
}

SpectralSummary spectral_summary(const graph::Graph& g, std::size_t dense_cutoff) {
  SpectralSummary s;
  s.n = g.num_nodes();
  s.max_degree = g.max_degree();
  if (spectral_guard(s.n, dense_cutoff) != SpectralGuard::kNone) {
    // Degraded summary: zero eigenvalues, γ = 0, unit gap — the same
    // values the guarded scalar entry points return.
    s.eigen_gap = 1.0;
    return s;
  }
  s.lambda2 = lambda2(g, dense_cutoff);
  s.lambda_max = lambda_max(g, dense_cutoff);
  const double dp1 = static_cast<double>(g.max_degree()) + 1.0;
  s.gamma = std::max(std::fabs(1.0 - s.lambda2 / dp1), std::fabs(1.0 - s.lambda_max / dp1));
  s.eigen_gap = 1.0 - s.gamma;
  return s;
}

Vector fiedler_vector(const graph::Graph& g, std::size_t dense_cutoff) {
  const std::size_t n = g.num_nodes();
  if (n <= dense_cutoff) {
    DenseMatrix vectors;
    (void)dense_spectrum(g, true, &vectors);
    Vector f(n);
    for (std::size_t i = 0; i < n; ++i) f[i] = vectors(i, 1);
    return f;
  }
  const CsrMatrix l = laplacian_csr(g);
  LanczosOptions opts;
  opts.deflate = {ones_vector(n)};
  opts.max_dim = std::min<std::size_t>(n - 1, 600);
  const LanczosResult r = lanczos_smallest(l, opts);
  LB_ASSERT_MSG(r.converged, "Lanczos failed to converge for the Fiedler vector");
  return r.eigenvector;
}

Vector laplacian_spectrum(const graph::Graph& g) {
  LB_ASSERT_MSG(g.num_nodes() <= 2048, "full spectrum restricted to n <= 2048");
  return dense_spectrum(g, false, nullptr);
}

std::optional<double> lambda2_closed_form(const graph::Graph& g) {
  const std::string& name = g.name();
  const std::size_t n = g.num_nodes();
  auto starts_with = [&name](const char* prefix) {
    return name.rfind(prefix, 0) == 0;
  };
  if (starts_with("path(")) {
    return 2.0 * (1.0 - std::cos(kPi / static_cast<double>(n)));
  }
  if (starts_with("cycle(")) {
    return 2.0 * (1.0 - std::cos(2.0 * kPi / static_cast<double>(n)));
  }
  if (starts_with("complete(")) return static_cast<double>(n);
  if (starts_with("star(")) return 1.0;
  if (starts_with("hypercube(")) return 2.0;
  if (starts_with("torus2d(") || starts_with("grid2d(")) {
    // Parse "fam(AxB)".
    const auto open = name.find('(');
    const auto x = name.find('x', open);
    const auto close = name.find(')', x);
    if (open == std::string::npos || x == std::string::npos || close == std::string::npos) {
      return std::nullopt;
    }
    const std::size_t a = std::stoul(name.substr(open + 1, x - open - 1));
    const std::size_t b = std::stoul(name.substr(x + 1, close - x - 1));
    const double longest = static_cast<double>(std::max(a, b));
    if (starts_with("torus2d(")) {
      return 2.0 * (1.0 - std::cos(2.0 * kPi / longest));
    }
    return 2.0 * (1.0 - std::cos(kPi / longest));
  }
  return std::nullopt;
}

std::pair<double, double> cheeger_bounds(const graph::Graph& g, std::size_t dense_cutoff) {
  const double l2 = lambda2(g, dense_cutoff);
  const double upper =
      std::sqrt(2.0 * static_cast<double>(g.max_degree()) * std::max(l2, 0.0));
  return {l2 / 2.0, upper};
}

}  // namespace lb::linalg
