// Dense row-major matrices and the vector kernels the eigensolvers need.
//
// This module (together with jacobi_eigen/tridiag/lanczos) replaces the
// Eigen dependency the reproduction would otherwise need for spectral
// analysis: the target environment has no Eigen, so we implement the
// required solvers ourselves and validate them against closed-form graph
// spectra in the tests.
#pragma once

#include <cstddef>
#include <vector>

namespace lb::linalg {

using Vector = std::vector<double>;

/// Dense row-major n x m matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// y = A * x.
  Vector multiply(const Vector& x) const;

  /// C = A * B.
  DenseMatrix multiply(const DenseMatrix& other) const;

  DenseMatrix transpose() const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  double max_abs_diff(const DenseMatrix& other) const;

  /// True if |a_ij - a_ji| <= tol for all i, j (square matrices only).
  bool is_symmetric(double tol = 1e-12) const;

  /// Frobenius norm of the off-diagonal part (Jacobi convergence measure).
  double off_diagonal_norm() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

// ---- vector kernels ----

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
/// x *= alpha
void scale(Vector& x, double alpha);
/// Remove the component of x along the (not necessarily unit) direction d.
void remove_component(Vector& x, const Vector& d);
/// Normalize x to unit 2-norm; returns the original norm (0 if x was 0).
double normalize(Vector& x);

}  // namespace lb::linalg
