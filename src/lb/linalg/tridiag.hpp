// Symmetric eigensolver via Householder tridiagonalization followed by
// implicit-shift QL iteration ("tqli").  O(n^3) with a much smaller
// constant than cyclic Jacobi; the default full-spectrum solver for
// n up to a few thousand.  Eigenvectors are optional.
#pragma once

#include "lb/linalg/dense.hpp"
#include "lb/linalg/jacobi_eigen.hpp"  // for EigenDecomposition

namespace lb::linalg {

struct TridiagOptions {
  std::size_t max_iterations_per_eigenvalue = 60;
  bool compute_vectors = false;
};

/// Householder-reduce a symmetric matrix to tridiagonal form.
/// On return `diag` has the diagonal, `off` the sub-diagonal (off[0] unused),
/// and if `accumulate` is non-null it holds the orthogonal transform Q such
/// that Q^T A Q = T.
void householder_tridiagonalize(const DenseMatrix& a, Vector& diag, Vector& off,
                                DenseMatrix* accumulate);

/// Eigenvalues (ascending) of a symmetric tridiagonal matrix; if `z` is
/// non-null it must hold the accumulated transform on input and holds the
/// eigenvectors (columns) on output.
bool tridiagonal_ql(Vector& diag, Vector& off, DenseMatrix* z,
                    std::size_t max_iter = 60);

/// Full symmetric eigendecomposition (tridiagonalize + QL).
EigenDecomposition symmetric_eigen(const DenseMatrix& a, const TridiagOptions& opts = {});

}  // namespace lb::linalg
