// Lanczos iteration for extreme eigenvalues of large sparse symmetric
// matrices, with full reorthogonalization (the Krylov dimensions we need
// are small — a few hundred — so full reorthogonalization is affordable
// and removes the classic ghost-eigenvalue failure mode).
//
// The main client is spectral::lambda2 on graph Laplacians with n beyond
// the dense solvers' reach: we deflate the known kernel vector (1,...,1)
// and take the smallest Ritz value of the restricted operator.
#pragma once

#include <cstdint>
#include <functional>

#include "lb/linalg/csr.hpp"
#include "lb/linalg/dense.hpp"

namespace lb::linalg {

struct LanczosOptions {
  std::size_t max_dim = 400;        ///< maximum Krylov dimension
  double tolerance = 1e-10;         ///< residual tolerance on the target Ritz pair
  std::uint64_t seed = 12345;       ///< start-vector seed
  /// Directions to project out of the Krylov space (e.g. the Laplacian
  /// kernel vector).  Need not be normalized.
  std::vector<Vector> deflate;
};

struct LanczosResult {
  double eigenvalue = 0.0;
  Vector eigenvector;       ///< empty unless requested converged
  std::size_t iterations = 0;
  bool converged = false;
};

/// Smallest eigenvalue (Ritz value) of the operator restricted to the
/// orthogonal complement of `opts.deflate`.
LanczosResult lanczos_smallest(
    const std::function<void(const Vector&, Vector&)>& apply, std::size_t n,
    const LanczosOptions& opts = {});

/// Largest eigenvalue, same deflation semantics.
LanczosResult lanczos_largest(
    const std::function<void(const Vector&, Vector&)>& apply, std::size_t n,
    const LanczosOptions& opts = {});

/// Convenience overloads for CSR matrices.
LanczosResult lanczos_smallest(const CsrMatrix& a, const LanczosOptions& opts = {});
LanczosResult lanczos_largest(const CsrMatrix& a, const LanczosOptions& opts = {});

}  // namespace lb::linalg
