// Lanczos iteration for extreme eigenvalues of large sparse symmetric
// matrices, with full reorthogonalization (the Krylov dimensions we need
// are small — a few hundred — so full reorthogonalization is affordable
// and removes the classic ghost-eigenvalue failure mode).
//
// The main client is spectral::lambda2 on graph Laplacians with n beyond
// the dense solvers' reach: we deflate the known kernel vector (1,...,1)
// and take the smallest Ritz value of the restricted operator.
#pragma once

#include <cstdint>
#include <functional>

#include "lb/linalg/csr.hpp"
#include "lb/linalg/dense.hpp"

namespace lb::linalg {

struct LanczosOptions {
  std::size_t max_dim = 400;        ///< maximum Krylov dimension
  double tolerance = 1e-10;         ///< residual tolerance on the target Ritz pair
  std::uint64_t seed = 12345;       ///< start-vector seed
  /// Directions to project out of the Krylov space (e.g. the Laplacian
  /// kernel vector).  Need not be normalized.
  std::vector<Vector> deflate;
  /// Warm start: when non-empty (and sized n) this vector seeds the
  /// Krylov space instead of the rng-filled start — callers pass the
  /// previous topology's Ritz/Fiedler vector so near-identical operators
  /// converge in a fraction of the iterations.  It is projected against
  /// `deflate` and normalized; if that leaves (numerically) nothing, the
  /// cold random start is used, so a degenerate warm vector can never
  /// change which eigenpair is found.  Empty keeps the cold path
  /// byte-identical to the pre-warm-start behaviour.
  Vector initial;
};

struct LanczosResult {
  double eigenvalue = 0.0;
  Vector eigenvector;       ///< the extreme Ritz vector (unit norm); retained
                            ///< so callers can cache it as the next warm start
  std::size_t iterations = 0;
  bool converged = false;
};

/// Smallest eigenvalue (Ritz value) of the operator restricted to the
/// orthogonal complement of `opts.deflate`.
LanczosResult lanczos_smallest(
    const std::function<void(const Vector&, Vector&)>& apply, std::size_t n,
    const LanczosOptions& opts = {});

/// Largest eigenvalue, same deflation semantics.
LanczosResult lanczos_largest(
    const std::function<void(const Vector&, Vector&)>& apply, std::size_t n,
    const LanczosOptions& opts = {});

/// Convenience overloads for CSR matrices.
LanczosResult lanczos_smallest(const CsrMatrix& a, const LanczosOptions& opts = {});
LanczosResult lanczos_largest(const CsrMatrix& a, const LanczosOptions& opts = {});

}  // namespace lb::linalg
