#include "lb/linalg/jacobi_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lb/util/assert.hpp"

namespace lb::linalg {

EigenDecomposition jacobi_eigen(const DenseMatrix& input, const JacobiOptions& opts) {
  LB_ASSERT_MSG(input.rows() == input.cols(), "jacobi_eigen requires a square matrix");
  LB_ASSERT_MSG(input.is_symmetric(1e-9), "jacobi_eigen requires a symmetric matrix");
  const std::size_t n = input.rows();

  DenseMatrix a = input;
  DenseMatrix v = DenseMatrix::identity(n);

  double frob = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) frob += a(i, j) * a(i, j);
  frob = std::sqrt(frob);
  const double threshold = opts.tolerance * std::max(frob, 1.0);

  EigenDecomposition out;
  for (out.sweeps = 0; out.sweeps < opts.max_sweeps; ++out.sweeps) {
    if (a.off_diagonal_norm() <= threshold) {
      out.converged = true;
      break;
    }
    // One cyclic sweep over all upper-triangle pairs.
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= threshold / static_cast<double>(n * n)) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Rotation angle via the stable tangent formula.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // A <- J^T A J applied in place.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        if (opts.compute_vectors) {
          for (std::size_t k = 0; k < n; ++k) {
            const double vkp = v(k, p);
            const double vkq = v(k, q);
            v(k, p) = c * vkp - s * vkq;
            v(k, q) = s * vkp + c * vkq;
          }
        }
      }
    }
  }
  if (!out.converged && a.off_diagonal_norm() <= threshold) out.converged = true;

  // Extract eigenvalues and sort ascending, permuting the vectors along.
  Vector values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = a(i, i);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return values[x] < values[y]; });

  out.values.resize(n);
  if (opts.compute_vectors) out.vectors = DenseMatrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = values[order[k]];
    if (opts.compute_vectors) {
      for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = v(r, order[k]);
    }
  }
  return out;
}

}  // namespace lb::linalg
