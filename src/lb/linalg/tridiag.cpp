#include "lb/linalg/tridiag.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lb/util/assert.hpp"

namespace lb::linalg {

namespace {

// sqrt(a^2 + b^2) without destructive underflow/overflow.
double pythag(double a, double b) {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double r = absb / absa;
    return absa * std::sqrt(1.0 + r * r);
  }
  if (absb == 0.0) return 0.0;
  const double r = absa / absb;
  return absb * std::sqrt(1.0 + r * r);
}

}  // namespace

void householder_tridiagonalize(const DenseMatrix& input, Vector& diag, Vector& off,
                                DenseMatrix* accumulate) {
  LB_ASSERT_MSG(input.rows() == input.cols(), "tridiagonalize requires a square matrix");
  LB_ASSERT_MSG(input.is_symmetric(1e-9), "tridiagonalize requires a symmetric matrix");
  const std::size_t n = input.rows();
  DenseMatrix a = input;
  diag.assign(n, 0.0);
  off.assign(n, 0.0);

  // Classic Householder reduction (Numerical-Recipes-style tred2), working
  // on the lower triangle, row i eliminating elements a(i, 0..i-2).
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        off[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        off[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          if (accumulate) a(j, i) = a(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          off[j] = g / h;
          f += off[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          off[j] = g = off[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) {
            a(j, k) -= f * off[k] + g * a(i, k);
          }
        }
      }
    } else {
      off[i] = a(i, l);
    }
    diag[i] = h;
  }

  if (accumulate) diag[0] = 0.0;
  off[0] = 0.0;

  if (accumulate) {
    // Accumulate the transformation in-place (tred2's second phase), then
    // copy out.
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && diag[i] != 0.0) {
        const std::size_t l = i;  // columns 0..i-1
        for (std::size_t j = 0; j < l; ++j) {
          double g = 0.0;
          for (std::size_t k = 0; k < l; ++k) g += a(i, k) * a(k, j);
          for (std::size_t k = 0; k < l; ++k) a(k, j) -= g * a(k, i);
        }
      }
      diag[i] = a(i, i);
      a(i, i) = 1.0;
      for (std::size_t j = 0; j < i; ++j) {
        a(j, i) = 0.0;
        a(i, j) = 0.0;
      }
    }
    *accumulate = a;
  } else {
    for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  }
}

bool tridiagonal_ql(Vector& diag, Vector& off, DenseMatrix* z, std::size_t max_iter) {
  const std::size_t n = diag.size();
  LB_ASSERT_MSG(off.size() == n, "tridiagonal_ql size mismatch");
  if (n == 0) return true;
  if (z) {
    LB_ASSERT_MSG(z->rows() == n && z->cols() == n, "accumulator shape mismatch");
  }
  // Shift the sub-diagonal so off[i] couples diag[i] and diag[i+1].
  for (std::size_t i = 1; i < n; ++i) off[i - 1] = off[i];
  off[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iter = 0;
    std::size_t m;
    do {
      // Find a negligible sub-diagonal element to split the matrix.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(diag[m]) + std::fabs(diag[m + 1]);
        if (std::fabs(off[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (iter++ == max_iter) return false;
        // Implicit QL step with Wilkinson shift.
        double g = (diag[l + 1] - diag[l]) / (2.0 * off[l]);
        double r = pythag(g, 1.0);
        g = diag[m] - diag[l] + off[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * off[i];
          const double b = c * off[i];
          r = pythag(f, g);
          off[i + 1] = r;
          if (r == 0.0) {
            diag[i + 1] -= p;
            off[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = diag[i + 1] - p;
          r = (diag[i] - g) * s + 2.0 * c * b;
          p = s * r;
          diag[i + 1] = g + p;
          g = c * r - b;
          if (z) {
            for (std::size_t k = 0; k < n; ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && m > l + 1) continue;
        diag[l] -= p;
        off[l] = g;
        off[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

EigenDecomposition symmetric_eigen(const DenseMatrix& a, const TridiagOptions& opts) {
  const std::size_t n = a.rows();
  EigenDecomposition out;
  Vector diag, off;
  DenseMatrix q;
  DenseMatrix* qp = nullptr;
  if (opts.compute_vectors) {
    qp = &q;
  }
  householder_tridiagonalize(a, diag, off, qp);
  out.converged = tridiagonal_ql(diag, off, qp, opts.max_iterations_per_eigenvalue);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] < diag[y]; });
  out.values.resize(n);
  for (std::size_t k = 0; k < n; ++k) out.values[k] = diag[order[k]];
  if (opts.compute_vectors) {
    out.vectors = DenseMatrix(n, n);
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = q(r, order[k]);
  }
  out.sweeps = 0;
  return out;
}

}  // namespace lb::linalg
