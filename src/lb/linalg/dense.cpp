#include "lb/linalg/dense.hpp"

#include <cmath>

#include "lb/util/assert.hpp"

namespace lb::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& DenseMatrix::operator()(std::size_t r, std::size_t c) {
  LB_DEBUG_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double DenseMatrix::operator()(std::size_t r, std::size_t c) const {
  LB_DEBUG_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Vector DenseMatrix::multiply(const Vector& x) const {
  LB_ASSERT_MSG(x.size() == cols_, "matrix-vector shape mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  LB_ASSERT_MSG(cols_ == other.rows_, "matrix-matrix shape mismatch");
  DenseMatrix out(rows_, other.cols_, 0.0);
  // i-k-j order for cache-friendly access to both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  LB_ASSERT_MSG(rows_ == other.rows_ && cols_ == other.cols_,
                "max_abs_diff shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

double DenseMatrix::off_diagonal_norm() const {
  LB_ASSERT_MSG(rows_ == cols_, "off_diagonal_norm requires a square matrix");
  double acc = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (r != c) acc += (*this)(r, c) * (*this)(r, c);
  return std::sqrt(acc);
}

double dot(const Vector& a, const Vector& b) {
  LB_ASSERT_MSG(a.size() == b.size(), "dot length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const Vector& x, Vector& y) {
  LB_ASSERT_MSG(x.size() == y.size(), "axpy length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vector& x, double alpha) {
  for (double& v : x) v *= alpha;
}

void remove_component(Vector& x, const Vector& d) {
  const double dd = dot(d, d);
  if (dd == 0.0) return;
  const double coef = dot(x, d) / dd;
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= coef * d[i];
}

double normalize(Vector& x) {
  const double n = norm2(x);
  if (n > 0.0) scale(x, 1.0 / n);
  return n;
}

}  // namespace lb::linalg
