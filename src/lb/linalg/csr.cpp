#include "lb/linalg/csr.hpp"

#include <algorithm>
#include <numeric>

#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::linalg {

CsrMatrix CsrMatrix::from_triplets(std::size_t n, std::vector<std::size_t> rows,
                                   std::vector<std::size_t> cols,
                                   std::vector<double> values) {
  LB_ASSERT_MSG(rows.size() == cols.size() && cols.size() == values.size(),
                "triplet arrays must have equal length");
  for (std::size_t k = 0; k < rows.size(); ++k) {
    LB_ASSERT_MSG(rows[k] < n && cols[k] < n, "triplet index out of range");
  }
  // Sort triplets by (row, col) so duplicates become adjacent.
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rows[a] != rows[b] ? rows[a] < rows[b] : cols[a] < cols[b];
  });

  CsrMatrix m;
  m.n_ = n;
  std::vector<std::size_t> col_of_entry;
  col_of_entry.reserve(rows.size());
  m.values_.reserve(rows.size());
  std::vector<std::size_t> row_of_entry;
  row_of_entry.reserve(rows.size());

  bool have_prev = false;
  std::size_t prev_r = 0, prev_c = 0;
  for (std::size_t idx : order) {
    const std::size_t r = rows[idx];
    const std::size_t c = cols[idx];
    if (have_prev && r == prev_r && c == prev_c) {
      m.values_.back() += values[idx];
    } else {
      col_of_entry.push_back(c);
      m.values_.push_back(values[idx]);
      row_of_entry.push_back(r);
      prev_r = r;
      prev_c = c;
      have_prev = true;
    }
  }

  // Index storage narrows to uint32 when the ranges allow (column ids are
  // < n, row offsets are <= nnz).
  m.col_idx_.assign_copy(col_of_entry, n == 0 ? 0 : n - 1);
  std::vector<std::size_t> row_ptr(n + 1, 0);
  for (std::size_t r : row_of_entry) ++row_ptr[r + 1];
  for (std::size_t r = 1; r <= n; ++r) row_ptr[r] += row_ptr[r - 1];
  m.row_ptr_.assign_copy(row_ptr, m.values_.size());
  return m;
}

void CsrMatrix::multiply(const Vector& x, Vector& y) const {
  LB_ASSERT_MSG(x.size() == n_, "spmv shape mismatch");
  y.assign(n_, 0.0);
  // Typed-pointer dispatch: one width branch per multiply, none per
  // element, so the narrow path streams uint32 indices at full rate.
  row_ptr_.visit([&](const auto* rp) {
    col_idx_.visit([&](const auto* ci) {
      for (std::size_t r = 0; r < n_; ++r) {
        double acc = 0.0;
        const auto row_end = static_cast<std::size_t>(rp[r + 1]);
        for (std::size_t k = static_cast<std::size_t>(rp[r]); k < row_end; ++k) {
          acc += values_[k] * x[ci[k]];
        }
        y[r] = acc;
      }
    });
  });
}

Vector CsrMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply(x, y);
  return y;
}

void CsrMatrix::multiply_parallel(const Vector& x, Vector& y) const {
  LB_ASSERT_MSG(x.size() == n_, "spmv shape mismatch");
  y.assign(n_, 0.0);
  row_ptr_.visit([&](const auto* rp) {
    col_idx_.visit([&](const auto* ci) {
      util::ThreadPool::global().parallel_for(
          0, n_, 4096, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t r = lo; r < hi; ++r) {
              double acc = 0.0;
              const auto row_end = static_cast<std::size_t>(rp[r + 1]);
              for (std::size_t k = static_cast<std::size_t>(rp[r]); k < row_end;
                   ++k) {
                acc += values_[k] * x[ci[k]];
              }
              y[r] = acc;
            }
          });
    });
  });
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(n_, n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_begin(r); k < row_end(r); ++k) {
      d(r, col_index(k)) += values_[k];
    }
  }
  return d;
}

}  // namespace lb::linalg
