// Spectral graph quantities driving every bound in the paper:
//   λ2  — second-smallest eigenvalue of the Laplacian L = D − A
//         (Theorems 4, 6, 7, 8 are stated in terms of λ2 and δ);
//   γ   — second-largest |eigenvalue| of the diffusion matrix M
//         (the classic Cybenko/Subramanian-Scherson convergence rate,
//         needed for the FOS/SOS baselines and their optimal β);
//   closed-form spectra for the standard topologies, used to validate
//   the numerical solvers in the tests.
#pragma once

#include <optional>

#include "lb/graph/edge_mask.hpp"
#include "lb/graph/graph.hpp"
#include "lb/linalg/csr.hpp"
#include "lb/linalg/dense.hpp"

namespace lb::linalg {

// --- Scale guard -----------------------------------------------------------
//
// Spectral work is gated on node-count ceilings so profiling a 2^20+
// substrate cannot silently dominate the balancing run it is attached
// to.  Guarded quantities *degrade deterministically* — λ2/λmax/γ
// return 0.0 (γ = 0 keeps SOS's auto-β finite: optimal_beta(0) = 1, an
// FOS step) — and the callers that profile (dynamic runner, campaign)
// record the skip in RunResult::spectral_skipped instead of silently
// stalling.  The guard lives here, at the linalg entry points, so every
// caller (cold or cached) sees the same values and bit-identity across
// call paths is preserved.
//
// There are TWO ceilings because the two solver paths have different
// cost models: the dense QL path is O(n²) memory and O(n³) time, while
// Lanczos is O(n·iters) with a handful of n-length work vectors — the
// historical single 131072 ceiling was sized for the dense path and
// over-blocked the Lanczos one.  Which ceiling applies to a query is
// decided by the same n <= dense_cutoff dispatch the solvers use, so a
// guard verdict always matches the path that would have run.

/// Dense-eigensolve ceiling: queries that would take the dense QL path
/// (n <= dense_cutoff) are skipped when n exceeds this.  Resolution:
/// set_max_spectral_n() override ▸ the LB_MAX_SPECTRAL_N environment
/// variable ▸ 131072 (2^17).  0 means unlimited.
std::size_t max_spectral_n();

/// Lanczos ceiling: queries that would take the sparse Lanczos path
/// (n > dense_cutoff) are skipped when n exceeds this.  Resolution:
/// set_max_lanczos_spectral_n()/set_max_spectral_n() override ▸ the
/// LB_MAX_LANCZOS_SPECTRAL_N environment variable ▸ 2097152 (2^21, the
/// bench_scale substrate top — warm-started Lanczos keeps per-frame cost
/// affordable well past the old dense-sized 2^17 guard).  0 = unlimited.
std::size_t max_lanczos_spectral_n();

/// Test/bench hook: ceiling < 0 clears the overrides (env/default applies
/// again), otherwise sets BOTH ceilings (0 = unlimited) — the historical
/// "hard ceiling for every spectral path" semantics the scale tests pin.
/// Use set_max_lanczos_spectral_n() afterwards to split them.
void set_max_spectral_n(long long ceiling);

/// Test/bench hook for the Lanczos ceiling alone; < 0 clears the override.
void set_max_lanczos_spectral_n(long long ceiling);

/// Which guard suppressed (or would suppress) a spectral query.
enum class SpectralGuard : std::uint8_t {
  kNone = 0,  ///< no guard fired; the query computes
  kDense,     ///< dense-path query over max_spectral_n()
  kLanczos,   ///< Lanczos-path query over max_lanczos_spectral_n()
};

/// Guard verdict for an n-node query that would dispatch on dense_cutoff.
SpectralGuard spectral_guard(std::size_t num_nodes, std::size_t dense_cutoff = 512);

/// True when the guard suppresses spectral computation for an n-node graph
/// (at the default dense_cutoff dispatch).
bool spectral_guard_active(std::size_t num_nodes);

/// Laplacian L = D − A as a sparse matrix.
CsrMatrix laplacian_csr(const graph::Graph& g);

/// Laplacian as a dense matrix (small n).
DenseMatrix laplacian_dense(const graph::Graph& g);

/// Frame-aware Laplacian builders: assemble L directly from the base
/// edge list with dead edges skipped and alive-degrees on the diagonal,
/// so masked rounds are profiled without materializing a subgraph.
/// Identical matrices to laplacian_*(frame.view()).
CsrMatrix laplacian_csr(const graph::TopologyFrame& frame);
DenseMatrix laplacian_dense(const graph::TopologyFrame& frame);

/// Cybenko diffusion matrix M with uniform α = 1/(δ+1):
/// m_ij = α for (i,j) ∈ E, m_ii = 1 − d_i·α.  Doubly stochastic and
/// symmetric; for δ-regular graphs M = I − L/(δ+1).
CsrMatrix diffusion_matrix_csr(const graph::Graph& g);
DenseMatrix diffusion_matrix_dense(const graph::Graph& g);

struct SpectralSummary {
  double lambda2 = 0.0;      ///< second-smallest Laplacian eigenvalue
  double lambda_max = 0.0;   ///< largest Laplacian eigenvalue
  double gamma = 0.0;        ///< second-largest |eigenvalue| of M
  double eigen_gap = 0.0;    ///< 1 − γ
  std::size_t max_degree = 0;
  std::size_t n = 0;
};

/// λ2 of the Laplacian.  Dense QL for n <= dense_cutoff, Lanczos with the
/// all-ones kernel deflated above it.  Asserts the graph is connected
/// conceptually; for disconnected graphs λ2 = 0 is returned (multiplicity
/// of eigenvalue 0 exceeds 1).
double lambda2(const graph::Graph& g, std::size_t dense_cutoff = 512);

/// λ2 of a topology frame (masked rounds profiled with no Graph build).
double lambda2(const graph::TopologyFrame& frame, std::size_t dense_cutoff = 512);

/// Largest Laplacian eigenvalue.
double lambda_max(const graph::Graph& g, std::size_t dense_cutoff = 512);

/// γ = max_{μ_i ≠ 1} |μ_i| over eigenvalues of the diffusion matrix M.
/// Uses the exact relation μ = 1 − λ/(δ+1) for the uniform-α matrix, so it
/// reduces to the Laplacian's λ2 and λ_max.
double diffusion_gamma(const graph::Graph& g, std::size_t dense_cutoff = 512);

/// Everything at once (λ2, λmax, γ).
SpectralSummary spectral_summary(const graph::Graph& g, std::size_t dense_cutoff = 512);

/// Fiedler vector (unit eigenvector of λ2); dense path only (n <= cutoff).
Vector fiedler_vector(const graph::Graph& g, std::size_t dense_cutoff = 512);

/// Full Laplacian spectrum, ascending (dense path; n <= 2048 asserted).
Vector laplacian_spectrum(const graph::Graph& g);

/// Closed-form λ2 where one is known; nullopt otherwise.  Matches on the
/// generator name() prefix: path, cycle, complete, star, hypercube,
/// torus2d, grid2d.
std::optional<double> lambda2_closed_form(const graph::Graph& g);

/// Cheeger bounds: λ2/2 <= h(G) <= sqrt(2 δ λ2), where h is the
/// conductance-style expansion.  Returns {lower, upper} for cross-checking
/// exact small-graph expansion.
std::pair<double, double> cheeger_bounds(const graph::Graph& g,
                                         std::size_t dense_cutoff = 512);

}  // namespace lb::linalg
