// Three-tier incremental spectral maintenance (DESIGN.md §10).
//
// Dynamic scenarios revisit near-identical topologies round after round,
// so the per-frame cold λ2 solve that profile_sequence/campaigns used to
// pay is almost entirely redundant.  SpectralCache removes it in three
// tiers, strongest guarantee first:
//
//   Tier 1 — exact cache.  Entries are keyed on the structure hash
//     (TopologyFrame::fingerprint()) for per-round frames and on
//     Graph::revision() for full-graph summaries/spectra.  A repeated
//     frame returns the previously computed value bit-for-bit, so
//     periodic/partition scenarios pay for each distinct frame once per
//     cache lifetime, not once per round.
//
//   Tier 2 — delta bounds.  A miss whose frame shares the base edge list
//     with a cached anchor frame is bracketed in O(m) from the mask
//     delta: Weyl edge-deletion interlacing below (each edge Laplacian
//     term is PSD with norm 2, so λ2 moves down by at most 2·|removed|
//     and removals alone can never raise it), and the Rayleigh quotient
//     of the anchor's unit Fiedler vector f ⊥ 1 evaluated on the new
//     Laplacian above (λ2 = min over unit x ⊥ 1 of x'Lx ≤ f'L_new f,
//     updated from the anchor's f'Lf in O(|delta|) edge terms).  When
//     the bracket stays inside (1 ± tol)·cached λ2 the cached exact
//     value is reused and the solve is skipped entirely.
//
//   Tier 3 — warm-started Lanczos.  Irreducible misses on the sparse
//     path solve with LanczosOptions::initial seeded from the anchor's
//     Fiedler vector, converging in a fraction of the cold iteration
//     count when the topology moved by a few edges.
//
// Exactness contract: summary()/spectrum() (the schedule-feeding SOS
// auto-β and OPS paths) are Tier 1 ONLY — on a miss they call the exact
// cold linalg functions, so every value they ever return is bit-identical
// to a cold computation and engine trajectories cannot move.  lambda2()
// is the profile-grade query: Tier 1 hits are bit-identical, Tier 2/3
// answers are within the caller's documented tolerance of cold.
//
// Threading: a cache is single-owner (no internal locks).  The campaign
// runner keeps one per graph index — cells are sharded by graph index,
// so each cache is only ever touched by the shard owning its base.
// Containers are ordered (std::map) per the determinism lint rules.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "lb/graph/edge_mask.hpp"
#include "lb/graph/graph.hpp"
#include "lb/linalg/dense.hpp"
#include "lb/linalg/spectral.hpp"

namespace lb::linalg {

/// Which tier served a SpectralCache::lambda2 query.
enum class SpectralTier : std::uint8_t {
  kSolvedDense,  ///< fresh dense QL solve (n <= dense_cutoff)
  kSolvedCold,   ///< fresh Lanczos solve from the seeded random start
  kSolvedWarm,   ///< fresh Lanczos solve warm-started from the cached anchor
  kExactHit,     ///< Tier 1: fingerprint hit — cached bits returned
  kBoundSkip,    ///< Tier 2: delta bracket pinned λ2; cached value reused
  kGuardSkip,    ///< scale guard suppressed the solve; value is 0.0
};

struct SpectralCacheStats {
  std::size_t exact_hits = 0;      ///< Tier-1 hits (lambda2 + summary + spectrum)
  std::size_t bound_skips = 0;     ///< Tier-2 skips
  std::size_t dense_solves = 0;    ///< fresh dense λ2 solves
  std::size_t cold_solves = 0;     ///< fresh cold-start Lanczos λ2 solves
  std::size_t warm_solves = 0;     ///< fresh warm-started Lanczos λ2 solves
  std::size_t guard_skips = 0;     ///< scale-guard suppressions
  std::size_t summary_solves = 0;  ///< summary() misses (exact cold computes)
  std::size_t spectrum_solves = 0; ///< spectrum() misses (exact cold computes)
  std::size_t cold_iterations = 0; ///< Σ Lanczos iterations over cold solves
  std::size_t warm_iterations = 0; ///< Σ Lanczos iterations over warm solves

  std::size_t lambda2_solves() const {
    return dense_solves + cold_solves + warm_solves;
  }
};

/// Tier 2/3 policy for one lambda2() query.
struct SpectralQuery {
  std::size_t dense_cutoff = 512;  ///< dense/Lanczos dispatch, as linalg::lambda2
  /// Tier 3: warm-start Lanczos misses from the cached anchor vector.
  bool warm_start = true;
  /// Tier 2: a miss whose delta bracket stays within (1 ± tol)·cached λ2
  /// reuses the cached value.  0 disables bound skips (exact tiers only);
  /// must be < 1 (the soundness argument in DESIGN.md §10 needs it).
  double bound_skip_tol = 0.0;
};

struct Lambda2Answer {
  double value = 0.0;
  SpectralTier tier = SpectralTier::kSolvedCold;
  SpectralGuard guard = SpectralGuard::kNone;  ///< which guard fired on kGuardSkip
};

/// Two-sided λ2 bracket against the cached anchor (exposed for the
/// property tests; lambda2() applies it internally).
struct Lambda2Bounds {
  double lower = 0.0;
  double upper = 0.0;
  std::size_t added = 0;    ///< edges alive now but dead in the anchor
  std::size_t removed = 0;  ///< edges dead now but alive in the anchor
};

class SpectralCache {
 public:
  /// Profile-grade λ2 of a frame.  `fingerprint` must equal
  /// frame.fingerprint() — callers that already computed it (the dynamic
  /// profiler hashes every frame anyway) pass it to avoid a second O(m)
  /// hash.  Callers are expected to handle disconnected frames first
  /// (λ2 = 0 by definition); the Tier-2 bracket remains sound either way.
  Lambda2Answer lambda2(const graph::TopologyFrame& frame, std::uint64_t fingerprint,
                        const SpectralQuery& query = {});

  /// Convenience overload: hashes the frame itself.
  Lambda2Answer lambda2(const graph::TopologyFrame& frame,
                        const SpectralQuery& query = {});

  /// Exact full summary, keyed on Graph::revision().  Misses call the
  /// cold linalg::spectral_summary — bit-identical to a fresh compute,
  /// always, so schedule-feeding consumers (SOS auto-β) can use it.
  /// Guarded queries return the degraded summary WITHOUT caching it, so
  /// lifting the guard later cannot serve a stale degraded entry.
  SpectralSummary summary(const graph::Graph& g, std::size_t dense_cutoff = 512);

  /// Exact full Laplacian spectrum (ascending), keyed on
  /// Graph::revision().  Misses call the cold linalg::laplacian_spectrum
  /// (n <= 2048 asserted there) — the OPS schedule-binding path.
  const Vector& spectrum(const graph::Graph& g);

  /// Cached λ2 for a fingerprint, if present (diagnostics/tests).
  std::optional<double> cached_lambda2(std::uint64_t fingerprint) const;

  /// Cached summary for a graph revision, if present (campaign report).
  std::optional<SpectralSummary> cached_summary(std::uint64_t revision) const;

  /// The Tier-2 bracket the cache would use for this frame, or nullopt
  /// when no usable anchor exists (different/unknown base).  Exposed so
  /// the property tests can check lower <= λ2(frame) <= upper directly.
  std::optional<Lambda2Bounds> probe_bounds(const graph::TopologyFrame& frame) const;

  void clear();
  const SpectralCacheStats& stats() const { return stats_; }
  std::size_t lambda2_entries() const { return lambda2_by_fingerprint_.size(); }

 private:
  /// Per-base anchor for Tiers 2/3: the most recently solved frame of a
  /// base edge list, with the pieces the delta bracket and the warm
  /// start need.  One per base revision bounds the memory at
  /// O(n + m) per base instead of per distinct frame.
  struct Anchor {
    std::uint64_t fingerprint = 0;
    double lambda2 = 0.0;   ///< exact cached λ2 of the anchor frame
    double rayleigh = 0.0;  ///< f' L_anchor f for the stored unit f ⊥ 1
    Vector fiedler;
    std::vector<std::uint8_t> alive;  ///< anchor's alive bitmap over base edges
  };

  const Anchor* find_anchor(const graph::TopologyFrame& frame) const;
  static Lambda2Bounds bounds_against(const Anchor& anchor,
                                      const graph::TopologyFrame& frame);
  void refresh_anchor(const graph::TopologyFrame& frame, std::uint64_t fingerprint,
                      double lambda2_value, Vector fiedler);

  std::map<std::uint64_t, double> lambda2_by_fingerprint_;
  std::map<std::uint64_t, SpectralSummary> summary_by_revision_;
  std::map<std::uint64_t, Vector> spectrum_by_revision_;
  std::map<std::uint64_t, Anchor> anchor_by_base_;
  SpectralCacheStats stats_;
};

}  // namespace lb::linalg
