// Compressed-sparse-row matrix with a parallel matrix-vector product.
//
// Used for the matrix-free first/second-order diffusion schemes and for
// Lanczos on large graph Laplacians, where a dense n x n matrix would be
// wasteful (the graphs in the scaling benches reach n = 2^21).  Indices
// live in width-adaptive util::IndexArray storage (DESIGN.md §9): uint32
// whenever nnz and n fit, so the spmv streams half the index bytes.
#pragma once

#include <cstddef>
#include <vector>

#include "lb/linalg/dense.hpp"
#include "lb/util/index_array.hpp"

namespace lb::linalg {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from coordinate triplets (duplicates are summed).  All indices
  /// must be < n (square matrices only — that is all the library needs).
  static CsrMatrix from_triplets(std::size_t n,
                                 std::vector<std::size_t> rows,
                                 std::vector<std::size_t> cols,
                                 std::vector<double> values);

  std::size_t size() const { return n_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A * x (sequential).
  void multiply(const Vector& x, Vector& y) const;
  Vector multiply(const Vector& x) const;

  /// y = A * x using the global thread pool; rows are split into chunks.
  void multiply_parallel(const Vector& x, Vector& y) const;

  /// Dense copy (for small-n validation in tests).
  DenseMatrix to_dense() const;

  /// Row access for inspection.
  std::size_t row_begin(std::size_t r) const {
    return static_cast<std::size_t>(row_ptr_[r]);
  }
  std::size_t row_end(std::size_t r) const {
    return static_cast<std::size_t>(row_ptr_[r + 1]);
  }
  std::size_t col_index(std::size_t k) const {
    return static_cast<std::size_t>(col_idx_[k]);
  }
  double value(std::size_t k) const { return values_[k]; }

  /// Resident bytes of the index + value arrays (the bytes/node metric's
  /// linalg contribution).
  std::size_t memory_bytes() const {
    return row_ptr_.size_bytes() + col_idx_.size_bytes() +
           values_.size() * sizeof(double);
  }

 private:
  std::size_t n_ = 0;
  util::IndexArray row_ptr_;  // n_ + 1 entries (narrow when nnz < 2^32)
  util::IndexArray col_idx_;  // column ids (narrow when n <= 2^32)
  std::vector<double> values_;
};

}  // namespace lb::linalg
