#include "lb/linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "lb/linalg/tridiag.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/rng.hpp"

namespace lb::linalg {

namespace {

// Shared driver: returns the extreme (smallest or largest) Ritz pair.
LanczosResult lanczos_extreme(const std::function<void(const Vector&, Vector&)>& apply,
                              std::size_t n, const LanczosOptions& opts, bool want_smallest) {
  LB_ASSERT_MSG(n > 0, "lanczos on empty operator");
  LanczosResult out;

  // Orthonormalize the deflation directions once (modified Gram-Schmidt).
  std::vector<Vector> deflate;
  deflate.reserve(opts.deflate.size());
  for (Vector d : opts.deflate) {
    for (const Vector& e : deflate) remove_component(d, e);
    if (normalize(d) > 1e-14) deflate.push_back(std::move(d));
  }
  const std::size_t usable = n - std::min(n, deflate.size());
  if (usable == 0) {
    out.converged = true;  // operator restricted to {0}
    return out;
  }
  const std::size_t max_dim = std::min(opts.max_dim, usable);

  auto project = [&deflate](Vector& x) {
    for (const Vector& d : deflate) remove_component(x, d);
  };

  Vector q(n);
  bool seeded = false;
  if (opts.initial.size() == n) {
    // Warm start: caller-supplied direction (typically the previous
    // topology's Ritz vector).  Falls through to the cold start if the
    // projection leaves nothing usable.
    q = opts.initial;
    project(q);
    seeded = normalize(q) > 1e-10;
  }
  if (!seeded) {
    util::Rng rng(opts.seed);
    for (double& v : q) v = rng.next_double() - 0.5;
    project(q);
    if (normalize(q) <= 1e-14) {
      // Random start collided with the deflated space; use a basis sweep.
      for (std::size_t i = 0; i < n; ++i) {
        q.assign(n, 0.0);
        q[i] = 1.0;
        project(q);
        if (normalize(q) > 1e-14) break;
      }
    }
  }

  std::vector<Vector> basis;  // kept for full reorthogonalization
  basis.reserve(max_dim);
  Vector alpha, beta;  // tridiagonal entries; beta[j] couples q_j and q_{j+1}
  Vector w(n), prev(n, 0.0);
  double beta_prev = 0.0;

  for (std::size_t j = 0; j < max_dim; ++j) {
    basis.push_back(q);
    apply(q, w);
    project(w);
    const double a = dot(q, w);
    alpha.push_back(a);
    // w -= a*q + beta_prev*prev
    for (std::size_t i = 0; i < n; ++i) w[i] -= a * q[i] + beta_prev * prev[i];
    // Full reorthogonalization against the whole basis.
    for (const Vector& b : basis) remove_component(w, b);
    project(w);
    const double b = norm2(w);

    // Convergence check on the current Ritz extreme every few steps (and
    // always near the end): residual of the Ritz pair is |beta_j * s_last|.
    const std::size_t m = alpha.size();
    const bool check = (m >= 2 && (m % 5 == 0 || b <= 1e-14 || j + 1 == max_dim));
    if (check) {
      Vector d = alpha;
      Vector e(m, 0.0);
      for (std::size_t i = 1; i < m; ++i) e[i] = beta[i - 1];
      DenseMatrix z = DenseMatrix::identity(m);
      if (tridiagonal_ql(d, e, &z)) {
        // Locate the extreme Ritz value (d is sorted? no — QL leaves order
        // unspecified; scan).
        std::size_t best = 0;
        for (std::size_t i = 1; i < m; ++i) {
          if (want_smallest ? d[i] < d[best] : d[i] > d[best]) best = i;
        }
        const double resid = std::fabs(b * z(m - 1, best));
        const double scale = std::max(1.0, std::fabs(d[best]));
        if (resid <= opts.tolerance * scale || b <= 1e-14 || j + 1 == max_dim) {
          out.eigenvalue = d[best];
          out.iterations = m;
          out.converged = resid <= opts.tolerance * scale * 10.0 || b <= 1e-14;
          // Assemble the Ritz vector.
          out.eigenvector.assign(n, 0.0);
          for (std::size_t i = 0; i < m; ++i) {
            axpy(z(i, best), basis[i], out.eigenvector);
          }
          normalize(out.eigenvector);
          return out;
        }
      }
    }

    if (b <= 1e-14) break;  // invariant subspace found; handled above on check
    beta.push_back(b);
    prev = q;
    q = w;
    scale(q, 1.0 / b);
    beta_prev = b;
  }

  // Fall-through (tiny spaces): diagonalize what we have.
  const std::size_t m = alpha.size();
  if (m == 0) return out;
  Vector d = alpha;
  Vector e(m, 0.0);
  for (std::size_t i = 1; i < m; ++i) e[i] = beta[i - 1];
  DenseMatrix z = DenseMatrix::identity(m);
  if (tridiagonal_ql(d, e, &z)) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < m; ++i) {
      if (want_smallest ? d[i] < d[best] : d[i] > d[best]) best = i;
    }
    out.eigenvalue = d[best];
    out.iterations = m;
    out.converged = true;
    out.eigenvector.assign(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) axpy(z(i, best), basis[i], out.eigenvector);
    normalize(out.eigenvector);
  }
  return out;
}

}  // namespace

LanczosResult lanczos_smallest(const std::function<void(const Vector&, Vector&)>& apply,
                               std::size_t n, const LanczosOptions& opts) {
  return lanczos_extreme(apply, n, opts, /*want_smallest=*/true);
}

LanczosResult lanczos_largest(const std::function<void(const Vector&, Vector&)>& apply,
                              std::size_t n, const LanczosOptions& opts) {
  return lanczos_extreme(apply, n, opts, /*want_smallest=*/false);
}

LanczosResult lanczos_smallest(const CsrMatrix& a, const LanczosOptions& opts) {
  return lanczos_smallest(
      [&a](const Vector& x, Vector& y) { a.multiply_parallel(x, y); }, a.size(), opts);
}

LanczosResult lanczos_largest(const CsrMatrix& a, const LanczosOptions& opts) {
  return lanczos_largest(
      [&a](const Vector& x, Vector& y) { a.multiply_parallel(x, y); }, a.size(), opts);
}

}  // namespace lb::linalg
