#include "lb/linalg/spectral_cache.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "lb/linalg/lanczos.hpp"
#include "lb/linalg/tridiag.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/rng.hpp"

namespace lb::linalg {

namespace {

/// Fraction of the cold random start blended into a warm-start vector.
/// The anchor's Fiedler direction dominates (so convergence keeps the
/// warm speedup), but the dash of full-spectrum noise guarantees the
/// Krylov space overlaps every eigendirection of the *new* operator —
/// without it, a start vector numerically orthogonal to the new Fiedler
/// direction could let Lanczos converge to a higher eigenpair with a
/// small residual.  Deterministic: seeded from the same LanczosOptions
/// seed the cold start uses.
constexpr double kWarmStartNoise = 1e-3;

}  // namespace

Lambda2Answer SpectralCache::lambda2(const graph::TopologyFrame& frame,
                                     const SpectralQuery& query) {
  return lambda2(frame, frame.fingerprint(), query);
}

Lambda2Answer SpectralCache::lambda2(const graph::TopologyFrame& frame,
                                     std::uint64_t fingerprint,
                                     const SpectralQuery& query) {
  const std::size_t n = frame.num_nodes();
  LB_ASSERT_MSG(n >= 2, "lambda2 needs at least two nodes");
  LB_ASSERT_MSG(query.bound_skip_tol >= 0.0 && query.bound_skip_tol < 1.0,
                "bound_skip_tol must lie in [0, 1)");

  Lambda2Answer out;
  out.guard = spectral_guard(n, query.dense_cutoff);
  if (out.guard != SpectralGuard::kNone) {
    // Same deterministic degraded 0.0 the cold entry points return.
    // Not cached: lifting the guard must not serve a stale zero.
    ++stats_.guard_skips;
    out.tier = SpectralTier::kGuardSkip;
    return out;
  }

  // Tier 1: exact structure hit.
  if (const auto it = lambda2_by_fingerprint_.find(fingerprint);
      it != lambda2_by_fingerprint_.end()) {
    ++stats_.exact_hits;
    out.value = it->second;
    out.tier = SpectralTier::kExactHit;
    return out;
  }

  // Tier 2: delta bracket against the base's anchor frame.
  const Anchor* anchor = find_anchor(frame);
  if (anchor != nullptr && query.bound_skip_tol > 0.0 && anchor->lambda2 > 0.0) {
    const Lambda2Bounds b = bounds_against(*anchor, frame);
    const double lo_gate = anchor->lambda2 * (1.0 - query.bound_skip_tol);
    const double hi_gate = anchor->lambda2 * (1.0 + query.bound_skip_tol);
    if (b.lower >= lo_gate && b.upper <= hi_gate) {
      // The true λ2 lies in [lower, upper] ⊆ (1 ± tol)·cached, so the
      // cached exact value is within tol of truth.  The reused value is
      // deliberately NOT inserted under this fingerprint: only solved
      // values enter the exact map, so a later exact query cannot
      // mistake a tolerance-grade answer for Tier-1 bits.
      ++stats_.bound_skips;
      out.value = anchor->lambda2;
      out.tier = SpectralTier::kBoundSkip;
      return out;
    }
  }

  // Tier 3 / cold: solve, remember, refresh the anchor.
  //
  // The anchor is only worth maintaining when a later query can use it:
  // Tier-2 brackets (any path) or warm starts (sparse path only).
  const bool want_anchor =
      query.bound_skip_tol > 0.0 || (query.warm_start && n > query.dense_cutoff);
  Vector fiedler;
  if (n <= query.dense_cutoff) {
    const DenseMatrix l = laplacian_dense(frame);
    TridiagOptions topts;
    topts.compute_vectors = want_anchor;
    EigenDecomposition d = symmetric_eigen(l, topts);
    LB_ASSERT_MSG(d.converged, "tridiagonal QL failed to converge on a Laplacian");
    // The QL value recurrence never reads the accumulated vectors, so
    // d.values[1] is bit-identical with compute_vectors on or off — the
    // SpectralCacheTest.DenseValuesUnchangedByVectorAccumulation pin.
    out.value = d.values[1];
    if (want_anchor) {
      fiedler.resize(n);
      for (std::size_t i = 0; i < n; ++i) fiedler[i] = d.vectors(i, 1);
    }
    ++stats_.dense_solves;
    out.tier = SpectralTier::kSolvedDense;
  } else {
    const CsrMatrix l = laplacian_csr(frame);
    LanczosOptions opts;
    opts.deflate = {Vector(n, 1.0)};
    opts.max_dim = std::min<std::size_t>(n - 1, 600);
    bool warm = false;
    if (query.warm_start && anchor != nullptr && anchor->fiedler.size() == n) {
      opts.initial = anchor->fiedler;
      util::Rng rng(opts.seed);
      for (double& v : opts.initial) {
        v += kWarmStartNoise * (rng.next_double() - 0.5);
      }
      warm = true;
    }
    const LanczosResult r = lanczos_smallest(l, opts);
    LB_ASSERT_MSG(r.converged, "Lanczos failed to converge for lambda2");
    out.value = std::max(r.eigenvalue, 0.0);  // clamp rounding, as the cold path
    if (want_anchor) fiedler = r.eigenvector;
    if (warm) {
      ++stats_.warm_solves;
      stats_.warm_iterations += r.iterations;
      out.tier = SpectralTier::kSolvedWarm;
    } else {
      ++stats_.cold_solves;
      stats_.cold_iterations += r.iterations;
      out.tier = SpectralTier::kSolvedCold;
    }
  }

  lambda2_by_fingerprint_.emplace(fingerprint, out.value);
  if (want_anchor && !fiedler.empty()) {
    refresh_anchor(frame, fingerprint, out.value, std::move(fiedler));
  }
  return out;
}

SpectralSummary SpectralCache::summary(const graph::Graph& g,
                                       std::size_t dense_cutoff) {
  if (spectral_guard(g.num_nodes(), dense_cutoff) != SpectralGuard::kNone) {
    // Degraded, and NOT cached: the revision key would otherwise serve a
    // stale degraded summary after a test/bench lifts the guard.
    ++stats_.guard_skips;
    return spectral_summary(g, dense_cutoff);
  }
  if (const auto it = summary_by_revision_.find(g.revision());
      it != summary_by_revision_.end()) {
    ++stats_.exact_hits;
    return it->second;
  }
  ++stats_.summary_solves;
  return summary_by_revision_
      .emplace(g.revision(), spectral_summary(g, dense_cutoff))
      .first->second;
}

const Vector& SpectralCache::spectrum(const graph::Graph& g) {
  if (const auto it = spectrum_by_revision_.find(g.revision());
      it != spectrum_by_revision_.end()) {
    ++stats_.exact_hits;
    return it->second;
  }
  ++stats_.spectrum_solves;
  return spectrum_by_revision_.emplace(g.revision(), laplacian_spectrum(g))
      .first->second;
}

std::optional<double> SpectralCache::cached_lambda2(std::uint64_t fingerprint) const {
  const auto it = lambda2_by_fingerprint_.find(fingerprint);
  if (it == lambda2_by_fingerprint_.end()) return std::nullopt;
  return it->second;
}

std::optional<SpectralSummary> SpectralCache::cached_summary(
    std::uint64_t revision) const {
  const auto it = summary_by_revision_.find(revision);
  if (it == summary_by_revision_.end()) return std::nullopt;
  return it->second;
}

std::optional<Lambda2Bounds> SpectralCache::probe_bounds(
    const graph::TopologyFrame& frame) const {
  const Anchor* anchor = find_anchor(frame);
  if (anchor == nullptr) return std::nullopt;
  return bounds_against(*anchor, frame);
}

void SpectralCache::clear() {
  lambda2_by_fingerprint_.clear();
  summary_by_revision_.clear();
  spectrum_by_revision_.clear();
  anchor_by_base_.clear();
  stats_ = SpectralCacheStats{};
}

const SpectralCache::Anchor* SpectralCache::find_anchor(
    const graph::TopologyFrame& frame) const {
  const auto it = anchor_by_base_.find(frame.base_revision());
  if (it == anchor_by_base_.end()) return nullptr;
  // Same base revision implies the same edge list; the size check is a
  // cheap belt against a recycled revision counter.
  if (it->second.alive.size() != frame.num_base_edges()) return nullptr;
  return &it->second;
}

Lambda2Bounds SpectralCache::bounds_against(const Anchor& anchor,
                                            const graph::TopologyFrame& frame) {
  Lambda2Bounds b;
  // O(m) scan of the shared base edge list: count the mask delta and
  // accumulate the Rayleigh-quotient update Σ±(f_u − f_v)² in one pass.
  double delta_rq = 0.0;
  const auto& edges = frame.base().edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const bool now = frame.alive(k);
    const bool then = anchor.alive[k] != 0;
    if (now == then) continue;
    const double d = anchor.fiedler[edges[k].u] - anchor.fiedler[edges[k].v];
    if (now) {
      ++b.added;
      delta_rq += d * d;
    } else {
      ++b.removed;
      delta_rq -= d * d;
    }
  }
  // Upper: λ2(L_new) = min over unit x ⊥ 1 of x'L_new x ≤ f'L_new f,
  // where f is the anchor's stored unit vector ⊥ 1 and f'L_new f is its
  // anchor-frame Rayleigh quotient adjusted by the delta edge terms.
  b.upper = anchor.rayleigh + delta_rq;
  if (b.added == 0) {
    // Pure removals: dropping PSD edge terms cannot raise any eigenvalue.
    b.upper = std::min(b.upper, anchor.lambda2);
  }
  // Lower: each removed edge subtracts a PSD rank-1 term b_e b_e' with
  // λmax = 2, so by Weyl λ2 drops by at most 2 per removed edge; added
  // edges (PSD updates) can only raise λ2.
  b.lower = b.removed == 0
                ? anchor.lambda2
                : std::max(0.0, anchor.lambda2 -
                                    2.0 * static_cast<double>(b.removed));
  return b;
}

void SpectralCache::refresh_anchor(const graph::TopologyFrame& frame,
                                   std::uint64_t fingerprint, double lambda2_value,
                                   Vector fiedler) {
  // The Rayleigh upper bound is only rigorous for a unit vector exactly
  // orthogonal to the all-ones kernel, so re-project and re-normalize
  // whatever the solver produced (the dense Fiedler column and the
  // deflated Ritz vector are already ⊥ 1 up to rounding).
  const std::size_t n = fiedler.size();
  double mean = 0.0;
  for (const double v : fiedler) mean += v;
  mean /= static_cast<double>(n);
  for (double& v : fiedler) v -= mean;
  if (normalize(fiedler) <= 1e-12) return;  // degenerate; keep the old anchor

  // f' L f = Σ over alive edges of (f_u − f_v)² — exact for THIS frame,
  // the base every later delta update builds on.
  double rq = 0.0;
  const auto& edges = frame.base().edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (!frame.alive(k)) continue;
    const double d = fiedler[edges[k].u] - fiedler[edges[k].v];
    rq += d * d;
  }

  Anchor& a = anchor_by_base_[frame.base_revision()];
  a.fingerprint = fingerprint;
  a.lambda2 = lambda2_value;
  a.rayleigh = rq;
  a.fiedler = std::move(fiedler);
  a.alive.resize(edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) {
    a.alive[k] = frame.alive(k) ? 1 : 0;
  }
}

}  // namespace lb::linalg
