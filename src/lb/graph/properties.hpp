// Structural graph properties used for validation and reporting:
// connectivity (balancing requires it), diameter (lower-bounds balancing
// time), exact edge expansion for small graphs (the α in Theorem 4's
// lineage), and Cheeger-style spectral bounds used to cross-check the
// eigensolvers.
#pragma once

#include <cstdint>
#include <optional>

#include "lb/graph/edge_mask.hpp"
#include "lb/graph/graph.hpp"

namespace lb::graph {

bool is_connected(const Graph& g);

/// Number of connected components.
std::size_t component_count(const Graph& g);

/// Frame-aware connectivity over the alive edge set (union-find; no
/// subgraph materialization).  Matches is_connected/component_count of
/// the materialized view exactly.
bool is_connected(const TopologyFrame& frame);
std::size_t component_count(const TopologyFrame& frame);

/// BFS distances from `source` (SIZE_MAX for unreachable nodes).
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source);

/// Exact diameter via BFS from every node; O(n(n+m)) — intended for the
/// sizes the tests use.  Returns nullopt for disconnected graphs.
std::optional<std::size_t> diameter(const Graph& g);

/// Exact edge expansion  α = min_{S ⊂ V, S non-trivial} |E(S, S̄)| / min(|S|, |S̄|)
/// by exhaustive subset enumeration — exponential, so restricted to
/// n <= 20 (asserts otherwise).  Used to validate the spectral bounds.
double edge_expansion_exact(const Graph& g);

/// Histogram of degrees: result[d] = number of nodes of degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

}  // namespace lb::graph
