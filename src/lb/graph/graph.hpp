// Immutable undirected graph in CSR adjacency form.
//
// This is the "network" substrate of the paper: n identical nodes joined
// by edges along which tokens may move.  Graphs are built once (via
// GraphBuilder or the generators) and never mutated; dynamic networks are
// modelled as *sequences* of these immutable graphs (graph/dynamic.hpp),
// exactly as in the Elsässer et al. model the paper adopts in Section 5.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace lb::graph {

using NodeId = std::uint32_t;

/// An undirected edge; canonical form has u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;

  std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Neighbours of node u (sorted ascending).
  std::span<const NodeId> neighbors(NodeId u) const;

  std::size_t degree(NodeId u) const;
  /// Maximum degree δ of the graph (0 for edgeless graphs).
  std::size_t max_degree() const { return max_degree_; }
  std::size_t min_degree() const { return min_degree_; }
  double average_degree() const;

  /// All edges in canonical (u < v) order, sorted lexicographically.
  const std::vector<Edge>& edges() const { return edges_; }

  bool has_edge(NodeId u, NodeId v) const;

  /// True if every degree equals d.
  bool is_regular() const { return max_degree_ == min_degree_; }

  /// Human-readable label attached by the generator ("torus2d(16x16)" etc).
  const std::string& name() const { return name_; }

  /// Topology epoch: a process-unique nonzero id assigned at build time
  /// (0 only for default-constructed empty graphs).  Copies share the id —
  /// they are the same topology — while every GraphBuilder::build() mints
  /// a fresh one, so caches keyed on revision() (e.g. core::FlowLedger)
  /// stay correct even when a dynamic sequence rebuilds its current graph
  /// in place at the same address.
  std::uint64_t revision() const { return revision_; }

  /// Index of canonical edge (u,v) in edges(), or num_edges() if absent.
  std::size_t edge_index(NodeId u, NodeId v) const;

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_;  // CSR offsets, n+1 entries
  std::vector<NodeId> adjacency_;     // concatenated sorted neighbour lists
  std::vector<Edge> edges_;           // canonical edge list
  std::size_t max_degree_ = 0;
  std::size_t min_degree_ = 0;
  std::uint64_t revision_ = 0;
  std::string name_;
};

/// Accumulates edges, validates them, and produces an immutable Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes, std::string name = "graph");

  /// Add an undirected edge.  Self-loops are rejected; duplicate edges are
  /// coalesced at build time (the paper's model has simple graphs).
  GraphBuilder& add_edge(NodeId u, NodeId v);

  std::size_t num_nodes() const { return n_; }

  /// Build the immutable graph.  May be called once.
  Graph build();

 private:
  std::size_t n_;
  std::string name_;
  std::vector<Edge> edges_;
  bool built_ = false;
};

/// Restrict `g` to the given subset of its edges (same node set); used by
/// the dynamic-network sequences.  `name` labels the result.
Graph subgraph_with_edges(const Graph& g, const std::vector<Edge>& keep,
                          std::string name);

}  // namespace lb::graph
