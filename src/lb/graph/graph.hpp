// Immutable undirected graph in CSR adjacency form.
//
// This is the "network" substrate of the paper: n identical nodes joined
// by edges along which tokens may move.  Graphs are built once (via
// GraphBuilder or the generators) and never mutated; dynamic networks are
// modelled as *sequences* of these immutable graphs (graph/dynamic.hpp),
// exactly as in the Elsässer et al. model the paper adopts in Section 5.
//
// Memory layout (DESIGN.md §9): the CSR offsets live in a width-adaptive
// util::IndexArray — uint32 whenever the incident-slot count 2m fits,
// uint64 past the 2^32 boundary — and adjacency/edge storage is uint32
// NodeIds throughout, so a million-node torus costs ~28 bytes/node of
// topology instead of the seed's size_t-heavy layout.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "lb/util/assert.hpp"
#include "lb/util/index_array.hpp"

namespace lb::graph {

using NodeId = std::uint32_t;

/// An undirected edge; canonical form has u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

namespace detail {
/// Process-unique nonzero topology-epoch ids (see Graph::revision()).
std::uint64_t next_graph_revision();
}  // namespace detail

class Graph {
 public:
  Graph() = default;

  std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Neighbours of node u (sorted ascending).
  std::span<const NodeId> neighbors(NodeId u) const;

  std::size_t degree(NodeId u) const;
  /// Maximum degree δ of the graph (0 for edgeless graphs).
  std::size_t max_degree() const { return max_degree_; }
  std::size_t min_degree() const { return min_degree_; }
  double average_degree() const;

  /// All edges in canonical (u < v) order, sorted lexicographically.
  const std::vector<Edge>& edges() const { return edges_; }

  bool has_edge(NodeId u, NodeId v) const;

  /// True if every degree equals d.
  bool is_regular() const { return max_degree_ == min_degree_; }

  /// Human-readable label attached by the generator ("torus2d(16x16)" etc).
  const std::string& name() const { return name_; }

  /// Topology epoch: a process-unique nonzero id assigned at build time
  /// (0 only for default-constructed empty graphs).  Copies share the id —
  /// they are the same topology — while every GraphBuilder::build() mints
  /// a fresh one, so caches keyed on revision() (e.g. core::FlowLedger)
  /// stay correct even when a dynamic sequence rebuilds its current graph
  /// in place at the same address.
  std::uint64_t revision() const { return revision_; }

  /// Index of canonical edge (u,v) in edges(), or num_edges() if absent.
  std::size_t edge_index(NodeId u, NodeId v) const;

  /// Resident bytes of the topology arrays (offsets + adjacency + edge
  /// list) — the numerator of the bytes/node scale metric.
  std::size_t memory_bytes() const {
    return offsets_.size_bytes() + adjacency_.size() * sizeof(NodeId) +
           edges_.size() * sizeof(Edge);
  }

 private:
  friend class GraphBuilder;

  /// Degree extrema from the finished offsets array (shared build tail).
  void finalize_degree_stats();

  util::IndexArray offsets_;       // CSR offsets, n+1 entries (narrow when 2m < 2^32)
  std::vector<NodeId> adjacency_;  // concatenated sorted neighbour lists
  std::vector<Edge> edges_;        // canonical edge list
  std::size_t max_degree_ = 0;
  std::size_t min_degree_ = 0;
  std::uint64_t revision_ = 0;
  std::string name_;
};

/// Accumulates edges, validates them, and produces an immutable Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes, std::string name = "graph");

  /// Add an undirected edge.  Self-loops are rejected; duplicate edges are
  /// coalesced at build time (the paper's model has simple graphs).
  GraphBuilder& add_edge(NodeId u, NodeId v);

  /// Pre-size the edge accumulator; generators that know their edge count
  /// call this so add_edge never reallocates mid-build.
  GraphBuilder& reserve_edges(std::size_t edge_count) {
    edges_.reserve(edge_count);
    return *this;
  }

  std::size_t num_nodes() const { return n_; }

  /// Build the immutable graph.  May be called once.  Edges are put in
  /// canonical order by a two-pass counting sort (stable by v, then by u)
  /// — O(m + n) instead of the comparison sort — and the cursor placement
  /// of the sorted edge list emits each adjacency row already sorted, so
  /// no per-row sort runs at all.
  Graph build();

  /// Streaming build: construct a Graph directly from an edge *stream*
  /// without accumulating an intermediate edge vector.  `emit` is invoked
  /// exactly twice with a sink callable and must produce the identical
  /// stream both times (count pass, then place pass).  The stream
  /// contract: sink(u, v) with u < v < num_nodes, u non-decreasing across
  /// calls, v strictly ascending within each u group, no duplicates —
  /// i.e. the canonical lexicographic edge order, which the structured
  /// generators (torus2d/3d, hypercube) can emit closed-form.  Both the
  /// edge list and every adjacency row then land sorted with no sort and
  /// no temporary beyond two n+1 cursor arrays.
  template <class EmitFn>
  static Graph build_stream(std::size_t num_nodes, std::string name, EmitFn&& emit) {
    LB_ASSERT_MSG(num_nodes >= 1, "graph needs at least one node");
    Graph g;
    g.revision_ = detail::next_graph_revision();
    g.name_ = std::move(name);

    // Pass 1: count canonical edges per u and CSR degree per endpoint.
    std::vector<std::size_t> edge_cursor(num_nodes + 1, 0);
    std::vector<std::size_t> adj_cursor(num_nodes + 1, 0);
#ifndef NDEBUG
    NodeId prev_u = 0;
    NodeId prev_v = 0;
    bool first_emission = true;
#endif
    emit([&](NodeId u, NodeId v) {
      LB_DEBUG_ASSERT(u < v && v < num_nodes);
#ifndef NDEBUG
      LB_ASSERT_MSG(first_emission || u > prev_u || (u == prev_u && v > prev_v),
                    "build_stream emission must be lexicographic");
      first_emission = false;
      prev_u = u;
      prev_v = v;
#endif
      ++edge_cursor[u + 1];
      ++adj_cursor[u + 1];
      ++adj_cursor[v + 1];
    });
    for (std::size_t i = 1; i <= num_nodes; ++i) {
      edge_cursor[i] += edge_cursor[i - 1];
      adj_cursor[i] += adj_cursor[i - 1];
    }
    const std::size_t m = edge_cursor[num_nodes];
    g.offsets_.assign_copy(adj_cursor, 2 * m);
    g.edges_.resize(m);
    g.adjacency_.resize(2 * m);

    // Pass 2: place.  The sorted emission makes edges_ land in canonical
    // order directly, and each adjacency row receives its lower neighbours
    // (x, w) in ascending x before its upper neighbours (w, y) in
    // ascending y with every x < w < y — sorted rows, no sort.
    std::size_t placed = 0;
    emit([&](NodeId u, NodeId v) {
      g.edges_[edge_cursor[u]++] = Edge{u, v};
      g.adjacency_[adj_cursor[u]++] = v;
      g.adjacency_[adj_cursor[v]++] = u;
      ++placed;
    });
    LB_ASSERT_MSG(placed == m, "build_stream passes emitted different streams");
    g.finalize_degree_stats();
    return g;
  }

 private:
  std::size_t n_;
  std::string name_;
  std::vector<Edge> edges_;
  bool built_ = false;
};

/// Restrict `g` to the given subset of its edges (same node set); used by
/// the dynamic-network sequences.  `name` labels the result.
Graph subgraph_with_edges(const Graph& g, const std::vector<Edge>& keep,
                          std::string name);

}  // namespace lb::graph
