// Masked-subgraph substrate for dynamic topologies.
//
// Every stochastic dynamic-network model in this library (Bernoulli link
// failures, Markov failures, churn, partition/heal, failure waves) emits
// *subgraphs of a fixed base graph*: the node set never changes and every
// round's edge set is a subset of the base edge list.  Before this layer
// existed, each round materialized that subset as a brand-new Graph via
// GraphBuilder::build() — an O(m log m) sort, fresh allocations, a new
// topology revision, and therefore a full FlowLedger CSR rebuild, all
// before a single token moved.
//
// EdgeMask replaces the rebuild with an alive-bitmap over the base edge
// list plus incrementally-maintained per-node alive-degrees (and a degree
// histogram so max/min alive-degree stay O(1) amortized).  A
// TopologyFrame bundles {base graph, optional mask} and is what the
// engine, kernels and balancers consume: degrees and edge iteration come
// from the frame, so a masked round runs with *zero* graph construction.
//
// Cache keying is two-level: `base_revision` (Graph::revision of the
// base) keys structures that depend only on the base CSR (the flow
// ledger's incident-edge rows), `mask_revision` (bumped by commit())
// keys anything derived from the current alive set.  See DESIGN.md §5.
//
// The materializing shim: `materialize()` builds the masked subgraph as
// a real Graph (cached per mask revision).  It is the equivalence oracle
// — a masked run must be bit-identical to a run over the materialized
// graphs — and the escape hatch for consumers that genuinely need a
// Graph (spectral solvers, random matchings).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lb/graph/graph.hpp"

namespace lb::graph {

/// Alive-bitmap over a base graph's edge list with incrementally
/// maintained per-node alive-degrees.  Mutations go through set_alive()
/// (or fill()) and are sealed into a new topology epoch by commit().
class EdgeMask {
 public:
  /// All edges start alive.  The mask keeps a reference to `base`; the
  /// base graph must outlive the mask.
  explicit EdgeMask(const Graph& base);

  const Graph& base() const { return *base_; }
  std::uint64_t base_revision() const { return base_->revision(); }
  /// Mask epoch: bumped by every commit().  (base_revision, revision)
  /// uniquely identifies the current topology.
  std::uint64_t revision() const { return revision_; }

  std::size_t num_base_edges() const { return alive_.size(); }
  std::size_t alive_edges() const { return alive_edges_; }
  bool alive(std::size_t edge) const { return alive_[edge] != 0; }

  /// Degree of `u` counting alive edges only — equals the materialized
  /// subgraph's degree(u).
  std::size_t alive_degree(NodeId u) const { return alive_degree_[u]; }
  std::size_t max_alive_degree() const { return max_degree_; }
  std::size_t min_alive_degree() const { return min_degree_; }

  /// Set one edge's liveness; O(1) amortized (degree histogram update).
  /// No-op if the bit already has that value.
  void set_alive(std::size_t edge, bool alive);
  /// Set every edge's liveness at once; O(n + m).
  void fill(bool alive);
  /// Seal the mutations since the last commit as a new topology epoch.
  void commit() { ++revision_; }

  /// The masked subgraph as a real Graph (the rebuild path).  Cached per
  /// mask revision; `name` labels the graph when (re)built.  This is the
  /// equivalence oracle for every masked kernel, and the escape hatch
  /// for consumers that need full Graph structure (spectral solvers,
  /// matchings).
  const Graph& materialize(const std::string& name) const;

 private:
  void bump_degree(NodeId u, bool up);

  const Graph* base_;
  std::vector<std::uint8_t> alive_;        // 1 byte per base edge
  std::vector<std::uint32_t> alive_degree_;
  std::vector<std::uint32_t> degree_hist_;  // degree_hist_[d] = #nodes with alive-degree d
  std::size_t alive_edges_ = 0;
  std::size_t max_degree_ = 0;
  std::size_t min_degree_ = 0;
  std::uint64_t revision_ = 1;

  // materialize() cache (mutable: building the oracle view does not
  // change the masked topology).
  mutable Graph view_;
  mutable std::uint64_t view_revision_ = 0;
};

/// The per-round topology view every layer above the graph consumes:
/// a base graph plus an optional edge-alive mask.  Cheap to copy (two
/// pointers + a label pointer); the referenced base/mask/label must
/// outlive the frame (they live in the owning GraphSequence).
class TopologyFrame {
 public:
  TopologyFrame() = default;
  /// Full-graph frame (no mask): static/periodic rounds.
  explicit TopologyFrame(const Graph& g) : base_(&g) {}
  /// Masked frame; `label` (optional) names the materialized view.
  explicit TopologyFrame(const EdgeMask& mask, const std::string* label = nullptr)
      : base_(&mask.base()), mask_(&mask), label_(label) {}

  const Graph& base() const { return *base_; }
  bool masked() const { return mask_ != nullptr; }
  const EdgeMask* mask() const { return mask_; }

  std::size_t num_nodes() const { return base_->num_nodes(); }
  /// Edges alive this round (= materialized subgraph's num_edges()).
  std::size_t num_edges() const {
    return mask_ != nullptr ? mask_->alive_edges() : base_->num_edges();
  }
  /// The base edge-list length — the size masked flow vectors use.
  std::size_t num_base_edges() const { return base_->num_edges(); }

  /// Alive-degree of u (= materialized subgraph's degree(u)).
  std::size_t degree(NodeId u) const {
    return mask_ != nullptr ? mask_->alive_degree(u) : base_->degree(u);
  }
  std::size_t max_degree() const {
    return mask_ != nullptr ? mask_->max_alive_degree() : base_->max_degree();
  }
  std::size_t min_degree() const {
    return mask_ != nullptr ? mask_->min_alive_degree() : base_->min_degree();
  }
  bool alive(std::size_t edge) const {
    return mask_ == nullptr || mask_->alive(edge);
  }

  std::uint64_t base_revision() const { return base_->revision(); }
  std::uint64_t mask_revision() const {
    return mask_ != nullptr ? mask_->revision() : 0;
  }

  /// The round's topology as a real Graph: the base itself when
  /// unmasked, the materialized (cached) subgraph when masked.  Masked
  /// fast paths never call this; it exists for the oracle shim and for
  /// consumers that need full Graph structure.
  const Graph& view() const {
    if (mask_ == nullptr) return *base_;
    return mask_->materialize(label_ != nullptr ? *label_ : base_->name());
  }

  /// Structure hash of the round's topology: FNV-1a over the node count
  /// and the alive edge endpoints in canonical order.  A masked frame
  /// and its materialization hash identically, so profile and run
  /// passes can assert they saw the same sequence of topologies.
  std::uint64_t fingerprint() const;

 private:
  const Graph* base_ = nullptr;
  const EdgeMask* mask_ = nullptr;
  const std::string* label_ = nullptr;
};

}  // namespace lb::graph
