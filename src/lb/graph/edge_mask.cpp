#include "lb/graph/edge_mask.hpp"

#include "lb/util/assert.hpp"

namespace lb::graph {

EdgeMask::EdgeMask(const Graph& base) : base_(&base) {
  alive_degree_.resize(base.num_nodes());
  degree_hist_.resize(base.max_degree() + 1);
  alive_.resize(base.num_edges());
  fill(true);
}

void EdgeMask::fill(bool alive) {
  const std::size_t n = base_->num_nodes();
  const std::size_t m = base_->num_edges();
  std::fill(alive_.begin(), alive_.end(),
            static_cast<std::uint8_t>(alive ? 1 : 0));
  std::fill(degree_hist_.begin(), degree_hist_.end(), 0u);
  if (alive) {
    alive_edges_ = m;
    for (std::size_t u = 0; u < n; ++u) {
      const auto d = static_cast<std::uint32_t>(base_->degree(static_cast<NodeId>(u)));
      alive_degree_[u] = d;
      ++degree_hist_[d];
    }
    max_degree_ = base_->max_degree();
    min_degree_ = base_->min_degree();
  } else {
    alive_edges_ = 0;
    std::fill(alive_degree_.begin(), alive_degree_.end(), 0u);
    degree_hist_[0] = static_cast<std::uint32_t>(n);
    max_degree_ = 0;
    min_degree_ = 0;
  }
}

void EdgeMask::bump_degree(NodeId u, bool up) {
  std::uint32_t& d = alive_degree_[u];
  const std::size_t old = d;
  --degree_hist_[old];
  d = up ? d + 1 : d - 1;
  ++degree_hist_[d];
  if (up) {
    if (d > max_degree_) max_degree_ = d;
    // The minimum can only rise when its last holder left it.
    while (min_degree_ < max_degree_ && degree_hist_[min_degree_] == 0) {
      ++min_degree_;
    }
  } else {
    if (d < min_degree_) min_degree_ = d;
    while (max_degree_ > 0 && degree_hist_[max_degree_] == 0) --max_degree_;
  }
}

void EdgeMask::set_alive(std::size_t edge, bool alive) {
  LB_DEBUG_ASSERT(edge < alive_.size());
  if ((alive_[edge] != 0) == alive) return;
  alive_[edge] = alive ? 1 : 0;
  const Edge& e = base_->edges()[edge];
  if (alive) {
    ++alive_edges_;
  } else {
    --alive_edges_;
  }
  bump_degree(e.u, alive);
  bump_degree(e.v, alive);
}

const Graph& EdgeMask::materialize(const std::string& name) const {
  if (view_revision_ == revision_) return view_;
  std::vector<Edge> keep;
  keep.reserve(alive_edges_);
  const auto& edges = base_->edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (alive_[i] != 0) keep.push_back(edges[i]);
  }
  view_ = subgraph_with_edges(*base_, keep, name);
  view_revision_ = revision_;
  return view_;
}

std::uint64_t TopologyFrame::fingerprint() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;  // FNV-1a prime
  };
  mix(num_nodes());
  const auto& edges = base_->edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (!alive(k)) continue;
    mix((static_cast<std::uint64_t>(edges[k].u) << 32) | edges[k].v);
  }
  return h;
}

}  // namespace lb::graph
