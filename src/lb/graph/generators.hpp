// Graph generators for every topology the paper and its related work
// evaluate on: the line/cycle counterexamples of the discrete model, the
// tori and hypercubes of the diffusion literature, de Bruijn networks and
// expanders from Rabani-Sinclair-Wanka, plus pathological shapes (star,
// barbell, lollipop) used in the ablation benches.
//
// Every generator labels the returned graph with a descriptive name()
// that the bench tables print.
#pragma once

#include <cstdint>

#include "lb/graph/graph.hpp"
#include "lb/util/rng.hpp"

namespace lb::graph {

/// Path P_n: nodes 0-1-2-...-(n-1).  λ2 = 2(1 - cos(π/n)).
Graph make_path(std::size_t n);

/// Cycle C_n.  λ2 = 2(1 - cos(2π/n)).  Requires n >= 3.
Graph make_cycle(std::size_t n);

/// Complete graph K_n.  λ2 = n.
Graph make_complete(std::size_t n);

/// Star S_n: node 0 joined to all others.  λ2 = 1 (n >= 2).
Graph make_star(std::size_t n);

/// Wheel: cycle of n-1 nodes plus a hub joined to all.  Requires n >= 4.
Graph make_wheel(std::size_t n);

/// Complete binary tree with n nodes (heap indexing).
Graph make_binary_tree(std::size_t n);

/// 2D grid a x b with open boundaries.
Graph make_grid2d(std::size_t a, std::size_t b);

/// 2D torus a x b (wrap-around).  Requires a, b >= 3 for simple graphs.
/// λ2 = 2(1-cos(2π/max(a,b))) + 0 ... computed spectrally; closed form
/// 4 sin^2(π/a) + 0 for the smallest nonzero mode along the longer side.
Graph make_torus2d(std::size_t a, std::size_t b);

/// 3D torus a x b x c.  Requires each side >= 3.
Graph make_torus3d(std::size_t a, std::size_t b, std::size_t c);

/// Hypercube Q_d with 2^d nodes.  λ2 = 2.
Graph make_hypercube(std::size_t dimensions);

/// Undirected de Bruijn graph over binary strings of length d
/// (2^d nodes; edges x -> 2x mod n and 2x+1 mod n, self-loops dropped).
Graph make_de_bruijn(std::size_t dimensions);

/// Random d-regular graph via the pairing (configuration) model with
/// rejection of self-loops/multi-edges.  n*d must be even; asserts that a
/// simple pairing is found (retries internally).  These are expanders with
/// high probability — the paper's "degree-d expander" comparator.
Graph make_random_regular(std::size_t n, std::size_t d, util::Rng& rng);

/// Erdős–Rényi G(n, p).  If `require_connected`, regenerates until the
/// sample is connected (asserts after 1000 attempts).
Graph make_erdos_renyi(std::size_t n, double p, util::Rng& rng,
                       bool require_connected = false);

/// Two K_m cliques joined by a single edge (n = 2m) — worst-case expansion.
Graph make_barbell(std::size_t m);

/// Lollipop: K_m clique with a path of p nodes attached (n = m + p).
Graph make_lollipop(std::size_t m, std::size_t p);

/// Petersen graph (n = 10, 3-regular); a classic small test case.
Graph make_petersen();

/// Chordal ring: cycle C_n plus chords i -- (i + skip) mod n for every
/// given skip.  4-regular for a single skip (when skip != n/2); a classic
/// low-degree interconnect with tunable expansion.
Graph make_chordal_ring(std::size_t n, const std::vector<std::size_t>& skips);

/// Cube-connected cycles CCC(d): each hypercube corner is replaced by a
/// d-cycle; 3-regular with d·2^d nodes — constant degree with
/// hypercube-like diameter, a standard fixed-degree interconnect.
/// Requires d >= 3.
Graph make_cube_connected_cycles(std::size_t dimensions);

/// Named lookup used by bench/example CLIs: one of
///   path, cycle, complete, star, wheel, tree, grid2d, torus2d, torus3d,
///   hypercube, debruijn, regular, gnp, barbell, lollipop, petersen
/// The generator picks natural shape parameters for the requested size
/// (e.g. torus2d becomes roughly square).  `n` is rounded to the nearest
/// realizable size; the actual node count is the returned graph's.
Graph make_named(const std::string& family, std::size_t n, util::Rng& rng);

/// Families accepted by make_named.
std::vector<std::string> named_families();

}  // namespace lb::graph
