// Matchings for the dimension-exchange baseline of Ghosh & Muthukrishnan
// (SPAA'94), the comparator the paper measures its constant-factor speedup
// against.  Their analysis needs every edge to enter the random matching
// with probability >= 1/(8δ); the classic local protocol below achieves
// that, and random_maximal_matching is the cheaper centralized stand-in.
#pragma once

#include "lb/graph/graph.hpp"
#include "lb/util/rng.hpp"

namespace lb::graph {

/// A matching: a set of vertex-disjoint edges.
using Matching = std::vector<Edge>;

/// Ghosh–Muthukrishnan local random matching: every node independently
/// "wakes" with probability 1/2, each awake node proposes to a uniformly
/// random neighbour, and an edge joins the matching when its proposal is
/// accepted by a sleeping endpoint with no competing accepted proposal.
/// Guarantees Pr[e in M] >= 1/(8δ) for every edge e.
Matching gm_random_matching(const Graph& g, util::Rng& rng);

/// Greedy maximal matching over a uniformly random edge permutation.
Matching random_maximal_matching(const Graph& g, util::Rng& rng);

/// True if `m` is vertex-disjoint and every edge exists in g.
bool is_valid_matching(const Graph& g, const Matching& m);

/// Round-robin dimension exchange for edge-colorable structured graphs:
/// partition the hypercube's edges by dimension; round t uses colour
/// t mod d.  Returns the matching (perfect) for the given colour.
Matching hypercube_dimension_matching(const Graph& g, std::size_t dimensions,
                                      std::size_t colour);

}  // namespace lb::graph
