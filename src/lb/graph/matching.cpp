#include "lb/graph/matching.hpp"

#include <algorithm>
#include <numeric>

#include "lb/util/assert.hpp"

namespace lb::graph {

Matching gm_random_matching(const Graph& g, util::Rng& rng) {
  const std::size_t n = g.num_nodes();
  // Phase 1: each node wakes w.p. 1/2; awake nodes propose to a uniformly
  // random neighbour.
  constexpr NodeId kNone = static_cast<NodeId>(-1);
  std::vector<NodeId> proposal(n, kNone);
  std::vector<bool> awake(n, false);
  for (std::size_t u = 0; u < n; ++u) {
    if (g.degree(static_cast<NodeId>(u)) == 0) continue;
    if (!rng.next_bool(0.5)) continue;
    awake[u] = true;
    const auto nb = g.neighbors(static_cast<NodeId>(u));
    proposal[u] = nb[static_cast<std::size_t>(rng.next_below(nb.size()))];
  }
  // Phase 2: a sleeping node accepts exactly one incoming proposal,
  // chosen uniformly among those it received (reservoir over neighbours).
  Matching m;
  std::vector<NodeId> accepted(n, kNone);
  std::vector<std::size_t> incoming(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    if (!awake[u]) continue;
    const NodeId v = proposal[u];
    if (awake[v]) continue;  // proposals to awake nodes are dropped
    ++incoming[v];
    // Reservoir sampling keeps each incoming proposer equally likely.
    if (rng.next_below(incoming[v]) == 0) accepted[v] = static_cast<NodeId>(u);
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (accepted[v] == kNone) continue;
    const NodeId u = accepted[v];
    m.push_back(Edge{std::min<NodeId>(u, static_cast<NodeId>(v)),
                     std::max<NodeId>(u, static_cast<NodeId>(v))});
  }
  return m;
}

Matching random_maximal_matching(const Graph& g, util::Rng& rng) {
  std::vector<std::size_t> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<bool> used(g.num_nodes(), false);
  Matching m;
  for (std::size_t idx : order) {
    const Edge& e = g.edges()[idx];
    if (used[e.u] || used[e.v]) continue;
    used[e.u] = used[e.v] = true;
    m.push_back(e);
  }
  return m;
}

bool is_valid_matching(const Graph& g, const Matching& m) {
  std::vector<bool> used(g.num_nodes(), false);
  for (const Edge& e : m) {
    if (!g.has_edge(e.u, e.v)) return false;
    if (used[e.u] || used[e.v]) return false;
    used[e.u] = used[e.v] = true;
  }
  return true;
}

Matching hypercube_dimension_matching(const Graph& g, std::size_t dimensions,
                                      std::size_t colour) {
  LB_ASSERT_MSG(colour < dimensions, "colour must be a hypercube dimension");
  LB_ASSERT_MSG(g.num_nodes() == (std::size_t{1} << dimensions),
                "graph is not a hypercube of the stated dimension");
  Matching m;
  const std::size_t bit = std::size_t{1} << colour;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    const std::size_t v = u ^ bit;
    if (u < v) {
      LB_ASSERT_MSG(g.has_edge(static_cast<NodeId>(u), static_cast<NodeId>(v)),
                    "hypercube edge missing");
      m.push_back(Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
    }
  }
  return m;
}

}  // namespace lb::graph
