#include "lb/graph/dynamic.hpp"

#include <cstdio>
#include <numeric>
#include <sstream>

#include "lb/graph/matching.hpp"
#include "lb/util/assert.hpp"

namespace lb::graph {

namespace {

/// Rebuild `out` as "<base>@<tag>k)" without steady-state allocations
/// (the capacity is reused across rounds).  `tag` carries its own
/// opening, e.g. "@bern(k=".
void format_label(std::string& out, const std::string& base, const char* tag,
                  std::size_t k) {
  out.clear();
  out += base;
  out += tag;
  char buf[24];
  std::snprintf(buf, sizeof buf, "%zu)", k);
  out += buf;
}

class StaticSequence final : public GraphSequence {
 public:
  explicit StaticSequence(Graph g) : g_(std::move(g)), frame_(g_) {}

  std::size_t num_nodes() const override { return g_.num_nodes(); }
  const TopologyFrame& frame_at(std::size_t) override { return frame_; }
  const Graph& at_round(std::size_t) override { return g_; }
  void reset() override {}
  std::string name() const override { return "static[" + g_.name() + "]"; }

 private:
  Graph g_;
  TopologyFrame frame_;
};

/// Non-owning static sequence: frames reference a caller-owned base.
/// The campaign layer serves hundreds of cells off one cached Graph;
/// the owning StaticSequence would copy the CSR per cell.
class StaticViewSequence final : public GraphSequence {
 public:
  explicit StaticViewSequence(const Graph& g) : g_(&g), frame_(g) {}

  std::size_t num_nodes() const override { return g_->num_nodes(); }
  const TopologyFrame& frame_at(std::size_t) override { return frame_; }
  const Graph& at_round(std::size_t) override { return *g_; }
  void reset() override {}
  std::string name() const override { return "static[" + g_->name() + "]"; }

 private:
  const Graph* g_;
  TopologyFrame frame_;
};

class PeriodicSequence final : public GraphSequence {
 public:
  explicit PeriodicSequence(std::vector<Graph> graphs) : graphs_(std::move(graphs)) {
    LB_ASSERT_MSG(!graphs_.empty(), "periodic sequence needs at least one graph");
    for (const Graph& g : graphs_) {
      LB_ASSERT_MSG(g.num_nodes() == graphs_.front().num_nodes(),
                    "all graphs in a sequence must share the node set");
    }
  }

  std::size_t num_nodes() const override { return graphs_.front().num_nodes(); }

  const TopologyFrame& frame_at(std::size_t k) override {
    frame_ = TopologyFrame(at_round(k));
    return frame_;
  }

  const Graph& at_round(std::size_t k) override {
    LB_ASSERT_MSG(k >= 1, "rounds are 1-indexed");
    return graphs_[(k - 1) % graphs_.size()];
  }

  void reset() override {}

  std::string name() const override {
    std::ostringstream os;
    os << "periodic[";
    for (std::size_t i = 0; i < graphs_.size(); ++i) {
      os << (i ? "," : "") << graphs_[i].name();
    }
    os << "]";
    return os.str();
  }

 private:
  std::vector<Graph> graphs_;
  TopologyFrame frame_;
};

/// Shared scaffolding for the masked (subgraph-of-a-fixed-base) models:
/// base graph + edge mask + ordered-round bookkeeping + replayable seed.
class MaskedSequence : public GraphSequence {
 public:
  MaskedSequence(Graph base, std::uint64_t seed)
      : base_(std::move(base)), seed_(seed), rng_(seed), mask_(base_) {}

  std::size_t num_nodes() const override { return base_.num_nodes(); }

  void reset() override {
    rng_ = util::Rng(seed_);
    next_round_ = 1;
    reset_mask();
  }

 protected:
  /// Restore the mask to its pre-round-1 state (default: all alive).
  virtual void reset_mask() {
    mask_.fill(true);
    mask_.commit();
  }

  void check_order(std::size_t k) {
    LB_ASSERT_MSG(k == next_round_, "rounds must be requested in order");
    ++next_round_;
  }

  const TopologyFrame& publish(const char* tag, std::size_t k) {
    format_label(label_, base_.name(), tag, k);
    frame_ = TopologyFrame(mask_, &label_);
    return frame_;
  }

  Graph base_;
  std::uint64_t seed_;
  util::Rng rng_;
  EdgeMask mask_;
  TopologyFrame frame_;
  std::string label_;
  std::size_t next_round_ = 1;
};

class BernoulliSequence final : public MaskedSequence {
 public:
  BernoulliSequence(Graph base, double keep_prob, std::uint64_t seed)
      : MaskedSequence(std::move(base), seed), keep_(keep_prob) {
    LB_ASSERT_MSG(keep_ >= 0.0 && keep_ <= 1.0, "keep probability must lie in [0,1]");
  }

  const TopologyFrame& frame_at(std::size_t k) override {
    check_order(k);
    const std::size_t m = base_.num_edges();
    for (std::size_t i = 0; i < m; ++i) {
      mask_.set_alive(i, rng_.next_bool(keep_));
    }
    mask_.commit();
    return publish("@bern(k=", k);
  }

  std::string name() const override {
    std::ostringstream os;
    os << "bernoulli[" << base_.name() << ",p=" << keep_ << "]";
    return os.str();
  }

 private:
  double keep_;
};

class MarkovFailureSequence final : public MaskedSequence {
 public:
  MarkovFailureSequence(Graph base, double fail_prob, double recover_prob,
                        std::uint64_t seed)
      : MaskedSequence(std::move(base), seed), fail_(fail_prob), recover_(recover_prob) {
    LB_ASSERT_MSG(fail_ >= 0.0 && fail_ <= 1.0, "fail probability must lie in [0,1]");
    LB_ASSERT_MSG(recover_ >= 0.0 && recover_ <= 1.0,
                  "recover probability must lie in [0,1]");
  }

  const TopologyFrame& frame_at(std::size_t k) override {
    check_order(k);
    const std::size_t m = base_.num_edges();
    // The mask itself is the chain state: every edge starts UP.
    for (std::size_t i = 0; i < m; ++i) {
      const bool up =
          mask_.alive(i) ? !rng_.next_bool(fail_) : rng_.next_bool(recover_);
      mask_.set_alive(i, up);
    }
    mask_.commit();
    return publish("@markov(k=", k);
  }

  std::string name() const override {
    std::ostringstream os;
    os << "markov[" << base_.name() << ",fail=" << fail_ << ",recover=" << recover_
       << "]";
    return os.str();
  }

 private:
  double fail_, recover_;
};

class ChurnSequence final : public MaskedSequence {
 public:
  ChurnSequence(Graph base, double alive_fraction, double turnover,
                std::uint64_t seed)
      : MaskedSequence(std::move(base), seed),
        alive_fraction_(alive_fraction),
        turnover_(turnover) {
    LB_ASSERT_MSG(alive_fraction_ >= 0.0 && alive_fraction_ <= 1.0,
                  "alive fraction must lie in [0,1]");
    LB_ASSERT_MSG(turnover_ >= 0.0 && turnover_ <= 1.0,
                  "turnover rate must lie in [0,1]");
    const auto m = static_cast<double>(base_.num_edges());
    turnover_edges_ = static_cast<std::size_t>(turnover_ * m + 0.5);
    target_dead_ = base_.num_edges() -
                   static_cast<std::size_t>(alive_fraction_ * m + 0.5);
    init_lists();
  }

  const TopologyFrame& frame_at(std::size_t k) override {
    check_order(k);
    if (k > 1) {
      for (std::size_t i = 0; i < turnover_edges_ && !alive_list_.empty(); ++i) {
        kill_random();
      }
      for (std::size_t i = 0; i < turnover_edges_ && !dead_list_.empty(); ++i) {
        revive_random();
      }
      mask_.commit();
    }
    return publish("@churn(k=", k);
  }

  std::string name() const override {
    std::ostringstream os;
    os << "churn[" << base_.name() << ",alive=" << alive_fraction_
       << ",turnover=" << turnover_ << "]";
    return os.str();
  }

 protected:
  void reset_mask() override {
    init_lists();
  }

 private:
  void init_lists() {
    mask_.fill(true);
    alive_list_.resize(base_.num_edges());
    std::iota(alive_list_.begin(), alive_list_.end(), 0u);
    dead_list_.clear();
    for (std::size_t i = 0; i < target_dead_ && !alive_list_.empty(); ++i) {
      kill_random();
    }
    mask_.commit();
  }

  // Remove-by-swap: edges are only ever picked uniformly at random, so
  // no id -> position index is needed.
  static std::uint32_t remove_at(std::vector<std::uint32_t>& list, std::size_t idx) {
    const std::uint32_t e = list[idx];
    list[idx] = list.back();
    list.pop_back();
    return e;
  }

  void kill_random() {
    const std::uint32_t e =
        remove_at(alive_list_, rng_.next_below(alive_list_.size()));
    dead_list_.push_back(e);
    mask_.set_alive(e, false);
  }

  void revive_random() {
    const std::uint32_t e =
        remove_at(dead_list_, rng_.next_below(dead_list_.size()));
    alive_list_.push_back(e);
    mask_.set_alive(e, true);
  }

  double alive_fraction_, turnover_;
  std::size_t turnover_edges_ = 0;
  std::size_t target_dead_ = 0;
  std::vector<std::uint32_t> alive_list_, dead_list_;
};

class PartitionSequence final : public MaskedSequence {
 public:
  PartitionSequence(Graph base, std::size_t period)
      : MaskedSequence(std::move(base), /*seed=*/0), period_(period) {
    LB_ASSERT_MSG(period_ >= 1, "partition period must be at least 1");
    const auto half = static_cast<NodeId>(base_.num_nodes() / 2);
    const auto& edges = base_.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if ((edges[i].u < half) != (edges[i].v < half)) {
        cut_.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }

  const TopologyFrame& frame_at(std::size_t k) override {
    check_order(k);
    const bool partitioned = ((k - 1) / period_) % 2 == 1;
    if (partitioned != cut_down_) {
      for (const std::uint32_t e : cut_) mask_.set_alive(e, !partitioned);
      cut_down_ = partitioned;
      mask_.commit();
    }
    return publish("@part(k=", k);
  }

  std::string name() const override {
    std::ostringstream os;
    os << "partition[" << base_.name() << ",period=" << period_ << "]";
    return os.str();
  }

 protected:
  void reset_mask() override {
    MaskedSequence::reset_mask();
    cut_down_ = false;
  }

 private:
  std::size_t period_;
  std::vector<std::uint32_t> cut_;
  bool cut_down_ = false;
};

class FailureWaveSequence final : public MaskedSequence {
 public:
  FailureWaveSequence(Graph base, std::size_t width, std::size_t speed)
      : MaskedSequence(std::move(base), /*seed=*/0), width_(width), speed_(speed) {
    LB_ASSERT_MSG(width_ < base_.num_nodes(),
                  "failure-wave width must leave at least one node up");
    // Node -> incident base-edge ids (CSR), for incremental mask updates.
    const std::size_t n = base_.num_nodes();
    const auto& edges = base_.edges();
    inc_offsets_.assign(n + 1, 0);
    for (const Edge& e : edges) {
      ++inc_offsets_[e.u + 1];
      ++inc_offsets_[e.v + 1];
    }
    for (std::size_t i = 1; i <= n; ++i) inc_offsets_[i] += inc_offsets_[i - 1];
    inc_edges_.resize(2 * edges.size());
    std::vector<std::size_t> cursor(inc_offsets_.begin(), inc_offsets_.end() - 1);
    for (std::size_t idx = 0; idx < edges.size(); ++idx) {
      inc_edges_[cursor[edges[idx].u]++] = static_cast<std::uint32_t>(idx);
      inc_edges_[cursor[edges[idx].v]++] = static_cast<std::uint32_t>(idx);
    }
    down_.assign(n, 0);
  }

  const TopologyFrame& frame_at(std::size_t k) override {
    check_order(k);
    const std::size_t n = base_.num_nodes();
    const std::size_t pos = ((k - 1) * speed_) % n;
    bool changed = false;
    // Flip node membership, then refresh the incident edges of every
    // flipped node from the final down flags (an edge is dead iff either
    // endpoint is down).
    changed_nodes_.clear();
    for (std::size_t u = 0; u < n; ++u) {
      const bool in_window = (u + n - pos) % n < width_;
      if (in_window != (down_[u] != 0)) {
        down_[u] = in_window ? 1 : 0;
        changed_nodes_.push_back(static_cast<NodeId>(u));
        changed = true;
      }
    }
    const auto& edges = base_.edges();
    for (const NodeId u : changed_nodes_) {
      for (std::size_t p = inc_offsets_[u]; p < inc_offsets_[u + 1]; ++p) {
        const std::uint32_t e = inc_edges_[p];
        mask_.set_alive(e, down_[edges[e].u] == 0 && down_[edges[e].v] == 0);
      }
    }
    if (changed) mask_.commit();
    return publish("@wave(k=", k);
  }

  std::string name() const override {
    std::ostringstream os;
    os << "wave[" << base_.name() << ",width=" << width_ << ",speed=" << speed_
       << "]";
    return os.str();
  }

 protected:
  void reset_mask() override {
    MaskedSequence::reset_mask();
    std::fill(down_.begin(), down_.end(), 0);
  }

 private:
  std::size_t width_, speed_;
  std::vector<std::size_t> inc_offsets_;
  std::vector<std::uint32_t> inc_edges_;
  std::vector<std::uint8_t> down_;
  std::vector<NodeId> changed_nodes_;
};

class MatchingSequence final : public GraphSequence {
 public:
  MatchingSequence(Graph base, std::uint64_t seed)
      : base_(std::move(base)), seed_(seed), rng_(seed) {}

  std::size_t num_nodes() const override { return base_.num_nodes(); }

  const TopologyFrame& frame_at(std::size_t k) override {
    frame_ = TopologyFrame(at_round(k));
    return frame_;
  }

  const Graph& at_round(std::size_t k) override {
    LB_ASSERT_MSG(k == next_round_, "rounds must be requested in order");
    ++next_round_;
    const Matching m = random_maximal_matching(base_, rng_);
    std::ostringstream name;
    name << base_.name() << "@match(k=" << k << ")";
    current_ = subgraph_with_edges(base_, m, name.str());
    return current_;
  }

  void reset() override {
    rng_ = util::Rng(seed_);
    next_round_ = 1;
  }

  std::string name() const override { return "matching[" + base_.name() + "]"; }

 private:
  Graph base_;
  std::uint64_t seed_;
  util::Rng rng_;
  Graph current_;
  TopologyFrame frame_;
  std::size_t next_round_ = 1;
};

class MaterializedViewSequence final : public GraphSequence {
 public:
  MaterializedViewSequence(GraphSequence& inner, std::unique_ptr<GraphSequence> owned)
      : inner_(&inner), owned_(std::move(owned)) {}

  std::size_t num_nodes() const override { return inner_->num_nodes(); }

  const TopologyFrame& frame_at(std::size_t k) override {
    const TopologyFrame& inner_frame = inner_->frame_at(k);
    if (!inner_frame.masked()) {
      // Static/periodic/matching rounds: the pre-mask code returned
      // stored (or already materialized) graphs, so pass them through.
      frame_ = TopologyFrame(inner_frame.base());
      return frame_;
    }
    // Masked rounds: reproduce the pre-mask idiom faithfully — ONE
    // GraphBuilder::build() per round, even when the mask did not change
    // (the old stochastic sequences rebuilt unconditionally).  When the
    // mask moved, view() just built fresh and is used as-is; when it
    // did not, view() is a cache hit and the build is forced by hand so
    // the baseline never skips the cost it is meant to measure.
    const std::uint64_t revision = inner_frame.mask_revision();
    const Graph& cached = inner_frame.view();
    if (revision != last_mask_revision_) {
      last_mask_revision_ = revision;
      frame_ = TopologyFrame(cached);
    } else {
      current_ = subgraph_with_edges(cached, cached.edges(), cached.name());
      frame_ = TopologyFrame(current_);
    }
    return frame_;
  }

  const Graph& at_round(std::size_t k) override { return inner_->at_round(k); }

  void reset() override {
    inner_->reset();
    last_mask_revision_ = 0;
  }

  std::string name() const override {
    return "materialized[" + inner_->name() + "]";
  }

 private:
  GraphSequence* inner_;
  std::unique_ptr<GraphSequence> owned_;
  TopologyFrame frame_;
  Graph current_;
  std::uint64_t last_mask_revision_ = 0;
};

}  // namespace

std::unique_ptr<GraphSequence> make_static_sequence(Graph g) {
  return std::make_unique<StaticSequence>(std::move(g));
}

std::unique_ptr<GraphSequence> make_static_view(const Graph& g) {
  return std::make_unique<StaticViewSequence>(g);
}

std::unique_ptr<GraphSequence> make_periodic_sequence(std::vector<Graph> graphs) {
  return std::make_unique<PeriodicSequence>(std::move(graphs));
}

std::unique_ptr<GraphSequence> make_bernoulli_sequence(Graph base, double keep_prob,
                                                       std::uint64_t seed) {
  return std::make_unique<BernoulliSequence>(std::move(base), keep_prob, seed);
}

std::unique_ptr<GraphSequence> make_markov_failure_sequence(Graph base, double fail_prob,
                                                            double recover_prob,
                                                            std::uint64_t seed) {
  return std::make_unique<MarkovFailureSequence>(std::move(base), fail_prob,
                                                 recover_prob, seed);
}

std::unique_ptr<GraphSequence> make_matching_sequence(Graph base, std::uint64_t seed) {
  return std::make_unique<MatchingSequence>(std::move(base), seed);
}

std::unique_ptr<GraphSequence> make_churn_sequence(Graph base, double alive_fraction,
                                                   double turnover, std::uint64_t seed) {
  return std::make_unique<ChurnSequence>(std::move(base), alive_fraction, turnover,
                                         seed);
}

std::unique_ptr<GraphSequence> make_partition_sequence(Graph base, std::size_t period) {
  return std::make_unique<PartitionSequence>(std::move(base), period);
}

std::unique_ptr<GraphSequence> make_failure_wave_sequence(Graph base, std::size_t width,
                                                          std::size_t speed) {
  return std::make_unique<FailureWaveSequence>(std::move(base), width, speed);
}

std::unique_ptr<GraphSequence> make_materialized_view(GraphSequence& inner) {
  return std::make_unique<MaterializedViewSequence>(inner, nullptr);
}

std::unique_ptr<GraphSequence> make_materialized(std::unique_ptr<GraphSequence> inner) {
  GraphSequence& ref = *inner;
  return std::make_unique<MaterializedViewSequence>(ref, std::move(inner));
}

}  // namespace lb::graph
