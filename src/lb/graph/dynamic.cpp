#include "lb/graph/dynamic.hpp"

#include <sstream>

#include "lb/graph/matching.hpp"
#include "lb/util/assert.hpp"

namespace lb::graph {

namespace {

class StaticSequence final : public GraphSequence {
 public:
  explicit StaticSequence(Graph g) : g_(std::move(g)) {}

  std::size_t num_nodes() const override { return g_.num_nodes(); }
  const Graph& at_round(std::size_t) override { return g_; }
  std::string name() const override { return "static[" + g_.name() + "]"; }

 private:
  Graph g_;
};

class PeriodicSequence final : public GraphSequence {
 public:
  explicit PeriodicSequence(std::vector<Graph> graphs) : graphs_(std::move(graphs)) {
    LB_ASSERT_MSG(!graphs_.empty(), "periodic sequence needs at least one graph");
    for (const Graph& g : graphs_) {
      LB_ASSERT_MSG(g.num_nodes() == graphs_.front().num_nodes(),
                    "all graphs in a sequence must share the node set");
    }
  }

  std::size_t num_nodes() const override { return graphs_.front().num_nodes(); }

  const Graph& at_round(std::size_t k) override {
    LB_ASSERT_MSG(k >= 1, "rounds are 1-indexed");
    return graphs_[(k - 1) % graphs_.size()];
  }

  std::string name() const override {
    std::ostringstream os;
    os << "periodic[";
    for (std::size_t i = 0; i < graphs_.size(); ++i) {
      os << (i ? "," : "") << graphs_[i].name();
    }
    os << "]";
    return os.str();
  }

 private:
  std::vector<Graph> graphs_;
};

class BernoulliSequence final : public GraphSequence {
 public:
  BernoulliSequence(Graph base, double keep_prob, std::uint64_t seed)
      : base_(std::move(base)), keep_(keep_prob), rng_(seed) {
    LB_ASSERT_MSG(keep_ >= 0.0 && keep_ <= 1.0, "keep probability must lie in [0,1]");
  }

  std::size_t num_nodes() const override { return base_.num_nodes(); }

  const Graph& at_round(std::size_t k) override {
    LB_ASSERT_MSG(k == next_round_, "rounds must be requested in order");
    ++next_round_;
    std::vector<Edge> keep;
    keep.reserve(base_.num_edges());
    for (const Edge& e : base_.edges()) {
      if (rng_.next_bool(keep_)) keep.push_back(e);
    }
    std::ostringstream name;
    name << base_.name() << "@bern(k=" << k << ")";
    current_ = subgraph_with_edges(base_, keep, name.str());
    return current_;
  }

  std::string name() const override {
    std::ostringstream os;
    os << "bernoulli[" << base_.name() << ",p=" << keep_ << "]";
    return os.str();
  }

 private:
  Graph base_;
  double keep_;
  util::Rng rng_;
  Graph current_;
  std::size_t next_round_ = 1;
};

class MarkovFailureSequence final : public GraphSequence {
 public:
  MarkovFailureSequence(Graph base, double fail_prob, double recover_prob,
                        std::uint64_t seed)
      : base_(std::move(base)),
        fail_(fail_prob),
        recover_(recover_prob),
        rng_(seed),
        up_(base_.num_edges(), true) {
    LB_ASSERT_MSG(fail_ >= 0.0 && fail_ <= 1.0, "fail probability must lie in [0,1]");
    LB_ASSERT_MSG(recover_ >= 0.0 && recover_ <= 1.0,
                  "recover probability must lie in [0,1]");
  }

  std::size_t num_nodes() const override { return base_.num_nodes(); }

  const Graph& at_round(std::size_t k) override {
    LB_ASSERT_MSG(k == next_round_, "rounds must be requested in order");
    ++next_round_;
    std::vector<Edge> keep;
    keep.reserve(base_.num_edges());
    for (std::size_t i = 0; i < base_.num_edges(); ++i) {
      up_[i] = up_[i] ? !rng_.next_bool(fail_) : rng_.next_bool(recover_);
      if (up_[i]) keep.push_back(base_.edges()[i]);
    }
    std::ostringstream name;
    name << base_.name() << "@markov(k=" << k << ")";
    current_ = subgraph_with_edges(base_, keep, name.str());
    return current_;
  }

  std::string name() const override {
    std::ostringstream os;
    os << "markov[" << base_.name() << ",fail=" << fail_ << ",recover=" << recover_ << "]";
    return os.str();
  }

 private:
  Graph base_;
  double fail_, recover_;
  util::Rng rng_;
  std::vector<bool> up_;
  Graph current_;
  std::size_t next_round_ = 1;
};

class MatchingSequence final : public GraphSequence {
 public:
  MatchingSequence(Graph base, std::uint64_t seed)
      : base_(std::move(base)), rng_(seed) {}

  std::size_t num_nodes() const override { return base_.num_nodes(); }

  const Graph& at_round(std::size_t k) override {
    LB_ASSERT_MSG(k == next_round_, "rounds must be requested in order");
    ++next_round_;
    const Matching m = random_maximal_matching(base_, rng_);
    std::ostringstream name;
    name << base_.name() << "@match(k=" << k << ")";
    current_ = subgraph_with_edges(base_, m, name.str());
    return current_;
  }

  std::string name() const override { return "matching[" + base_.name() + "]"; }

 private:
  Graph base_;
  util::Rng rng_;
  Graph current_;
  std::size_t next_round_ = 1;
};

}  // namespace

std::unique_ptr<GraphSequence> make_static_sequence(Graph g) {
  return std::make_unique<StaticSequence>(std::move(g));
}

std::unique_ptr<GraphSequence> make_periodic_sequence(std::vector<Graph> graphs) {
  return std::make_unique<PeriodicSequence>(std::move(graphs));
}

std::unique_ptr<GraphSequence> make_bernoulli_sequence(Graph base, double keep_prob,
                                                       std::uint64_t seed) {
  return std::make_unique<BernoulliSequence>(std::move(base), keep_prob, seed);
}

std::unique_ptr<GraphSequence> make_markov_failure_sequence(Graph base, double fail_prob,
                                                            double recover_prob,
                                                            std::uint64_t seed) {
  return std::make_unique<MarkovFailureSequence>(std::move(base), fail_prob,
                                                 recover_prob, seed);
}

std::unique_ptr<GraphSequence> make_matching_sequence(Graph base, std::uint64_t seed) {
  return std::make_unique<MatchingSequence>(std::move(base), seed);
}

}  // namespace lb::graph
