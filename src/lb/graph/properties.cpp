#include "lb/graph/properties.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "lb/util/assert.hpp"

namespace lb::graph {

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.num_nodes(), kInf);
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) { return component_count(g) == 1; }

std::size_t component_count(const TopologyFrame& frame) {
  const std::size_t n = frame.num_nodes();
  if (n == 0) return 0;
  // Union-find over the alive edges: O(m α(n)) with no adjacency needed,
  // so masked frames never materialize just to answer connectivity.
  std::vector<NodeId> parent(n);
  for (std::size_t u = 0; u < n; ++u) parent[u] = static_cast<NodeId>(u);
  const auto find = [&parent](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  };
  std::size_t components = n;
  const auto& edges = frame.base().edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (!frame.alive(k)) continue;
    const NodeId ru = find(edges[k].u);
    const NodeId rv = find(edges[k].v);
    if (ru != rv) {
      parent[ru] = rv;
      --components;
    }
  }
  return components;
}

bool is_connected(const TopologyFrame& frame) {
  return component_count(frame) == 1;
}

std::size_t component_count(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0;
  std::vector<bool> seen(n, false);
  std::size_t components = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++components;
    std::queue<NodeId> q;
    q.push(static_cast<NodeId>(s));
    seen[s] = true;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (NodeId v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          q.push(v);
        }
      }
    }
  }
  return components;
}

std::optional<std::size_t> diameter(const Graph& g) {
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::size_t diam = 0;
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    const auto dist = bfs_distances(g, static_cast<NodeId>(s));
    for (std::size_t d : dist) {
      if (d == kInf) return std::nullopt;
      diam = std::max(diam, d);
    }
  }
  return diam;
}

double edge_expansion_exact(const Graph& g) {
  const std::size_t n = g.num_nodes();
  LB_ASSERT_MSG(n >= 2, "expansion needs at least two nodes");
  LB_ASSERT_MSG(n <= 20, "exact expansion is exponential; use n <= 20");
  double best = std::numeric_limits<double>::infinity();
  const std::size_t limit = std::size_t{1} << n;
  // Enumerate subsets containing node 0 (complement symmetry halves work).
  for (std::size_t mask = 1; mask < limit; mask += 2) {
    const std::size_t size = static_cast<std::size_t>(__builtin_popcountll(mask));
    if (size == n) continue;
    std::size_t cut = 0;
    for (const Edge& e : g.edges()) {
      const bool in_u = (mask >> e.u) & 1;
      const bool in_v = (mask >> e.v) & 1;
      if (in_u != in_v) ++cut;
    }
    const double denom = static_cast<double>(std::min(size, n - size));
    best = std::min(best, static_cast<double>(cut) / denom);
  }
  return best;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    ++hist[g.degree(static_cast<NodeId>(u))];
  }
  return hist;
}

}  // namespace lb::graph
