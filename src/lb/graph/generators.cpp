#include "lb/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "lb/graph/properties.hpp"
#include "lb/util/assert.hpp"

namespace lb::graph {

namespace {

std::string sized_name(const char* family, std::size_t n) {
  std::ostringstream os;
  os << family << "(" << n << ")";
  return os.str();
}

}  // namespace

Graph make_path(std::size_t n) {
  GraphBuilder b(n, sized_name("path", n));
  b.reserve_edges(n > 0 ? n - 1 : 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return b.build();
}

Graph make_cycle(std::size_t n) {
  LB_ASSERT_MSG(n >= 3, "cycle needs at least 3 nodes");
  GraphBuilder b(n, sized_name("cycle", n));
  b.reserve_edges(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return b.build();
}

Graph make_complete(std::size_t n) {
  LB_ASSERT_MSG(n >= 2, "complete graph needs at least 2 nodes");
  GraphBuilder b(n, sized_name("complete", n));
  b.reserve_edges(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
  return b.build();
}

Graph make_star(std::size_t n) {
  LB_ASSERT_MSG(n >= 2, "star needs at least 2 nodes");
  GraphBuilder b(n, sized_name("star", n));
  b.reserve_edges(n - 1);
  for (std::size_t i = 1; i < n; ++i) b.add_edge(0, static_cast<NodeId>(i));
  return b.build();
}

Graph make_wheel(std::size_t n) {
  LB_ASSERT_MSG(n >= 4, "wheel needs at least 4 nodes");
  GraphBuilder b(n, sized_name("wheel", n));
  b.reserve_edges(2 * (n - 1));
  const std::size_t rim = n - 1;  // nodes 1..n-1 form the cycle, 0 is the hub
  for (std::size_t i = 0; i < rim; ++i) {
    b.add_edge(static_cast<NodeId>(1 + i), static_cast<NodeId>(1 + (i + 1) % rim));
    b.add_edge(0, static_cast<NodeId>(1 + i));
  }
  return b.build();
}

Graph make_binary_tree(std::size_t n) {
  LB_ASSERT_MSG(n >= 1, "tree needs at least one node");
  GraphBuilder b(n, sized_name("tree", n));
  b.reserve_edges(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    b.add_edge(static_cast<NodeId>((i - 1) / 2), static_cast<NodeId>(i));
  }
  return b.build();
}

Graph make_grid2d(std::size_t a, std::size_t b) {
  LB_ASSERT_MSG(a >= 1 && b >= 1, "grid sides must be positive");
  std::ostringstream name;
  name << "grid2d(" << a << "x" << b << ")";
  GraphBuilder builder(a * b, name.str());
  builder.reserve_edges(a * (b - 1) + (a - 1) * b);
  auto id = [b](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * b + c);
  };
  for (std::size_t r = 0; r < a; ++r) {
    for (std::size_t c = 0; c < b; ++c) {
      if (c + 1 < b) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < a) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return builder.build();
}

// The big regular families build through GraphBuilder::build_stream: each
// node emits its canonical upper neighbours (v > u) in closed form and in
// ascending order, so the whole CSR assembles in two streaming passes with
// no intermediate edge vector and no sorting anywhere.

Graph make_torus2d(std::size_t a, std::size_t b) {
  LB_ASSERT_MSG(a >= 3 && b >= 3, "torus sides must be >= 3 (simple graph)");
  std::ostringstream name;
  name << "torus2d(" << a << "x" << b << ")";
  // Upper neighbours of u = (r, c), in ascending id order (a, b >= 3
  // makes the four offsets 1 < b-1 < b < (a-1)b strictly ordered):
  // right (c+1 < b), wrap-right owned by the row head (c == 0), down
  // (r+1 < a), wrap-down owned by the column head (r == 0).
  auto emit = [a, b](auto&& sink) {
    for (std::size_t r = 0; r < a; ++r) {
      for (std::size_t c = 0; c < b; ++c) {
        const std::size_t u = r * b + c;
        const auto uid = static_cast<NodeId>(u);
        if (c + 1 < b) sink(uid, static_cast<NodeId>(u + 1));
        if (c == 0) sink(uid, static_cast<NodeId>(u + b - 1));
        if (r + 1 < a) sink(uid, static_cast<NodeId>(u + b));
        if (r == 0) sink(uid, static_cast<NodeId>(u + (a - 1) * b));
      }
    }
  };
  return GraphBuilder::build_stream(a * b, name.str(), emit);
}

Graph make_torus3d(std::size_t a, std::size_t b, std::size_t c) {
  LB_ASSERT_MSG(a >= 3 && b >= 3 && c >= 3, "torus sides must be >= 3");
  std::ostringstream name;
  name << "torus3d(" << a << "x" << b << "x" << c << ")";
  // Same closed-form upper-neighbour emission as the 2d torus, one axis
  // pair at a time; sides >= 3 order the six offsets
  // 1 < c-1 < c < (b-1)c < bc < (a-1)bc strictly.
  auto emit = [a, b, c](auto&& sink) {
    for (std::size_t x = 0; x < a; ++x)
      for (std::size_t y = 0; y < b; ++y)
        for (std::size_t z = 0; z < c; ++z) {
          const std::size_t u = (x * b + y) * c + z;
          const auto uid = static_cast<NodeId>(u);
          if (z + 1 < c) sink(uid, static_cast<NodeId>(u + 1));
          if (z == 0) sink(uid, static_cast<NodeId>(u + c - 1));
          if (y + 1 < b) sink(uid, static_cast<NodeId>(u + c));
          if (y == 0) sink(uid, static_cast<NodeId>(u + (b - 1) * c));
          if (x + 1 < a) sink(uid, static_cast<NodeId>(u + b * c));
          if (x == 0) sink(uid, static_cast<NodeId>(u + (a - 1) * b * c));
        }
  };
  return GraphBuilder::build_stream(a * b * c, name.str(), emit);
}

Graph make_hypercube(std::size_t dimensions) {
  LB_ASSERT_MSG(dimensions >= 1 && dimensions < 31, "hypercube dimension out of range");
  const std::size_t n = std::size_t{1} << dimensions;
  std::ostringstream name;
  name << "hypercube(d=" << dimensions << ",n=" << n << ")";
  // Upper neighbours of u are u | (1 << bit) over u's zero bits, ascending
  // in bit — already ascending in id.
  auto emit = [n, dimensions](auto&& sink) {
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t bit = 0; bit < dimensions; ++bit) {
        const std::size_t v = u | (std::size_t{1} << bit);
        if (v != u) sink(static_cast<NodeId>(u), static_cast<NodeId>(v));
      }
    }
  };
  return GraphBuilder::build_stream(n, name.str(), emit);
}

Graph make_de_bruijn(std::size_t dimensions) {
  LB_ASSERT_MSG(dimensions >= 2 && dimensions < 31, "de Bruijn dimension out of range");
  const std::size_t n = std::size_t{1} << dimensions;
  std::ostringstream name;
  name << "debruijn(d=" << dimensions << ",n=" << n << ")";
  GraphBuilder b(n, name.str());
  b.reserve_edges(2 * n);  // upper bound; self-loops and duplicates drop out
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t bit = 0; bit <= 1; ++bit) {
      const std::size_t v = ((u << 1) | bit) & (n - 1);
      if (u != v) {
        b.add_edge(static_cast<NodeId>(std::min(u, v)),
                   static_cast<NodeId>(std::max(u, v)));
      }
    }
  }
  return b.build();
}

Graph make_random_regular(std::size_t n, std::size_t d, util::Rng& rng) {
  LB_ASSERT_MSG(n >= d + 1, "random regular needs n > d");
  LB_ASSERT_MSG((n * d) % 2 == 0, "n*d must be even for a d-regular graph");
  LB_ASSERT_MSG(d >= 1, "degree must be positive");
  LB_ASSERT_MSG(d < 2 || n >= 3, "cycle layers need at least 3 nodes");
  std::ostringstream name;
  name << "regular(n=" << n << ",d=" << d << ")";

  // Superposed random Hamiltonian cycles (plus one random perfect
  // matching when d is odd).  Unlike the plain pairing model — whose
  // acceptance probability decays like exp(-Theta(d^2)) and becomes
  // impractical already at d = 6 — each layer here only needs to avoid
  // the previously placed edges, which succeeds after O(1) retries for
  // n >> d.  The first cycle makes the graph connected by construction,
  // and such unions are expanders with high probability.
  constexpr std::size_t kLayerRetries = 2000;
  std::set<std::pair<NodeId, NodeId>> edges;
  auto try_add_layer = [&](const std::vector<std::pair<NodeId, NodeId>>& layer) {
    for (const auto& [u, v] : layer) {
      if (u == v) return false;
      const auto key = std::make_pair(std::min(u, v), std::max(u, v));
      if (edges.contains(key)) return false;
    }
    for (const auto& [u, v] : layer) {
      edges.emplace(std::min(u, v), std::max(u, v));
    }
    return true;
  };

  std::vector<NodeId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(i);

  const std::size_t cycle_layers = d / 2;
  for (std::size_t layer = 0; layer < cycle_layers; ++layer) {
    bool placed = false;
    for (std::size_t attempt = 0; attempt < kLayerRetries && !placed; ++attempt) {
      rng.shuffle(perm);
      std::vector<std::pair<NodeId, NodeId>> cycle;
      cycle.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        cycle.emplace_back(perm[i], perm[(i + 1) % n]);
      }
      placed = try_add_layer(cycle);
    }
    LB_ASSERT_MSG(placed, "failed to place a cycle layer; n too close to d?");
  }
  if (d % 2 == 1) {
    LB_ASSERT_MSG(n % 2 == 0, "odd degree needs an even node count");
    bool placed = false;
    for (std::size_t attempt = 0; attempt < kLayerRetries && !placed; ++attempt) {
      rng.shuffle(perm);
      std::vector<std::pair<NodeId, NodeId>> matching;
      matching.reserve(n / 2);
      for (std::size_t i = 0; i < n; i += 2) {
        matching.emplace_back(perm[i], perm[i + 1]);
      }
      placed = try_add_layer(matching);
    }
    LB_ASSERT_MSG(placed, "failed to place the matching layer; n too close to d?");
  }

  GraphBuilder b(n, name.str());
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  Graph g = b.build();
  // d >= 2 graphs contain a Hamiltonian cycle; d == 1 is a matching and
  // disconnected for n > 2, which callers needing connectivity must not
  // request.
  LB_ASSERT_MSG(d < 2 || is_connected(g), "cycle construction must connect");
  return g;
}

Graph make_erdos_renyi(std::size_t n, double p, util::Rng& rng, bool require_connected) {
  LB_ASSERT_MSG(n >= 2, "G(n,p) needs at least 2 nodes");
  LB_ASSERT_MSG(p >= 0.0 && p <= 1.0, "edge probability must lie in [0,1]");
  std::ostringstream name;
  name << "gnp(n=" << n << ",p=" << p << ")";
  for (std::size_t attempt = 0; attempt < 1000; ++attempt) {
    GraphBuilder b(n, name.str());
    // Skip-based sampling: geometric jumps between present edges, O(pn^2).
    if (p > 0.0) {
      const double log1mp = std::log1p(-std::min(p, 1.0 - 1e-16));
      std::size_t total = n * (n - 1) / 2;
      std::size_t idx = 0;
      while (idx < total) {
        double u = rng.next_double();
        while (u <= 0.0) u = rng.next_double();
        const std::size_t skip =
            p >= 1.0 ? 0 : static_cast<std::size_t>(std::floor(std::log(u) / log1mp));
        idx += skip;
        if (idx >= total) break;
        // Decode linear index -> (i, j) with i < j.
        std::size_t i = 0;
        std::size_t remaining = idx;
        std::size_t row_len = n - 1;
        while (remaining >= row_len) {
          remaining -= row_len;
          ++i;
          --row_len;
        }
        const std::size_t j = i + 1 + remaining;
        b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
        ++idx;
      }
    }
    Graph g = b.build();
    if (!require_connected || is_connected(g)) return g;
  }
  LB_ASSERT_MSG(false, "failed to sample a connected G(n,p); p too small?");
  return Graph{};
}

Graph make_barbell(std::size_t m) {
  LB_ASSERT_MSG(m >= 2, "barbell cliques need at least 2 nodes each");
  std::ostringstream name;
  name << "barbell(m=" << m << ")";
  GraphBuilder b(2 * m, name.str());
  b.reserve_edges(m * (m - 1) + 1);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i + 1; j < m; ++j) {
      b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      b.add_edge(static_cast<NodeId>(m + i), static_cast<NodeId>(m + j));
    }
  b.add_edge(static_cast<NodeId>(m - 1), static_cast<NodeId>(m));
  return b.build();
}

Graph make_lollipop(std::size_t m, std::size_t p) {
  LB_ASSERT_MSG(m >= 2 && p >= 1, "lollipop needs clique >= 2 and path >= 1");
  std::ostringstream name;
  name << "lollipop(m=" << m << ",p=" << p << ")";
  GraphBuilder b(m + p, name.str());
  b.reserve_edges(m * (m - 1) / 2 + p);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i + 1; j < m; ++j)
      b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
  b.add_edge(static_cast<NodeId>(m - 1), static_cast<NodeId>(m));
  for (std::size_t i = 0; i + 1 < p; ++i)
    b.add_edge(static_cast<NodeId>(m + i), static_cast<NodeId>(m + i + 1));
  return b.build();
}

Graph make_petersen() {
  GraphBuilder b(10, "petersen");
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  for (NodeId i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);
    b.add_edge(5 + i, 5 + (i + 2) % 5);
    b.add_edge(i, 5 + i);
  }
  return b.build();
}

Graph make_chordal_ring(std::size_t n, const std::vector<std::size_t>& skips) {
  LB_ASSERT_MSG(n >= 4, "chordal ring needs at least 4 nodes");
  std::ostringstream name;
  name << "chordal(n=" << n;
  for (std::size_t s : skips) name << ",+" << s;
  name << ")";
  GraphBuilder b(n, name.str());
  b.reserve_edges(n * (1 + skips.size()));
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  for (std::size_t s : skips) {
    LB_ASSERT_MSG(s >= 2 && s < n, "chord skip must lie in [2, n)");
    for (std::size_t i = 0; i < n; ++i) {
      b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + s) % n));
    }
  }
  return b.build();
}

Graph make_cube_connected_cycles(std::size_t dimensions) {
  LB_ASSERT_MSG(dimensions >= 3 && dimensions < 26, "CCC needs 3 <= d < 26");
  const std::size_t corners = std::size_t{1} << dimensions;
  const std::size_t n = dimensions * corners;
  std::ostringstream name;
  name << "ccc(d=" << dimensions << ",n=" << n << ")";
  GraphBuilder b(n, name.str());
  b.reserve_edges(n + n / 2);  // d*2^d ring edges + d*2^(d-1) cube edges
  auto id = [dimensions](std::size_t corner, std::size_t pos) {
    return static_cast<NodeId>(corner * dimensions + pos);
  };
  for (std::size_t corner = 0; corner < corners; ++corner) {
    for (std::size_t pos = 0; pos < dimensions; ++pos) {
      // Cycle edge within the corner's ring.
      b.add_edge(id(corner, pos), id(corner, (pos + 1) % dimensions));
      // Hypercube edge along dimension `pos`.
      const std::size_t other = corner ^ (std::size_t{1} << pos);
      if (corner < other) b.add_edge(id(corner, pos), id(other, pos));
    }
  }
  return b.build();
}

std::vector<std::string> named_families() {
  return {"path",   "cycle",   "complete", "star",    "wheel",  "tree",
          "grid2d", "torus2d", "torus3d",  "hypercube", "debruijn", "regular",
          "gnp",    "barbell", "lollipop", "petersen", "chordal", "ccc"};
}

Graph make_named(const std::string& family, std::size_t n, util::Rng& rng) {
  if (family == "path") return make_path(std::max<std::size_t>(n, 2));
  if (family == "cycle") return make_cycle(std::max<std::size_t>(n, 3));
  if (family == "complete") return make_complete(std::max<std::size_t>(n, 2));
  if (family == "star") return make_star(std::max<std::size_t>(n, 2));
  if (family == "wheel") return make_wheel(std::max<std::size_t>(n, 4));
  if (family == "tree") return make_binary_tree(std::max<std::size_t>(n, 1));
  if (family == "grid2d" || family == "torus2d") {
    std::size_t a = static_cast<std::size_t>(std::round(std::sqrt(static_cast<double>(n))));
    a = std::max<std::size_t>(a, family == "torus2d" ? 3 : 1);
    const std::size_t b = std::max<std::size_t>(
        (n + a - 1) / a, family == "torus2d" ? 3 : 1);
    return family == "grid2d" ? make_grid2d(a, b) : make_torus2d(a, b);
  }
  if (family == "torus3d") {
    std::size_t a = static_cast<std::size_t>(std::round(std::cbrt(static_cast<double>(n))));
    a = std::max<std::size_t>(a, 3);
    return make_torus3d(a, a, a);
  }
  if (family == "hypercube") {
    std::size_t d = 1;
    while ((std::size_t{1} << (d + 1)) <= n) ++d;
    return make_hypercube(d);
  }
  if (family == "debruijn") {
    std::size_t d = 2;
    while ((std::size_t{1} << (d + 1)) <= n) ++d;
    return make_de_bruijn(d);
  }
  if (family == "regular") {
    std::size_t nn = std::max<std::size_t>(n, 6);
    if ((nn * 4) % 2 != 0) ++nn;
    return make_random_regular(nn, 4, rng);
  }
  if (family == "gnp") {
    const std::size_t nn = std::max<std::size_t>(n, 8);
    // p chosen safely above the connectivity threshold ln(n)/n.
    const double p = std::min(1.0, 3.0 * std::log(static_cast<double>(nn)) /
                                       static_cast<double>(nn));
    return make_erdos_renyi(nn, p, rng, /*require_connected=*/true);
  }
  if (family == "barbell") return make_barbell(std::max<std::size_t>(n / 2, 2));
  if (family == "lollipop") {
    const std::size_t m = std::max<std::size_t>(n / 2, 2);
    return make_lollipop(m, std::max<std::size_t>(n - m, 1));
  }
  if (family == "petersen") return make_petersen();
  if (family == "chordal") {
    const std::size_t nn = std::max<std::size_t>(n, 8);
    // One chord at roughly sqrt(n) gives good expansion at degree 4.
    const std::size_t skip = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::round(std::sqrt(static_cast<double>(nn)))));
    return make_chordal_ring(nn, {skip});
  }
  if (family == "ccc") {
    std::size_t d = 3;
    while ((d + 1) * (std::size_t{1} << (d + 1)) <= n) ++d;
    return make_cube_connected_cycles(d);
  }
  LB_ASSERT_MSG(false, "unknown graph family");
  return Graph{};
}

}  // namespace lb::graph
