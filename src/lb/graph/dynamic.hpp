// Dynamic networks: the Elsässer–Monien–Schamberger model the paper adopts
// in Section 5.  The node set is fixed; the edge set may change every
// round, described by a sequence of graphs (G_k).  Theorems 7/8 hold for
// *any* sequence, so we provide a family of generators ranging from benign
// (periodic cycling) to adversarial (alternate between two poorly-
// expanding graphs), plus stochastic link-failure models that mimic real
// interconnects and three operational scenarios (churn, partition/heal,
// failure wave).
//
// Protocol (DESIGN.md §5): the primary accessor is frame_at(k), which
// returns a TopologyFrame — the base graph plus an optional edge-alive
// mask.  Sequences whose rounds are subgraphs of a fixed base (Bernoulli,
// Markov, churn, partition, wave) mutate their EdgeMask in place and
// never construct a Graph after the constructor; static/periodic rounds
// are unmasked full-graph frames.  at_round(k) remains as a materializing
// shim (it builds the masked round as a real Graph) and is the
// equivalence oracle the masked kernels are tested against.
#pragma once

#include <memory>

#include "lb/graph/edge_mask.hpp"
#include "lb/graph/graph.hpp"
#include "lb/util/rng.hpp"

namespace lb::graph {

/// A (possibly stochastic) sequence of topologies over a fixed node set.
class GraphSequence {
 public:
  virtual ~GraphSequence() = default;

  virtual std::size_t num_nodes() const = 0;

  /// The network active in round k (k >= 1, matching the paper's
  /// indexing) as a TopologyFrame.  Implementations may be stateful;
  /// callers must request rounds in increasing order.  The returned
  /// reference is valid until the next frame_at/at_round/reset call.
  virtual const TopologyFrame& frame_at(std::size_t k) = 0;

  /// Materializing shim: the round's topology as a real Graph.  For
  /// masked sequences this builds (and caches) the subgraph — the
  /// pre-mask rebuild path, kept as the equivalence oracle.  Callers use
  /// either at_round or frame_at per round, never both.
  virtual const Graph& at_round(std::size_t k) { return frame_at(k).view(); }

  /// Rewind to round 1 replaying the identical frame stream (stochastic
  /// sequences re-seed their RNG).  Lets one sequence serve both the
  /// spectral profiling pass and the balancing run.
  virtual void reset() = 0;

  virtual std::string name() const = 0;
};

/// The constant sequence G, G, G, ... (reduces Section 5 to Section 4).
std::unique_ptr<GraphSequence> make_static_sequence(Graph g);

/// Non-owning variant of make_static_sequence: frames reference `g`
/// instead of copying it.  `g` must outlive the sequence.  The campaign
/// layer (lb/exp/) uses this to serve many cells off one cached base
/// graph with zero per-cell CSR copies.
std::unique_ptr<GraphSequence> make_static_view(const Graph& g);

/// Cycle through the given graphs: G_1, ..., G_p, G_1, ... (all must share
/// the node count).
std::unique_ptr<GraphSequence> make_periodic_sequence(std::vector<Graph> graphs);

/// Each round keeps every edge of the base graph independently with
/// probability `keep_prob` (fresh sample per round).
std::unique_ptr<GraphSequence> make_bernoulli_sequence(Graph base, double keep_prob,
                                                       std::uint64_t seed);

/// Per-edge two-state Markov chain: an UP edge fails with `fail_prob`, a
/// DOWN edge recovers with `recover_prob` (correlated across rounds —
/// a more realistic interconnect-failure model than i.i.d. Bernoulli).
std::unique_ptr<GraphSequence> make_markov_failure_sequence(Graph base,
                                                            double fail_prob,
                                                            double recover_prob,
                                                            std::uint64_t seed);

/// Each round's network is a fresh random maximal matching of the base
/// graph — the degenerate dynamic network under which diffusion becomes
/// dimension exchange.  (Materializing: matchings need full Graph
/// structure, see DESIGN.md §5.)
std::unique_ptr<GraphSequence> make_matching_sequence(Graph base, std::uint64_t seed);

/// Steady-state edge churn: `alive_fraction` of the base edges are up at
/// any time; every round `turnover`·m edges are taken down and the same
/// number of down edges brought back up (a link-maintenance model: the
/// set of live links drifts while capacity stays constant).
std::unique_ptr<GraphSequence> make_churn_sequence(Graph base, double alive_fraction,
                                                   double turnover,
                                                   std::uint64_t seed);

/// Partition/heal oscillation: the node set is split in half (ids below
/// n/2 vs the rest); for `period` rounds the network is whole, then for
/// `period` rounds every edge crossing the cut is down, repeating.  The
/// adversarial scenario for Theorems 7/8: disconnected phases contribute
/// nothing to A_K.
std::unique_ptr<GraphSequence> make_partition_sequence(Graph base,
                                                       std::size_t period);

/// Sweeping failure wave: a contiguous window of `width` node ids is down
/// (all incident edges dead); the window front advances `speed` ids per
/// round, wrapping around — a rolling-maintenance/cascading-outage model.
std::unique_ptr<GraphSequence> make_failure_wave_sequence(Graph base,
                                                          std::size_t width,
                                                          std::size_t speed);

/// Wrap a sequence so every frame is an unmasked, materialized Graph.
/// Masked inner rounds pay exactly ONE GraphBuilder::build() per round —
/// even rounds where the mask did not change, matching the pre-mask
/// stochastic sequences that rebuilt unconditionally — so this is the
/// faithful per-round-rebuild path the masked substrate replaced: the
/// equivalence oracle for tests and the ablation baseline for the
/// dynamic benches.  Non-owning: `inner` must outlive the wrapper.
std::unique_ptr<GraphSequence> make_materialized_view(GraphSequence& inner);

/// Owning variant of make_materialized_view.
std::unique_ptr<GraphSequence> make_materialized(std::unique_ptr<GraphSequence> inner);

}  // namespace lb::graph
