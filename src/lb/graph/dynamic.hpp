// Dynamic networks: the Elsässer–Monien–Schamberger model the paper adopts
// in Section 5.  The node set is fixed; the edge set may change every
// round, described by a sequence of graphs (G_k).  Theorems 7/8 hold for
// *any* sequence, so we provide a family of generators ranging from benign
// (periodic cycling) to adversarial (alternate between two poorly-
// expanding graphs), plus stochastic link-failure models that mimic real
// interconnects.
#pragma once

#include <memory>

#include "lb/graph/graph.hpp"
#include "lb/util/rng.hpp"

namespace lb::graph {

/// A (possibly stochastic) sequence of graphs over a fixed node set.
class GraphSequence {
 public:
  virtual ~GraphSequence() = default;

  virtual std::size_t num_nodes() const = 0;

  /// The network active in round k (k >= 1, matching the paper's
  /// indexing).  Implementations may be stateful; callers must request
  /// rounds in increasing order.
  virtual const Graph& at_round(std::size_t k) = 0;

  virtual std::string name() const = 0;
};

/// The constant sequence G, G, G, ... (reduces Section 5 to Section 4).
std::unique_ptr<GraphSequence> make_static_sequence(Graph g);

/// Cycle through the given graphs: G_1, ..., G_p, G_1, ... (all must share
/// the node count).
std::unique_ptr<GraphSequence> make_periodic_sequence(std::vector<Graph> graphs);

/// Each round keeps every edge of the base graph independently with
/// probability `keep_prob` (fresh sample per round).
std::unique_ptr<GraphSequence> make_bernoulli_sequence(Graph base, double keep_prob,
                                                       std::uint64_t seed);

/// Per-edge two-state Markov chain: an UP edge fails with `fail_prob`, a
/// DOWN edge recovers with `recover_prob` (correlated across rounds —
/// a more realistic interconnect-failure model than i.i.d. Bernoulli).
std::unique_ptr<GraphSequence> make_markov_failure_sequence(Graph base,
                                                            double fail_prob,
                                                            double recover_prob,
                                                            std::uint64_t seed);

/// Each round's network is a fresh random maximal matching of the base
/// graph — the degenerate dynamic network under which diffusion becomes
/// dimension exchange.
std::unique_ptr<GraphSequence> make_matching_sequence(Graph base, std::uint64_t seed);

}  // namespace lb::graph
