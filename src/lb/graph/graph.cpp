#include "lb/graph/graph.hpp"

#include <algorithm>
#include <atomic>

#include "lb/util/assert.hpp"

namespace lb::graph {

namespace detail {

std::uint64_t next_graph_revision() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace detail

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  LB_ASSERT_MSG(u < num_nodes(), "node id out of range");
  const std::size_t begin = static_cast<std::size_t>(offsets_[u]);
  return {adjacency_.data() + begin, static_cast<std::size_t>(offsets_[u + 1]) - begin};
}

std::size_t Graph::degree(NodeId u) const {
  LB_ASSERT_MSG(u < num_nodes(), "node id out of range");
  return static_cast<std::size_t>(offsets_[u + 1] - offsets_[u]);
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes() || u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::size_t Graph::edge_index(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  const Edge key{u, v};
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), key);
  if (it == edges_.end() || *it != key) return edges_.size();
  return static_cast<std::size_t>(it - edges_.begin());
}

void Graph::finalize_degree_stats() {
  const std::size_t n = num_nodes();
  max_degree_ = 0;
  min_degree_ = n == 0 ? 0 : degree(0);
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t d = static_cast<std::size_t>(offsets_[u + 1] - offsets_[u]);
    max_degree_ = std::max(max_degree_, d);
    min_degree_ = std::min(min_degree_, d);
  }
}

GraphBuilder::GraphBuilder(std::size_t num_nodes, std::string name)
    : n_(num_nodes), name_(std::move(name)) {
  LB_ASSERT_MSG(num_nodes >= 1, "graph needs at least one node");
}

GraphBuilder& GraphBuilder::add_edge(NodeId u, NodeId v) {
  LB_ASSERT_MSG(!built_, "builder already consumed");
  LB_ASSERT_MSG(u < n_ && v < n_, "edge endpoint out of range");
  LB_ASSERT_MSG(u != v, "self-loops are not allowed");
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v});
  return *this;
}

Graph GraphBuilder::build() {
  LB_ASSERT_MSG(!built_, "builder already consumed");
  built_ = true;

  // Canonical (u, v) order via LSD counting sort: a stable pass keyed on
  // v, then a stable pass keyed on u — two O(m + n) sweeps instead of the
  // seed's O(m log m) comparison sort, and the exact same final order.
  {
    std::vector<std::size_t> bucket(n_ + 1, 0);
    std::vector<Edge> tmp(edges_.size());
    for (const Edge& e : edges_) ++bucket[e.v + 1];
    for (std::size_t i = 1; i <= n_; ++i) bucket[i] += bucket[i - 1];
    for (const Edge& e : edges_) tmp[bucket[e.v]++] = e;
    std::fill(bucket.begin(), bucket.end(), 0);
    for (const Edge& e : tmp) ++bucket[e.u + 1];
    for (std::size_t i = 1; i <= n_; ++i) bucket[i] += bucket[i - 1];
    for (const Edge& e : tmp) edges_[bucket[e.u]++] = e;
  }
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.revision_ = detail::next_graph_revision();
  g.name_ = std::move(name_);
  g.edges_ = std::move(edges_);
  const std::size_t slots = 2 * g.edges_.size();
  std::vector<std::size_t> cursor(n_ + 1, 0);
  for (const Edge& e : g.edges_) {
    ++cursor[e.u + 1];
    ++cursor[e.v + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) cursor[i] += cursor[i - 1];
  g.offsets_.assign_copy(cursor, slots);
  g.adjacency_.resize(slots);
  // Cursor placement over the sorted edge list leaves every adjacency row
  // already sorted: row w first receives its lower neighbours x from the
  // edges (x, w) in ascending x, then its upper neighbours y from (w, y)
  // in ascending y, and every x < w < y — so the per-row sort the seed
  // ran here was redundant and is gone.
  for (const Edge& e : g.edges_) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  g.finalize_degree_stats();
  return g;
}

Graph subgraph_with_edges(const Graph& g, const std::vector<Edge>& keep,
                          std::string name) {
  GraphBuilder b(g.num_nodes(), std::move(name));
  b.reserve_edges(keep.size());
  for (const Edge& e : keep) {
    LB_ASSERT_MSG(g.has_edge(e.u, e.v), "subgraph edge not present in parent graph");
    b.add_edge(e.u, e.v);
  }
  return b.build();
}

}  // namespace lb::graph
