#include "lb/graph/graph.hpp"

#include <algorithm>
#include <atomic>

#include "lb/util/assert.hpp"

namespace lb::graph {

namespace {

std::uint64_t next_revision() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  LB_ASSERT_MSG(u < num_nodes(), "node id out of range");
  return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

std::size_t Graph::degree(NodeId u) const {
  LB_ASSERT_MSG(u < num_nodes(), "node id out of range");
  return offsets_[u + 1] - offsets_[u];
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes() || u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::size_t Graph::edge_index(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  const Edge key{u, v};
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), key);
  if (it == edges_.end() || *it != key) return edges_.size();
  return static_cast<std::size_t>(it - edges_.begin());
}

GraphBuilder::GraphBuilder(std::size_t num_nodes, std::string name)
    : n_(num_nodes), name_(std::move(name)) {
  LB_ASSERT_MSG(num_nodes >= 1, "graph needs at least one node");
}

GraphBuilder& GraphBuilder::add_edge(NodeId u, NodeId v) {
  LB_ASSERT_MSG(!built_, "builder already consumed");
  LB_ASSERT_MSG(u < n_ && v < n_, "edge endpoint out of range");
  LB_ASSERT_MSG(u != v, "self-loops are not allowed");
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v});
  return *this;
}

Graph GraphBuilder::build() {
  LB_ASSERT_MSG(!built_, "builder already consumed");
  built_ = true;

  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.revision_ = next_revision();
  g.name_ = std::move(name_);
  g.edges_ = std::move(edges_);
  g.offsets_.assign(n_ + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adjacency_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : g.edges_) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  for (std::size_t u = 0; u < n_; ++u) {
    auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u]);
    auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u + 1]);
    std::sort(begin, end);
  }

  g.max_degree_ = 0;
  g.min_degree_ = n_ == 0 ? 0 : g.offsets_[1] - g.offsets_[0];
  for (std::size_t u = 0; u < n_; ++u) {
    const std::size_t d = g.offsets_[u + 1] - g.offsets_[u];
    g.max_degree_ = std::max(g.max_degree_, d);
    g.min_degree_ = std::min(g.min_degree_, d);
  }
  return g;
}

Graph subgraph_with_edges(const Graph& g, const std::vector<Edge>& keep,
                          std::string name) {
  GraphBuilder b(g.num_nodes(), std::move(name));
  for (const Edge& e : keep) {
    LB_ASSERT_MSG(g.has_edge(e.u, e.v), "subgraph edge not present in parent graph");
    b.add_edge(e.u, e.v);
  }
  return b.build();
}

}  // namespace lb::graph
