// CampaignRunner: execute an ExperimentPlan's cells with per-cell run
// isolation and per-base artifact reuse.
//
// Two execution modes, bit-identical by contract (the RunIsolation and
// Campaign test suites enforce it):
//
//   kCold    every cell rebuilds everything from the plan: graph base,
//            balancer (spectral schedules recomputed inside the run),
//            scratch arena, flow-ledger CSR.  This is the fresh-engine
//            oracle — run_cell_fresh executes exactly one such cell —
//            and the baseline leg of the bench_campaign ablation.
//
//   kCached  artifacts that are pure functions of the base topology are
//            computed once per base and reused across every cell on it:
//            the Graph itself (built once per GraphSpec), the spectral
//            profile (λ2/γ → SOS's optimal β), OPS's eigenvalue schedule
//            (cached inside the reused balancer instance, keyed on the
//            graph revision), and the RunArena's flow-ledger CSR (keyed
//            on the same revision).  Trajectory state cannot leak
//            between cells: Engine::run calls Balancer::on_run_begin()
//            (the run-isolation protocol, DESIGN.md §6).
//
// Scheduling: cells are sharded by graph axis index (shard = graph % S
// over S = pool-size shards), one pool task per shard.  The shard is the
// reuse domain — arenas, balancer instances and cache entries for a
// given base are touched by exactly one shard, so the cache needs no
// locks — and cell results are a pure function of (plan, cell), so the
// report is bit-identical for every pool size, LB_THREADS included.
#pragma once

#include <cstdint>
#include <memory>

#include "lb/exp/plan.hpp"
#include "lb/exp/report.hpp"

namespace lb::util {
class ThreadPool;
}

namespace lb::exp {

enum class ArtifactMode : std::uint8_t { kCold, kCached };

struct CampaignOptions {
  ArtifactMode mode = ArtifactMode::kCached;
  /// Pool the shards (and every cell's kernels) execute on; nullptr
  /// means ThreadPool::global().
  util::ThreadPool* pool = nullptr;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Execute every cell of the plan; results arrive in plan.cells()
  /// order regardless of sharding.
  CampaignReport run(const ExperimentPlan& plan);

  /// The fresh-everything oracle for one cell: rebuilds the graph from
  /// its spec, constructs a fresh balancer and arena, runs, discards.
  /// Cached campaign cells must be bit-identical to this.  `pool` is
  /// the kernel pool (nullptr = global).
  static CellResult run_cell_fresh(const ExperimentPlan& plan, const Cell& cell,
                                   util::ThreadPool* pool = nullptr);

 private:
  CampaignOptions options_;
};

}  // namespace lb::exp
