#include "lb/exp/campaign.hpp"

#include <map>
#include <optional>
#include <tuple>
#include <utility>

#include "lb/core/async.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/fos.hpp"
#include "lb/core/heterogeneous.hpp"
#include "lb/core/load.hpp"
#include "lb/core/ops.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/core/round_context.hpp"
#include "lb/core/sos.hpp"
#include "lb/graph/dynamic.hpp"
#include "lb/graph/generators.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/linalg/spectral_cache.hpp"
#include "lb/shard/sharded_engine.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/util/timer.hpp"
#include "lb/workload/initial.hpp"
#include "lb/workload/stream.hpp"

namespace lb::exp {

namespace {

/// Heterogeneous speed pattern: odd node ids run `ratio`× faster than
/// even ones.  A pure function of (n, ratio) so the campaign and the
/// fresh oracle derive identical vectors.
std::vector<double> hetero_speeds(std::size_t n, double ratio) {
  std::vector<double> speed(n, 1.0);
  for (std::size_t i = 1; i < n; i += 2) speed[i] = ratio;
  return speed;
}

/// Construct the balancer a cell runs.  `sos_beta` carries the cached
/// optimal β when the artifact cache holds the base's spectral profile
/// (static scenarios only — on dynamic sequences SOS derives β from the
/// round-1 view, which the cache does not model); nullopt lets the
/// balancer compute its own spectral quantities inside the run.
template <class T>
std::unique_ptr<core::Balancer<T>> make_balancer(const BalancerSpec& spec,
                                                 std::size_t n,
                                                 std::optional<double> sos_beta) {
  switch (spec.kind) {
    case BalancerKind::kDiffusion:
      return std::make_unique<core::DiffusionBalancer<T>>();
    case BalancerKind::kDimensionExchange:
      return std::make_unique<core::DimensionExchange<T>>();
    case BalancerKind::kRandomPartner:
      return std::make_unique<core::RandomPartnerBalancer<T>>();
    case BalancerKind::kAsync:
      return std::make_unique<core::AsyncDiffusion<T>>(
          spec.param > 0.0 ? spec.param : 0.5);
    case BalancerKind::kHeterogeneous:
      return std::make_unique<core::HeterogeneousDiffusion<T>>(
          hetero_speeds(n, spec.param > 0.0 ? spec.param : 4.0));
    case BalancerKind::kFos:
    case BalancerKind::kSos:
    case BalancerKind::kOps:
      if constexpr (std::is_same_v<T, double>) {
        if (spec.kind == BalancerKind::kFos)
          return std::make_unique<core::FirstOrderScheme>();
        if (spec.kind == BalancerKind::kSos) {
          // Explicit β (spec.param) dominates; otherwise the cached
          // optimal β when the caller holds one; otherwise auto.
          return std::make_unique<core::SecondOrderScheme>(
              spec.param > 0.0 ? std::optional<double>(spec.param) : sos_beta);
        }
        return std::make_unique<core::OptimalPolynomialScheme>();
      } else {
        LB_ASSERT_MSG(false, "continuous-only balancer paired with Tokens");
      }
  }
  LB_ASSERT_MSG(false, "unknown balancer kind");
  return nullptr;
}

std::unique_ptr<graph::GraphSequence> make_scenario(const ScenarioSpec& s,
                                                    const graph::Graph& base,
                                                    std::uint64_t seed) {
  switch (s.kind) {
    case ScenarioKind::kStatic:
      // Non-owning: cells reference the cached base with no CSR copy.
      return graph::make_static_view(base);
    case ScenarioKind::kBernoulli:
      return graph::make_bernoulli_sequence(base, s.a, seed);
    case ScenarioKind::kMarkov:
      return graph::make_markov_failure_sequence(base, s.a, s.b, seed);
    case ScenarioKind::kChurn:
      return graph::make_churn_sequence(base, s.a, s.b, seed);
    case ScenarioKind::kPartition:
      return graph::make_partition_sequence(base, s.period);
    case ScenarioKind::kWave:
      return graph::make_failure_wave_sequence(base, s.period, s.speed);
  }
  LB_ASSERT_MSG(false, "unknown scenario kind");
  return nullptr;
}

graph::Graph build_base(const ExperimentPlan& plan, std::size_t graph_index) {
  util::Rng rng(graph_build_seed(plan, graph_index));
  const GraphSpec& spec = plan.graphs[graph_index];
  return graph::make_named(spec.family, spec.n, rng);
}

/// Per-base artifacts, lazily filled.  Entries are indexed by the plan's
/// graph axis and — because cells are sharded by graph index — each
/// entry is only ever touched by the one shard owning that base, so no
/// synchronization is needed (documented in campaign.hpp).
class ArtifactCache {
 public:
  void reset(std::size_t num_graphs) {
    graphs_.assign(num_graphs, std::nullopt);
    spectral_ = std::vector<linalg::SpectralCache>(num_graphs);
  }

  const graph::Graph& base(const ExperimentPlan& plan, std::size_t gi) {
    if (!graphs_[gi]) graphs_[gi] = build_base(plan, gi);
    return *graphs_[gi];
  }

  /// The base's SpectralCache — summary()/spectrum() are Tier-1 exact
  /// (misses compute through the identical cold linalg functions), so
  /// every cell on the base shares one set of spectral artifacts and the
  /// trajectories still match the fresh oracle bit for bit.  Masked
  /// cells of the same base additionally share per-frame λ2 entries.
  linalg::SpectralCache& cache_for(std::size_t gi) { return spectral_[gi]; }

  linalg::SpectralSummary spectral(const ExperimentPlan& plan, std::size_t gi) {
    return spectral_[gi].summary(base(plan, gi));
  }

  std::vector<double> lambda2s() const {
    std::vector<double> out(spectral_.size(), 0.0);
    for (std::size_t i = 0; i < spectral_.size(); ++i) {
      if (!graphs_[i]) continue;
      if (auto s = spectral_[i].cached_summary(graphs_[i]->revision())) {
        out[i] = s->lambda2;
      }
    }
    return out;
  }

 private:
  std::vector<std::optional<graph::Graph>> graphs_;
  std::vector<linalg::SpectralCache> spectral_;
};

/// The cell body shared by every path (cached shard, cold shard, fresh
/// oracle): scenario + workload construction, target derivation, run.
template <class T>
CellResult run_cell_impl(const ExperimentPlan& plan, const Cell& cell,
                         const graph::Graph& base, core::Balancer<T>& balancer,
                         core::RunArena<T>& arena, util::ThreadPool* pool,
                         linalg::SpectralCache* spectral_cache) {
  const util::Stopwatch setup_watch;
  CellResult result;
  result.cell = cell;

  auto seq = make_scenario(plan.scenarios[cell.scenario], base,
                           scenario_seed(plan, cell));
  const std::size_t n = base.num_nodes();
  const WorkloadSpec& wl = plan.workloads[cell.workload];
  util::Rng workload_rng(workload_seed(plan, cell));
  const T total = static_cast<T>(wl.total_per_node * static_cast<double>(n));
  std::vector<T> load = workload::make_named<T>(wl.name, n, total, workload_rng);

  core::EngineConfig config = plan.engine;
  config.pool = pool;
  config.seed = engine_seed(plan, cell);
  // Open-system cells attach their traffic stream; the stream seed is
  // derived like the workload seed (balancer/scalar excluded), so cells
  // differing only in balancer face identical traffic.  kNone cells
  // leave config.stream null and run the exact closed-system path.
  std::unique_ptr<workload::Stream<T>> stream =
      workload::make_stream<T>(plan.streams[cell.stream], n,
                               stream_seed(plan, cell));
  config.stream = stream.get();
  // kCached passes the base's cache (Tier-1 exact on the schedule paths,
  // so the trajectory matches the nullptr cold oracle bit for bit); the
  // fresh/cold paths pass nullptr.  Safe under sharded execution too:
  // plan_round/step run on the round-loop thread only.
  config.spectral_cache = spectral_cache;
  // The stopping rule is relative: Φ <= ε · Φ(L⁰), with Φ(L⁰) from the
  // sequential summarize so every execution path derives the same target.
  config.target_potential = plan.epsilon * core::summarize(load).potential;
  result.setup_seconds = setup_watch.elapsed_seconds();

  const util::Stopwatch run_watch;
  const std::size_t domains =
      plan.shards.empty() ? 1 : plan.shards[cell.shard];
  if (domains > 1) {
    // Sharded execution is its own runtime (domain CSR slices, comm
    // engine) — the shared arena's amortized ledger is not reused, and
    // the RunResult is bit-identical to the arena path regardless.
    shard::ShardConfig shard_cfg;
    shard_cfg.domains = domains;
    result.run = shard::run(balancer, *seq, load, config, shard_cfg);
  } else {
    result.run = core::run(balancer, *seq, load, config, arena);
  }
  result.run_seconds = run_watch.elapsed_seconds();
  return result;
}

/// Scalar-dispatched fresh cell (the cold path).
template <class T>
CellResult run_cell_fresh_typed(const ExperimentPlan& plan, const Cell& cell,
                                util::ThreadPool* pool) {
  const util::Stopwatch build_watch;
  const graph::Graph base = build_base(plan, cell.graph);
  const double graph_seconds = build_watch.elapsed_seconds();

  auto balancer = make_balancer<T>(plan.balancers[cell.balancer],
                                   base.num_nodes(), std::nullopt);
  core::RunArena<T> arena;
  CellResult result = run_cell_impl(plan, cell, base, *balancer, arena, pool,
                                    /*spectral_cache=*/nullptr);
  result.setup_seconds += graph_seconds;
  return result;
}

/// One shard's reusable state (kCached): arenas whose flow-ledger CSR is
/// keyed on the base revision, and balancer instances keyed on
/// (balancer, graph, scenario) so spectral schedules survive across the
/// workload/scalar/seed axes while on_run_begin() wipes trajectory state.
struct ShardState {
  core::RunArena<double> real_arena;
  core::RunArena<std::int64_t> token_arena;
  using Key = std::tuple<std::size_t, std::size_t, std::size_t>;
  std::map<Key, std::unique_ptr<core::Balancer<double>>> real_balancers;
  std::map<Key, std::unique_ptr<core::Balancer<std::int64_t>>> token_balancers;

  template <class T>
  core::RunArena<T>& arena() {
    if constexpr (std::is_same_v<T, double>) {
      return real_arena;
    } else {
      return token_arena;
    }
  }

  template <class T>
  std::map<Key, std::unique_ptr<core::Balancer<T>>>& balancers() {
    if constexpr (std::is_same_v<T, double>) {
      return real_balancers;
    } else {
      return token_balancers;
    }
  }
};

template <class T>
CellResult run_cell_cached(const ExperimentPlan& plan, const Cell& cell,
                           ArtifactCache& cache, ShardState& shard,
                           util::ThreadPool* pool) {
  const graph::Graph& base = cache.base(plan, cell.graph);
  const BalancerSpec& spec = plan.balancers[cell.balancer];

  const ShardState::Key key{cell.balancer, cell.graph, cell.scenario};
  auto& instances = shard.balancers<T>();
  auto it = instances.find(key);
  if (it == instances.end()) {
    // SOS on a static scenario takes its optimal β from the cached
    // spectral profile; spectral_summary derives γ through the identical
    // lambda2/lambda_max path diffusion_gamma uses, so the value — and
    // therefore the trajectory — matches the cold path's bit for bit.
    std::optional<double> sos_beta;
    if constexpr (std::is_same_v<T, double>) {
      if (spec.kind == BalancerKind::kSos && spec.param <= 0.0) {
        // Auto-β SOS pairs only with static scenarios (plan filter), so
        // the base's cached spectrum IS the run's spectrum.
        sos_beta = core::SecondOrderScheme::optimal_beta(
            cache.spectral(plan, cell.graph).gamma);
      }
    }
    it = instances.emplace(key, make_balancer<T>(spec, base.num_nodes(), sos_beta))
             .first;
  }
  return run_cell_impl(plan, cell, base, *it->second, shard.arena<T>(), pool,
                       &cache.cache_for(cell.graph));
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignOptions options) : options_(options) {}

CellResult CampaignRunner::run_cell_fresh(const ExperimentPlan& plan,
                                          const Cell& cell,
                                          util::ThreadPool* pool) {
  return cell.scalar == Scalar::kReal
             ? run_cell_fresh_typed<double>(plan, cell, pool)
             : run_cell_fresh_typed<std::int64_t>(plan, cell, pool);
}

CampaignReport CampaignRunner::run(const ExperimentPlan& plan) {
  const util::Stopwatch wall;
  util::ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &util::ThreadPool::global();
  const std::vector<Cell> cells = plan.cells();

  CampaignReport report;
  report.cells.resize(cells.size());

  // Shard by graph axis: every cell of a base lands in the same shard,
  // making the shard the lock-free reuse domain for that base's cache
  // entries, balancer instances and arena CSR.
  const std::size_t num_shards = std::max<std::size_t>(pool->size(), 1);
  std::vector<std::vector<std::size_t>> shard_cells(num_shards);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    shard_cells[cells[i].graph % num_shards].push_back(i);
  }

  ArtifactCache cache;
  cache.reset(plan.graphs.size());

  for (std::size_t s = 0; s < num_shards; ++s) {
    if (shard_cells[s].empty()) continue;
    pool->submit([&, s] {
      ShardState shard;
      for (std::size_t idx : shard_cells[s]) {
        const Cell& cell = cells[idx];
        if (options_.mode == ArtifactMode::kCold) {
          report.cells[idx] = run_cell_fresh(plan, cell, pool);
        } else if (cell.scalar == Scalar::kReal) {
          report.cells[idx] = run_cell_cached<double>(plan, cell, cache, shard, pool);
        } else {
          report.cells[idx] =
              run_cell_cached<std::int64_t>(plan, cell, cache, shard, pool);
        }
      }
    });
  }
  pool->wait_idle();

  if (options_.mode == ArtifactMode::kCached) {
    report.lambda2_per_graph = cache.lambda2s();
  }
  report.wall_seconds = wall.elapsed_seconds();
  return report;
}

}  // namespace lb::exp
