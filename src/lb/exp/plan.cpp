#include "lb/exp/plan.hpp"

#include <cstdio>

#include "lb/util/assert.hpp"
#include "lb/util/rng.hpp"

namespace lb::exp {

const char* to_string(Scalar s) {
  return s == Scalar::kReal ? "real" : "tokens";
}

std::string GraphSpec::label() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s/%zu", family.c_str(), n);
  return buf;
}

std::string ScenarioSpec::label() const {
  char buf[96];
  switch (kind) {
    case ScenarioKind::kStatic:
      return "static";
    case ScenarioKind::kBernoulli:
      std::snprintf(buf, sizeof buf, "bernoulli(keep=%.2f)", a);
      return buf;
    case ScenarioKind::kMarkov:
      std::snprintf(buf, sizeof buf, "markov(fail=%.2f,rec=%.2f)", a, b);
      return buf;
    case ScenarioKind::kChurn:
      std::snprintf(buf, sizeof buf, "churn(alive=%.2f,turn=%.2f)", a, b);
      return buf;
    case ScenarioKind::kPartition:
      std::snprintf(buf, sizeof buf, "partition(period=%zu)", period);
      return buf;
    case ScenarioKind::kWave:
      std::snprintf(buf, sizeof buf, "wave(w=%zu,s=%zu)", period, speed);
      return buf;
  }
  return "?";
}

ScenarioSpec static_scenario() { return {}; }

ScenarioSpec bernoulli_scenario(double keep_prob) {
  ScenarioSpec s;
  s.kind = ScenarioKind::kBernoulli;
  s.a = keep_prob;
  return s;
}

ScenarioSpec markov_scenario(double fail_prob, double recover_prob) {
  ScenarioSpec s;
  s.kind = ScenarioKind::kMarkov;
  s.a = fail_prob;
  s.b = recover_prob;
  return s;
}

ScenarioSpec churn_scenario(double alive_fraction, double turnover) {
  ScenarioSpec s;
  s.kind = ScenarioKind::kChurn;
  s.a = alive_fraction;
  s.b = turnover;
  return s;
}

ScenarioSpec partition_scenario(std::size_t period) {
  ScenarioSpec s;
  s.kind = ScenarioKind::kPartition;
  s.period = period;
  return s;
}

ScenarioSpec wave_scenario(std::size_t width, std::size_t speed) {
  ScenarioSpec s;
  s.kind = ScenarioKind::kWave;
  s.period = width;
  s.speed = speed;
  return s;
}

std::string BalancerSpec::label() const {
  char buf[64];
  switch (kind) {
    case BalancerKind::kDiffusion:
      return "diffusion";
    case BalancerKind::kFos:
      return "fos";
    case BalancerKind::kSos:
      if (param > 0.0) {
        std::snprintf(buf, sizeof buf, "sos(b=%.2f)", param);
        return buf;
      }
      return "sos";
    case BalancerKind::kOps:
      return "ops";
    case BalancerKind::kDimensionExchange:
      return "dimexch";
    case BalancerKind::kRandomPartner:
      return "randpartner";
    case BalancerKind::kAsync:
      std::snprintf(buf, sizeof buf, "async(p=%.2f)", param > 0.0 ? param : 0.5);
      return buf;
    case BalancerKind::kHeterogeneous:
      std::snprintf(buf, sizeof buf, "hetero(r=%.0f)", param > 0.0 ? param : 4.0);
      return buf;
  }
  return "?";
}

bool supports_scalar(BalancerKind kind, Scalar scalar) {
  if (scalar == Scalar::kReal) return true;
  switch (kind) {
    case BalancerKind::kFos:
    case BalancerKind::kSos:
    case BalancerKind::kOps:
      return false;  // affine/polynomial combinations need fractional loads
    default:
      return true;
  }
}

bool supports_stream(const BalancerSpec& spec, workload::StreamKind stream) {
  if (stream == workload::StreamKind::kNone) return true;
  // OPS's finite polynomial schedule drives a FIXED load vector to the
  // balanced point; traffic mid-schedule invalidates the optimality
  // argument (and the schedule-position assert), so OPS cells stay
  // closed-system.
  return spec.kind != BalancerKind::kOps;
}

bool supports_scenario(const BalancerSpec& spec, ScenarioKind scenario) {
  // OPS's schedule is bound to one spectrum; a topology change mid-run
  // would trip its mid-schedule assert by design.  Auto-β SOS likewise
  // derives β from one spectrum (and a sparse dynamic round-1 view can
  // be disconnected, where no optimal β exists).
  if (spec.kind == BalancerKind::kOps) return scenario == ScenarioKind::kStatic;
  if (spec.kind == BalancerKind::kSos && spec.param <= 0.0) {
    return scenario == ScenarioKind::kStatic;
  }
  return true;
}

std::vector<Cell> ExperimentPlan::cells() const {
  LB_ASSERT_MSG(!graphs.empty(), "plan has no graphs");
  LB_ASSERT_MSG(!balancers.empty(), "plan has no balancers");
  LB_ASSERT_MSG(!scenarios.empty() && !workloads.empty() && !streams.empty() &&
                    !scalars.empty() && !shards.empty() && !seeds.empty(),
                "plan has an empty axis");
  std::vector<Cell> out;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    for (std::size_t sc = 0; sc < scenarios.size(); ++sc) {
      for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t st = 0; st < streams.size(); ++st) {
          for (std::size_t b = 0; b < balancers.size(); ++b) {
            if (!supports_scenario(balancers[b], scenarios[sc].kind)) continue;
            if (!supports_stream(balancers[b], streams[st].kind)) continue;
            for (Scalar s : scalars) {
              if (!supports_scalar(balancers[b].kind, s)) continue;
              // The seed axis stays innermost (aggregation groups are
              // contiguous replicate runs), so shards sits just outside it.
              for (std::size_t k = 0; k < shards.size(); ++k) {
                for (std::size_t r = 0; r < seeds.size(); ++r) {
                  out.push_back(Cell{g, sc, w, st, b, s, k, r});
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

std::string ExperimentPlan::cell_label(const Cell& c) const {
  std::string workload_label = workloads[c.workload].label();
  // Open-system cells tag the workload segment ("spike+poisson") so
  // closed-system plans keep their historical labels and segment count.
  if (streams[c.stream].kind != workload::StreamKind::kNone) {
    workload_label += "+" + streams[c.stream].label();
  }
  std::string label = graphs[c.graph].label() + "/" + scenarios[c.scenario].label() +
                      "/" + workload_label + "/" +
                      balancers[c.balancer].label() + "/" + to_string(c.scalar);
  // Only non-default domain counts mark the label, so single-K plans keep
  // their historical cell names.
  if (c.shard < shards.size() && shards[c.shard] > 1) {
    label += "/k" + std::to_string(shards[c.shard]);
  }
  return label + "/s" + std::to_string(c.seed_index);
}

namespace {

/// Deterministic chained mix: each argument perturbs the state the same
/// way regardless of platform.  Axis salts keep the streams disjoint.
std::uint64_t mix(std::uint64_t seed, std::initializer_list<std::uint64_t> parts) {
  util::SplitMix64 sm(seed);
  std::uint64_t h = sm.next();
  for (std::uint64_t p : parts) {
    util::SplitMix64 step(h ^ p);
    h = step.next();
  }
  return h;
}

constexpr std::uint64_t kGraphSalt = 0x6772617068ULL;     // "graph"
constexpr std::uint64_t kScenarioSalt = 0x7363656eULL;    // "scen"
constexpr std::uint64_t kWorkloadSalt = 0x776f726bULL;    // "work"
constexpr std::uint64_t kEngineSalt = 0x656e67ULL;        // "eng"
constexpr std::uint64_t kStreamSalt = 0x7374726dULL;      // "strm"

}  // namespace

std::uint64_t graph_build_seed(const ExperimentPlan& plan, std::size_t graph_index) {
  return mix(plan.master_seed, {kGraphSalt, graph_index});
}

// scenario_seed and workload_seed deliberately exclude the balancer and
// scalar coordinates: cells that differ only in those axes face the SAME
// failure pattern and the same initial load shape (common random
// numbers), so the report's cross-balancer comparisons are paired
// instead of each balancer drawing its own instances.

std::uint64_t scenario_seed(const ExperimentPlan& plan, const Cell& c) {
  return mix(plan.master_seed, {kScenarioSalt, c.graph, c.scenario, c.workload,
                                plan.seeds[c.seed_index]});
}

std::uint64_t workload_seed(const ExperimentPlan& plan, const Cell& c) {
  return mix(plan.master_seed, {kWorkloadSalt, c.graph, c.scenario, c.workload,
                                plan.seeds[c.seed_index]});
}

std::uint64_t engine_seed(const ExperimentPlan& plan, const Cell& c) {
  return mix(plan.master_seed, {kEngineSalt, c.graph, c.scenario, c.workload,
                                c.balancer, static_cast<std::uint64_t>(c.scalar),
                                plan.seeds[c.seed_index]});
}

std::uint64_t stream_seed(const ExperimentPlan& plan, const Cell& c) {
  return mix(plan.master_seed, {kStreamSalt, c.graph, c.scenario, c.workload,
                                c.stream, plan.seeds[c.seed_index]});
}

}  // namespace lb::exp
