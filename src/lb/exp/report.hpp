// CampaignReport: per-cell results plus replicate aggregation.
//
// Repeated stochastic dynamics are characterized over many independent
// trajectories, not single runs (cf. the repeated balls-into-bins and
// coalescence analyses in the paper's related work), so the report
// groups the plan's seed axis into replicate sets and summarizes each
// with util::RunningStats: mean/CI of rounds-to-ε, final-Φ statistics,
// and Φ-trajectory quantiles (Φ sampled at the 25/50/75% checkpoint of
// each replicate's own trajectory, then quantiled across replicates —
// requires EngineConfig::record_trace).  Emitters: per-cell CSV,
// aggregate CSV, and a machine-readable JSON artifact for the bench
// harness.
#pragma once

#include <string>
#include <vector>

#include "lb/core/engine.hpp"
#include "lb/exp/plan.hpp"
#include "lb/util/stats.hpp"

namespace lb::exp {

/// One executed grid cell.
struct CellResult {
  Cell cell;
  core::RunResult run;
  /// Cell-local setup: graph/scenario/workload/balancer construction and
  /// the initial summary.  In cold mode this includes the per-cell graph
  /// rebuild and (inside run.step_seconds) per-cell spectral work that
  /// the cached mode amortizes across the base's cells.
  double setup_seconds = 0.0;
  /// Engine::run wall clock.
  double run_seconds = 0.0;
};

/// One replicate group: every seed of a (graph, scenario, workload,
/// balancer, scalar) coordinate.
struct AggregateRow {
  Cell key;           ///< group coordinates (seed_index = 0)
  std::string label;  ///< "graph/scenario/workload/balancer/scalar"
  std::size_t replicates = 0;
  std::size_t reached = 0;  ///< replicates that hit Φ <= ε·Φ(L⁰)
  /// Rounds executed per replicate (the round budget when ε was missed).
  util::RunningStats rounds;
  util::RunningStats final_potential;
  // Φ-trajectory quantiles across replicates (0 without traces):
  double phi_q25_med = 0.0;  ///< median over replicates of Φ at 25% of the run
  double phi_q50_med = 0.0;  ///< ... at 50%
  double phi_q75_med = 0.0;  ///< ... at 75%
  double phi_q50_p10 = 0.0;  ///< 10th percentile of Φ at 50%
  double phi_q50_p90 = 0.0;  ///< 90th percentile of Φ at 50%
  /// λ2 of the base graph when the campaign's artifact cache computed a
  /// spectral profile for it (cached mode); 0 otherwise.
  double lambda2 = 0.0;
};

class CampaignReport {
 public:
  std::vector<CellResult> cells;  ///< plan.cells() order
  /// Whole campaign wall clock (artifact building included — the cached
  /// mode's one-time work is amortized into us_per_cell, keeping the
  /// cold-vs-cached comparison honest).
  double wall_seconds = 0.0;
  /// λ2 per graph axis index where the artifact cache holds a spectral
  /// profile; empty in cold mode.
  std::vector<double> lambda2_per_graph;

  double us_per_cell() const {
    return cells.empty() ? 0.0
                         : wall_seconds * 1e6 / static_cast<double>(cells.size());
  }

  /// Replicate aggregation in plan order (the seed axis is innermost, so
  /// each group is a contiguous run of cells).
  std::vector<AggregateRow> aggregate(const ExperimentPlan& plan) const;

  /// Per-cell CSV: one row per executed cell with timings.
  std::string cells_csv(const ExperimentPlan& plan) const;
  /// Aggregate CSV: one row per replicate group.
  std::string aggregate_csv(const ExperimentPlan& plan) const;
  /// Machine-readable campaign summary; returns false if the file could
  /// not be written.
  bool write_json(const ExperimentPlan& plan, const std::string& path) const;
};

}  // namespace lb::exp
