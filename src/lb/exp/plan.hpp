// ExperimentPlan: the declarative (graph × scenario × workload ×
// stream × balancer × scalar × seed) grid the campaign layer executes.
//
// The ROADMAP north-star is many cells per process — every topology
// family, every dynamic scenario, every balancer, both scalar domains,
// several replicate seeds — not one hand-wired Engine::run per binary.
// A plan names the axes declaratively; cells() expands the filtered
// cross product (continuous-only schemes never pair with Tokens, OPS
// never pairs with a dynamic scenario) in a deterministic order with
// the graph axis outermost, so consecutive cells share a base graph and
// the campaign's per-base artifact cache (lb/exp/campaign.hpp) gets
// maximal reuse.
//
// Everything a cell consumes — the graph structure, the initial
// workload, the scenario's failure pattern, the engine's round RNG — is
// derived deterministically from (master_seed, cell coordinates), so a
// cell is a pure function of (plan, cell): the campaign runner and the
// fresh-everything oracle (CampaignRunner::run_cell_fresh) must produce
// bit-identical RunResults.  Replicate aggregation over the seed axis
// follows the repeated-trajectory methodology of the related work
// (Cancrini–Posta's repeated balls-into-bins mixing, Loh–Lubetzky's
// coalescence analysis): report mean/CI over independent trajectories,
// never a single run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lb/core/engine.hpp"
#include "lb/workload/stream.hpp"

namespace lb::exp {

/// Scalar domain of a cell: kReal runs double loads (the continuous
/// model), kTokens runs std::int64_t loads (the discrete model).
enum class Scalar : std::uint8_t { kReal, kTokens };
const char* to_string(Scalar s);

/// A base topology, named by graph::make_named family.  Built once per
/// campaign (cached by axis index) from a seed derived off the plan.
struct GraphSpec {
  std::string family;  ///< one of graph::named_families()
  std::size_t n = 64;  ///< requested size (make_named rounds to realizable)

  std::string label() const;
};

/// Dynamic-topology scenario over a cell's base graph, mirroring the
/// graph/dynamic.hpp generators.  kStatic runs the base unmodified (and
/// is the only scenario OPS cells accept).
enum class ScenarioKind : std::uint8_t {
  kStatic,
  kBernoulli,  ///< keep each edge with probability a, fresh per round
  kMarkov,     ///< per-edge UP/DOWN chain: fail a, recover b
  kChurn,      ///< alive fraction a, turnover b per round
  kPartition,  ///< whole for `period` rounds, cut in half for `period`
  kWave,       ///< sweeping node-down window, width w, speed s
};

struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kStatic;
  double a = 0.0;         ///< kind-specific (keep / fail / alive fraction)
  double b = 0.0;         ///< kind-specific (recover / turnover)
  std::size_t period = 0; ///< partition period / wave width
  std::size_t speed = 1;  ///< wave speed

  std::string label() const;
};

ScenarioSpec static_scenario();
ScenarioSpec bernoulli_scenario(double keep_prob);
ScenarioSpec markov_scenario(double fail_prob, double recover_prob);
ScenarioSpec churn_scenario(double alive_fraction, double turnover);
ScenarioSpec partition_scenario(std::size_t period);
ScenarioSpec wave_scenario(std::size_t width, std::size_t speed);

/// The eight balancers of the library, as declarative specs.
enum class BalancerKind : std::uint8_t {
  kDiffusion,          ///< Algorithm 1 (continuous + discrete)
  kFos,                ///< Cybenko first-order scheme (continuous)
  kSos,                ///< second-order scheme (continuous; β from the
                       ///< cached spectral profile, or auto when cold)
  kOps,                ///< optimal polynomial scheme (continuous, static)
  kDimensionExchange,  ///< Ghosh–Muthukrishnan random matchings
  kRandomPartner,      ///< Algorithm 2 (ignores the network)
  kAsync,              ///< async diffusion, activation probability `param`
  kHeterogeneous,      ///< Elsässer–Monien–Preis speeds; odd nodes run
                       ///< `param`× faster than even ones
};

struct BalancerSpec {
  BalancerKind kind = BalancerKind::kDiffusion;
  /// kAsync: activation probability p (default 0.5);
  /// kHeterogeneous: fast/slow speed ratio (default 4);
  /// kSos: explicit β in [1, 2), or 0 to derive the optimal β from the
  /// base spectrum (auto-β pairs with static scenarios only — a dynamic
  /// round-1 view has no meaningful single spectrum).
  double param = 0.0;

  std::string label() const;
};

/// Which scalar domains a balancer kind can run.
bool supports_scalar(BalancerKind kind, Scalar scalar);
/// Which scenarios a spec accepts: OPS and auto-β SOS require a static
/// topology (their schedules are bound to one spectrum), everything else
/// accepts any sequence.
bool supports_scenario(const BalancerSpec& spec, ScenarioKind scenario);
/// Which traffic streams a spec accepts: OPS requires the closed system
/// (its finite polynomial schedule drives Φ to a fixed target; traffic
/// mid-schedule would invalidate the optimality argument), everything
/// else composes with any stream.
bool supports_stream(const BalancerSpec& spec, workload::StreamKind stream);

/// Initial load shape, named by workload::make_named.  The total scales
/// with the cell's node count (total = total_per_node · n) so grids over
/// several sizes stay comparable.
struct WorkloadSpec {
  std::string name = "spike";  ///< one of workload::named_workloads()
  double total_per_node = 1000.0;

  std::string label() const { return name; }
};

/// One grid cell: indices into the plan's axes plus the replicate index.
struct Cell {
  std::size_t graph = 0;
  std::size_t scenario = 0;
  std::size_t workload = 0;
  std::size_t stream = 0;  ///< index into ExperimentPlan::streams
  std::size_t balancer = 0;
  Scalar scalar = Scalar::kReal;
  std::size_t shard = 0;  ///< index into ExperimentPlan::shards
  std::size_t seed_index = 0;
};

struct ExperimentPlan {
  std::vector<GraphSpec> graphs;
  std::vector<ScenarioSpec> scenarios{ScenarioSpec{}};
  std::vector<WorkloadSpec> workloads{WorkloadSpec{}};
  /// Open-system traffic axis (lb/workload/stream.hpp).  The default
  /// single kNone entry is the closed system: existing plans expand to
  /// exactly their historical cells, and because the graph/scenario/
  /// workload/engine seed derivations deliberately exclude this
  /// coordinate (only stream_seed consumes it), those cells keep their
  /// historical bits too.
  std::vector<workload::StreamSpec> streams{workload::StreamSpec{}};
  std::vector<BalancerSpec> balancers;
  std::vector<Scalar> scalars{Scalar::kReal, Scalar::kTokens};
  /// Ownership-domain counts (lb/shard/).  K = 1 runs the shared-memory
  /// engine; K > 1 runs the sharded engine at that partition count.  The
  /// per-cell seed derivation deliberately ignores this axis: the sharded
  /// engine is bit-identical to the oracle, so cells differing only in K
  /// must produce identical trajectories — the axis varies only the comm
  /// observability (and cost), which is exactly what it is for.
  std::vector<std::size_t> shards{1};
  /// Replicate count = seeds.size(); the values only salt the per-cell
  /// seed derivation (two distinct values give independent trajectories).
  std::vector<std::uint64_t> seeds{1};

  /// Per-cell engine settings.  `seed`, `pool` and `target_potential`
  /// are overwritten per cell: the target becomes epsilon · Φ(L⁰).
  core::EngineConfig engine;
  /// Stop a cell once Φ <= epsilon · Φ(L⁰).
  double epsilon = 1e-4;
  /// Root of every derived seed (graph build, workload, scenario, run).
  std::uint64_t master_seed = 42;

  /// The filtered cross product in deterministic order: graph outermost,
  /// then scenario, workload, balancer, scalar, seed innermost.
  std::vector<Cell> cells() const;

  /// Human-readable cell coordinates ("torus2d(8x8)/static/spike/sos/real/s0").
  std::string cell_label(const Cell& c) const;

  /// Number of nodes the cell's graph spec requests (before rounding).
  const GraphSpec& graph_of(const Cell& c) const { return graphs[c.graph]; }
};

// --- Deterministic per-cell seed derivation --------------------------
// Chained SplitMix64 over the master seed, an axis salt, and the cell
// coordinates.  Exposed so the campaign runner, the fresh-cell oracle
// and the tests all derive the identical streams.  Workload and
// scenario seeds ignore the balancer/scalar coordinates — cells
// differing only in those axes see the same initial load and the same
// failure pattern (common random numbers), pairing the report's
// cross-balancer comparisons.

std::uint64_t graph_build_seed(const ExperimentPlan& plan, std::size_t graph_index);
std::uint64_t scenario_seed(const ExperimentPlan& plan, const Cell& c);
std::uint64_t workload_seed(const ExperimentPlan& plan, const Cell& c);
std::uint64_t engine_seed(const ExperimentPlan& plan, const Cell& c);
/// Traffic-stream seed.  Like the scenario/workload seeds it excludes
/// the balancer and scalar coordinates (cells differing only in those
/// face the SAME traffic — paired comparisons), and it is the only
/// derivation that consumes the stream coordinate, so closed-system
/// cells keep their pre-stream bits.
std::uint64_t stream_seed(const ExperimentPlan& plan, const Cell& c);

}  // namespace lb::exp
