#include "lb/exp/report.hpp"

#include <cstdio>

#include "lb/util/assert.hpp"
#include "lb/util/table.hpp"

namespace lb::exp {

namespace {

bool same_group(const Cell& a, const Cell& b) {
  return a.graph == b.graph && a.scenario == b.scenario &&
         a.workload == b.workload && a.stream == b.stream &&
         a.balancer == b.balancer && a.scalar == b.scalar && a.shard == b.shard;
}

std::string group_label(const ExperimentPlan& plan, const Cell& c) {
  std::string workload_label = plan.workloads[c.workload].label();
  // Open-system groups tag the workload segment exactly like cell_label,
  // so closed-system plans keep their historical group names.
  if (c.stream < plan.streams.size() &&
      plan.streams[c.stream].kind != workload::StreamKind::kNone) {
    workload_label += "+" + plan.streams[c.stream].label();
  }
  std::string label =
      plan.graphs[c.graph].label() + "/" + plan.scenarios[c.scenario].label() +
      "/" + workload_label + "/" +
      plan.balancers[c.balancer].label() + "/" + to_string(c.scalar);
  if (c.shard < plan.shards.size() && plan.shards[c.shard] > 1) {
    label += "/k" + std::to_string(plan.shards[c.shard]);
  }
  return label;
}

/// CI half-width that degrades to 0 for single-replicate groups
/// (RunningStats returns infinity there, which %.3f would print as
/// "inf" — invalid JSON and a poisoned CSV cell).
double ci_or_zero(const util::RunningStats& s) {
  return s.count() >= 2 ? s.ci_halfwidth() : 0.0;
}

/// Φ at `frac` of one replicate's own trajectory (0 without a trace).
double phi_at_fraction(const core::Trace& trace, double frac) {
  const auto& records = trace.records();
  if (records.empty()) return 0.0;
  const std::size_t last = records.size() - 1;
  const std::size_t idx =
      static_cast<std::size_t>(frac * static_cast<double>(last) + 0.5);
  return records[std::min(idx, last)].potential;
}

}  // namespace

std::vector<AggregateRow> CampaignReport::aggregate(const ExperimentPlan& plan) const {
  std::vector<AggregateRow> rows;
  std::size_t i = 0;
  while (i < cells.size()) {
    // The seed axis is innermost in plan.cells(), so a replicate group is
    // a contiguous run.
    std::size_t j = i;
    while (j < cells.size() && same_group(cells[i].cell, cells[j].cell)) ++j;

    AggregateRow row;
    row.key = cells[i].cell;
    row.key.seed_index = 0;
    row.label = group_label(plan, row.key);
    row.replicates = j - i;
    if (row.key.graph < lambda2_per_graph.size()) {
      row.lambda2 = lambda2_per_graph[row.key.graph];
    }

    std::vector<double> phi25, phi50, phi75;
    for (std::size_t k = i; k < j; ++k) {
      const core::RunResult& r = cells[k].run;
      if (r.reached_target) ++row.reached;
      row.rounds.add(static_cast<double>(r.rounds));
      row.final_potential.add(r.final_potential);
      if (!r.trace.records().empty()) {
        phi25.push_back(phi_at_fraction(r.trace, 0.25));
        phi50.push_back(phi_at_fraction(r.trace, 0.50));
        phi75.push_back(phi_at_fraction(r.trace, 0.75));
      }
    }
    if (!phi50.empty()) {
      row.phi_q25_med = util::quantile(phi25, 0.5);
      row.phi_q50_med = util::quantile(phi50, 0.5);
      row.phi_q75_med = util::quantile(phi75, 0.5);
      row.phi_q50_p10 = util::quantile(phi50, 0.1);
      row.phi_q50_p90 = util::quantile(phi50, 0.9);
    }
    rows.push_back(std::move(row));
    i = j;
  }
  return rows;
}

std::string CampaignReport::cells_csv(const ExperimentPlan& plan) const {
  // Open-system columns appear only when the plan carries a live stream
  // axis, so closed-system campaign CSVs stay byte-identical to
  // pre-stream output (golden comparisons, bench ablation CSVs).
  bool open = false;
  for (const workload::StreamSpec& s : plan.streams) {
    if (s.kind != workload::StreamKind::kNone) open = true;
  }
  std::vector<std::string> columns{
      "graph",      "scenario",   "workload",       "balancer", "scalar",
      "domains",    "seed",       "rounds",         "reached",  "phi_initial",
      "phi_final",  "discrepancy", "messages",      "boundary_bytes",
      "setup_us",   "run_us"};
  if (open) {
    columns.insert(columns.begin() + 3, "stream");
    columns.push_back("arrivals");
    columns.push_back("departures");
    columns.push_back("net_load");
  }
  util::Table table(columns);
  for (const CellResult& c : cells) {
    const std::size_t domains =
        c.cell.shard < plan.shards.size() ? plan.shards[c.cell.shard] : 1;
    util::Table& row = table.row();
    row.add(plan.graphs[c.cell.graph].label())
        .add(plan.scenarios[c.cell.scenario].label())
        .add(plan.workloads[c.cell.workload].label());
    if (open) row.add(plan.streams[c.cell.stream].label());
    row.add(plan.balancers[c.cell.balancer].label())
        .add(to_string(c.cell.scalar))
        .add(static_cast<std::int64_t>(domains))
        .add(static_cast<std::int64_t>(c.cell.seed_index))
        .add(static_cast<std::int64_t>(c.run.rounds))
        .add(c.run.reached_target ? 1 : 0)
        .add_sci(c.run.initial_potential)
        .add_sci(c.run.final_potential)
        .add(c.run.final_discrepancy)
        .add(static_cast<std::int64_t>(c.run.comm.messages))
        .add(static_cast<std::int64_t>(c.run.comm.boundary_bytes))
        .add(c.setup_seconds * 1e6, 6)
        .add(c.run_seconds * 1e6, 6);
    if (open) {
      row.add(c.run.stream_arrivals)
          .add(c.run.stream_departures)
          .add(c.run.stream_arrivals - c.run.stream_departures);
    }
  }
  return table.to_csv();
}

std::string CampaignReport::aggregate_csv(const ExperimentPlan& plan) const {
  util::Table table({"group", "replicates", "reached", "rounds_mean", "rounds_ci95",
                     "rounds_min", "rounds_max", "phi_final_mean", "phi_mid_p10",
                     "phi_mid_p50", "phi_mid_p90", "lambda2"});
  for (const AggregateRow& row : aggregate(plan)) {
    table.row()
        .add(row.label)
        .add(static_cast<std::int64_t>(row.replicates))
        .add(static_cast<std::int64_t>(row.reached))
        .add(row.rounds.mean())
        .add(ci_or_zero(row.rounds))
        .add(row.rounds.min())
        .add(row.rounds.max())
        .add_sci(row.final_potential.mean())
        .add_sci(row.phi_q50_p10)
        .add_sci(row.phi_q50_med)
        .add_sci(row.phi_q50_p90)
        .add(row.lambda2, 4);
  }
  return table.to_csv();
}

bool CampaignReport::write_json(const ExperimentPlan& plan,
                                const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"campaign\": {\"cells\": %zu, \"wall_seconds\": %.6f, "
               "\"us_per_cell\": %.3f, \"epsilon\": %g},\n  \"groups\": [\n",
               cells.size(), wall_seconds, us_per_cell(), plan.epsilon);
  const std::vector<AggregateRow> rows = aggregate(plan);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AggregateRow& r = rows[i];
    std::fprintf(f,
                 "    {\"group\": \"%s\", \"replicates\": %zu, \"reached\": %zu, "
                 "\"rounds_mean\": %.3f, \"rounds_ci95\": %.3f, "
                 "\"phi_final_mean\": %.6g, \"phi_mid_p50\": %.6g, "
                 "\"lambda2\": %.6g}%s\n",
                 r.label.c_str(), r.replicates, r.reached, r.rounds.mean(),
                 ci_or_zero(r.rounds), r.final_potential.mean(), r.phi_q50_med,
                 r.lambda2, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace lb::exp
