// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component of the library (random graphs, random
// matchings, Algorithm 2 partner choice, workload generators) takes an
// explicit Rng so that runs are reproducible from a single seed.  The
// engine is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64,
// which is the standard recipe for avoiding correlated low-entropy seeds.
//
// Rng satisfies the C++ UniformRandomBitGenerator concept, so it can also
// be used with <random> distributions, but the methods provided here are
// preferred: they are deterministic across standard-library
// implementations, which <random> distributions are not.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace lb::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state, and as a
/// cheap standalone generator for seed derivation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  /// Raw 64 random bits.
  result_type operator()() { return next_u64(); }
  result_type next_u64();

  /// Derive an independent child generator; deterministic given this
  /// generator's current state.  Used to hand seeds to worker threads.
  Rng split();

  /// Uniform integer in [0, bound). bound must be > 0.  Uses Lemire's
  /// nearly-divisionless method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool next_bool(double p);

  /// Standard normal via Box-Muller (cached second value is not kept, to
  /// stay stateless; cost is acceptable for our uses).
  double next_gaussian();

  /// Binomial(n, p) sample.  Exact inversion for small n*p, otherwise a
  /// normal approximation with continuity correction clamped to [0, n]
  /// (adequate for the Monte-Carlo experiments of Lemma 9 where n*p ~ 1).
  std::int64_t next_binomial(std::int64_t n, double p);

  /// Geometric: number of failures before first success, p in (0, 1].
  std::int64_t next_geometric(double p);

  /// Poisson(mean) sample.  Knuth's product-of-uniforms inversion for
  /// small means, otherwise a normal approximation with continuity
  /// correction clamped at 0 (the same split next_binomial uses) —
  /// adequate for the open-system traffic streams where the mean is the
  /// per-round event rate.
  std::int64_t next_poisson(double mean);

  /// Zipf-distributed integer in [1, n] with exponent s >= 0, via inverse
  /// CDF on a precomputable harmonic table-free rejection scheme.
  std::int64_t next_zipf(std::int64_t n, double s);

  /// In-place Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (Floyd's algorithm);
  /// result is unsorted.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace lb::util
