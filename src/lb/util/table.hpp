// Column-aligned plain-text tables and CSV output for the bench harness.
//
// Every experiment binary prints its results as one of these tables so the
// output reads like the rows a paper would report; `to_csv` gives the same
// data in machine-readable form for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lb::util {

class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& v);
  Table& add(const char* v);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  /// Doubles are rendered with %.*g (default 5 significant digits).
  Table& add(double v, int precision = 5);
  /// Scientific notation, e.g. potentials spanning many decades.
  Table& add_sci(double v, int precision = 3);

  std::size_t rows() const { return cells_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Render aligned text with a rule under the header.
  std::string to_string() const;
  /// Render as CSV (headers + rows).
  std::string to_csv() const;

  /// Print to stream with an optional caption line above.
  void print(std::ostream& os, const std::string& caption = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format helper: "%.3g"-style compact double.
std::string format_double(double v, int precision = 5);
std::string format_sci(double v, int precision = 3);

}  // namespace lb::util
