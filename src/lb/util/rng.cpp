#include "lb/util/rng.hpp"

#include <cmath>
#include <unordered_set>

#include "lb/util/assert.hpp"

namespace lb::util {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro's all-zero state is absorbing; SplitMix64 cannot produce four
  // zero outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() {
  // Draw a fresh seed from this stream; the child is expanded through
  // SplitMix64 so parent and child states are decorrelated.
  return Rng(next_u64());
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  LB_ASSERT_MSG(bound > 0, "next_below bound must be positive");
  // Lemire's method: multiply-shift with rejection of the biased region.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  LB_ASSERT_MSG(lo <= hi, "next_in requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  LB_ASSERT_MSG(lo <= hi, "next_double requires lo <= hi");
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586476925 * u2);
}

std::int64_t Rng::next_binomial(std::int64_t n, double p) {
  LB_ASSERT_MSG(n >= 0, "binomial n must be non-negative");
  LB_ASSERT_MSG(p >= 0.0 && p <= 1.0, "binomial p must lie in [0,1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  // Work with p <= 1/2 and mirror at the end.
  bool flipped = false;
  if (p > 0.5) {
    p = 1.0 - p;
    flipped = true;
  }
  std::int64_t k;
  const double np = static_cast<double>(n) * p;
  if (np < 30.0) {
    // Inversion by sequential search over the CDF.  O(np) expected.
    const double q = 1.0 - p;
    const double s = p / q;
    double f = std::pow(q, static_cast<double>(n));  // P[X = 0]
    double u = next_double();
    k = 0;
    while (u > f && k < n) {
      u -= f;
      ++k;
      f *= s * static_cast<double>(n - k + 1) / static_cast<double>(k);
    }
  } else {
    // Normal approximation with continuity correction; accurate to well
    // under the Monte-Carlo noise of our experiments at np >= 30.
    const double mean = np;
    const double sd = std::sqrt(np * (1.0 - p));
    double x = std::floor(mean + sd * next_gaussian() + 0.5);
    if (x < 0.0) x = 0.0;
    if (x > static_cast<double>(n)) x = static_cast<double>(n);
    k = static_cast<std::int64_t>(x);
  }
  return flipped ? n - k : k;
}

std::int64_t Rng::next_geometric(double p) {
  LB_ASSERT_MSG(p > 0.0 && p <= 1.0, "geometric p must lie in (0,1]");
  if (p == 1.0) return 0;
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return static_cast<std::int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::int64_t Rng::next_poisson(double mean) {
  LB_ASSERT_MSG(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below exp(-mean).
    // Expected draws = mean + 1, fine for per-round event rates.
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; same split as
  // next_binomial, accurate to well under Monte-Carlo noise at mean >= 30.
  double x = std::floor(mean + std::sqrt(mean) * next_gaussian() + 0.5);
  if (x < 0.0) x = 0.0;
  return static_cast<std::int64_t>(x);
}

std::int64_t Rng::next_zipf(std::int64_t n, double s) {
  LB_ASSERT_MSG(n >= 1, "zipf n must be >= 1");
  LB_ASSERT_MSG(s >= 0.0, "zipf exponent must be non-negative");
  if (n == 1) return 1;
  if (s == 0.0) return next_in(1, n);
  // Rejection sampling from the continuous envelope (Devroye).  Handles
  // s == 1 via the logarithmic integral.
  const double nd = static_cast<double>(n);
  for (;;) {
    const double u = next_double();
    double x;
    if (s == 1.0) {
      x = std::exp(u * std::log(nd + 1.0));
    } else {
      const double t = std::pow(nd + 1.0, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const std::int64_t k = static_cast<std::int64_t>(x);
    if (k < 1 || k > n) continue;
    // Accept with ratio of pmf to envelope density.
    const double ratio = std::pow(static_cast<double>(k) / x, s);
    if (next_double() < ratio) return k;
  }
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  LB_ASSERT_MSG(k <= n, "cannot sample more elements than the population");
  // Floyd's algorithm: expected O(k) with a hash set.
  //
  // Draw-order-independence proof (the determinism linter's worked
  // example, DESIGN.md §8): `chosen` is used membership-only — contains()
  // and insert(), never iterated — so the unordered bucket layout cannot
  // reach the result.  out[i] is a pure function of the next_below()
  // draws and the *set* of previously chosen values, and set membership
  // is independent of iteration order by definition.
  std::unordered_set<std::size_t> chosen;  // lint: order-independent(membership-only: contains/insert, never iterated)
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(next_below(j + 1));
    if (chosen.contains(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace lb::util
