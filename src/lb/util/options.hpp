// Minimal command-line option parser for bench and example binaries.
//
// Syntax: --name=value or --name value; --flag sets a boolean.  Unknown
// options abort with a usage message listing the registered options, so
// every binary is self-documenting via --help.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lb::util {

class Options {
 public:
  Options(std::string program_summary);

  /// Register options before parse(); each returns *this for chaining.
  Options& add_int(const std::string& name, std::int64_t default_value,
                   const std::string& help);
  Options& add_double(const std::string& name, double default_value,
                      const std::string& help);
  Options& add_string(const std::string& name, const std::string& default_value,
                      const std::string& help);
  Options& add_flag(const std::string& name, const std::string& help);

  /// Parse argv; on --help prints usage and exits 0; on error prints usage
  /// and exits 2.
  void parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Spec {
    Kind kind;
    std::string help;
    std::string value;  // textual; flags store "0"/"1"
  };
  const Spec& find(const std::string& name, Kind kind) const;

  std::string summary_;
  std::map<std::string, Spec> specs_;
};

}  // namespace lb::util
