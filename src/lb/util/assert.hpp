// Lightweight assertion and contract-checking macros.
//
// LB_ASSERT is active in all build types (unlike <cassert>): the invariants
// it guards (token conservation, index bounds on hot paths that are not
// per-element) are cheap relative to the simulation work and losing them in
// Release builds has historically hidden real bugs in balancing codes.
// LB_DEBUG_ASSERT compiles away outside Debug for per-element checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lb::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "lb: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace lb::util

#define LB_ASSERT(expr)                                                 \
  do {                                                                  \
    if (!(expr)) ::lb::util::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define LB_ASSERT_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::lb::util::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifndef NDEBUG
#define LB_DEBUG_ASSERT(expr) LB_ASSERT(expr)
#else
#define LB_DEBUG_ASSERT(expr) ((void)0)
#endif
