// Width-adaptive index storage for the CSR substrates (DESIGN.md §9).
//
// Every CSR-shaped structure in the library (graph adjacency offsets, the
// flow ledger's row pointers, the linalg sparse matrices) stores indices
// whose maximum value is known exactly at build time: 2m incident slots,
// n column ids, nnz row offsets.  Below 2^32 those fit in uint32 — half
// the bytes and twice the cache density of the size_t arrays the seed
// used, which is where the large-n single-core wins come from.  IndexArray
// picks the width once at build time from that known maximum and keeps a
// guarded wide (uint64) fallback for graphs past the 2^32 incident-slot
// boundary, so nothing silently truncates.
//
// The width decision never affects *values*: readers observe the same
// uint64 sequence either way, so every determinism/bit-identity contract
// is independent of the chosen width (tests force the wide path via
// set_force_wide_indices to prove it).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lb::util {

namespace detail {
inline std::atomic<bool> g_force_wide_indices{false};
}  // namespace detail

/// Test hook: force every subsequently built IndexArray onto the wide
/// (uint64) fallback regardless of its value range.  Values are identical
/// either way; this exists so the fallback path stays exercised without
/// allocating a 2^32-slot structure.
inline bool force_wide_indices() {
  return detail::g_force_wide_indices.load(std::memory_order_relaxed);
}
inline void set_force_wide_indices(bool on) {
  detail::g_force_wide_indices.store(on, std::memory_order_relaxed);
}

class IndexArray {
 public:
  /// Largest value narrow (uint32) storage can hold.  A graph whose
  /// incident-slot count 2m exceeds this gets the wide fallback.
  static constexpr std::uint64_t kNarrowMax = 0xFFFF'FFFFull;

  static bool fits_narrow(std::uint64_t max_value) { return max_value <= kNarrowMax; }

  IndexArray() = default;

  /// Size to `count` zero-filled slots, choosing storage wide enough for
  /// values up to `max_value` inclusive.
  void reset(std::size_t count, std::uint64_t max_value) {
    narrow_ = fits_narrow(max_value) && !force_wide_indices();
    if (narrow_) {
      wide_.clear();
      wide_.shrink_to_fit();
      slim_.assign(count, 0);
    } else {
      slim_.clear();
      slim_.shrink_to_fit();
      wide_.assign(count, 0);
    }
  }

  /// Copy an externally built (size_t) array, narrowing when it fits.
  void assign_copy(const std::vector<std::size_t>& src, std::uint64_t max_value) {
    reset(src.size(), max_value);
    for (std::size_t i = 0; i < src.size(); ++i) set(i, src[i]);
  }

  bool narrow() const { return narrow_; }
  std::size_t size() const { return narrow_ ? slim_.size() : wide_.size(); }
  bool empty() const { return size() == 0; }

  std::uint64_t operator[](std::size_t i) const {
    return narrow_ ? slim_[i] : wide_[i];
  }
  std::uint64_t front() const { return (*this)[0]; }
  std::uint64_t back() const { return (*this)[size() - 1]; }

  void set(std::size_t i, std::uint64_t v) {
    if (narrow_) {
      slim_[i] = static_cast<std::uint32_t>(v);
    } else {
      wide_[i] = v;
    }
  }

  /// Bytes of index payload actually resident (the bytes/node metric).
  std::size_t size_bytes() const {
    return narrow_ ? slim_.size() * sizeof(std::uint32_t)
                   : wide_.size() * sizeof(std::uint64_t);
  }

  /// One-branch dispatch to a typed raw pointer, for hot loops that must
  /// not pay the per-element width branch (CSR multiply kernels).
  template <class Fn>
  decltype(auto) visit(Fn&& fn) const {
    return narrow_ ? fn(slim_.data()) : fn(wide_.data());
  }

  /// Widened copy, for consumers with a fixed-width interface (the
  /// lb::check mutation-test surface).  Allocates; checking-path only.
  std::vector<std::uint64_t> to_u64() const {
    std::vector<std::uint64_t> out(size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = (*this)[i];
    return out;
  }

 private:
  bool narrow_ = true;
  std::vector<std::uint32_t> slim_;
  std::vector<std::uint64_t> wide_;
};

}  // namespace lb::util
