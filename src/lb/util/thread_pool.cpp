#include "lb/util/thread_pool.hpp"

#include <algorithm>

#include "lb/util/assert.hpp"

namespace lb::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    LB_ASSERT_MSG(!stop_, "submit on a stopped pool");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n = end - begin;
  const std::size_t workers = size();
  if (workers <= 1 || n <= grain) {
    chunk_fn(begin, end);
    return;
  }
  // At most one chunk per worker beyond what grain demands.
  const std::size_t chunks = std::min(workers * 4, (n + grain - 1) / grain);
  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += step) {
    const std::size_t hi = std::min(end, lo + step);
    submit([lo, hi, &chunk_fn] { chunk_fn(lo, hi); });
  }
  wait_idle();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_each(std::size_t n, std::size_t grain,
                       const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(0, n, grain, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace lb::util
