#include "lb/util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "lb/util/assert.hpp"

namespace lb::util {

namespace {

// Which pool (if any) owns the current thread; set once per worker.  Used
// to detect nested parallel_for calls, which must run inline: a worker
// waiting on chunks queued behind its own task would never see them run.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_worker_thread() const { return tls_worker_pool == this; }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    LB_ASSERT_MSG(!stop_, "submit on a stopped pool");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    // The decrement must happen even if the task throws, or every later
    // wait_idle()/batch wait would hang on a count that never reaches 0.
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      if (err && !first_error_) first_error_ = err;
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n = end - begin;
  const std::size_t workers = size();
  if (workers <= 1 || n <= grain || in_worker_thread()) {
    chunk_fn(begin, end);
    return;
  }

  // Per-batch completion latch: concurrent parallel_for calls (and plain
  // submit() traffic) each wait on their own counter, never on the pool's
  // global in-flight count, so no caller blocks on foreign tasks.
  struct Batch {
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining;
    std::exception_ptr error;
  };

  // At most a few chunks per worker beyond what grain demands.
  const std::size_t chunks = std::min(workers * 4, (n + grain - 1) / grain);
  const std::size_t step = (n + chunks - 1) / chunks;

  Batch batch;
  batch.remaining = (n + step - 1) / step;
  for (std::size_t lo = begin; lo < end; lo += step) {
    const std::size_t hi = std::min(end, lo + step);
    submit([lo, hi, &chunk_fn, &batch] {
      std::exception_ptr err;
      try {
        chunk_fn(lo, hi);
      } catch (...) {
        err = std::current_exception();
      }
      std::unique_lock lock(batch.m);
      if (err && !batch.error) batch.error = err;
      if (--batch.remaining == 0) batch.cv.notify_all();
    });
  }

  std::unique_lock lock(batch.m);
  batch.cv.wait(lock, [&batch] { return batch.remaining == 0; });
  if (batch.error) {
    std::exception_ptr err = std::exchange(batch.error, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("LB_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

void for_fixed_chunks(
    ThreadPool* pool, std::size_t n, std::size_t width,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk_fn) {
  if (n == 0) return;
  width = std::max<std::size_t>(1, width);
  const std::size_t chunks = (n + width - 1) / width;
  auto run_range = [&chunk_fn, n, width](std::size_t first, std::size_t last) {
    for (std::size_t c = first; c < last; ++c) {
      const std::size_t lo = c * width;
      const std::size_t hi = std::min(n, lo + width);
      chunk_fn(c, lo, hi);
    }
  };
  if (pool == nullptr || pool->size() <= 1 || chunks == 1) {
    run_range(0, chunks);
    return;
  }
  pool->parallel_for(0, chunks, 1, run_range);
}

void parallel_for_each(std::size_t n, std::size_t grain,
                       const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(0, n, grain, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace lb::util
