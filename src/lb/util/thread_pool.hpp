// Fixed-size thread pool with a blocking parallel_for.
//
// The simulation engine uses this to compute per-edge transfer amounts and
// per-node load updates concurrently — the same "all nodes act at once"
// concurrency the paper's proof technique is designed to analyze.  The pool
// is deliberately simple (single mutex-protected queue): the work items the
// library submits are coarse-grained chunks, so queue contention is not a
// bottleneck, and simplicity keeps the concurrency auditable.
//
// Concurrency contract:
//   * parallel_for waits on a per-call completion latch, so concurrent
//     calls from different threads never block on each other's chunks;
//   * parallel_for called from inside a pool worker (nested parallelism)
//     runs the whole range inline — queueing chunks behind the caller's
//     own task would deadlock;
//   * an exception thrown by a chunk is captured and rethrown to the
//     parallel_for caller once the batch drains; an exception from a bare
//     submit() task is rethrown by the next wait_idle().  The pool itself
//     survives either way.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lb::util {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers; 0 means hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submit a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.  Rethrows the first
  /// exception thrown by a bare submit() task since the last wait_idle().
  void wait_idle();

  /// Run fn(i) for i in [begin, end), split into chunks of at least
  /// `grain` iterations, executed on the pool; blocks until done.
  /// Falls back to inline execution when the range is small, the pool has
  /// a single worker, or the caller is itself a pool worker (nested
  /// parallelism).  Rethrows the first chunk exception after the batch
  /// completes.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& chunk_fn);

  /// True when the calling thread is one of this pool's workers.
  bool in_worker_thread() const;

  /// Process-wide default pool.  Sized from the LB_THREADS environment
  /// variable when set to a positive integer (the CI thread-count matrix
  /// forces 1), otherwise to the machine.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;  // from bare submit() tasks
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for with an
/// element-wise functor.
void parallel_for_each(std::size_t n, std::size_t grain,
                       const std::function<void(std::size_t)>& fn);

/// Run chunk_fn(c, lo, hi) for every fixed-width chunk
/// [c·width, min(n, (c+1)·width)) of [0, n), executed on `pool` (inline
/// when pool is null or has one worker).
///
/// This is the substrate of every deterministic parallel reduction in the
/// library: chunk boundaries depend only on (n, width) — never on the
/// worker count or which worker picks up which chunk — so per-chunk
/// partial results combined in chunk-index order are bit-identical for
/// every pool size.  Contrast parallel_for, whose range splits depend on
/// size() and therefore must only be used for order-independent writes.
void for_fixed_chunks(
    ThreadPool* pool, std::size_t n, std::size_t width,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk_fn);

}  // namespace lb::util
