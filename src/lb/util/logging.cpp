#include "lb/util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace lb::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[lb %s] %s\n", level_name(level), message.c_str());
}

}  // namespace lb::util
