#include "lb/util/table.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "lb/util/assert.hpp"

namespace lb::util {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string format_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LB_ASSERT_MSG(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  LB_ASSERT_MSG(cells_.empty() || cells_.back().size() == headers_.size(),
                "previous row is incomplete");
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& v) {
  LB_ASSERT_MSG(!cells_.empty(), "call row() before add()");
  LB_ASSERT_MSG(cells_.back().size() < headers_.size(), "row already full");
  cells_.back().push_back(v);
  return *this;
}

Table& Table::add(const char* v) { return add(std::string(v)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }

Table& Table::add(double v, int precision) { return add(format_double(v, precision)); }
Table& Table::add_sci(double v, int precision) { return add(format_sci(v, precision)); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ");
      os << cell;
      os << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os, const std::string& caption) const {
  if (!caption.empty()) os << caption << '\n';
  os << to_string() << '\n';
}

}  // namespace lb::util
