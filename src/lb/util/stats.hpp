// Descriptive statistics used by the bench harness and by tests that make
// probabilistic assertions (Monte-Carlo validation of Lemmas 9, 11, 13).
#pragma once

#include <cstddef>
#include <vector>

namespace lb::util {

/// Streaming mean/variance (Welford) with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 when n < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Half-width of the normal-approximation confidence interval for the
  /// mean at the given z (default z = 1.96 for ~95%).
  double ci_halfwidth(double z = 1.96) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample (linear interpolation between order statistics).
/// q in [0, 1]; the input vector is copied and sorted.
double quantile(std::vector<double> xs, double q);

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// Least-squares fit y = a + b*x; returns {a, b}.  Used to measure the
/// empirical convergence rate as the slope of log(potential) per round.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the terminal buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t b) const { return counts_.at(b); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t b) const;
  double bin_hi(std::size_t b) const;
  /// Fraction of mass at or below x.
  double cdf(double x) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace lb::util
