// Leveled logging to stderr.  Benches run quiet by default; examples turn
// on Info to narrate what they do.  Not thread-safe beyond line atomicity
// (each message is a single write).
#pragma once

#include <string>

namespace lb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace lb::util
