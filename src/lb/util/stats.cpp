#include "lb/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lb/util/assert.hpp"

namespace lb::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double RunningStats::ci_halfwidth(double z) const {
  if (n_ < 2) return std::numeric_limits<double>::infinity();
  return z * stddev() / std::sqrt(static_cast<double>(n_));
}

double quantile(std::vector<double> xs, double q) {
  LB_ASSERT_MSG(!xs.empty(), "quantile of empty sample");
  LB_ASSERT_MSG(q >= 0.0 && q <= 1.0, "quantile q must lie in [0,1]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double mean(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  LB_ASSERT_MSG(x.size() == y.size(), "linear_fit requires equal-length vectors");
  LB_ASSERT_MSG(x.size() >= 2, "linear_fit requires at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double r = y[i] - (fit.intercept + fit.slope * x[i]);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  LB_ASSERT_MSG(hi > lo, "histogram range must be non-empty");
  LB_ASSERT_MSG(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  std::ptrdiff_t b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

double Histogram::bin_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const { return bin_lo(b + 1); }

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (bin_hi(b) <= x) {
      acc += counts_[b];
    } else {
      break;
    }
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

}  // namespace lb::util
