#include "lb/util/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "lb/util/assert.hpp"

namespace lb::util {

Options::Options(std::string program_summary) : summary_(std::move(program_summary)) {}

Options& Options::add_int(const std::string& name, std::int64_t default_value,
                          const std::string& help) {
  specs_[name] = Spec{Kind::kInt, help, std::to_string(default_value)};
  return *this;
}

Options& Options::add_double(const std::string& name, double default_value,
                             const std::string& help) {
  std::ostringstream os;
  os << default_value;
  specs_[name] = Spec{Kind::kDouble, help, os.str()};
  return *this;
}

Options& Options::add_string(const std::string& name, const std::string& default_value,
                             const std::string& help) {
  specs_[name] = Spec{Kind::kString, help, default_value};
  return *this;
}

Options& Options::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{Kind::kFlag, help, "0"};
  return *this;
}

std::string Options::usage() const {
  std::ostringstream os;
  os << summary_ << "\n\nOptions:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (spec.kind != Kind::kFlag) os << "=<" << spec.value << ">";
    os << "\n      " << spec.help << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

void Options::parse(int argc, char** argv) {
  auto fail = [&](const std::string& why) {
    std::fprintf(stderr, "error: %s\n\n%s", why.c_str(), usage().c_str());
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) fail("unexpected positional argument '" + arg + "'");
    arg = arg.substr(2);
    std::string name = arg, value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) fail("unknown option '--" + name + "'");
    Spec& spec = it->second;
    if (spec.kind == Kind::kFlag) {
      if (has_value) fail("flag '--" + name + "' does not take a value");
      spec.value = "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) fail("option '--" + name + "' needs a value");
      value = argv[++i];
    }
    // Validate numeric syntax now so failures point at the option.
    try {
      std::size_t pos = 0;
      if (spec.kind == Kind::kInt) {
        (void)std::stoll(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } else if (spec.kind == Kind::kDouble) {
        (void)std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      }
    } catch (const std::exception&) {
      fail("invalid value '" + value + "' for option '--" + name + "'");
    }
    spec.value = value;
  }
}

const Options::Spec& Options::find(const std::string& name, Kind kind) const {
  auto it = specs_.find(name);
  LB_ASSERT_MSG(it != specs_.end(), "option was never registered");
  LB_ASSERT_MSG(it->second.kind == kind, "option accessed with the wrong type");
  return it->second;
}

std::int64_t Options::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double Options::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

const std::string& Options::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool Options::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "1";
}

}  // namespace lb::util
