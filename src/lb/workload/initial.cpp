#include "lb/workload/initial.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lb/util/assert.hpp"

namespace lb::workload {

namespace {

/// Adjust an integer vector (non-negative entries) so its sum equals
/// `total`, never driving an entry negative.  The bulk of the correction
/// is distributed uniformly (an equal share to/from every node), so the
/// cost is O(n · log(correction)) instead of the old one-token-at-a-time
/// O(correction) loop, which degenerated when the draws summed far from
/// `total` (large totals over few nodes).  Only the sub-n remainder is
/// placed one token at a time on random nodes, preserving the randomized
/// placement the generators rely on.  Draw-order contract: the remainder
/// loop consumes one next_below(n) per leftover token (plus re-draws for
/// nodes already at zero when removing); the bulk phase consumes none.
void fix_total(std::vector<std::int64_t>& load, std::int64_t total, util::Rng& rng) {
  const std::int64_t n = static_cast<std::int64_t>(load.size());
  std::int64_t sum = 0;
  for (std::int64_t v : load) sum += v;

  if (sum < total && total - sum >= n) {
    const std::int64_t share = (total - sum) / n;
    for (std::int64_t& v : load) v += share;
    sum += share * n;  // leftover is now < n, placed randomly below
  }
  while (sum > total) {
    // Uniform cut, clamped at zero.  Each pass removes either the full
    // n·share or hits the clamp on some nodes; either way the excess at
    // least halves per pass once share >= 1, so the loop is logarithmic.
    const std::int64_t share = (sum - total) / n;
    if (share == 0) break;
    for (std::int64_t& v : load) {
      const std::int64_t cut = std::min(v, share);
      v -= cut;
      sum -= cut;
    }
  }

  while (sum < total) {
    ++load[static_cast<std::size_t>(rng.next_below(load.size()))];
    ++sum;
  }
  while (sum > total) {
    const std::size_t i = static_cast<std::size_t>(rng.next_below(load.size()));
    if (load[i] > 0) {
      --load[i];
      --sum;
    }
  }
}

/// Scale a non-negative double vector so its sum equals `total` exactly
/// up to floating-point rounding.
void fix_total(std::vector<double>& load, double total, util::Rng& /*rng*/) {
  double sum = 0.0;
  for (double v : load) sum += v;
  if (sum <= 0.0) {
    const double each = total / static_cast<double>(load.size());
    std::fill(load.begin(), load.end(), each);
    return;
  }
  const double scale = total / sum;
  for (double& v : load) v *= scale;
}

}  // namespace

template <class T>
std::vector<T> spike(std::size_t n, T total) {
  LB_ASSERT_MSG(n >= 1, "need at least one node");
  LB_ASSERT_MSG(total >= T{}, "total load must be non-negative");
  std::vector<T> load(n, T{});
  load[0] = total;
  return load;
}

template <class T>
std::vector<T> uniform_random(std::size_t n, T total, util::Rng& rng) {
  LB_ASSERT_MSG(n >= 1, "need at least one node");
  std::vector<T> load(n);
  const double cap = 2.0 * static_cast<double>(total) / static_cast<double>(n);
  for (T& v : load) {
    if constexpr (std::is_integral_v<T>) {
      // Draw a real uniform over [0, cap) and round to the nearest
      // integer.  Truncating the cap itself (the old
      // next_below(floor(cap)+1)) floored fractional caps — total=5, n=4
      // drew from {0,1,2} with mean 1.0 instead of ≈ total/n = 1.25 —
      // biasing every draw low and shifting the whole correction onto
      // fix_total.  Rounding the draw keeps the mean at cap/2 (exactly,
      // for integral caps: the two half-weight endpoints balance).
      v = static_cast<T>(std::llround(rng.next_double(0.0, cap)));
    } else {
      v = static_cast<T>(rng.next_double(0.0, cap));
    }
  }
  fix_total(load, total, rng);
  return load;
}

template <class T>
std::vector<T> bimodal(std::size_t n, T total, util::Rng& rng) {
  LB_ASSERT_MSG(n >= 2, "bimodal needs at least two nodes");
  std::vector<T> load(n, T{});
  const std::size_t heavy = n / 2;
  const double heavy_share = 0.9 * static_cast<double>(total);
  const double light_share = static_cast<double>(total) - heavy_share;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (std::size_t k = 0; k < n; ++k) {
    const double share = k < heavy ? heavy_share / static_cast<double>(heavy)
                                   : light_share / static_cast<double>(n - heavy);
    load[order[k]] = static_cast<T>(share);
  }
  fix_total(load, total, rng);
  return load;
}

template <class T>
std::vector<T> ramp(std::size_t n, double scale) {
  LB_ASSERT_MSG(n >= 1, "need at least one node");
  LB_ASSERT_MSG(scale >= 0.0, "ramp scale must be non-negative");
  std::vector<T> load(n);
  for (std::size_t i = 0; i < n; ++i) {
    load[i] = static_cast<T>(scale * static_cast<double>(i));
  }
  return load;
}

template <class T>
std::vector<T> zipf(std::size_t n, T total, double exponent, util::Rng& rng) {
  LB_ASSERT_MSG(n >= 1, "need at least one node");
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  double wsum = 0.0;
  for (double w : weights) wsum += w;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<T> load(n, T{});
  for (std::size_t rank = 0; rank < n; ++rank) {
    const double share = static_cast<double>(total) * weights[rank] / wsum;
    load[order[rank]] = static_cast<T>(share);
  }
  fix_total(load, total, rng);
  return load;
}

template <class T>
std::vector<T> balanced(std::size_t n, T total) {
  LB_ASSERT_MSG(n >= 1, "need at least one node");
  std::vector<T> load(n);
  if constexpr (std::is_integral_v<T>) {
    const T each = total / static_cast<T>(n);
    T rem = total - each * static_cast<T>(n);
    for (std::size_t i = 0; i < n; ++i) {
      load[i] = each + (static_cast<T>(i) < rem ? 1 : 0);
    }
  } else {
    std::fill(load.begin(), load.end(), total / static_cast<T>(n));
  }
  return load;
}

template <class T>
std::vector<T> checkerboard(std::size_t n, T total) {
  LB_ASSERT_MSG(n >= 2, "checkerboard needs at least two nodes");
  // Even nodes share the total; odd nodes start empty.
  const std::size_t evens = (n + 1) / 2;
  std::vector<T> load(n, T{});
  if constexpr (std::is_integral_v<T>) {
    const T each = total / static_cast<T>(evens);
    T rem = total - each * static_cast<T>(evens);
    for (std::size_t i = 0; i < n; i += 2) {
      load[i] = each + (rem > 0 ? 1 : 0);
      if (rem > 0) --rem;
    }
  } else {
    for (std::size_t i = 0; i < n; i += 2) {
      load[i] = total / static_cast<T>(evens);
    }
  }
  return load;
}

template <class T>
std::vector<T> two_spikes(std::size_t n, T total) {
  LB_ASSERT_MSG(n >= 2, "two spikes need at least two nodes");
  std::vector<T> load(n, T{});
  if constexpr (std::is_integral_v<T>) {
    load[0] = total / 2 + (total % 2);
    load[n / 2] = total / 2;
  } else {
    load[0] = total / 2;
    load[n / 2] = total / 2;
  }
  return load;
}

std::vector<std::string> named_workloads() {
  return {"spike", "uniform", "bimodal",      "ramp",
          "zipf",  "balanced", "checkerboard", "twospikes"};
}

template <class T>
std::vector<T> make_named(const std::string& name, std::size_t n, T total,
                          util::Rng& rng) {
  if (name == "spike") return spike(n, total);
  if (name == "uniform") return uniform_random(n, total, rng);
  if (name == "bimodal") return bimodal(n, total, rng);
  if (name == "ramp") return ramp<T>(n, /*scale=*/1.0);
  if (name == "zipf") return zipf(n, total, /*exponent=*/1.0, rng);
  if (name == "balanced") return balanced(n, total);
  if (name == "checkerboard") return checkerboard(n, total);
  if (name == "twospikes") return two_spikes(n, total);
  LB_ASSERT_MSG(false, "unknown workload name");
  return {};
}

#define LB_INSTANTIATE(T)                                                       \
  template std::vector<T> spike<T>(std::size_t, T);                             \
  template std::vector<T> uniform_random<T>(std::size_t, T, util::Rng&);        \
  template std::vector<T> bimodal<T>(std::size_t, T, util::Rng&);               \
  template std::vector<T> ramp<T>(std::size_t, double);                         \
  template std::vector<T> zipf<T>(std::size_t, T, double, util::Rng&);          \
  template std::vector<T> balanced<T>(std::size_t, T);                          \
  template std::vector<T> checkerboard<T>(std::size_t, T);                      \
  template std::vector<T> two_spikes<T>(std::size_t, T);                        \
  template std::vector<T> make_named<T>(const std::string&, std::size_t, T,     \
                                        util::Rng&);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::workload
