// Initial load distributions.
//
// The theorems hold for arbitrary starting loads; these generators cover
// the shapes the literature evaluates on: a single hot spot (worst-case
// potential for a given total), uniform noise, bimodal halves, the linear
// ramp of the paper's own line counterexample (§2.2: ℓ_i = i is a fixed
// point of the discrete protocol), and heavy-tailed Zipf loads.
//
// Discrete generators always hit the requested total exactly; continuous
// ones match it to floating-point accuracy.
//
// Draw-order contract (the closed-system half of the determinism story;
// the open-system half is workload::Stream's per-round derivation in
// stream.hpp): every generator consumes the caller's Rng in a fixed,
// documented sequence, so a (name, n, total, seed) tuple names one load
// vector forever.  For the discrete total correction specifically
// (fix_total in initial.cpp): the bulk phase — a uniform per-node share
// added or cut, clamped at zero — consumes NO draws; only the sub-n
// remainder placement draws, one next_below(n) per leftover token, plus
// re-draws when a removal lands on an already-empty node.  Tests pin
// this budget (StreamSatellites.FixTotalDrawOrderContract), so a change
// here is a deliberate, seed-breaking event, not an accident.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lb/util/rng.hpp"

namespace lb::workload {

/// All load on node 0.
template <class T>
std::vector<T> spike(std::size_t n, T total);

/// Every node's load uniform in [0, 2·total/n] (rounded to the nearest
/// token for integral T — fractional caps are NOT floored, so the draw
/// mean stays at total/n), then adjusted to the exact total.
template <class T>
std::vector<T> uniform_random(std::size_t n, T total, util::Rng& rng);

/// Half the nodes (randomly chosen) share 90% of the load, the rest 10%.
template <class T>
std::vector<T> bimodal(std::size_t n, T total, util::Rng& rng);

/// ℓ_i proportional to i (the line fixed point when scale = 1).
/// For Tokens with scale = 1 this is exactly ℓ_i = i, ignoring `total`.
template <class T>
std::vector<T> ramp(std::size_t n, double scale = 1.0);

/// Zipf(s)-distributed loads assigned to randomly permuted nodes,
/// normalized to the exact total.
template <class T>
std::vector<T> zipf(std::size_t n, T total, double exponent, util::Rng& rng);

/// Everyone holds total/n (plus remainder spread over the first nodes for
/// Tokens) — the balanced fixed point, for no-op tests.
template <class T>
std::vector<T> balanced(std::size_t n, T total);

/// Alternating high/low by node parity — the adversarial shape for
/// bipartite networks, where naive over-eager transfer rules ping-pong.
template <class T>
std::vector<T> checkerboard(std::size_t n, T total);

/// Total split between node 0 and node n/2 — two hot spots whose
/// diffusion fronts must meet in the middle.
template <class T>
std::vector<T> two_spikes(std::size_t n, T total);

/// Named lookup for bench CLIs: spike | uniform | bimodal | ramp | zipf |
/// balanced | checkerboard | twospikes.
template <class T>
std::vector<T> make_named(const std::string& name, std::size_t n, T total,
                          util::Rng& rng);

std::vector<std::string> named_workloads();

}  // namespace lb::workload
