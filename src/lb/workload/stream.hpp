// Open-system traffic streams: per-round arrival/departure deltas.
//
// A Stream is the open-system counterpart of the initial-load generators
// in initial.hpp: instead of fixing the total up front, it emits one
// StreamDelta per round — load that arrives at and departs from named
// nodes while the balancer runs.  The engine applies the delta at a
// fixed point in the round (before flows are planned; see DESIGN.md
// §11), so the balancer always reacts to traffic one round after it
// lands, exactly like the Repeated Balls-into-Bins process of
// Cancrini–Posta composes arrivals with a rebalancing step.
//
// Determinism contract (the part every layer leans on):
//   * delta_at(round) is a pure function of (stream config, seed, round).
//     Each round draws from a private Rng seeded by a SplitMix64 chain
//     over (seed, round) — no state is carried between rounds, so random
//     access, reset()/replay, and sharded re-derivation all yield the
//     same bytes.  This is the same chained-derivation recipe the
//     campaign layer uses for cell seeds (exp/plan.hpp).
//   * Arrivals and departures are each sorted ascending by node with
//     unique nodes (generators aggregate duplicate draws), so a single
//     sequential pass over a delta is a canonical order shared by the
//     shared-memory engine and every sharded decomposition.
//   * Application semantics per node: arrivals add first, then
//     departures drain, clamped at zero (a departure can only take what
//     is there).  tally_stream_delta() simulates exactly this arithmetic
//     centrally so applied totals are bit-identical no matter which
//     domain performed the mutation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lb/graph/graph.hpp"
#include "lb/util/rng.hpp"

namespace lb::workload {

/// One round's worth of open-system traffic.  Both lists are sorted
/// ascending by node and duplicate-free (the generators aggregate
/// repeated draws onto one entry).  Amounts are strictly positive.
template <class T>
struct StreamDelta {
  std::vector<std::pair<graph::NodeId, T>> arrivals;
  std::vector<std::pair<graph::NodeId, T>> departures;

  bool empty() const { return arrivals.empty() && departures.empty(); }
};

/// Non-templated base so a stream can ride the non-templated
/// EngineConfig; the engine dynamic_casts to Stream<T> and asserts on a
/// scalar-type mismatch.
class StreamBase {
 public:
  virtual ~StreamBase() = default;

  /// Restart the stream from round 1.  Because deltas are derived per
  /// round from the seed chain, this only clears cached state; a reset
  /// stream replays byte-identical deltas.
  virtual void reset() = 0;

  /// Human-readable label ("poisson(rate=2)", ...), used in traces,
  /// campaign cell labels and bench tables.
  virtual std::string name() const = 0;
};

/// Typed stream protocol.  delta_at(round) must be pure in (config,
/// seed, round) — see the determinism contract above.  The reference to
/// the returned delta is valid until the next delta_at call.
template <class T>
class Stream : public StreamBase {
 public:
  /// The traffic for 1-indexed `round` (matching the engine's round
  /// numbering).  Node ids are validated against the n the stream was
  /// built for.
  virtual const StreamDelta<T>& delta_at(std::size_t round) = 0;
};

/// Per-round RNG derivation: the SplitMix64 chain shared by every
/// generator, exposed so tests and fixtures can pin the idiom.
std::uint64_t stream_round_seed(std::uint64_t seed, std::size_t round);

// ---------------------------------------------------------------------------
// Applied-delta accounting
// ---------------------------------------------------------------------------

/// What a delta actually did to a load vector, with departure clamping
/// accounted for: applied departures can be smaller than requested when
/// a node ran dry.  Computed by a single central sequential pass
/// (tally_stream_delta) so the totals that enter the ledgered
/// conservation check and the running Φ baseline are bit-identical
/// between the shared-memory engine and every sharded decomposition.
template <class T>
struct AppliedStream {
  T arrivals{};    ///< Σ applied arrivals (always the requested sum)
  T departures{};  ///< Σ applied departures after clamping
  T net() const { return arrivals - departures; }
};

/// Pure central tally: simulate the per-node arithmetic (arrivals add
/// first, departures clamp at zero) against `load` WITHOUT mutating it,
/// returning the applied totals.  Sequential by design — this is the
/// canonical order of the stream contract.
template <class T>
AppliedStream<T> tally_stream_delta(const StreamDelta<T>& delta,
                                    const std::vector<T>& load);

/// Mutating apply over the whole load vector: per node, arrivals add
/// first, then departures drain clamped at zero.  Uses the exact same
/// arithmetic as tally_stream_delta, so tally-then-apply agree.
template <class T>
void apply_stream_delta(const StreamDelta<T>& delta, std::vector<T>& load);

/// Owner-filtered apply for the sharded engine: only entries whose node
/// is owned by `domain` (owner[node] == domain) are applied.  Every
/// domain applying its owned slice is equivalent, entry for entry, to
/// one apply_stream_delta over the whole vector — nodes are disjoint
/// across domains, and the per-node arithmetic is local.
template <class T>
void apply_stream_delta_owned(const StreamDelta<T>& delta, std::vector<T>& load,
                              const std::vector<std::uint32_t>& owner,
                              std::uint32_t domain);

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Which traffic family a stream draws from.  kNone is the closed
/// system: no stream attached, the campaign grid's compatibility-filter
/// default (exp/plan.hpp).
enum class StreamKind : std::uint8_t {
  kNone = 0,
  /// Memoryless churn: Poisson(arrival_rate) arrival events and
  /// Poisson(departure_rate) departure events per round, each landing on
  /// an independently uniform node with a fixed per-event quantum.
  kPoisson,
  /// Poisson baseline plus heavy-tailed bursts: with probability
  /// burst_prob per round, a Pareto(alpha)-sized burst (>= min_burst
  /// quanta, capped at max_burst) lands on one uniform node.
  kBursty,
  /// Diurnal ramp: the Poisson arrival rate is modulated by
  /// max(0, 1 + amplitude·sin(2π·round/period)) while departures hold
  /// the base rate — sustained overload halves alternating with
  /// underload halves.
  kDiurnal,
  /// Adversarial hot spot: arrivals concentrate on a deterministically
  /// rotating hot node ((round/rotate_period)·stride mod n) while
  /// departures drain uniform nodes — the worst case for any balancer
  /// whose schedule assumes stationary traffic.
  kHotspot,
};

/// Value-semantic stream description: the fourth campaign plan-grid axis
/// (exp/plan.hpp) and the bench CLI surface.  One parameter struct for
/// all kinds; each generator reads the fields it documents.
struct StreamSpec {
  StreamKind kind = StreamKind::kNone;
  /// Mean arrival events per round (Poisson/bursty baseline; diurnal
  /// base rate; hotspot events per round).
  double arrival_rate = 4.0;
  /// Mean departure events per round.
  double departure_rate = 4.0;
  /// Load per event, in units of T (rounded to >= 1 token for discrete).
  double quantum = 1.0;
  // Bursty knobs.
  double burst_prob = 0.05;   ///< per-round burst probability
  double burst_alpha = 1.5;   ///< Pareto tail exponent (heavier when smaller)
  double min_burst = 32.0;    ///< burst floor, in quanta
  double max_burst = 4096.0;  ///< burst cap, in quanta
  // Diurnal knobs.
  double amplitude = 1.0;       ///< rate modulation depth
  std::size_t period = 64;      ///< rounds per diurnal cycle
  // Hotspot knobs.
  std::size_t rotate_period = 16;  ///< rounds before the hot node moves
  std::size_t stride = 7;          ///< hot-node jump per rotation

  /// Canonical short label: "none", "poisson", "bursty", "diurnal",
  /// "hotspot" — stable across parameter changes so campaign group
  /// labels stay readable; parameters ride the stream's name().
  std::string label() const;
};

/// Parse a StreamKind from its label ("none" | "poisson" | "bursty" |
/// "diurnal" | "hotspot"); throws std::invalid_argument otherwise.
StreamKind parse_stream_kind(const std::string& name);

/// Labels accepted by parse_stream_kind, for bench CLIs.
std::vector<std::string> named_streams();

/// Build a generator for `spec` over n nodes.  Returns nullptr for
/// kNone (the closed system).  The seed feeds the per-round SplitMix64
/// chain; two streams with the same (spec, n, seed) are byte-identical.
template <class T>
std::unique_ptr<Stream<T>> make_stream(const StreamSpec& spec, std::size_t n,
                                       std::uint64_t seed);

}  // namespace lb::workload
