#include "lb/workload/stream.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "lb/util/assert.hpp"

namespace lb::workload {

std::uint64_t stream_round_seed(std::uint64_t seed, std::size_t round) {
  // Same chained-SplitMix64 recipe as the campaign's cell-seed
  // derivation (exp/plan.cpp); the salt keeps stream draws disjoint from
  // every other consumer of the run seed.
  constexpr std::uint64_t kStreamSalt = 0x73747265616dULL;  // "stream"
  util::SplitMix64 sm(seed);
  std::uint64_t h = sm.next();
  for (std::uint64_t p : {kStreamSalt, static_cast<std::uint64_t>(round)}) {
    util::SplitMix64 step(h ^ p);
    h = step.next();
  }
  return h;
}

// ---------------------------------------------------------------------------
// Applied-delta accounting
// ---------------------------------------------------------------------------

namespace {

/// The per-node departure arithmetic shared by tally and apply: given
/// the node's level after arrivals, how much a departure of `amount`
/// actually takes.  Clamped at zero; for Real a dry node goes to
/// exactly 0.0 (level - level), never negative.
template <class T>
T clamped_take(T level, T amount) {
  if (level <= T{}) return T{};
  return amount < level ? amount : level;
}

}  // namespace

template <class T>
AppliedStream<T> tally_stream_delta(const StreamDelta<T>& delta,
                                    const std::vector<T>& load) {
  AppliedStream<T> applied;
  for (const auto& [node, amount] : delta.arrivals) {
    LB_ASSERT_MSG(node < load.size(), "stream arrival node out of range");
    applied.arrivals += amount;
  }
  // Two-pointer walk over the two sorted lists so a node's arrival (if
  // any) is credited before its departure is clamped — the same order
  // apply_stream_delta mutates in.
  std::size_t ai = 0;
  for (const auto& [node, amount] : delta.departures) {
    LB_ASSERT_MSG(node < load.size(), "stream departure node out of range");
    while (ai < delta.arrivals.size() && delta.arrivals[ai].first < node) ++ai;
    T level = load[node];
    if (ai < delta.arrivals.size() && delta.arrivals[ai].first == node) {
      level += delta.arrivals[ai].second;
    }
    applied.departures += clamped_take(level, amount);
  }
  return applied;
}

template <class T>
void apply_stream_delta(const StreamDelta<T>& delta, std::vector<T>& load) {
  for (const auto& [node, amount] : delta.arrivals) {
    LB_ASSERT_MSG(node < load.size(), "stream arrival node out of range");
    load[node] += amount;
  }
  for (const auto& [node, amount] : delta.departures) {
    LB_ASSERT_MSG(node < load.size(), "stream departure node out of range");
    const T level = load[node];
    load[node] = level - clamped_take(level, amount);
  }
}

template <class T>
void apply_stream_delta_owned(const StreamDelta<T>& delta, std::vector<T>& load,
                              const std::vector<std::uint32_t>& owner,
                              std::uint32_t domain) {
  for (const auto& [node, amount] : delta.arrivals) {
    if (owner[node] != domain) continue;
    load[node] += amount;
  }
  for (const auto& [node, amount] : delta.departures) {
    if (owner[node] != domain) continue;
    const T level = load[node];
    load[node] = level - clamped_take(level, amount);
  }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

namespace {

/// Per-event load in units of T: at least one token for discrete.
template <class T>
T quantum_amount(double q) {
  if constexpr (std::is_integral_v<T>) {
    return std::max<T>(T{1}, static_cast<T>(std::llround(q)));
  } else {
    return static_cast<T>(q);
  }
}

/// One stream class for all four families: the per-round draw switches
/// on the kind, everything else (seed chain, aggregation, caching) is
/// shared.  delta_at derives a fresh Rng from stream_round_seed(seed,
/// round) per call, so deltas are pure in (spec, n, seed, round).
template <class T>
class GeneratedStream final : public Stream<T> {
 public:
  GeneratedStream(StreamSpec spec, std::size_t n, std::uint64_t seed)
      : spec_(spec), n_(n), seed_(seed) {
    LB_ASSERT_MSG(n > 0, "stream needs at least one node");
    LB_ASSERT_MSG(spec.kind != StreamKind::kNone, "kNone has no generator");
  }

  void reset() override {
    cached_round_ = 0;
    delta_.arrivals.clear();
    delta_.departures.clear();
  }

  std::string name() const override {
    std::ostringstream os;
    os << spec_.label() << "(arr=" << spec_.arrival_rate
       << ",dep=" << spec_.departure_rate << ",q=" << spec_.quantum;
    switch (spec_.kind) {
      case StreamKind::kBursty:
        os << ",p=" << spec_.burst_prob << ",alpha=" << spec_.burst_alpha;
        break;
      case StreamKind::kDiurnal:
        os << ",amp=" << spec_.amplitude << ",period=" << spec_.period;
        break;
      case StreamKind::kHotspot:
        os << ",rot=" << spec_.rotate_period << ",stride=" << spec_.stride;
        break;
      default:
        break;
    }
    os << ')';
    return os.str();
  }

  const StreamDelta<T>& delta_at(std::size_t round) override {
    LB_ASSERT_MSG(round >= 1, "rounds are 1-indexed");
    if (round != cached_round_) {
      generate(round);
      cached_round_ = round;
    }
    return delta_;
  }

 private:
  using Entry = std::pair<graph::NodeId, T>;

  graph::NodeId uniform_node(util::Rng& rng) {
    return static_cast<graph::NodeId>(rng.next_below(n_));
  }

  /// Sort raw event draws by (node, amount) — a total order, so the
  /// merge below sums equal-node amounts in one deterministic sequence
  /// regardless of draw order — then aggregate duplicates.
  static void aggregate(std::vector<Entry>& events, std::vector<Entry>& out) {
    std::sort(events.begin(), events.end());
    out.clear();
    for (const Entry& e : events) {
      if (!out.empty() && out.back().first == e.first) {
        out.back().second += e.second;
      } else {
        out.push_back(e);
      }
    }
  }

  void generate(std::size_t round) {
    // Per-round derivation, not a carried generator: random access,
    // reset() replay and sharded re-derivation all see the same bytes.
    util::Rng rng(stream_round_seed(seed_, round));
    const T q = quantum_amount<T>(spec_.quantum);
    arrival_events_.clear();
    departure_events_.clear();

    // Draw order is part of the contract (pinned by StreamDeterminism
    // tests): arrival count, arrival nodes, burst draws (bursty only),
    // departure count, departure nodes.
    double rate = spec_.arrival_rate;
    if (spec_.kind == StreamKind::kDiurnal) {
      const double phase = 6.283185307179586476925 *
                           static_cast<double>(round % spec_.period) /
                           static_cast<double>(spec_.period);
      rate *= std::max(0.0, 1.0 + spec_.amplitude * std::sin(phase));
    }
    const std::int64_t n_arrivals = rng.next_poisson(rate);
    arrival_events_.reserve(static_cast<std::size_t>(n_arrivals) + 1);
    if (spec_.kind == StreamKind::kHotspot) {
      // The hot node is a pure function of the round — no RNG — so the
      // adversary's schedule is reproducible in closed form.
      const std::size_t hot =
          ((round / std::max<std::size_t>(1, spec_.rotate_period)) * spec_.stride) % n_;
      for (std::int64_t i = 0; i < n_arrivals; ++i) {
        arrival_events_.push_back({static_cast<graph::NodeId>(hot), q});
      }
    } else {
      for (std::int64_t i = 0; i < n_arrivals; ++i) {
        arrival_events_.push_back({uniform_node(rng), q});
      }
    }
    if (spec_.kind == StreamKind::kBursty && rng.next_bool(spec_.burst_prob)) {
      // Pareto(alpha) burst size in quanta: min_burst / U^{1/alpha},
      // capped so one draw cannot dwarf the whole experiment.
      double u = rng.next_double();
      while (u <= 0.0) u = rng.next_double();
      const double quanta = std::min(
          spec_.max_burst, spec_.min_burst / std::pow(u, 1.0 / spec_.burst_alpha));
      const T amount = static_cast<T>(static_cast<double>(q) * quanta);
      if (amount > T{}) arrival_events_.push_back({uniform_node(rng), amount});
    }
    const std::int64_t n_departures = rng.next_poisson(spec_.departure_rate);
    departure_events_.reserve(static_cast<std::size_t>(n_departures));
    for (std::int64_t i = 0; i < n_departures; ++i) {
      departure_events_.push_back({uniform_node(rng), q});
    }

    aggregate(arrival_events_, delta_.arrivals);
    aggregate(departure_events_, delta_.departures);
  }

  StreamSpec spec_;
  std::size_t n_;
  std::uint64_t seed_;
  std::size_t cached_round_ = 0;  // 0 = nothing cached (rounds are 1-indexed)
  StreamDelta<T> delta_;
  std::vector<Entry> arrival_events_;
  std::vector<Entry> departure_events_;
};

}  // namespace

std::string StreamSpec::label() const {
  switch (kind) {
    case StreamKind::kNone: return "none";
    case StreamKind::kPoisson: return "poisson";
    case StreamKind::kBursty: return "bursty";
    case StreamKind::kDiurnal: return "diurnal";
    case StreamKind::kHotspot: return "hotspot";
  }
  return "none";
}

StreamKind parse_stream_kind(const std::string& name) {
  if (name == "none") return StreamKind::kNone;
  if (name == "poisson") return StreamKind::kPoisson;
  if (name == "bursty") return StreamKind::kBursty;
  if (name == "diurnal") return StreamKind::kDiurnal;
  if (name == "hotspot") return StreamKind::kHotspot;
  throw std::invalid_argument("unknown stream kind: " + name);
}

std::vector<std::string> named_streams() {
  return {"none", "poisson", "bursty", "diurnal", "hotspot"};
}

template <class T>
std::unique_ptr<Stream<T>> make_stream(const StreamSpec& spec, std::size_t n,
                                       std::uint64_t seed) {
  if (spec.kind == StreamKind::kNone) return nullptr;
  return std::make_unique<GeneratedStream<T>>(spec, n, seed);
}

#define LB_INSTANTIATE(T)                                                      \
  template struct StreamDelta<T>;                                              \
  template AppliedStream<T> tally_stream_delta<T>(const StreamDelta<T>&,       \
                                                  const std::vector<T>&);      \
  template void apply_stream_delta<T>(const StreamDelta<T>&, std::vector<T>&); \
  template void apply_stream_delta_owned<T>(const StreamDelta<T>&,             \
                                            std::vector<T>&,                   \
                                            const std::vector<std::uint32_t>&, \
                                            std::uint32_t);                    \
  template std::unique_ptr<Stream<T>> make_stream<T>(const StreamSpec&,        \
                                                     std::size_t,              \
                                                     std::uint64_t);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::workload
