// A synchronous message-passing simulator of the distributed protocol.
//
// The core algorithms in lb/core compute a round's transfers centrally
// from the global load vector — correct, fast, and exactly equivalent to
// the concurrent semantics, but it hides the distributed structure.  This
// module builds the protocol the way the paper's machines would actually
// run it:
//
//   * every node is an actor owning only its local load and a mailbox;
//   * a round has two message phases, executed on the thread pool with a
//     barrier between them (BSP supersteps):
//       1. LOAD_ANNOUNCE — each node sends its current load to every
//          neighbour;
//       2. TOKEN_TRANSFER — each node applies the paper's rule to the
//          announced loads and ships tokens to poorer neighbours;
//   * nodes never read another node's state directly — all interaction
//     is through messages, so the concurrency hazards the paper's
//     technique addresses (everyone acting on the same stale snapshot)
//     arise here for real rather than by construction.
//
// The tests pin the simulator's trajectory to the centralized
// DiffusionBalancer round for round: they must be bit-identical, which is
// the strongest evidence that the centralized engine faithfully models
// the distributed protocol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lb/core/algorithm.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/graph/graph.hpp"

namespace lb::sim {

/// Message kinds exchanged in one synchronous round.
enum class MessageKind : std::uint8_t {
  kLoadAnnounce,   ///< payload = sender's load at round start
  kTokenTransfer,  ///< payload = tokens moved to the receiver
};

template <class T>
struct Message {
  MessageKind kind;
  graph::NodeId from;
  T payload;
};

/// Per-round message statistics (for the tests and the bench harness).
struct SimStats {
  std::size_t messages_sent = 0;
  std::size_t tokens_moved_messages = 0;  ///< TOKEN_TRANSFER with payload > 0
  double total_payload = 0.0;             ///< sum of transfer payloads
};

/// A node actor: local load plus this round's inbox.
template <class T>
struct NodeActor {
  T load{};
  std::vector<Message<T>> inbox;
};

/// The synchronous message-passing machine.  Nodes are executed on the
/// global thread pool each superstep; message delivery is the only
/// communication channel.
template <class T>
class MessageSimulator {
 public:
  /// `cfg` selects the transfer rule, exactly as for DiffusionBalancer.
  MessageSimulator(const graph::Graph& g, std::vector<T> initial_load,
                   core::DiffusionConfig cfg = {});

  std::size_t num_nodes() const { return actors_.size(); }

  /// Local load of node u (test/inspection access — the protocol itself
  /// never reads remote loads).
  T load(graph::NodeId u) const { return actors_[u].load; }

  /// Gather the full load vector (for potential computation in tests).
  std::vector<T> snapshot() const;

  /// Execute one synchronous round (announce superstep, then transfer
  /// superstep).  Returns the message statistics.
  SimStats step();

  /// Post-round load summary, accumulated *inside* the final credit
  /// superstep via the deterministic fixed-chunk reduction of
  /// core/metrics.hpp (Φ measured against the run-start average, like the
  /// engine's fused path) — observability without a second sweep over the
  /// actors, bit-identical at every pool size.  Before the first step()
  /// this is the initial load's summary.
  const core::LoadSummary<T>& round_summary() const { return summary_; }

  /// The run-start average Φ is measured against.
  double run_average() const { return run_average_; }

  /// Rounds executed so far.
  std::size_t round() const { return round_; }

  /// Statistics of the last executed round (zeroes before the first
  /// step()).
  const SimStats& last_stats() const { return last_stats_; }

  /// One-line JSON of the last round: message counts, credit totals and
  /// the fused load summary.  Deterministic (modeled quantities only), so
  /// benches can diff it across runs and `--json` consumers can ingest it
  /// without a schema.
  std::string round_summary_json() const;

 private:
  const graph::Graph& graph_;
  core::DiffusionConfig cfg_;
  std::vector<NodeActor<T>> actors_;
  // Double-buffered outboxes: one slot per directed edge, written in
  // parallel by the sender, read by the receiver after the barrier.
  std::vector<std::vector<Message<T>>> outbox_;
  std::size_t round_ = 0;
  double run_average_ = 0.0;
  core::LoadSummary<T> summary_{};
  SimStats last_stats_{};
};

using ContinuousMessageSimulator = MessageSimulator<double>;
using DiscreteMessageSimulator = MessageSimulator<std::int64_t>;

}  // namespace lb::sim
