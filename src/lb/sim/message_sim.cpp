#include "lb/sim/message_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::sim {

template <class T>
MessageSimulator<T>::MessageSimulator(const graph::Graph& g, std::vector<T> initial_load,
                                      core::DiffusionConfig cfg)
    : graph_(g), cfg_(cfg), actors_(g.num_nodes()), outbox_(g.num_nodes()) {
  LB_ASSERT_MSG(initial_load.size() == g.num_nodes(),
                "initial load does not match the graph");
  for (std::size_t u = 0; u < actors_.size(); ++u) {
    actors_[u].load = initial_load[u];
    actors_[u].inbox.reserve(g.degree(static_cast<graph::NodeId>(u)));
    outbox_[u].reserve(g.degree(static_cast<graph::NodeId>(u)));
  }
  summary_ = core::summarize_parallel(initial_load, &util::ThreadPool::global());
  run_average_ = summary_.average;
}

template <class T>
std::vector<T> MessageSimulator<T>::snapshot() const {
  std::vector<T> out(actors_.size());
  for (std::size_t u = 0; u < actors_.size(); ++u) out[u] = actors_[u].load;
  return out;
}

template <class T>
SimStats MessageSimulator<T>::step() {
  const std::size_t n = actors_.size();
  SimStats stats;

  // --- Superstep 1: LOAD_ANNOUNCE.  Every node writes its load into its
  // outbox, one message per neighbour.  Parallel: each node touches only
  // its own outbox slot.
  util::ThreadPool::global().parallel_for(0, n, 256, [this](std::size_t lo,
                                                            std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      outbox_[u].clear();
      for (graph::NodeId v : graph_.neighbors(static_cast<graph::NodeId>(u))) {
        outbox_[u].push_back(Message<T>{MessageKind::kLoadAnnounce,
                                        static_cast<graph::NodeId>(u),
                                        actors_[u].load});
        (void)v;
      }
    }
  });

  // Barrier + delivery: each node pulls the announcement addressed to it.
  // Outboxes are ordered like the sender's neighbour list, so receiver v
  // finds its message at the index of v in sender u's neighbour list.
  util::ThreadPool::global().parallel_for(0, n, 256, [this](std::size_t lo,
                                                            std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      actors_[v].inbox.clear();
      for (graph::NodeId u : graph_.neighbors(static_cast<graph::NodeId>(v))) {
        const auto nb = graph_.neighbors(u);
        // Index of v within u's (sorted) neighbour list.
        const auto it = std::lower_bound(nb.begin(), nb.end(),
                                         static_cast<graph::NodeId>(v));
        const std::size_t slot = static_cast<std::size_t>(it - nb.begin());
        actors_[v].inbox.push_back(outbox_[u][slot]);
      }
    }
  });
  std::size_t announce_messages = 2 * graph_.num_edges();

  // --- Superstep 2: TOKEN_TRANSFER.  Each node applies the paper's rule
  // to the *announced* loads (the round-start snapshot) and emits one
  // transfer message per poorer neighbour.
  util::ThreadPool::global().parallel_for(0, n, 256, [this](std::size_t lo,
                                                            std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      outbox_[u].clear();
      const double lu = static_cast<double>(actors_[u].load);
      const auto neighbours = graph_.neighbors(static_cast<graph::NodeId>(u));
      for (std::size_t k = 0; k < neighbours.size(); ++k) {
        const graph::NodeId v = neighbours[k];
        const double lv = static_cast<double>(actors_[u].inbox[k].payload);
        T amount{};
        if (lu > lv) {
          double w = core::diffusion_edge_weight(
              graph_, static_cast<graph::NodeId>(u), v, lu, lv, cfg_);
          if constexpr (std::is_integral_v<T>) {
            w = std::floor(w);
          }
          amount = static_cast<T>(w);
        }
        outbox_[u].push_back(
            Message<T>{MessageKind::kTokenTransfer, static_cast<graph::NodeId>(u),
                       amount});
      }
      // Deduct the sent tokens locally (the sender's ledger).
      T sent{};
      for (const auto& m : outbox_[u]) sent += m.payload;
      actors_[u].load -= sent;
    }
  });

  // Barrier + delivery: receivers credit incoming transfers.  The credit
  // sweep is driven by the fixed metrics chunks, and each node's settled
  // load is accumulated into the deterministic reduction as it is written
  // — the round's observability rides this superstep for free (the
  // engine's fused-summary pattern, see DESIGN.md §4).  Per-node writes
  // are unchanged, so the trajectory is untouched.
  summary_ = core::fused_sweep_with_summary<T>(
      &util::ThreadPool::global(), n, run_average_, core::SummaryMode::kFull,
      [this](std::size_t v) {
        const auto neighbours = graph_.neighbors(static_cast<graph::NodeId>(v));
        T value = actors_[v].load;
        for (graph::NodeId u : neighbours) {
          const auto nb = graph_.neighbors(u);
          const auto it = std::lower_bound(nb.begin(), nb.end(),
                                           static_cast<graph::NodeId>(v));
          const std::size_t slot = static_cast<std::size_t>(it - nb.begin());
          value += outbox_[u][slot].payload;
        }
        actors_[v].load = value;
        return value;
      });

  // Statistics (sequential; cheap).
  stats.messages_sent = announce_messages + 2 * graph_.num_edges();
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto& m : outbox_[u]) {
      if (m.payload > T{}) {
        ++stats.tokens_moved_messages;
        stats.total_payload += static_cast<double>(m.payload);
      }
    }
  }
  ++round_;
  last_stats_ = stats;
  return stats;
}

template <class T>
std::string MessageSimulator<T>::round_summary_json() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"round\": %zu, \"messages_sent\": %zu, "
                "\"tokens_moved_messages\": %zu, \"total_payload\": %.17g, "
                "\"potential\": %.17g, \"discrepancy\": %.17g}",
                round_, last_stats_.messages_sent,
                last_stats_.tokens_moved_messages, last_stats_.total_payload,
                summary_.potential, summary_.discrepancy);
  return buf;
}

template class MessageSimulator<double>;
template class MessageSimulator<std::int64_t>;

}  // namespace lb::sim
