#include "lb/sim/comm.hpp"

#include <algorithm>

#include "lb/util/assert.hpp"

namespace lb::sim {

CommEngine::CommEngine(std::size_t domains)
    : domains_(domains), channels_(domains * domains), totals_(domains) {
  LB_ASSERT_MSG(domains > 0, "CommEngine needs at least one domain");
}

void CommEngine::set_default_link(const LinkConfig& cfg) {
  for (Channel& ch : channels_) ch.cfg = cfg;
}

void CommEngine::set_link(std::size_t from, std::size_t to, const LinkConfig& cfg) {
  LB_ASSERT_MSG(from < domains_ && to < domains_, "link endpoint out of range");
  channel(from, to).cfg = cfg;
}

void CommEngine::deliver() {
  ++supersteps_;
  for (std::size_t to = 0; to < domains_; ++to) {
    double wait = 0.0;
    CommTotals& t = totals_[to];
    for (std::size_t from = 0; from < domains_; ++from) {
      Channel& ch = channel(from, to);
      LB_ASSERT_MSG(ch.cursor == ch.inbox.size(),
                    "undrained inbox at superstep barrier");
      ch.inbox.swap(ch.staged);
      ch.staged.clear();
      ch.cursor = 0;
      if (ch.inbox.empty()) continue;
      t.messages += 1;
      t.boundary_bytes += ch.inbox.size();
      wait = std::max(wait, ch.cfg.latency_us +
                                static_cast<double>(ch.inbox.size()) * ch.cfg.us_per_byte);
    }
    t.wait_us += wait;
  }
}

CommTotals CommEngine::grand_totals() const {
  CommTotals sum;
  for (const CommTotals& t : totals_) {
    sum.messages += t.messages;
    sum.boundary_bytes += t.boundary_bytes;
    sum.wait_us += t.wait_us;
  }
  return sum;
}

}  // namespace lb::sim
