// Inter-domain communication engine for the sharded execution layer
// (lb/shard/).  Promotes the message-passing substrate that
// sim::MessageSimulator models per *node* up to the granularity the
// sharded engine needs: K ownership domains exchanging typed boundary
// payloads over K×K point-to-point links in barrier-synchronous
// supersteps.
//
// The engine is a staged mailbox.  Within a superstep every domain may
// write to its outgoing links (channels (d, *)) and read from its
// incoming ones (channels (*, d)); those index sets are disjoint per
// domain, so the sharded engine can run the pack/unpack phases on a
// thread pool with no locking.  deliver() is the barrier: it flips
// staged payloads into readable inboxes and does the accounting.
//
// All accounting is *modeled* and therefore deterministic: a nonempty
// link carries one message per superstep, bytes are the payload size,
// and the per-receiving-domain wait is the critical path over its
// in-links under the configured latency/bandwidth (LinkConfig).  Wall
// clock never enters, so comm metrics are part of the bit-identity
// surface (DESIGN.md §7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "lb/util/assert.hpp"

namespace lb::sim {

/// Modeled cost of one directed inter-domain link.  Defaults model a
/// free interconnect (counts are still tracked).
struct LinkConfig {
  double latency_us = 0.0;   ///< per-superstep cost of a nonempty link
  double us_per_byte = 0.0;  ///< inverse bandwidth
};

/// Cumulative modeled communication totals for one receiving domain.
struct CommTotals {
  std::uint64_t messages = 0;        ///< nonempty in-links summed over supersteps
  std::uint64_t boundary_bytes = 0;  ///< payload bytes received
  double wait_us = 0.0;              ///< Σ per-superstep critical-path waits
};

class CommEngine {
 public:
  explicit CommEngine(std::size_t domains);

  std::size_t domains() const { return domains_; }

  /// Set the cost model for every link (kept for links without overrides).
  void set_default_link(const LinkConfig& cfg);
  /// Override one directed link (e.g. the straggler act in the example).
  void set_link(std::size_t from, std::size_t to, const LinkConfig& cfg);

  /// Stage `count` values of V on the from→to link.  Payloads are raw
  /// bytes (memcpy) so int64 loads survive verbatim — no double round
  /// trip — and byte accounting is the natural unit.  Trivially-copyable
  /// V only.  Safe to call concurrently for distinct `from`.
  template <class V>
  void send(std::size_t from, std::size_t to, const V* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<V>);
    if (count == 0) return;
    std::vector<std::byte>& staged = channel(from, to).staged;
    const std::size_t offset = staged.size();
    staged.resize(offset + count * sizeof(V));
    std::memcpy(staged.data() + offset, data, count * sizeof(V));
  }

  /// Read `count` values of V from the from→to inbox, advancing the read
  /// cursor.  Must mirror the sender's send() sequence exactly (the
  /// channel is a typed-erased FIFO).  Safe concurrently for distinct `to`.
  template <class V>
  void recv(std::size_t from, std::size_t to, V* out, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<V>);
    if (count == 0) return;
    Channel& ch = channel(from, to);
    // A receiver whose unpack schedule disagrees with the sender's pack
    // schedule would otherwise read past the payload silently.
    LB_ASSERT_MSG(ch.cursor + count * sizeof(V) <= ch.inbox.size(),
                  "comm recv overruns the channel inbox");
    std::memcpy(out, ch.inbox.data() + ch.cursor, count * sizeof(V));
    ch.cursor += count * sizeof(V);
  }

  /// Superstep barrier: everything staged becomes readable, previous
  /// inboxes are discarded, and the modeled accounting is updated.
  /// Single-threaded by contract (the sharded engine calls it between
  /// parallel phases).
  void deliver();

  /// Cumulative totals for receiving domain `d` (the engine diffs these
  /// across deliver()s to attribute per-round costs).
  const CommTotals& totals(std::size_t d) const { return totals_[d]; }
  /// Sum over all domains.
  CommTotals grand_totals() const;

  std::size_t supersteps() const { return supersteps_; }

 private:
  struct Channel {
    std::vector<std::byte> staged;  ///< written this superstep
    std::vector<std::byte> inbox;   ///< readable since last deliver()
    std::size_t cursor = 0;         ///< read offset into inbox
    LinkConfig cfg;
  };

  Channel& channel(std::size_t from, std::size_t to) {
    return channels_[from * domains_ + to];
  }

  std::size_t domains_;
  std::vector<Channel> channels_;      // K×K, row-major by sender
  std::vector<CommTotals> totals_;     // per receiving domain
  std::size_t supersteps_ = 0;
};

}  // namespace lb::sim
