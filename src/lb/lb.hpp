// Umbrella header: the full public API of diffusionlb.
//
// Fine-grained includes are preferred in library code; this header is for
// applications and exploratory use.
#pragma once

// Substrate: utilities.
#include "lb/util/assert.hpp"
#include "lb/util/logging.hpp"
#include "lb/util/options.hpp"
#include "lb/util/rng.hpp"
#include "lb/util/stats.hpp"
#include "lb/util/table.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/util/timer.hpp"

// Substrate: linear algebra and spectral analysis.
#include "lb/linalg/csr.hpp"
#include "lb/linalg/dense.hpp"
#include "lb/linalg/jacobi_eigen.hpp"
#include "lb/linalg/lanczos.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/linalg/tridiag.hpp"

// Substrate: networks.
#include "lb/graph/dynamic.hpp"
#include "lb/graph/generators.hpp"
#include "lb/graph/graph.hpp"
#include "lb/graph/matching.hpp"
#include "lb/graph/properties.hpp"

// Core: the paper's algorithms, analysis toolkit, bounds and engine.
#include "lb/core/algorithm.hpp"
#include "lb/core/async.hpp"
#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/divergence.hpp"
#include "lb/core/dynamic_runner.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/flow_ledger.hpp"
#include "lb/core/fos.hpp"
#include "lb/core/heterogeneous.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/core/ops.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/core/sequential.hpp"
#include "lb/core/sos.hpp"
#include "lb/core/trace.hpp"

// Message-passing simulation of the distributed protocol.
#include "lb/sim/message_sim.hpp"

// Workload generators.
#include "lb/workload/initial.hpp"

// Experiment campaigns: declarative grids over (graph x scenario x
// workload x balancer x scalar x seed), executed with per-cell run
// isolation and per-base artifact reuse.
#include "lb/exp/campaign.hpp"
#include "lb/exp/plan.hpp"
#include "lb/exp/report.hpp"
