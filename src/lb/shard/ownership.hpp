// Ownership domains: the deterministic node→domain assignment under the
// sharded execution layer.  Every node is owned by exactly one of K
// domains; an edge is *cut* when its endpoints live in different domains
// and must then move its boundary traffic through sim::CommEngine.
//
// Construction is a pure function of (Graph::revision, K, policy) — no
// RNG, no thread count, no iteration-order dependence — so the same
// topology always shards the same way across pools, runs, and processes
// (the precondition for the sharded engine's bit-identity claim,
// DESIGN.md §7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lb/graph/graph.hpp"

namespace lb::shard {

enum class PartitionPolicy : std::uint8_t {
  /// Contiguous blocks of ⌈n/K⌉ node ids.  Optimal for generators that
  /// emit locality-preserving ids (paths, rings, torus rows).
  kContiguous,
  /// Node u → domain u mod K.  The worst-case strawman: nearly every
  /// edge is cut.  Kept as the upper baseline for the edge-cut tests.
  kStrided,
  /// Contiguous seed + deterministic boundary refinement: bounded
  /// greedy passes that move a node to the neighbour-majority domain
  /// when that strictly reduces the cut.  Never worse than kContiguous.
  kGreedyEdgeCut,
};

std::string to_string(PartitionPolicy policy);

class OwnershipMap {
 public:
  OwnershipMap() = default;

  /// Partition g's nodes into `domains` ownership domains.
  static OwnershipMap build(const graph::Graph& g, std::size_t domains,
                            PartitionPolicy policy);

  std::size_t domains() const { return domains_; }
  PartitionPolicy policy() const { return policy_; }

  /// Owning domain of node u.
  std::uint32_t owner(graph::NodeId u) const { return owner_[u]; }
  const std::vector<std::uint32_t>& owners() const { return owner_; }

  /// Nodes owned by domain d, ascending.
  const std::vector<graph::NodeId>& nodes(std::size_t d) const {
    return nodes_[d];
  }

  /// Number of cut edges (endpoints in different domains).
  std::size_t cut_edges() const { return cut_edges_; }

  /// True iff this map was built for (g.revision(), domains, policy) —
  /// the sharded engine's cache key for dynamic sequences that
  /// materialize new base graphs mid-run.
  bool valid_for(const graph::Graph& g, std::size_t domains,
                 PartitionPolicy policy) const {
    return revision_ == g.revision() && revision_ != 0 &&
           domains_ == domains && policy_ == policy;
  }

 private:
  std::uint64_t revision_ = 0;
  std::size_t domains_ = 0;
  PartitionPolicy policy_ = PartitionPolicy::kContiguous;
  std::vector<std::uint32_t> owner_;            // node → domain
  std::vector<std::vector<graph::NodeId>> nodes_;  // domain → owned nodes
  std::size_t cut_edges_ = 0;
};

}  // namespace lb::shard
