// Halo-exchange plans: the per-domain routing tables the sharded engine
// executes each round.
//
// For a cut edge k = (u, v) with a = owner(u) ≠ owner(v) = b, the round
// protocol is fixed by convention on the *u endpoint*: domain a owns
// edge k, computes its flow, and applies u's side; domain b contributes
// v's round-start load beforehand and receives the computed flow after.
// So per ordered domain pair there are two payload kinds:
//
//   loads:  b → a   load[v] for every boundary node v (deduplicated —
//                   one copy feeds all of a's edges into v),
//   flows:  a → b   flows[k] for every cut edge a owns toward b.
//
// Both sides derive each list from the same ascending base-edge sweep
// (node lists sorted + deduplicated, edge lists naturally ascending), so
// sender pack order and receiver unpack order agree by construction —
// the channel is a FIFO with no per-message framing.
//
// Each DomainPlan also carries a CSR slice over its owned nodes that
// replicates core::FlowLedger's layout (incident edge ids ascending per
// row, sign −1 when the row's node is the edge's u).  The domain-local
// apply sweep walks this slice with gather arithmetic identical to
// FlowLedger::gather_node, which is what makes the sharded apply
// bit-identical to the shared-memory oracle (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <vector>

#include "lb/graph/graph.hpp"
#include "lb/shard/ownership.hpp"

namespace lb::shard {

/// One peer's routing entry within a DomainPlan.  All four lists are
/// from the plan-owning domain's perspective.
struct HaloLink {
  std::uint32_t peer = 0;
  /// Owned boundary nodes whose loads the peer needs (ascending, unique).
  std::vector<graph::NodeId> send_nodes;
  /// Peer-owned boundary nodes this domain needs (ascending, unique).
  std::vector<graph::NodeId> recv_nodes;
  /// Owned cut edges whose flow goes to the peer (ascending base ids).
  std::vector<std::uint32_t> send_flow_edges;
  /// Peer-owned cut edges whose flow arrives here (ascending base ids).
  std::vector<std::uint32_t> recv_flow_edges;
};

struct DomainPlan {
  /// Owned nodes, ascending (== OwnershipMap::nodes(d)).
  std::vector<graph::NodeId> nodes;
  /// Owned edges — base ids k with owner(edges()[k].u) == d — ascending.
  std::vector<std::uint32_t> owned_edges;
  /// CSR over owned nodes (row i = nodes[i]), FlowLedger layout.
  std::vector<std::size_t> row_ptr;      // nodes.size() + 1 entries
  std::vector<std::uint32_t> edge_idx;   // incident base edge ids, ascending per row
  std::vector<double> sign;              // -1 if the row's node is the edge's u
  /// Peers, sorted ascending by domain id.
  std::vector<HaloLink> links;
};

class HaloExchange {
 public:
  HaloExchange() = default;

  /// Build all K domain plans for (g, map).  map must have been built
  /// for g (same revision).  Deterministic: pure function of the two.
  static HaloExchange build(const graph::Graph& g, const OwnershipMap& map);

  std::size_t domains() const { return plans_.size(); }
  const DomainPlan& plan(std::size_t d) const { return plans_[d]; }
  const std::vector<DomainPlan>& plans() const { return plans_; }

  /// Cut edges crossing any domain boundary (== map.cut_edges()).
  std::size_t cut_edges() const { return cut_edges_; }

  bool valid_for(const graph::Graph& g, const OwnershipMap& map) const {
    return revision_ != 0 && revision_ == g.revision() &&
           plans_.size() == map.domains();
  }

 private:
  std::uint64_t revision_ = 0;
  std::size_t cut_edges_ = 0;
  std::vector<DomainPlan> plans_;
};

}  // namespace lb::shard
