#include "lb/shard/halo.hpp"

#include <algorithm>

#include "lb/util/assert.hpp"

namespace lb::shard {

namespace {

/// Find-or-append the link entry for `peer`, keeping insertion cheap;
/// links are sorted once all edges have been swept.
HaloLink& link_for(DomainPlan& plan, std::uint32_t peer) {
  for (HaloLink& l : plan.links) {
    if (l.peer == peer) return l;
  }
  plan.links.push_back(HaloLink{});
  plan.links.back().peer = peer;
  return plan.links.back();
}

void sort_unique(std::vector<graph::NodeId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

HaloExchange HaloExchange::build(const graph::Graph& g, const OwnershipMap& map) {
  LB_ASSERT_MSG(map.valid_for(g, map.domains(), map.policy()),
                "ownership map was built for a different topology");
  const std::size_t K = map.domains();
  const auto& owner = map.owners();
  const auto& edges = g.edges();

  HaloExchange halo;
  halo.revision_ = g.revision();
  halo.plans_.resize(K);

  // Owned node lists + local row index of each node within its domain.
  std::vector<std::uint32_t> local(g.num_nodes());
  for (std::size_t d = 0; d < K; ++d) {
    halo.plans_[d].nodes = map.nodes(d);
    const auto& nodes = halo.plans_[d].nodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      local[nodes[i]] = static_cast<std::uint32_t>(i);
    }
  }

  // Pass 1 over the ascending edge list: owned-edge lists, link node/flow
  // lists, and per-row incident counts for the CSR slices.
  std::vector<std::vector<std::size_t>> row_count(K);
  for (std::size_t d = 0; d < K; ++d) {
    row_count[d].assign(halo.plans_[d].nodes.size(), 0);
  }
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const graph::Edge& e = edges[k];
    const std::uint32_t a = owner[e.u];
    const std::uint32_t b = owner[e.v];
    halo.plans_[a].owned_edges.push_back(static_cast<std::uint32_t>(k));
    ++row_count[a][local[e.u]];
    ++row_count[b][local[e.v]];
    if (a == b) continue;
    ++halo.cut_edges_;
    // a computes flow k: needs v's load from b, then ships the flow back.
    link_for(halo.plans_[a], b).recv_nodes.push_back(e.v);
    link_for(halo.plans_[b], a).send_nodes.push_back(e.v);
    link_for(halo.plans_[a], b).send_flow_edges.push_back(static_cast<std::uint32_t>(k));
    link_for(halo.plans_[b], a).recv_flow_edges.push_back(static_cast<std::uint32_t>(k));
  }

  // CSR slices: cursor fill in ascending edge order — each row's incident
  // ids come out ascending, matching FlowLedger's layout.
  for (std::size_t d = 0; d < K; ++d) {
    DomainPlan& plan = halo.plans_[d];
    plan.row_ptr.assign(plan.nodes.size() + 1, 0);
    for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
      plan.row_ptr[i + 1] = plan.row_ptr[i] + row_count[d][i];
    }
    plan.edge_idx.resize(plan.row_ptr.back());
    plan.sign.resize(plan.row_ptr.back());
  }
  std::vector<std::vector<std::size_t>>& cursor = row_count;  // reuse as cursors
  for (std::size_t d = 0; d < K; ++d) {
    for (std::size_t i = 0; i < halo.plans_[d].nodes.size(); ++i) {
      cursor[d][i] = halo.plans_[d].row_ptr[i];
    }
  }
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const graph::Edge& e = edges[k];
    const std::uint32_t a = owner[e.u];
    const std::uint32_t b = owner[e.v];
    DomainPlan& pa = halo.plans_[a];
    const std::size_t pu = cursor[a][local[e.u]]++;
    pa.edge_idx[pu] = static_cast<std::uint32_t>(k);
    pa.sign[pu] = -1.0;  // the row's node is the edge's u
    DomainPlan& pb = halo.plans_[b];
    const std::size_t pv = cursor[b][local[e.v]]++;
    pb.edge_idx[pv] = static_cast<std::uint32_t>(k);
    pb.sign[pv] = 1.0;
  }

  // Canonical link order + deduplicated node lists.  Both endpoints of a
  // pair run the same sort over the same underlying sets, so sender pack
  // order == receiver unpack order.  Flow-edge lists were appended from
  // one ascending sweep and stay as-is.
  for (std::size_t d = 0; d < K; ++d) {
    DomainPlan& plan = halo.plans_[d];
    std::sort(plan.links.begin(), plan.links.end(),
              [](const HaloLink& x, const HaloLink& y) { return x.peer < y.peer; });
    for (HaloLink& l : plan.links) {
      sort_unique(l.send_nodes);
      sort_unique(l.recv_nodes);
    }
  }
  return halo;
}

}  // namespace lb::shard
