#include "lb/shard/ownership.hpp"

#include <algorithm>

#include "lb/util/assert.hpp"

namespace lb::shard {

std::string to_string(PartitionPolicy policy) {
  switch (policy) {
    case PartitionPolicy::kContiguous: return "contiguous";
    case PartitionPolicy::kStrided: return "strided";
    case PartitionPolicy::kGreedyEdgeCut: return "greedy";
  }
  return "?";
}

namespace {

std::size_t count_cut(const graph::Graph& g, const std::vector<std::uint32_t>& owner) {
  std::size_t cut = 0;
  for (const graph::Edge& e : g.edges()) {
    if (owner[e.u] != owner[e.v]) ++cut;
  }
  return cut;
}

// Bounded deterministic refinement of a contiguous seed.  Each pass
// visits nodes in ascending id order and moves a node to the domain
// holding the (strict) majority of its neighbours when that strictly
// reduces the cut, subject to balance guards: the destination stays at
// or below the contiguous cap ⌈n/K⌉ and the source keeps at least one
// node.  Ties between candidate domains break toward the lowest id.
// Every accepted move strictly decreases the global cut, so the loop
// terminates; the pass cap just bounds worst-case work.  The final cut
// is therefore <= the contiguous seed's cut by construction.
void refine(const graph::Graph& g, std::size_t domains,
            std::vector<std::uint32_t>& owner) {
  const std::size_t n = g.num_nodes();
  const std::size_t cap = (n + domains - 1) / domains;
  std::vector<std::size_t> size(domains, 0);
  for (std::uint32_t d : owner) ++size[d];

  constexpr int kMaxPasses = 8;
  std::vector<std::size_t> tally(domains, 0);
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool moved = false;
    for (graph::NodeId u = 0; u < n; ++u) {
      const std::uint32_t from = owner[u];
      if (size[from] <= 1) continue;
      std::fill(tally.begin(), tally.end(), 0);
      for (graph::NodeId v : g.neighbors(u)) ++tally[owner[v]];
      // Best destination: most neighbours, lowest id on ties, and it
      // must beat the current domain strictly (strict cut gain).
      std::uint32_t best = from;
      std::size_t best_tally = tally[from];
      for (std::uint32_t d = 0; d < domains; ++d) {
        if (d == from || size[d] >= cap) continue;
        if (tally[d] > best_tally) {
          best = d;
          best_tally = tally[d];
        }
      }
      if (best == from) continue;
      owner[u] = best;
      --size[from];
      ++size[best];
      moved = true;
    }
    if (!moved) break;
  }
}

}  // namespace

OwnershipMap OwnershipMap::build(const graph::Graph& g, std::size_t domains,
                                 PartitionPolicy policy) {
  LB_ASSERT_MSG(domains > 0, "need at least one ownership domain");
  LB_ASSERT_MSG(g.num_nodes() > 0, "cannot shard an empty graph");
  LB_ASSERT_MSG(domains <= g.num_nodes(),
                "more ownership domains than nodes");
  const std::size_t n = g.num_nodes();

  OwnershipMap map;
  map.revision_ = g.revision();
  map.domains_ = domains;
  map.policy_ = policy;
  map.owner_.resize(n);

  // Balanced contiguous blocks: the first n mod K domains get ⌈n/K⌉
  // nodes, the rest ⌊n/K⌋ — every domain nonempty whenever K <= n
  // (a plain ⌈n/K⌉ block size can starve trailing domains).
  const auto contiguous_owner = [n, domains](std::size_t u) {
    const std::size_t q = n / domains;
    const std::size_t r = n % domains;
    const std::size_t split = r * (q + 1);
    return static_cast<std::uint32_t>(u < split ? u / (q + 1)
                                                : r + (u - split) / q);
  };
  switch (policy) {
    case PartitionPolicy::kContiguous:
      for (std::size_t u = 0; u < n; ++u) map.owner_[u] = contiguous_owner(u);
      break;
    case PartitionPolicy::kStrided:
      for (std::size_t u = 0; u < n; ++u) {
        map.owner_[u] = static_cast<std::uint32_t>(u % domains);
      }
      break;
    case PartitionPolicy::kGreedyEdgeCut:
      for (std::size_t u = 0; u < n; ++u) map.owner_[u] = contiguous_owner(u);
      refine(g, domains, map.owner_);
      break;
  }

  map.nodes_.resize(domains);
  for (graph::NodeId u = 0; u < n; ++u) {
    map.nodes_[map.owner_[u]].push_back(u);
  }
  map.cut_edges_ = count_cut(g, map.owner_);
  return map;
}

}  // namespace lb::shard
