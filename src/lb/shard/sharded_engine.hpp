// The sharded engine: runs a balancer over K ownership domains with
// explicit halo exchange, producing a RunResult BIT-IDENTICAL to the
// shared-memory engine (core/engine.hpp) on the same inputs.
//
// Each round, a distributable balancer describes itself as a
// core::FlowProgram (plan_round); the engine then executes the round as
// each domain's independent half — pack boundary loads, exchange, compute
// owned-edge flows from halo copies, exchange, apply domain-local gather
// sweeps — reconciling at deterministic sim::CommEngine barriers.
// Balancers that cannot be distributed (async, random-partner, ...) fall
// back to their shared-memory step() for that round, still inside the
// sharded run loop, so every balancer remains runnable at any K.
//
// Why the results match bit for bit (DESIGN.md §7 has the full argument):
// flows are pure functions of (edge, endpoint round-start loads) and halo
// copies are bytewise verbatim, so owner-computed flows equal the
// oracle's; each domain's apply walks its nodes' incident edges in
// ascending base order with FlowLedger's exact gather arithmetic; and
// round observability (StepStats totals, Φ/discrepancy summaries) is
// computed centrally at the barrier through the same deterministic
// reductions the shared-memory engine uses.
#pragma once

#include <vector>

#include "lb/core/engine.hpp"
#include "lb/graph/dynamic.hpp"
#include "lb/shard/ownership.hpp"
#include "lb/sim/comm.hpp"

namespace lb::shard {

/// Per-link cost override (e.g. one slow link for straggler studies).
struct LinkOverride {
  std::size_t from = 0;
  std::size_t to = 0;
  sim::LinkConfig config;
};

struct ShardConfig {
  /// Number of ownership domains K.  K = 1 still runs the full sharded
  /// machinery (a single domain simply has no links), which is the
  /// cheapest self-check that the domain path equals the oracle.
  std::size_t domains = 1;
  PartitionPolicy policy = PartitionPolicy::kGreedyEdgeCut;
  /// Cost model applied to every inter-domain link...
  sim::LinkConfig default_link;
  /// ...except these.
  std::vector<LinkOverride> link_overrides;
};

/// Sharded counterpart of core::run(): identical RunResult (trace
/// included) plus the comm-observability fields (RunResult::domains,
/// sharded_rounds, comm, domain_comm; RoundRecord::messages,
/// boundary_bytes, halo_wait_us).  Wall-clock fields excluded, as always.
template <class T>
core::RunResult run(core::Balancer<T>& balancer, graph::GraphSequence& seq,
                    std::vector<T>& load, const core::EngineConfig& config,
                    const ShardConfig& shard);

/// Convenience wrapper for a fixed network.
template <class T>
core::RunResult run_static(core::Balancer<T>& balancer, const graph::Graph& g,
                           std::vector<T>& load, const core::EngineConfig& config,
                           const ShardConfig& shard);

}  // namespace lb::shard
