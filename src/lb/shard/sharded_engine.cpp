#include "lb/shard/sharded_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "lb/check/invariants.hpp"
#include "lb/core/flow_ledger.hpp"
#include "lb/core/flow_program.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/core/round_context.hpp"
#include "lb/shard/halo.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/util/timer.hpp"
#include "lb/workload/stream.hpp"

namespace lb::shard {

namespace {

/// Run fn(d) for every domain, on the pool when it has workers to give.
/// One domain per chunk: domains are the unit of independence here.
template <class Fn>
void for_each_domain(util::ThreadPool* pool, std::size_t domains, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || domains <= 1) {
    for (std::size_t d = 0; d < domains; ++d) fn(d);
    return;
  }
  pool->parallel_for(0, domains, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t d = lo; d < hi; ++d) fn(d);
  });
}

/// Per-run sharded state: the ownership/halo tables (rebuilt when the
/// base topology epoch moves — mask churn never rebuilds), the comm
/// engine (lives for the whole run; totals are cumulative), and per-
/// domain scratch.
template <class T>
struct Runtime {
  Runtime(std::size_t domains, const ShardConfig& cfg) : comm(domains), prev(domains) {
    comm.set_default_link(cfg.default_link);
    for (const LinkOverride& o : cfg.link_overrides) {
      comm.set_link(o.from, o.to, o.config);
    }
    halo_load.resize(domains);
    node_buf.resize(domains);
    flow_buf.resize(domains);
    local_pairs.resize(domains);
    remote_out.resize(domains);
    remote_in.resize(domains);
  }

  /// Returns true when the tables were rebuilt for a new base epoch, so
  /// the caller can re-validate its own per-epoch state (the invariant
  /// layer re-checks halo mirrors and domain plans exactly then).
  bool ensure(const graph::Graph& base, const ShardConfig& cfg) {
    if (map.valid_for(base, cfg.domains, cfg.policy)) return false;
    map = OwnershipMap::build(base, cfg.domains, cfg.policy);
    halo = HaloExchange::build(base, map);
    for (std::vector<T>& h : halo_load) h.assign(base.num_nodes(), T{});
    // Allocation audit (DESIGN.md §9): size the pack/unpack scratch to the
    // largest link payload now, so the per-round clear()/push_back cycles
    // never grow a buffer mid-run.
    for (std::size_t d = 0; d < halo_load.size(); ++d) {
      std::size_t max_nodes = 0, max_flows = 0;
      for (const HaloLink& l : halo.plan(d).links) {
        max_nodes = std::max({max_nodes, l.send_nodes.size(), l.recv_nodes.size()});
        max_flows =
            std::max({max_flows, l.send_flow_edges.size(), l.recv_flow_edges.size()});
      }
      node_buf[d].reserve(max_nodes);
      flow_buf[d].reserve(max_flows);
    }
    return true;
  }

  OwnershipMap map;
  HaloExchange halo;
  sim::CommEngine comm;
  std::vector<sim::CommTotals> prev;           // totals at last round boundary
  std::vector<std::vector<T>> halo_load;       // per domain: remote loads by node id
  std::vector<std::vector<T>> node_buf;        // per domain pack/unpack scratch
  std::vector<std::vector<double>> flow_buf;   // per domain flow payload scratch
  // kMatching per-round work lists (rebuilt each matching round).
  std::vector<std::vector<std::uint32_t>> local_pairs;
  std::vector<std::vector<std::uint32_t>> remote_out;  // this domain owns e.u
  std::vector<std::vector<std::uint32_t>> remote_in;   // this domain owns e.v
};

/// One kAllEdges round: the halo protocol around the standard
/// compute-flows / gather-apply round shape.
template <class T>
core::StepStats step_all_edges(core::RoundContext<T>& ctx,
                               const core::FlowProgram<T>& program,
                               std::vector<T>& load, Runtime<T>& rt,
                               util::ThreadPool* pool) {
  const graph::TopologyFrame& frame = ctx.frame();
  const auto& edges = frame.base().edges();
  const bool masked = frame.masked();
  const std::size_t K = rt.map.domains();
  const auto& owner = rt.map.owners();
  std::vector<double>& flows = ctx.arena().flows();
  flows.resize(edges.size());

  core::StepStats stats;
  stats.links = program.links;

  // Phase A: every domain ships its boundary nodes' round-start loads.
  // Node halos are a function of the topology alone (not of the round's
  // mask): a dead boundary edge still carries its endpoint load, keeping
  // the payload schedule deterministic per topology epoch.
  for_each_domain(pool, K, [&](std::size_t d) {
    const DomainPlan& plan = rt.halo.plan(d);
    std::vector<T>& buf = rt.node_buf[d];
    for (const HaloLink& l : plan.links) {
      if (l.send_nodes.empty()) continue;
      buf.clear();
      for (graph::NodeId v : l.send_nodes) buf.push_back(load[v]);
      rt.comm.send(d, l.peer, buf.data(), buf.size());
    }
  });
  rt.comm.deliver();

  // Phase B: unpack halos, compute owned-edge flows from (local load,
  // halo copy) pairs, ship boundary flows back.  Edge k's slot is written
  // exclusively by owner(edges[k].u), so the shared flow vector needs no
  // synchronization beyond the phase barriers.
  for_each_domain(pool, K, [&](std::size_t d) {
    const DomainPlan& plan = rt.halo.plan(d);
    std::vector<T>& halo = rt.halo_load[d];
    std::vector<T>& buf = rt.node_buf[d];
    for (const HaloLink& l : plan.links) {
      if (l.recv_nodes.empty()) continue;
      buf.resize(l.recv_nodes.size());
      rt.comm.recv(l.peer, d, buf.data(), buf.size());
      for (std::size_t i = 0; i < l.recv_nodes.size(); ++i) {
        halo[l.recv_nodes[i]] = buf[i];
      }
    }
    for (const std::uint32_t k : plan.owned_edges) {
      if (masked && !frame.alive(k)) continue;
      const graph::Edge& e = edges[k];
      const T lv = owner[e.v] == static_cast<std::uint32_t>(d) ? load[e.v]
                                                               : halo[e.v];
      flows[k] = program.flow(k, e, static_cast<double>(load[e.u]),
                              static_cast<double>(lv));
    }
    std::vector<double>& fbuf = rt.flow_buf[d];
    for (const HaloLink& l : plan.links) {
      fbuf.clear();
      for (const std::uint32_t k : l.send_flow_edges) {
        if (masked && !frame.alive(k)) continue;
        fbuf.push_back(flows[k]);
      }
      if (!fbuf.empty()) rt.comm.send(d, l.peer, fbuf.data(), fbuf.size());
    }
  });
  rt.comm.deliver();

  // Round totals, centrally at the barrier: the same edge-order
  // accumulation the shared-memory paths use, so StepStats — a
  // left-to-right double sum — cannot depend on the domain split.
  if (masked) {
    core::accumulate_flow_totals_masked<T>(frame, flows, stats);
  } else {
    core::accumulate_flow_totals<T>(flows, stats);
  }

  // Phase C1: unpack received boundary flows.  A separate phase from the
  // gathers below so no domain reads a slot another is still writing.
  for_each_domain(pool, K, [&](std::size_t d) {
    const DomainPlan& plan = rt.halo.plan(d);
    std::vector<double>& fbuf = rt.flow_buf[d];
    for (const HaloLink& l : plan.links) {
      std::size_t count = 0;
      for (const std::uint32_t k : l.recv_flow_edges) {
        if (masked && !frame.alive(k)) continue;
        ++count;
      }
      if (count == 0) continue;
      fbuf.resize(count);
      rt.comm.recv(l.peer, d, fbuf.data(), count);
      std::size_t i = 0;
      for (const std::uint32_t k : l.recv_flow_edges) {
        if (masked && !frame.alive(k)) continue;
        flows[k] = fbuf[i++];
      }
    }
  });

  // Phase C2: domain-local apply sweeps.  Each owned node's row walk is
  // FlowLedger::gather_node(_masked) verbatim — ascending incident base
  // edges, identical skip/cast/accumulate rules — so the loads land bit
  // for bit on the oracle's.
  for_each_domain(pool, K, [&](std::size_t d) {
    const DomainPlan& plan = rt.halo.plan(d);
    for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
      const graph::NodeId u = plan.nodes[i];
      const T before = load[u];
      T value = before;
      const std::size_t row_end = plan.row_ptr[i + 1];
      for (std::size_t p = plan.row_ptr[i]; p < row_end; ++p) {
        const std::uint32_t k = plan.edge_idx[p];
        if (masked && !frame.alive(k)) continue;  // dead slot: may be stale
        const double f = flows[k];
        if (f == 0.0) continue;
        if constexpr (std::is_integral_v<T>) {
          value += static_cast<T>(plan.sign[p] * f);
        } else {
          value += static_cast<T>(plan.sign[p]) * static_cast<T>(f);
        }
      }
      load[u] = program.post ? program.post(u, value, before) : value;
    }
  });
  return stats;
}

/// One kMatching round (dimension exchange): a vertex-disjoint edge set,
/// so each endpoint takes exactly one ±amount update.  Convention as for
/// owned edges: owner(e.u) computes the flow; owner(e.v) ships v's load
/// forward and applies the returned flow.
template <class T>
core::StepStats step_matching(core::RoundContext<T>& ctx,
                              const core::FlowProgram<T>& program,
                              std::vector<T>& load, Runtime<T>& rt,
                              util::ThreadPool* pool) {
  const auto& edges = ctx.frame().base().edges();
  const std::size_t K = rt.map.domains();
  const auto& owner = rt.map.owners();

  core::StepStats stats;
  stats.links = program.links;

  // Round totals centrally, in matching order from round-start loads —
  // the oracle's own accumulation sequence.  The matching is vertex-
  // disjoint, so these loads are exactly what each domain computes from
  // below; this pass only fixes the summation order of the double total.
  for (const std::uint32_t k : program.matched) {
    const graph::Edge& e = edges[k];
    const double f = program.flow(k, e, static_cast<double>(load[e.u]),
                                  static_cast<double>(load[e.v]));
    if (f == 0.0) continue;
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }

  // Per-round work lists, in matching order.  Each (sender, receiver)
  // channel sees the same matched subsequence on both sides, so the
  // per-value sends below line up FIFO with the recvs.
  for (std::size_t d = 0; d < K; ++d) {
    rt.local_pairs[d].clear();
    rt.remote_out[d].clear();
    rt.remote_in[d].clear();
  }
  for (const std::uint32_t k : program.matched) {
    const graph::Edge& e = edges[k];
    const std::uint32_t a = owner[e.u];
    const std::uint32_t b = owner[e.v];
    if (a == b) {
      rt.local_pairs[a].push_back(k);
    } else {
      rt.remote_out[a].push_back(k);
      rt.remote_in[b].push_back(k);
    }
  }

  // Phase A: v-side domains ship their endpoint loads to the owners.
  for_each_domain(pool, K, [&](std::size_t d) {
    for (const std::uint32_t k : rt.remote_in[d]) {
      const graph::Edge& e = edges[k];
      rt.comm.send(d, owner[e.u], &load[e.v], 1);
    }
  });
  rt.comm.deliver();

  // Phase B: owners compute each matched flow, apply u's side, and ship
  // the flow back (every matched cut edge ships, zero or not, keeping
  // message counts a function of the matching alone).  Local pairs apply
  // both sides at once, exactly like the oracle's direct loop.
  for_each_domain(pool, K, [&](std::size_t d) {
    for (const std::uint32_t k : rt.remote_out[d]) {
      const graph::Edge& e = edges[k];
      T lv{};
      rt.comm.recv(owner[e.v], d, &lv, 1);
      const double f = program.flow(k, e, static_cast<double>(load[e.u]),
                                    static_cast<double>(lv));
      rt.comm.send(d, owner[e.v], &f, 1);
      if (f == 0.0) continue;
      const T amount = static_cast<T>(std::fabs(f));
      if (amount == T{}) continue;
      if (f > 0.0) {
        load[e.u] -= amount;
      } else {
        load[e.u] += amount;
      }
    }
    for (const std::uint32_t k : rt.local_pairs[d]) {
      const graph::Edge& e = edges[k];
      const double f = program.flow(k, e, static_cast<double>(load[e.u]),
                                    static_cast<double>(load[e.v]));
      if (f == 0.0) continue;
      const T amount = static_cast<T>(std::fabs(f));
      if (amount == T{}) continue;
      if (f > 0.0) {
        load[e.u] -= amount;
        load[e.v] += amount;
      } else {
        load[e.v] -= amount;
        load[e.u] += amount;
      }
    }
  });
  rt.comm.deliver();

  // Phase C: v-side domains apply the received flows.
  for_each_domain(pool, K, [&](std::size_t d) {
    for (const std::uint32_t k : rt.remote_in[d]) {
      const graph::Edge& e = edges[k];
      double f = 0.0;
      rt.comm.recv(owner[e.u], d, &f, 1);
      if (f == 0.0) continue;
      const T amount = static_cast<T>(std::fabs(f));
      if (amount == T{}) continue;
      if (f > 0.0) {
        load[e.v] += amount;
      } else {
        load[e.v] -= amount;
      }
    }
  });
  return stats;
}

}  // namespace

template <class T>
core::RunResult run(core::Balancer<T>& balancer, graph::GraphSequence& seq,
                    std::vector<T>& load, const core::EngineConfig& config,
                    const ShardConfig& shard) {
  using core::LoadSummary;
  using core::MetricsPath;
  using core::RunResult;
  using core::SummaryMode;

  LB_ASSERT_MSG(load.size() == seq.num_nodes(), "load vector does not match network");
  LB_ASSERT_MSG(shard.domains >= 1, "need at least one ownership domain");
  LB_ASSERT_MSG(shard.domains <= seq.num_nodes(), "more domains than nodes");
  util::Rng rng(config.seed);
  const util::Stopwatch run_watch;

  balancer.on_run_begin();

  // Open-system traffic (DESIGN.md §11): same retyping and replay as
  // core::run — the stream is re-derived per round from the seed chain,
  // so shared-memory and sharded runs see identical deltas.
  workload::Stream<T>* stream = nullptr;
  if (config.stream != nullptr) {
    stream = dynamic_cast<workload::Stream<T>*>(config.stream);
    LB_ASSERT_MSG(stream != nullptr,
                  "EngineConfig::stream scalar type does not match the run");
    stream->reset();
  }

  const bool fused = config.metrics == MetricsPath::kFusedParallel;
  util::ThreadPool* pool =
      config.pool != nullptr ? config.pool : &util::ThreadPool::global();

  Runtime<T> rt(shard.domains, shard);
  core::RunArena<T> arena;
  core::FlowProgram<T> program;

  // Invariant checking (DESIGN.md §8): the sharded engine carries the
  // full catalog — conservation, halo mirrors, domain-plan CSR, flow
  // antisymmetry, and comm accounting.  Checks only read engine state.
  const bool checking = config.check_invariants || check::env_enabled();
  check::ConservationBaseline<T> baseline;
  if (checking) baseline = check::conservation_baseline(load);
  const auto snapshot_totals = [&rt, &shard] {
    std::vector<sim::CommTotals> totals(shard.domains);
    for (std::size_t d = 0; d < shard.domains; ++d) totals[d] = rt.comm.totals(d);
    return totals;
  };

  RunResult result;
  result.domains = shard.domains;
  result.open_system = stream != nullptr;

  const auto fill_comm = [&](RunResult& r) {
    r.domain_comm.resize(shard.domains);
    for (std::size_t d = 0; d < shard.domains; ++d) {
      const sim::CommTotals& t = rt.comm.totals(d);
      r.domain_comm[d] = core::DomainCommStats{t.messages, t.boundary_bytes, t.wait_us};
      r.comm.messages += t.messages;
      r.comm.boundary_bytes += t.boundary_bytes;
      r.comm.halo_wait_us += t.wait_us;
    }
  };

  // Everything below mirrors core::run() round for round — the bit-
  // identity contract is "same branches, same reductions, same order",
  // with only the step body swapped for the domain protocol.
  const LoadSummary<T> initial =
      fused ? core::summarize_parallel(load, pool) : core::summarize(load);
  double run_average = initial.average;
  T running_total = initial.total;
  T net_stream{};
  result.initial_potential = initial.potential;

  if (stream == nullptr && result.initial_potential <= config.target_potential) {
    result.reached_target = true;
    result.final_potential = result.initial_potential;
    result.final_discrepancy = initial.discrepancy;
    fill_comm(result);
    result.total_seconds = run_watch.elapsed_seconds();
    return result;
  }

  if (config.record_trace) {
    result.trace.reserve(std::min<std::size_t>(config.max_rounds, 4096));
    result.trace.set_open_system(stream != nullptr);
  }
  const SummaryMode mode = (config.record_trace || stream != nullptr)
                               ? SummaryMode::kFull
                               : SummaryMode::kPotentialOnly;

  core::metrics::SteadyState steady;

  const auto finish = [&](RunResult& r) {
    if (fused && !config.record_trace && stream == nullptr) {
      r.final_discrepancy =
          core::summarize_deterministic(load, run_average, pool,
                                        SummaryMode::kExtremaOnly,
                                        arena.summary_parts())
              .discrepancy;
    }
    if (stream != nullptr) r.steady = steady.finalize();
    fill_comm(r);
    r.total_seconds = run_watch.elapsed_seconds();
  };

  std::size_t consecutive_idle = 0;
  std::uint64_t base_epoch = 0;
  std::uint64_t mask_epoch = 0;
  for (std::size_t round = 1; round <= config.max_rounds; ++round) {
    const graph::TopologyFrame& frame = seq.frame_at(round);
    if (frame.base_revision() != base_epoch || frame.mask_revision() != mask_epoch) {
      balancer.on_topology_changed();
      base_epoch = frame.base_revision();
      mask_epoch = frame.mask_revision();
      if (checking && frame.mask() != nullptr) {
        check::check_mask(*frame.mask());
      }
    }
    const bool rebuilt = rt.ensure(frame.base(), shard);
    if (checking && rebuilt) {
      // Fresh ownership/halo tables: prove the routing invariants once
      // per base epoch, before any round executes against them.
      check::check_halo_mirrors(rt.halo);
      for (std::size_t d = 0; d < shard.domains; ++d) {
        check::check_domain_plan(frame.base(), rt.map.owners(), d, rt.halo.plan(d));
      }
    }

    // Stream delta, owner domains only: each domain applies exactly its
    // owned slice of the (sorted, duplicate-free) delta, which composes
    // to one apply_stream_delta over the whole vector — nodes are
    // disjoint across domains and the arithmetic is per-node.  The
    // ledger totals come from the central sequential tally *before* the
    // apply, the same pass core::run uses, so the running baseline and
    // the conservation ledger are bit-identical to the oracle.
    workload::AppliedStream<T> applied{};
    bool delta_applied = false;
    if (stream != nullptr) {
      const workload::StreamDelta<T>& delta = stream->delta_at(round);
      if (!delta.empty()) {
        applied = workload::tally_stream_delta(delta, load);
        const auto& owner = rt.map.owners();
        for_each_domain(pool, shard.domains, [&](std::size_t d) {
          workload::apply_stream_delta_owned(delta, load, owner,
                                             static_cast<std::uint32_t>(d));
        });
        arena.invalidate_snapshot();  // blocked-round load cache is stale
        delta_applied = true;
        const T net = applied.net();
        if (net != T{}) {
          running_total += net;
          run_average = static_cast<double>(running_total) /
                        static_cast<double>(load.size());
        }
        net_stream += net;
        result.stream_arrivals += static_cast<double>(applied.arrivals);
        result.stream_departures += static_cast<double>(applied.departures);
      }
    }

    core::RoundContext<T> ctx(frame, rng, pool, arena);
    ctx.set_spectral_cache(config.spectral_cache);
    if (fused) ctx.request_summary(mode, run_average);

    util::Stopwatch watch;
    program.reset();
    core::StepStats stats;
    bool planned = balancer.plan_round(ctx, program);
    if (planned) {
      LB_ASSERT_MSG(program.flow != nullptr, "planned round without a flow function");
      const bool matching = program.support == core::FlowProgram<T>::Support::kMatching;
      std::vector<sim::CommTotals> before;
      std::vector<check::RoundCommExpectation> expected;
      if (checking) {
        // Round-start loads are what the domains will exchange, so the
        // antisymmetry probe sees exactly the values the protocol uses.
        check::check_flow_antisymmetry(program, frame, load, round);
        before = snapshot_totals();
        expected = matching
                       ? check::expected_matching_round_comm<T>(
                             program.matched, frame.base().edges(),
                             rt.map.owners(), shard.domains)
                       : check::expected_all_edges_round_comm<T>(rt.halo.plans(), frame);
      }
      stats = matching ? step_matching(ctx, program, load, rt, pool)
                       : step_all_edges(ctx, program, load, rt, pool);
      // The sharded kernels mutate `load` without going through the
      // blocked round, so a later shared-memory step() in this loop must
      // not trust the arena's snapshot cache.
      arena.invalidate_snapshot();
      if (checking) {
        const std::vector<sim::CommTotals> after = snapshot_totals();
        check::check_comm_accounting(expected, before, after, round);
      }
      ++result.sharded_rounds;
    } else {
      // Non-distributable round: shared-memory step() inside the sharded
      // loop (zero comm; not counted in sharded_rounds).
      stats = balancer.step(ctx, load);
    }
    const double step_us = watch.elapsed_seconds() * 1e6;
    ++result.rounds;

    watch.reset();
    LoadSummary<T> summary;
    if (!fused) {
      summary = core::summarize(load);
    } else if (ctx.has_summary()) {
      summary = ctx.summary();
    } else {
      summary = core::summarize_deterministic(load, run_average, pool, mode,
                                              arena.summary_parts());
    }
    const double metrics_us = watch.elapsed_seconds() * 1e6;
    result.step_seconds += step_us * 1e-6;
    result.metrics_seconds += metrics_us * 1e-6;

    if (checking) {
      check::check_conservation(baseline, load, round, stats.links, "shard",
                                net_stream);
    }

    if (stream != nullptr) {
      steady.observe(round, summary.potential, summary.discrepancy,
                     static_cast<double>(summary.max),
                     static_cast<double>(applied.arrivals),
                     static_cast<double>(applied.departures));
    }

    if (config.record_trace) {
      core::RoundRecord rec{round, summary.potential, summary.discrepancy,
                            stats.transferred, stats.active_edges, step_us,
                            metrics_us};
      for (std::size_t d = 0; d < shard.domains; ++d) {
        const sim::CommTotals& t = rt.comm.totals(d);
        rec.messages += t.messages - rt.prev[d].messages;
        rec.boundary_bytes += t.boundary_bytes - rt.prev[d].boundary_bytes;
        rec.halo_wait_us += t.wait_us - rt.prev[d].wait_us;
        rt.prev[d] = t;
      }
      if (stream != nullptr) {
        rec.arrivals = static_cast<double>(applied.arrivals);
        rec.departures = static_cast<double>(applied.departures);
        rec.net_load = static_cast<double>(net_stream);
      }
      result.trace.add(rec);
      result.final_discrepancy = summary.discrepancy;
    } else if (!fused || stream != nullptr) {
      result.final_discrepancy = summary.discrepancy;
    }
    result.final_potential = summary.potential;

    if (summary.potential <= config.target_potential) {
      result.reached_target = true;
      finish(result);
      return result;
    }
    if (stats.transferred == 0.0 && !delta_applied) {
      ++consecutive_idle;
      if (config.stall_rounds > 0 && consecutive_idle >= config.stall_rounds) {
        result.stalled = true;
        finish(result);
        return result;
      }
    } else {
      consecutive_idle = 0;
    }
  }
  finish(result);
  return result;
}

template <class T>
core::RunResult run_static(core::Balancer<T>& balancer, const graph::Graph& g,
                           std::vector<T>& load, const core::EngineConfig& config,
                           const ShardConfig& shard) {
  auto seq = graph::make_static_sequence(g);
  return run(balancer, *seq, load, config, shard);
}

#define LB_INSTANTIATE(T)                                                       \
  template core::RunResult run<T>(core::Balancer<T>&, graph::GraphSequence&,    \
                                  std::vector<T>&, const core::EngineConfig&,   \
                                  const ShardConfig&);                          \
  template core::RunResult run_static<T>(core::Balancer<T>&, const graph::Graph&, \
                                         std::vector<T>&, const core::EngineConfig&, \
                                         const ShardConfig&);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::shard
