// Steady-state metrics for open-system runs (DESIGN.md §11).
//
// A closed-system run is judged by convergence (rounds-to-ε, drop
// rates — ConvergenceReport in metrics.hpp).  An open-system run never
// converges: traffic keeps arriving, so the interesting questions are
// stationary ones — how high does the peak load ride, how long does the
// system take to re-settle after its worst burst, and what fraction of
// rounds is it out of balance by more than ε.  SteadyState is an online
// reducer over the per-round summaries the engine already computes (the
// fixed-chunk deterministic reduction of DESIGN.md §4), so attaching it
// changes no trajectory bytes; its inputs are deterministic, hence so is
// every report field.
#pragma once

#include <cstddef>
#include <vector>

namespace lb::core::metrics {

/// Everything finalize() derives from an observed run.  All load-valued
/// fields are doubles even for Tokens runs — the reducer sits on the
/// observability side of the engine, like Φ and K.
struct SteadyStateReport {
  bool valid = false;        ///< any rounds observed
  std::size_t rounds = 0;
  // Peak-load trajectory: quantiles of the per-round max load.
  double peak_p50 = 0.0;
  double peak_p90 = 0.0;
  double peak_p99 = 0.0;
  double peak_max = 0.0;
  // Burst settling: the round with the largest single-round applied
  // arrivals, and how long Φ took afterwards to return to within
  // settle_ratio of its pre-burst value.
  std::size_t burst_round = 0;       ///< 0 when no arrivals ever landed
  double burst_arrivals = 0.0;       ///< applied arrivals in that round
  double pre_burst_potential = 0.0;  ///< Φ after the round before the burst
  std::size_t settling_rounds = 0;   ///< rounds after the burst to re-settle
  bool settled = false;              ///< false = censored at run end
  // Sustained-churn imbalance: rounds with discrepancy K > ε.
  std::size_t rounds_above_epsilon = 0;
  double fraction_above_epsilon = 0.0;
  // Ledger totals (applied, i.e. post-clamping).
  double total_arrivals = 0.0;
  double total_departures = 0.0;
  double mean_net_per_round = 0.0;
};

/// Online reducer: observe() once per round in round order, finalize()
/// at run end.  Keeps O(rounds) state (three doubles per round) — the
/// same asymptotics as the trace it usually rides next to.
class SteadyState {
 public:
  struct Config {
    /// Settled when Φ <= settle_ratio × pre-burst Φ.
    double settle_ratio = 2.0;
    /// Discrepancy threshold for time-above-ε: "out of balance by more
    /// than one load quantum" under the default.
    double epsilon = 1.0;
  };

  SteadyState() = default;
  explicit SteadyState(const Config& config) : config_(config) {}

  /// Record one round.  `arrivals`/`departures` are the round's APPLIED
  /// stream totals (workload::AppliedStream), `potential`/`discrepancy`/
  /// `max_load` the post-round summary.
  void observe(std::size_t round, double potential, double discrepancy,
               double max_load, double arrivals, double departures);

  SteadyStateReport finalize() const;

 private:
  Config config_;
  std::vector<double> potentials_;
  std::vector<double> max_loads_;
  std::vector<double> arrivals_;
  std::size_t first_round_ = 0;
  std::size_t rounds_above_epsilon_ = 0;
  double total_arrivals_ = 0.0;
  double total_departures_ = 0.0;
};

}  // namespace lb::core::metrics
