#include "lb/core/flow_ledger.hpp"

#include <atomic>
#include <cstdlib>
#include <limits>

#include "lb/util/assert.hpp"

namespace lb::core {

namespace {

std::size_t round_up_to_chunk(unsigned long long width) {
  const auto w = static_cast<std::size_t>(width);
  return ((w + kSummaryChunkWidth - 1) / kSummaryChunkWidth) * kSummaryChunkWidth;
}

// Override state: -1 = no override (env/default applies).
std::atomic<long long> g_block_width_override{-1};

std::size_t env_block_width() {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("LB_BLOCK_NODES")) {
      char* end = nullptr;
      const long long parsed = std::strtoll(env, &end, 10);
      if (end != env && parsed >= 0) {
        return parsed == 0 ? std::size_t{0}
                           : round_up_to_chunk(static_cast<unsigned long long>(parsed));
      }
    }
    return std::size_t{16384};  // 128 KiB of int64 loads: L2-resident
  }();
  return cached;
}

}  // namespace

std::size_t blocked_round_width() {
  const long long override_width = g_block_width_override.load(std::memory_order_relaxed);
  if (override_width >= 0) {
    return override_width == 0
               ? std::size_t{0}
               : round_up_to_chunk(static_cast<unsigned long long>(override_width));
  }
  return env_block_width();
}

void set_blocked_width_override(long long width) {
  g_block_width_override.store(width < 0 ? -1 : width, std::memory_order_relaxed);
}

void FlowLedger::rebuild(const graph::Graph& g) {
  LB_ASSERT_MSG(g.num_edges() <= std::numeric_limits<std::uint32_t>::max(),
                "flow ledger stores 32-bit edge ids");
  num_nodes_ = g.num_nodes();
  num_edges_ = g.num_edges();
  revision_ = g.revision();

  const auto& edges = g.edges();
  const std::size_t slots = 2 * num_edges_;
  std::vector<std::size_t> cursor(num_nodes_ + 1, 0);
  for (const graph::Edge& e : edges) {
    ++cursor[e.u + 1];
    ++cursor[e.v + 1];
  }
  for (std::size_t i = 1; i <= num_nodes_; ++i) cursor[i] += cursor[i - 1];
  row_ptr_.assign_copy(cursor, slots);

  edge_idx_.resize(slots);
  sign_.resize(slots);
  cursor.pop_back();  // reuse the prefix as the per-row fill cursor
  // Iterating edges in ascending index order appends ascending ids to each
  // row — the order the apply phase relies on for bit-identity with the
  // sequential edge sweep.
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const graph::Edge& e = edges[k];
    edge_idx_[cursor[e.u]] = static_cast<std::uint32_t>(k);
    sign_[cursor[e.u]++] = -1;  // positive flow leaves u
    edge_idx_[cursor[e.v]] = static_cast<std::uint32_t>(k);
    sign_[cursor[e.v]++] = 1;
  }
}

template <class T>
void FlowLedger::apply(const graph::Graph& g, const std::vector<double>& flows,
                       std::vector<T>& load, util::ThreadPool* pool) const {
  LB_ASSERT_MSG(valid_for(g), "apply with a ledger built for another topology");
  LB_ASSERT_MSG(flows.size() == num_edges_, "flow vector does not match ledger");
  LB_ASSERT_MSG(load.size() == num_nodes_, "load vector does not match ledger");
  if (pool != nullptr && pool->size() > 1) {
    apply_gather(flows, load, *pool);
  } else {
    // One worker gains nothing from the CSR gather (it touches every edge
    // twice through an indirection); the linear edge sweep performs the
    // exact same per-node operation sequence, so the result is
    // bit-identical either way.
    apply_edge_sweep(g, flows, load);
  }
}

template <class T>
void FlowLedger::apply_gather(const std::vector<double>& flows,
                              std::vector<T>& load, util::ThreadPool& pool) const {
  auto gather = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      load[u] = gather_node(u, flows, load);
    }
  };
  pool.parallel_for(0, num_nodes_, 256, gather);
}

template <class T>
void FlowLedger::apply_with_summary(const graph::Graph& g,
                                    const std::vector<double>& flows,
                                    std::vector<T>& load, util::ThreadPool* pool,
                                    double average, SummaryMode mode,
                                    std::vector<SummaryPartial<T>>& parts,
                                    LoadSummary<T>& out) const {
  LB_ASSERT_MSG(valid_for(g), "apply with a ledger built for another topology");
  LB_ASSERT_MSG(flows.size() == num_edges_, "flow vector does not match ledger");
  LB_ASSERT_MSG(load.size() == num_nodes_, "load vector does not match ledger");
  out = fused_sweep_with_summary<T>(pool, num_nodes_, average, mode, parts,
                                    [&](std::size_t u) {
                                      const T value = gather_node(u, flows, load);
                                      load[u] = value;
                                      return value;
                                    });
}

template <class T>
void FlowLedger::apply(const graph::TopologyFrame& frame,
                       const std::vector<double>& flows, std::vector<T>& load,
                       util::ThreadPool* pool) const {
  if (!frame.masked()) {
    apply(frame.base(), flows, load, pool);
    return;
  }
  LB_ASSERT_MSG(revision_ == frame.base_revision(),
                "masked apply with a ledger built for another base graph");
  LB_ASSERT_MSG(flows.size() == num_edges_, "flow vector does not match ledger");
  LB_ASSERT_MSG(load.size() == num_nodes_, "load vector does not match ledger");
  const graph::EdgeMask& mask = *frame.mask();
  if (pool != nullptr && pool->size() > 1) {
    auto gather = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t u = lo; u < hi; ++u) {
        load[u] = gather_node_masked(u, mask, flows, load);
      }
    };
    pool->parallel_for(0, num_nodes_, 256, gather);
  } else {
    apply_edge_sweep_masked(frame, flows, load);
  }
}

template <class T>
void FlowLedger::apply_with_summary(const graph::TopologyFrame& frame,
                                    const std::vector<double>& flows,
                                    std::vector<T>& load, util::ThreadPool* pool,
                                    double average, SummaryMode mode,
                                    std::vector<SummaryPartial<T>>& parts,
                                    LoadSummary<T>& out) const {
  if (!frame.masked()) {
    apply_with_summary(frame.base(), flows, load, pool, average, mode, parts, out);
    return;
  }
  LB_ASSERT_MSG(revision_ == frame.base_revision(),
                "masked apply with a ledger built for another base graph");
  LB_ASSERT_MSG(flows.size() == num_edges_, "flow vector does not match ledger");
  LB_ASSERT_MSG(load.size() == num_nodes_, "load vector does not match ledger");
  const graph::EdgeMask& mask = *frame.mask();
  out = fused_sweep_with_summary<T>(pool, num_nodes_, average, mode, parts,
                                    [&](std::size_t u) {
                                      const T value =
                                          gather_node_masked(u, mask, flows, load);
                                      load[u] = value;
                                      return value;
                                    });
}

template <class T>
void apply_edge_sweep(const graph::Graph& g, const std::vector<double>& flows,
                      std::vector<T>& load) {
  const auto& edges = g.edges();
  LB_ASSERT_MSG(flows.size() == edges.size(), "flow vector does not match graph");
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const double f = flows[k];
    if (f == 0.0) continue;
    const graph::Edge& e = edges[k];
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    if (f > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
  }
}

template <class T>
void apply_edge_sweep_with_stats(const graph::Graph& g,
                                 const std::vector<double>& flows,
                                 std::vector<T>& load, StepStats& stats) {
  const auto& edges = g.edges();
  LB_ASSERT_MSG(flows.size() == edges.size(), "flow vector does not match graph");
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const double f = flows[k];
    if (f == 0.0) continue;
    const graph::Edge& e = edges[k];
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    if (f > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
}

template <class T>
void apply_edge_sweep_masked(const graph::TopologyFrame& frame,
                             const std::vector<double>& flows, std::vector<T>& load) {
  const auto& edges = frame.base().edges();
  LB_ASSERT_MSG(flows.size() == edges.size(),
                "flow vector does not match base graph");
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (!frame.alive(k)) continue;
    const double f = flows[k];
    if (f == 0.0) continue;
    const graph::Edge& e = edges[k];
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    if (f > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
  }
}

template <class T>
void accumulate_flow_totals_masked(const graph::TopologyFrame& frame,
                                   const std::vector<double>& flows,
                                   StepStats& stats) {
  for (std::size_t k = 0; k < flows.size(); ++k) {
    if (!frame.alive(k)) continue;
    const double f = flows[k];
    if (f == 0.0) continue;
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
}

template <class T>
void accumulate_flow_totals(const std::vector<double>& flows, StepStats& stats) {
  for (const double f : flows) {
    if (f == 0.0) continue;
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
}

#define LB_INSTANTIATE(T)                                                      \
  template void FlowLedger::apply<T>(const graph::Graph&,                      \
                                     const std::vector<double>&,               \
                                     std::vector<T>&, util::ThreadPool*) const;\
  template void FlowLedger::apply<T>(const graph::TopologyFrame&,              \
                                     const std::vector<double>&,               \
                                     std::vector<T>&, util::ThreadPool*) const;\
  template void FlowLedger::apply_with_summary<T>(                             \
      const graph::Graph&, const std::vector<double>&, std::vector<T>&,        \
      util::ThreadPool*, double, SummaryMode, std::vector<SummaryPartial<T>>&, \
      LoadSummary<T>&) const;                                                  \
  template void FlowLedger::apply_with_summary<T>(                             \
      const graph::TopologyFrame&, const std::vector<double>&, std::vector<T>&,\
      util::ThreadPool*, double, SummaryMode, std::vector<SummaryPartial<T>>&, \
      LoadSummary<T>&) const;                                                  \
  template void apply_edge_sweep<T>(const graph::Graph&,                       \
                                    const std::vector<double>&,                \
                                    std::vector<T>&);                          \
  template void apply_edge_sweep_masked<T>(const graph::TopologyFrame&,        \
                                           const std::vector<double>&,         \
                                           std::vector<T>&);                   \
  template void apply_edge_sweep_with_stats<T>(const graph::Graph&,            \
                                               const std::vector<double>&,     \
                                               std::vector<T>&, StepStats&);   \
  template void accumulate_flow_totals<T>(const std::vector<double>&, StepStats&); \
  template void accumulate_flow_totals_masked<T>(                              \
      const graph::TopologyFrame&, const std::vector<double>&, StepStats&);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::core
