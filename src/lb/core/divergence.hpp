// Local divergence between the discrete protocol and its continuous
// idealization — the analysis quantity of Rabani, Sinclair & Wanka
// (FOCS'98, reference [16] of the paper).
//
// RSW bound the deviation of the rounded (discrete) trajectory from the
// idealized Markov-chain trajectory by the *local divergence*
// Ψ = Σ_t Σ_{(i,j)∈E} |x_i(t) − x_j(t)|-style rounding terms, proving
// Ψ(M) = O(δ·log n / µ) for the uniform diffusion matrix (µ the eigenvalue
// gap).  This module runs the discrete and continuous trajectories in
// lockstep from the same start and records:
//   * the per-round L∞ and L2 deviation between the two load vectors;
//   * the accumulated per-edge rounding magnitude (the Ψ-style sum);
//   * the RSW-style prediction O(δ·log n/µ) for comparison.
//
// It both cross-validates the two implementations and reproduces the
// related-work claim that rounding error stays bounded by a topology
// constant, independent of the initial imbalance.
#pragma once

#include <cstdint>
#include <vector>

#include "lb/core/diffusion.hpp"
#include "lb/graph/graph.hpp"

namespace lb::core {

struct DivergenceRecord {
  std::size_t round = 0;
  double linf_deviation = 0.0;   ///< max_i |disc_i − cont_i|
  double l2_deviation = 0.0;     ///< ||disc − cont||_2
  double rounding_this_round = 0.0;  ///< Σ_E |discrete flow − exact flow|
};

struct DivergenceResult {
  std::vector<DivergenceRecord> records;
  double max_linf = 0.0;
  double final_linf = 0.0;
  double psi = 0.0;  ///< accumulated per-edge rounding (the Ψ-style sum)
  /// RSW-style scale O(δ·log n/µ) evaluated with constant 1 — the shape
  /// comparison quantity (µ = 1 − γ of the diffusion matrix).
  double rsw_scale = 0.0;
};

/// Run `rounds` rounds of discrete and continuous Algorithm 1 in lockstep
/// from `initial` and measure their divergence.  `dense_cutoff` controls
/// the spectral path for the RSW scale.
DivergenceResult measure_divergence(const graph::Graph& g,
                                    const std::vector<std::int64_t>& initial,
                                    std::size_t rounds,
                                    const DiffusionConfig& cfg = {},
                                    std::size_t dense_cutoff = 512);

}  // namespace lb::core
