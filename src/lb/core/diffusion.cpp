#include "lb/core/diffusion.hpp"

#include <cmath>

#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

double diffusion_edge_weight(const graph::Graph& g, graph::NodeId i, graph::NodeId j,
                             double load_i, double load_j, const DiffusionConfig& cfg) {
  double denom = 0.0;
  switch (cfg.rule) {
    case DenominatorRule::kFactorTimesMaxDegree:
      denom = cfg.factor * static_cast<double>(std::max(g.degree(i), g.degree(j)));
      break;
    case DenominatorRule::kDegreePlusOne:
      denom = static_cast<double>(g.max_degree()) + 1.0;
      break;
  }
  LB_DEBUG_ASSERT(denom > 0.0);
  return std::fabs(load_i - load_j) / denom;
}

template <class T>
DiffusionBalancer<T>::DiffusionBalancer(DiffusionConfig cfg) : cfg_(cfg) {
  LB_ASSERT_MSG(cfg_.factor > 0.0, "diffusion factor must be positive");
}

template <class T>
std::string DiffusionBalancer<T>::name() const {
  std::string base = std::is_integral_v<T> ? "diffusion-disc" : "diffusion-cont";
  if (cfg_.rule == DenominatorRule::kDegreePlusOne) {
    base = std::is_integral_v<T> ? "fos-disc" : "fos-flow";
  } else if (cfg_.factor != 4.0) {
    base += "(f=" + std::to_string(static_cast<int>(cfg_.factor)) + ")";
  }
  return base;
}

template <class T>
StepStats DiffusionBalancer<T>::step(const graph::Graph& g, std::vector<T>& load,
                                     util::Rng& /*rng*/) {
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  const auto& edges = g.edges();
  flows_.assign(edges.size(), 0.0);

  // Phase 1: compute every flow from the round-start snapshot.  Signed
  // convention: positive flow moves load from e.u to e.v.
  auto compute = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const graph::Edge& e = edges[k];
      const double li = static_cast<double>(load[e.u]);
      const double lj = static_cast<double>(load[e.v]);
      if (li == lj) continue;
      double w = diffusion_edge_weight(g, e.u, e.v, li, lj, cfg_);
      if constexpr (std::is_integral_v<T>) {
        w = std::floor(w);
      }
      flows_[k] = li > lj ? w : -w;
    }
  };
  if (cfg_.parallel) {
    util::ThreadPool::global().parallel_for(0, edges.size(), 2048, compute);
  } else {
    compute(0, edges.size());
  }

  // Phase 2: apply all transfers.  Because the amounts were fixed in
  // phase 1, this sequential application reaches the same state as the
  // fully concurrent exchange (the paper's sequentialization argument).
  StepStats stats;
  stats.links = edges.size();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const double f = flows_[k];
    if (f == 0.0) continue;
    const graph::Edge& e = edges[k];
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    if (f > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
  return stats;
}

template class DiffusionBalancer<double>;
template class DiffusionBalancer<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_diffusion_continuous() {
  return std::make_unique<ContinuousDiffusion>();
}

std::unique_ptr<DiscreteBalancer> make_diffusion_discrete() {
  return std::make_unique<DiscreteDiffusion>();
}

}  // namespace lb::core
