#include "lb/core/diffusion.hpp"

#include <cmath>
#include <sstream>

#include "lb/core/flow_program.hpp"
#include "lb/core/round_context.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

double diffusion_edge_weight(const graph::Graph& g, graph::NodeId i, graph::NodeId j,
                             double load_i, double load_j, const DiffusionConfig& cfg) {
  double denom = 0.0;
  switch (cfg.rule) {
    case DenominatorRule::kFactorTimesMaxDegree:
      denom = cfg.factor * static_cast<double>(std::max(g.degree(i), g.degree(j)));
      break;
    case DenominatorRule::kDegreePlusOne:
      denom = static_cast<double>(g.max_degree()) + 1.0;
      break;
  }
  LB_DEBUG_ASSERT(denom > 0.0);
  return std::fabs(load_i - load_j) / denom;
}

template <class T>
DiffusionBalancer<T>::DiffusionBalancer(DiffusionConfig cfg) : cfg_(cfg) {
  LB_ASSERT_MSG(cfg_.factor > 0.0, "diffusion factor must be positive");
}

template <class T>
std::string DiffusionBalancer<T>::name() const {
  std::string base = std::is_integral_v<T> ? "diffusion-disc" : "diffusion-cont";
  if (cfg_.rule == DenominatorRule::kDegreePlusOne) {
    base = std::is_integral_v<T> ? "fos-disc" : "fos-flow";
  } else if (cfg_.factor != 4.0) {
    // Shortest-form formatting: "f=2" for 2.0 but "f=2.5" for 2.5, so
    // distinct configs never collide in bench CSV rows.
    std::ostringstream os;
    os << "(f=" << cfg_.factor << ")";
    base += os.str();
  }
  return base;
}

template <class T>
StepStats DiffusionBalancer<T>::step_masked(RoundContext<T>& ctx,
                                            const graph::TopologyFrame& frame,
                                            std::vector<T>& load) {
  LB_ASSERT_MSG(load.size() == frame.num_nodes(), "load vector does not match graph");
  util::ThreadPool* pool = cfg_.parallel ? ctx.pool() : nullptr;
  StepStats stats;
  stats.links = frame.num_edges();

  // Alive-degrees move with every mask revision, so the per-epoch
  // denominator cache buys nothing here; the denominator is computed
  // inline from the mask's degree view.  It is the identical double the
  // materialized path derives from its subgraph degrees, so the flows —
  // and therefore the loads — are bit-identical to the rebuild oracle.
  const double factor = cfg_.factor;
  const double degree_plus_one = static_cast<double>(frame.max_degree()) + 1.0;
  const DenominatorRule rule = cfg_.rule;
  const auto flow_fn = [&frame, factor, degree_plus_one, rule](
                           std::size_t, const graph::Edge& e, double li, double lj) {
    if (li == lj) return 0.0;
    const double denom =
        masked_diffusion_denominator(frame, e, rule, factor, degree_plus_one);
    double w = std::fabs(li - lj) / denom;
    if constexpr (std::is_integral_v<T>) {
      w = std::floor(w);
    }
    return li > lj ? w : -w;
  };

  run_masked_ledger_round(ctx, frame, load, pool, stats, flow_fn);
  return stats;
}

template <class T>
StepStats DiffusionBalancer<T>::step(RoundContext<T>& ctx, std::vector<T>& load) {
  if (ctx.masked() && cfg_.apply == ApplyPath::kLedger) {
    // Masked dynamic round: run off the frame, never materializing.
    // The kEdgeSweep configuration stays on the materialized path below —
    // it is the seed-verbatim oracle and must keep its exact cost/shape.
    return step_masked(ctx, ctx.frame(), load);
  }
  const graph::Graph& g = ctx.graph();
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  util::ThreadPool* pool = cfg_.parallel ? ctx.pool() : nullptr;
  std::vector<double>& flows = ctx.arena().flows();
  StepStats stats;
  stats.links = g.num_edges();

  if (cfg_.apply == ApplyPath::kEdgeSweep) {
    // The seed path, verbatim: recompute the denominator per edge, apply
    // sequentially with fused stats.  Kept as the ablation baseline and
    // the bit-identity oracle.
    compute_edge_flows(g, load, flows, pool,
                       [this, &g](std::size_t, const graph::Edge& e, double li,
                                  double lj) {
                         if (li == lj) return 0.0;
                         double w = diffusion_edge_weight(g, e.u, e.v, li, lj, cfg_);
                         if constexpr (std::is_integral_v<T>) {
                           w = std::floor(w);
                         }
                         return li > lj ? w : -w;
                       });
    apply_edge_sweep_with_stats(g, flows, load, stats);
    return stats;
  }

  // Ledger path.  The per-edge denominators are a per-epoch
  // precomputation keyed on the same revision as the CSR view, so every
  // round is free of degree lookups.  The cached denominator is the same
  // double the seed computes inline, so the flows — and therefore the
  // loads — remain bit-identical to the edge-sweep path.
  ensure_denominators(g, pool);

  const auto flow_fn = [this](std::size_t k, const graph::Edge&, double li,
                              double lj) {
    if (li == lj) return 0.0;
    double w = std::fabs(li - lj) / denoms_[k];
    if constexpr (std::is_integral_v<T>) {
      w = std::floor(w);
    }
    return li > lj ? w : -w;
  };

  // Shared ledger-round dispatch (round_context.hpp): single worker takes
  // the fused one-pass round — cache-blocked with the summary riding each
  // block when the engine asked for one — while multi-worker pools fill
  // flows in parallel and apply through the CSR gather.  Every leg is
  // bit-identical (same flows from the same snapshot, same per-node
  // update order, chunk-deterministic summary).
  run_ledger_round(ctx, g, load, pool, stats, flow_fn);
  return stats;
}

template <class T>
void DiffusionBalancer<T>::ensure_denominators(const graph::Graph& g,
                                               util::ThreadPool* pool) {
  if (denom_revision_ == g.revision()) return;
  denom_revision_ = g.revision();
  const auto& edges = g.edges();
  denoms_.resize(edges.size());
  auto fill = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const graph::Edge& e = edges[k];
      switch (cfg_.rule) {
        case DenominatorRule::kFactorTimesMaxDegree:
          denoms_[k] = cfg_.factor *
                       static_cast<double>(std::max(g.degree(e.u), g.degree(e.v)));
          break;
        case DenominatorRule::kDegreePlusOne:
          denoms_[k] = static_cast<double>(g.max_degree()) + 1.0;
          break;
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, edges.size(), 2048, fill);
  } else {
    fill(0, edges.size());
  }
}

template <class T>
bool DiffusionBalancer<T>::plan_round(RoundContext<T>& ctx, FlowProgram<T>& program) {
  // The kEdgeSweep configuration is the seed-verbatim ablation oracle;
  // it keeps its bespoke step() shape and is never distributed.
  if (cfg_.apply != ApplyPath::kLedger) return false;
  program.links = ctx.frame().num_edges();
  if (ctx.masked()) {
    // Same inline alive-degree denominator as step_masked's flow_fn; the
    // frame reference outlives the round (it lives in the sequence).
    const graph::TopologyFrame& frame = ctx.frame();
    const double factor = cfg_.factor;
    const double degree_plus_one = static_cast<double>(frame.max_degree()) + 1.0;
    const DenominatorRule rule = cfg_.rule;
    program.flow = [&frame, factor, degree_plus_one, rule](
                       std::size_t, const graph::Edge& e, double li, double lj) {
      if (li == lj) return 0.0;
      const double denom =
          masked_diffusion_denominator(frame, e, rule, factor, degree_plus_one);
      double w = std::fabs(li - lj) / denom;
      if constexpr (std::is_integral_v<T>) {
        w = std::floor(w);
      }
      return li > lj ? w : -w;
    };
    return true;
  }
  const graph::Graph& g = ctx.graph();
  ensure_denominators(g, cfg_.parallel ? ctx.pool() : nullptr);
  program.flow = [this](std::size_t k, const graph::Edge&, double li, double lj) {
    if (li == lj) return 0.0;
    double w = std::fabs(li - lj) / denoms_[k];
    if constexpr (std::is_integral_v<T>) {
      w = std::floor(w);
    }
    return li > lj ? w : -w;
  };
  return true;
}

template class DiffusionBalancer<double>;
template class DiffusionBalancer<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_diffusion_continuous() {
  return std::make_unique<ContinuousDiffusion>();
}

std::unique_ptr<DiscreteBalancer> make_diffusion_discrete() {
  return std::make_unique<DiscreteDiffusion>();
}

}  // namespace lb::core
