#include "lb/core/random_partner.hpp"

#include <cmath>

#include "lb/util/assert.hpp"

namespace lb::core {

PartnerLinks sample_partner_links(std::size_t n, util::Rng& rng) {
  LB_ASSERT_MSG(n >= 2, "random partners need at least two nodes");
  PartnerLinks links;
  links.partner.resize(n);
  links.degree.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // Uniform over the other n−1 nodes.
    std::size_t j = static_cast<std::size_t>(rng.next_below(n - 1));
    if (j >= i) ++j;
    links.partner[i] = static_cast<graph::NodeId>(j);
    ++links.degree[i];
    ++links.degree[j];
  }
  return links;
}

template <class T>
StepStats RandomPartnerBalancer<T>::step(const graph::Graph& /*g*/, std::vector<T>& load,
                                         util::Rng& rng) {
  const std::size_t n = load.size();
  const PartnerLinks links = sample_partner_links(n, rng);

  // All transfers are computed from the round-start snapshot and applied
  // at the end — the concurrent semantics of Algorithm 2.
  delta_.assign(n, T{});
  StepStats stats;
  stats.links = n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = links.partner[i];
    const double li = static_cast<double>(load[i]);
    const double lj = static_cast<double>(load[j]);
    if (li == lj) continue;
    const double denom =
        4.0 * static_cast<double>(std::max(links.degree[i], links.degree[j]));
    double w = std::fabs(li - lj) / denom;
    if constexpr (std::is_integral_v<T>) {
      w = std::floor(w);
    }
    const T amount = static_cast<T>(w);
    if (amount == T{}) continue;
    if (li > lj) {
      delta_[i] -= amount;
      delta_[j] += amount;
    } else {
      delta_[j] -= amount;
      delta_[i] += amount;
    }
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
  for (std::size_t i = 0; i < n; ++i) load[i] += delta_[i];
  return stats;
}

template class RandomPartnerBalancer<double>;
template class RandomPartnerBalancer<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_random_partner_continuous() {
  return std::make_unique<ContinuousRandomPartner>();
}

std::unique_ptr<DiscreteBalancer> make_random_partner_discrete() {
  return std::make_unique<DiscreteRandomPartner>();
}

}  // namespace lb::core
