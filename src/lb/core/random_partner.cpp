#include "lb/core/random_partner.hpp"

#include <cmath>

#include "lb/core/round_context.hpp"
#include "lb/util/assert.hpp"

namespace lb::core {

PartnerLinks sample_partner_links(std::size_t n, util::Rng& rng) {
  LB_ASSERT_MSG(n >= 2, "random partners need at least two nodes");
  PartnerLinks links;
  links.partner.resize(n);
  links.degree.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // Uniform over the other n−1 nodes.
    std::size_t j = static_cast<std::size_t>(rng.next_below(n - 1));
    if (j >= i) ++j;
    links.partner[i] = static_cast<graph::NodeId>(j);
    ++links.degree[i];
    ++links.degree[j];
  }
  return links;
}

template <class T>
StepStats RandomPartnerBalancer<T>::step(RoundContext<T>& ctx, std::vector<T>& load) {
  const std::size_t n = load.size();
  const PartnerLinks links = sample_partner_links(n, ctx.rng());

  // All transfers are computed from the round-start snapshot and applied
  // at the end — the concurrent semantics of Algorithm 2.  The sampling
  // and delta accumulation stay sequential (a single RNG stream and
  // scattered ±writes); only the final per-node delta application — the
  // one dense sweep — parallelizes, and it carries the fused summary.
  std::vector<T>& delta = ctx.arena().node_scratch();
  delta.assign(n, T{});
  StepStats stats;
  stats.links = n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = links.partner[i];
    const double li = static_cast<double>(load[i]);
    const double lj = static_cast<double>(load[j]);
    if (li == lj) continue;
    const double denom =
        4.0 * static_cast<double>(std::max(links.degree[i], links.degree[j]));
    double w = std::fabs(li - lj) / denom;
    if constexpr (std::is_integral_v<T>) {
      w = std::floor(w);
    }
    const T amount = static_cast<T>(w);
    if (amount == T{}) continue;
    if (li > lj) {
      delta[i] -= amount;
      delta[j] += amount;
    } else {
      delta[j] -= amount;
      delta[i] += amount;
    }
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
  if (ctx.summary_requested()) {
    ctx.publish_summary(fused_sweep_with_summary<T>(
        ctx.pool(), n, ctx.summary_average(), ctx.summary_mode(),
        ctx.arena().summary_parts(),
        [&](std::size_t i) {
          const T value = load[i] + delta[i];
          load[i] = value;
          return value;
        }));
  } else {
    for (std::size_t i = 0; i < n; ++i) load[i] += delta[i];
  }
  return stats;
}

template class RandomPartnerBalancer<double>;
template class RandomPartnerBalancer<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_random_partner_continuous() {
  return std::make_unique<ContinuousRandomPartner>();
}

std::unique_ptr<DiscreteBalancer> make_random_partner_discrete() {
  return std::make_unique<DiscreteRandomPartner>();
}

}  // namespace lb::core
