#include "lb/core/sequential.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lb/core/load.hpp"
#include "lb/util/assert.hpp"

namespace lb::core {

namespace {

// Potential change caused by moving `amount` from the node currently
// holding `sender_load` to the one holding `receiver_load`:
//   ΔΦ = (s − ℓ̄)² + (r − ℓ̄)² − (s−a − ℓ̄)² − (r+a − ℓ̄)²
//      = 2a·(s − r − a)                       (the ℓ̄ terms cancel).
double potential_drop_of_transfer(double sender_load, double receiver_load,
                                  double amount) {
  return 2.0 * amount * (sender_load - receiver_load - amount);
}

}  // namespace

template <class T>
SequentialLedger sequentialize_round(const graph::Graph& g, const std::vector<T>& load,
                                     const DiffusionConfig& cfg) {
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  const auto& edges = g.edges();

  SequentialLedger ledger;
  ledger.initial_potential = potential(load);
  ledger.lemma2_bound =
      edge_difference_sum(g, load) /
      (cfg.factor * static_cast<double>(std::max<std::size_t>(g.max_degree(), 1)));

  // Snapshot weights (Algorithm 1's transfer amounts, fixed for the round).
  struct Entry {
    std::size_t edge_index;
    double raw_weight;    // unrounded w_ij
    double moved;         // actual transfer (⌊w⌋ for discrete)
    double start_diff;    // |ℓ_i − ℓ_j| at round start
    bool u_sends;         // direction: true if load[u] > load[v]
  };
  std::vector<Entry> entries;
  entries.reserve(edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const graph::Edge& e = edges[k];
    const double li = static_cast<double>(load[e.u]);
    const double lj = static_cast<double>(load[e.v]);
    const double raw = diffusion_edge_weight(g, e.u, e.v, li, lj, cfg);
    double moved = raw;
    if constexpr (std::is_integral_v<T>) {
      moved = std::floor(raw);
    }
    entries.push_back(Entry{k, raw, moved, std::fabs(li - lj), li > lj});
  }
  // The paper activates edges in increasing order of weight.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.raw_weight < b.raw_weight; });

  // Working copy of the loads, in double so fractional transfers compose.
  std::vector<double> cur(load.size());
  for (std::size_t i = 0; i < load.size(); ++i) cur[i] = static_cast<double>(load[i]);

  ledger.activations.reserve(entries.size());
  for (const Entry& ent : entries) {
    const graph::Edge& e = edges[ent.edge_index];
    const graph::NodeId sender = ent.u_sends ? e.u : e.v;
    const graph::NodeId receiver = ent.u_sends ? e.v : e.u;

    EdgeActivation act;
    act.edge = e;
    act.raw_weight = ent.raw_weight;
    act.weight = ent.moved;
    act.start_difference = ent.start_diff;
    act.lemma1_bound = ent.moved * ent.start_diff;
    if (ent.moved > 0.0) {
      act.potential_drop =
          potential_drop_of_transfer(cur[sender], cur[receiver], ent.moved);
      cur[sender] -= ent.moved;
      cur[receiver] += ent.moved;
    }
    const double slack = 1e-9 * std::max(1.0, std::fabs(act.lemma1_bound));
    act.certified = act.potential_drop >= act.lemma1_bound - slack;
    ledger.all_certified = ledger.all_certified && act.certified;
    ledger.total_drop += act.potential_drop;
    ledger.activations.push_back(act);
  }

  ledger.final_potential = potential(cur);
  return ledger;
}

template <class T>
GreedySequentialResult greedy_sequential_round(const graph::Graph& g,
                                               std::vector<T>& load,
                                               const DiffusionConfig& cfg) {
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  const auto& edges = g.edges();

  GreedySequentialResult out;
  out.initial_potential = potential(load);

  // Order by snapshot weight (same schedule as the sequentialized round),
  // but each activation recomputes its transfer from the current state.
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> snapshot_weight(edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const graph::Edge& e = edges[k];
    snapshot_weight[k] =
        diffusion_edge_weight(g, e.u, e.v, static_cast<double>(load[e.u]),
                              static_cast<double>(load[e.v]), cfg);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return snapshot_weight[a] < snapshot_weight[b];
  });

  for (std::size_t k : order) {
    const graph::Edge& e = edges[k];
    const double li = static_cast<double>(load[e.u]);
    const double lj = static_cast<double>(load[e.v]);
    if (li == lj) continue;
    double w = diffusion_edge_weight(g, e.u, e.v, li, lj, cfg);
    if constexpr (std::is_integral_v<T>) {
      w = std::floor(w);
    }
    const T amount = static_cast<T>(w);
    if (amount == T{}) continue;
    if (li > lj) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
    ++out.active_edges;
  }

  out.final_potential = potential(load);
  out.total_drop = out.initial_potential - out.final_potential;
  return out;
}

#define LB_INSTANTIATE(T)                                                          \
  template SequentialLedger sequentialize_round<T>(const graph::Graph&,            \
                                                   const std::vector<T>&,          \
                                                   const DiffusionConfig&);        \
  template GreedySequentialResult greedy_sequential_round<T>(const graph::Graph&,  \
                                                             std::vector<T>&,      \
                                                             const DiffusionConfig&);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::core
