#include "lb/core/divergence.hpp"

#include <cmath>

#include "lb/linalg/spectral.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/rng.hpp"

namespace lb::core {

DivergenceResult measure_divergence(const graph::Graph& g,
                                    const std::vector<std::int64_t>& initial,
                                    std::size_t rounds, const DiffusionConfig& cfg,
                                    std::size_t dense_cutoff) {
  LB_ASSERT_MSG(initial.size() == g.num_nodes(), "load vector does not match graph");

  std::vector<std::int64_t> disc = initial;
  std::vector<double> cont(initial.begin(), initial.end());

  DiffusionBalancer<std::int64_t> disc_alg(cfg);
  DiffusionBalancer<double> cont_alg(cfg);
  util::Rng rng(0);  // both algorithms are deterministic; rng is unused

  DivergenceResult out;
  out.records.reserve(rounds);

  for (std::size_t round = 1; round <= rounds; ++round) {
    // Per-edge rounding magnitude for this round, from the *discrete*
    // trajectory's snapshot (the trajectory whose flows get floored).
    double rounding = 0.0;
    for (const graph::Edge& e : g.edges()) {
      const double li = static_cast<double>(disc[e.u]);
      const double lj = static_cast<double>(disc[e.v]);
      if (li == lj) continue;
      const double w = diffusion_edge_weight(g, e.u, e.v, li, lj, cfg);
      rounding += w - std::floor(w);
    }

    disc_alg.step(g, disc, rng);
    cont_alg.step(g, cont, rng);

    DivergenceRecord rec;
    rec.round = round;
    rec.rounding_this_round = rounding;
    double l2 = 0.0;
    for (std::size_t i = 0; i < disc.size(); ++i) {
      const double d = static_cast<double>(disc[i]) - cont[i];
      rec.linf_deviation = std::max(rec.linf_deviation, std::fabs(d));
      l2 += d * d;
    }
    rec.l2_deviation = std::sqrt(l2);
    out.max_linf = std::max(out.max_linf, rec.linf_deviation);
    out.psi += rounding;
    out.records.push_back(rec);
  }

  out.final_linf = out.records.empty() ? 0.0 : out.records.back().linf_deviation;
  const double mu = 1.0 - linalg::diffusion_gamma(g, dense_cutoff);
  if (mu > 0.0) {
    out.rsw_scale = static_cast<double>(g.max_degree()) *
                    std::log(static_cast<double>(g.num_nodes())) / mu;
  }
  return out;
}

}  // namespace lb::core
