// Metrics over runs and load vectors.
//
// Two layers live here:
//
//   1. Convergence analysis of run traces: rounds-to-ε, empirical
//      per-round drop rates, and comparisons against the theorem
//      predictions (ConvergenceReport / analyze).
//
//   2. The deterministic parallel reduction behind the engine's per-round
//      observability (see DESIGN.md §4).  summarize() in load.hpp is a
//      strictly sequential O(n) sweep; on large networks it is the Amdahl
//      bottleneck of a round once the apply phase is parallel.  The
//      functions below compute the same LoadSummary via a fixed-chunk
//      tree reduction: the vector is cut into chunks of exactly
//      kSummaryChunkWidth elements (a function of n only — never of the
//      worker count), each chunk is accumulated left-to-right into a
//      SummaryPartial, and the partials are combined in chunk-index
//      order.  Because both the partition and every accumulation order
//      are independent of how chunks are scheduled onto workers, the
//      result is BIT-IDENTICAL for every thread-pool size, including the
//      sequential fallback.  For n <= kSummaryChunkWidth there is exactly
//      one chunk, so the result is additionally bit-identical to the
//      sequential summarize().
//
// The potential is measured against a caller-supplied average (the
// engine passes the run-start average: total load is invariant under
// every balancer, exactly for Tokens and up to float drift for Real, and
// the paper's Φ is stated against that fixed ℓ̄).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "lb/core/load.hpp"
#include "lb/core/trace.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

struct ConvergenceReport {
  std::size_t rounds = 0;              ///< rounds recorded in the trace
  double initial_potential = 0.0;
  double final_potential = 0.0;
  /// First round with Φ <= ε·Φ(L⁰); 0 if never reached.
  std::size_t rounds_to_epsilon = 0;
  /// Geometric-mean per-round potential ratio Φ^t/Φ^{t-1} over the trace
  /// prefix where Φ > floor_potential (avoids the flat tail poisoning the
  /// estimate).
  double mean_drop_ratio = 1.0;
  /// Slope of the least-squares fit of ln Φ versus round (negative when
  /// converging); exp(slope) is an alternative rate estimate.
  double log_slope = 0.0;
  double fit_r_squared = 0.0;
};

/// Analyze a trace produced by engine::run.  `initial_potential` is the
/// potential of the starting load (the trace stores post-round values).
ConvergenceReport analyze(const Trace& trace, double initial_potential,
                          double epsilon = 1e-6, double floor_potential = 1e-9);

/// Measured/predicted ratio helpers for tables: returns measured/bound,
/// guarding the zero cases.
double safe_ratio(double measured, double bound);

// ---------------------------------------------------------------------------
// Deterministic parallel reduction
// ---------------------------------------------------------------------------

/// Which LoadSummary fields a reduction must fill.  kPotentialOnly is the
/// cheap per-round mode when no trace is recorded (terminal K is computed
/// once at run end via kExtremaOnly); kFull feeds trace records.
enum class SummaryMode : std::uint8_t {
  kPotentialOnly,  ///< total + Φ
  kExtremaOnly,    ///< total + min/max/discrepancy
  kFull,           ///< everything
};

/// Fixed reduction chunk width.  A function of nothing: chunk boundaries
/// depend only on n, which is what makes the reduction deterministic
/// across pool sizes.  Any fixed width preserves the contract; 1024
/// keeps n/1024 chunks available so fused sweeps still parallelize on
/// mid-size graphs (a 16k-node torus yields 16 chunks, not 4).
inline constexpr std::size_t kSummaryChunkWidth = 1024;

inline std::size_t summary_chunk_count(std::size_t n) {
  return (n + kSummaryChunkWidth - 1) / kSummaryChunkWidth;
}

/// Partial accumulator for one fixed chunk.
template <class T>
struct SummaryPartial {
  T total{};
  double sq_dev = 0.0;  ///< Σ (v − average)² over the chunk
  T min{};
  T max{};
};

/// Reset `p` and seed its extrema with the chunk's first value.  Call
/// before the chunk loop; the first value is then fed through
/// summary_accumulate like every other element.
template <class T>
inline void summary_begin(SummaryPartial<T>& p, T first) {
  p = SummaryPartial<T>{};
  p.min = first;
  p.max = first;
}

/// Accumulate one element.  This is the single per-element operation
/// sequence every deterministic reduction in the library executes —
/// standalone or fused into an apply sweep — so all of them round
/// identically and stay bit-comparable.
template <class T>
inline void summary_accumulate(SummaryPartial<T>& p, T v, double average,
                               SummaryMode mode) {
  p.total += v;
  if (mode != SummaryMode::kExtremaOnly) {
    const double d = static_cast<double>(v) - average;
    p.sq_dev += d * d;
  }
  if (mode != SummaryMode::kPotentialOnly) {
    p.min = std::min(p.min, v);
    p.max = std::max(p.max, v);
  }
}

/// Incremental mirror of combine_summary_partials: feed partials one at a
/// time (in chunk-index order) and finish() into a LoadSummary.  The fold
/// performs the exact operation sequence of the vector combine — seed the
/// extrema from the first partial, then total/Φ/min/max per partial in
/// order — so a consumer that folds partials as it produces them (the
/// cache-blocked round, which never materializes the partial vector) stays
/// bit-identical to one that collects them all and combines at the end.
template <class T>
struct SummaryFold {
  void add(const SummaryPartial<T>& p) {
    if (!any_) {
      min_ = p.min;
      max_ = p.max;
      any_ = true;
    }
    total_ += p.total;
    potential_ += p.sq_dev;
    min_ = std::min(min_, p.min);
    max_ = std::max(max_, p.max);
  }

  LoadSummary<T> finish(std::size_t n, double average, SummaryMode mode) const {
    LoadSummary<T> s;
    s.average = average;
    if (n == 0 || !any_) return s;
    s.total = total_;
    s.min = min_;
    s.max = max_;
    if (mode != SummaryMode::kExtremaOnly) s.potential = potential_;
    if (mode != SummaryMode::kPotentialOnly) {
      s.discrepancy = static_cast<double>(s.max) - static_cast<double>(s.min);
    } else {
      s.min = T{};
      s.max = T{};
    }
    return s;
  }

 private:
  bool any_ = false;
  T total_{};
  double potential_ = 0.0;
  T min_{};
  T max_{};
};

/// Combine chunk partials in index order into a LoadSummary.  `average`
/// is echoed into the summary (it is the Φ reference point, not
/// total/n recomputed).  Implemented as a SummaryFold over the vector, so
/// the two combination surfaces cannot drift apart.
template <class T>
LoadSummary<T> combine_summary_partials(const std::vector<SummaryPartial<T>>& parts,
                                        std::size_t n, double average,
                                        SummaryMode mode);

/// The one fused-sweep template every observed dense sweep in the library
/// runs on (ledger gather, SOS β-combine, random-partner delta apply, the
/// simulator's credit superstep, the standalone reduction): call
/// `value_fn(i)` exactly once for every i in [0, n), chunk-by-chunk on
/// `pool`, accumulating each returned value into the deterministic
/// reduction as it is produced.  value_fn performs the sweep's own store
/// (it is invoked once per index, ascending within a chunk) and returns
/// the element's final value.  Centralizing the seed/accumulate sequence
/// here is what keeps every fused path bit-comparable with the standalone
/// reduction.
template <class T, class ValueFn>
LoadSummary<T> fused_sweep_with_summary(util::ThreadPool* pool, std::size_t n,
                                        double average, SummaryMode mode,
                                        std::vector<SummaryPartial<T>>& parts,
                                        ValueFn&& value_fn) {
  if (n == 0) return LoadSummary<T>{};
  parts.assign(summary_chunk_count(n), SummaryPartial<T>{});
  util::for_fixed_chunks(
      pool, n, kSummaryChunkWidth,
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        SummaryPartial<T> p;
        const T first = value_fn(lo);
        summary_begin(p, first);
        summary_accumulate(p, first, average, mode);
        for (std::size_t i = lo + 1; i < hi; ++i) {
          summary_accumulate(p, value_fn(i), average, mode);
        }
        parts[c] = p;
      });
  return combine_summary_partials(parts, n, average, mode);
}

/// Convenience overload with a local partial buffer, for cold callers
/// (tests, one-shot summaries).  Hot per-round paths pass the RunArena's
/// scratch vector instead so steady-state rounds allocate nothing.
template <class T, class ValueFn>
LoadSummary<T> fused_sweep_with_summary(util::ThreadPool* pool, std::size_t n,
                                        double average, SummaryMode mode,
                                        ValueFn&& value_fn) {
  std::vector<SummaryPartial<T>> parts;
  return fused_sweep_with_summary<T>(pool, n, average, mode, parts,
                                     std::forward<ValueFn>(value_fn));
}

/// Deterministic parallel LoadSummary with Φ measured against `average`.
/// Bit-identical for every pool size (pool == nullptr runs inline), and
/// bit-identical to the sequential summarize() when n <= kSummaryChunkWidth
/// and `average` equals the vector's own average.
template <class T>
LoadSummary<T> summarize_deterministic(const std::vector<T>& load, double average,
                                       util::ThreadPool* pool, SummaryMode mode);

/// Scratch-buffer variant for per-round callers (engine fallback summary,
/// sharded oracle): identical result, zero steady-state allocations.
template <class T>
LoadSummary<T> summarize_deterministic(const std::vector<T>& load, double average,
                                       util::ThreadPool* pool, SummaryMode mode,
                                       std::vector<SummaryPartial<T>>& parts);

/// Full deterministic parallel summary: two fixed-chunk passes (totals +
/// extrema, then Φ against the freshly computed average).  The parallel
/// replacement for summarize() when no reference average is available.
template <class T>
LoadSummary<T> summarize_parallel(const std::vector<T>& load, util::ThreadPool* pool);

}  // namespace lb::core
