// Convergence analysis of run traces: rounds-to-ε, empirical per-round
// drop rates, and comparisons against the theorem predictions.
#pragma once

#include <cstddef>

#include "lb/core/trace.hpp"

namespace lb::core {

struct ConvergenceReport {
  std::size_t rounds = 0;              ///< rounds recorded in the trace
  double initial_potential = 0.0;
  double final_potential = 0.0;
  /// First round with Φ <= ε·Φ(L⁰); 0 if never reached.
  std::size_t rounds_to_epsilon = 0;
  /// Geometric-mean per-round potential ratio Φ^t/Φ^{t-1} over the trace
  /// prefix where Φ > floor_potential (avoids the flat tail poisoning the
  /// estimate).
  double mean_drop_ratio = 1.0;
  /// Slope of the least-squares fit of ln Φ versus round (negative when
  /// converging); exp(slope) is an alternative rate estimate.
  double log_slope = 0.0;
  double fit_r_squared = 0.0;
};

/// Analyze a trace produced by engine::run.  `initial_potential` is the
/// potential of the starting load (the trace stores post-round values).
ConvergenceReport analyze(const Trace& trace, double initial_potential,
                          double epsilon = 1e-6, double floor_potential = 1e-9);

/// Measured/predicted ratio helpers for tables: returns measured/bound,
/// guarding the zero cases.
double safe_ratio(double measured, double bound);

}  // namespace lb::core
