#include "lb/core/ops.hpp"

#include <cmath>

#include "lb/core/round_context.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/linalg/spectral_cache.hpp"
#include "lb/util/assert.hpp"

namespace lb::core {

OptimalPolynomialScheme::OptimalPolynomialScheme(double eigenvalue_tolerance)
    : tol_(eigenvalue_tolerance) {
  LB_ASSERT_MSG(tol_ > 0.0, "eigenvalue tolerance must be positive");
}

StepStats OptimalPolynomialScheme::step(RoundContext<double>& ctx,
                                        std::vector<double>& load) {
  const graph::Graph& g = ctx.graph();
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  if (schedule_.empty() || g.revision() != bound_revision_) {
    // Rebinding to a new topology is legal only at a run start, after
    // on_run_begin() reset position_.  A revision change at any later
    // round — even one landing exactly on a schedule-length boundary
    // (e.g. a periodic sequence whose period divides m) — means the
    // scheme was stepped over a dynamic topology, which OPS cannot
    // serve.  Note this is stricter than the old node/edge-count check,
    // which silently accepted a different graph of identical shape.
    LB_ASSERT_MSG(position_ == 0, "OPS graph changed mid-run");
    schedule_.clear();
    // Schedule binding: through the run's spectral cache when present
    // (Tier-1 exact — a miss computes the identical cold spectrum, so
    // the schedule is bit-identical either way), cold otherwise.
    linalg::SpectralCache* cache = ctx.spectral_cache();
    const linalg::Vector spectrum = cache != nullptr
                                        ? cache->spectrum(g)
                                        : linalg::laplacian_spectrum(g);
    std::vector<double> distinct;
    for (double lambda : spectrum) {
      if (lambda <= tol_) continue;  // skip the kernel (and numerical zeros)
      if (!distinct.empty() && std::fabs(lambda - distinct.back()) <= tol_) continue;
      distinct.push_back(lambda);
    }
    LB_ASSERT_MSG(!distinct.empty(), "graph has no nonzero Laplacian eigenvalues");

    // Leja ordering: applying the factors (1 − λ/λ_k) in ascending λ_k
    // order amplifies the high modes catastrophically on spectra with
    // many eigenvalues (path graphs overflow double).  Greedily ordering
    // each next λ_k to maximize Π|λ_k − chosen| keeps the intermediate
    // polynomial bounded — the standard stabilization for polynomial
    // iterations.
    std::vector<bool> used(distinct.size(), false);
    // Start from the largest eigenvalue.
    std::size_t first = distinct.size() - 1;
    used[first] = true;
    schedule_.push_back(distinct[first]);
    while (schedule_.size() < distinct.size()) {
      std::size_t best = distinct.size();
      double best_score = -1.0;
      for (std::size_t i = 0; i < distinct.size(); ++i) {
        if (used[i]) continue;
        // Product of log-distances to the chosen set (log to avoid
        // overflow in the score itself).
        double score = 0.0;
        for (double chosen : schedule_) {
          score += std::log(std::fabs(distinct[i] - chosen));
        }
        if (best == distinct.size() || score > best_score) {
          best = i;
          best_score = score;
        }
      }
      used[best] = true;
      schedule_.push_back(distinct[best]);
    }
    bound_revision_ = g.revision();
  }

  const double lambda = schedule_[position_ % schedule_.size()];
  ++position_;

  // lx = Laplacian * load, matrix-free.
  lx_.assign(load.size(), 0.0);
  for (std::size_t u = 0; u < load.size(); ++u) {
    double acc = static_cast<double>(g.degree(static_cast<graph::NodeId>(u))) * load[u];
    for (graph::NodeId v : g.neighbors(static_cast<graph::NodeId>(u))) acc -= load[v];
    lx_[u] = acc;
  }

  StepStats stats;
  stats.links = g.num_edges();
  const double inv = 1.0 / lambda;
  for (const graph::Edge& e : g.edges()) {
    const double f = inv * std::fabs(load[e.u] - load[e.v]);
    if (f > 0.0) {
      stats.transferred += f;
      ++stats.active_edges;
    }
  }
  for (std::size_t u = 0; u < load.size(); ++u) load[u] -= inv * lx_[u];
  return stats;
}

std::unique_ptr<ContinuousBalancer> make_ops() {
  return std::make_unique<OptimalPolynomialScheme>();
}

}  // namespace lb::core
