#include "lb/core/steady_state.hpp"

#include "lb/util/assert.hpp"
#include "lb/util/stats.hpp"

namespace lb::core::metrics {

void SteadyState::observe(std::size_t round, double potential,
                          double discrepancy, double max_load, double arrivals,
                          double departures) {
  if (potentials_.empty()) {
    first_round_ = round;
  } else {
    LB_ASSERT_MSG(round == first_round_ + potentials_.size(),
                  "SteadyState rounds must be observed in order");
  }
  potentials_.push_back(potential);
  max_loads_.push_back(max_load);
  arrivals_.push_back(arrivals);
  if (discrepancy > config_.epsilon) ++rounds_above_epsilon_;
  total_arrivals_ += arrivals;
  total_departures_ += departures;
}

SteadyStateReport SteadyState::finalize() const {
  SteadyStateReport r;
  if (potentials_.empty()) return r;
  r.valid = true;
  r.rounds = potentials_.size();

  r.peak_p50 = util::quantile(max_loads_, 0.50);
  r.peak_p90 = util::quantile(max_loads_, 0.90);
  r.peak_p99 = util::quantile(max_loads_, 0.99);
  double peak = max_loads_[0];
  for (const double m : max_loads_) peak = m > peak ? m : peak;
  r.peak_max = peak;

  // Largest single-round burst; first occurrence wins ties so the
  // settling window is the longest available.
  std::size_t burst = 0;
  for (std::size_t i = 1; i < arrivals_.size(); ++i) {
    if (arrivals_[i] > arrivals_[burst]) burst = i;
  }
  if (arrivals_[burst] > 0.0) {
    r.burst_round = first_round_ + burst;
    r.burst_arrivals = arrivals_[burst];
    // Pre-burst Φ: the potential after the round preceding the burst.
    // A burst in the very first observed round settles against the
    // post-burst Φ itself (no earlier observation exists).
    r.pre_burst_potential = burst > 0 ? potentials_[burst - 1] : potentials_[burst];
    const double target = config_.settle_ratio * r.pre_burst_potential;
    for (std::size_t i = burst; i < potentials_.size(); ++i) {
      if (potentials_[i] <= target) {
        r.settling_rounds = i - burst;
        r.settled = true;
        break;
      }
    }
    if (!r.settled) r.settling_rounds = potentials_.size() - burst;  // censored
  }

  r.rounds_above_epsilon = rounds_above_epsilon_;
  r.fraction_above_epsilon =
      static_cast<double>(rounds_above_epsilon_) / static_cast<double>(r.rounds);
  r.total_arrivals = total_arrivals_;
  r.total_departures = total_departures_;
  r.mean_net_per_round =
      (total_arrivals_ - total_departures_) / static_cast<double>(r.rounds);
  return r;
}

}  // namespace lb::core::metrics
