#include "lb/core/fos.hpp"

#include <cmath>

#include "lb/core/diffusion.hpp"
#include "lb/core/flow_program.hpp"
#include "lb/core/round_context.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

StepStats FirstOrderScheme::step(RoundContext<double>& ctx,
                                 std::vector<double>& load) {
  if (ctx.masked() && apply_ == ApplyPath::kLedger) {
    // Masked dynamic round: α from the mask's alive max-degree, flows
    // over alive base edges only — no materialization, bit-identical to
    // stepping on the materialized subgraph.
    const graph::TopologyFrame& frame = ctx.frame();
    LB_ASSERT_MSG(load.size() == frame.num_nodes(),
                  "load vector does not match graph");
    const double alpha = 1.0 / (static_cast<double>(frame.max_degree()) + 1.0);
    util::ThreadPool* pool = parallel_ ? ctx.pool() : nullptr;
    const auto flow_fn = [alpha](std::size_t, const graph::Edge&, double lu,
                                 double lv) { return alpha * (lu - lv); };
    StepStats stats;
    stats.links = frame.num_edges();
    run_masked_ledger_round(ctx, frame, load, pool, stats, flow_fn);
    return stats;
  }

  const graph::Graph& g = ctx.graph();
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  const double alpha = 1.0 / (static_cast<double>(g.max_degree()) + 1.0);
  util::ThreadPool* pool = parallel_ ? ctx.pool() : nullptr;
  std::vector<double>& flows = ctx.arena().flows();

  // Flow form of L^{t+1} = M·L^t: every edge carries α·(ℓ_u − ℓ_v), all
  // computed from the round-start snapshot.
  const auto flow_fn = [alpha](std::size_t, const graph::Edge&, double lu,
                               double lv) { return alpha * (lu - lv); };

  StepStats stats;
  stats.links = g.num_edges();
  if (apply_ == ApplyPath::kLedger) {
    // Shared ledger-round dispatch (round_context.hpp): fused sequential /
    // cache-blocked / parallel CSR, all bit-identical.
    run_ledger_round(ctx, g, load, pool, stats, flow_fn);
  } else {
    compute_edge_flows(g, load, flows, pool, flow_fn);
    accumulate_flow_totals<double>(flows, stats);
    apply_edge_sweep(g, flows, load);
  }
  return stats;
}

bool FirstOrderScheme::plan_round(RoundContext<double>& ctx,
                                  FlowProgram<double>& program) {
  if (apply_ != ApplyPath::kLedger) return false;
  // Unmasked frames: frame.max_degree() == graph().max_degree(), so this
  // is the exact α both step() branches derive.
  const graph::TopologyFrame& frame = ctx.frame();
  const double alpha = 1.0 / (static_cast<double>(frame.max_degree()) + 1.0);
  program.links = frame.num_edges();
  program.flow = [alpha](std::size_t, const graph::Edge&, double lu, double lv) {
    return alpha * (lu - lv);
  };
  return true;
}

std::unique_ptr<ContinuousBalancer> make_fos_continuous() {
  return std::make_unique<FirstOrderScheme>();
}

std::unique_ptr<DiscreteBalancer> make_fos_discrete() {
  DiffusionConfig cfg;
  cfg.rule = DenominatorRule::kDegreePlusOne;
  return std::make_unique<DiscreteDiffusion>(cfg);
}

}  // namespace lb::core
