#include "lb/core/fos.hpp"

#include <cmath>

#include "lb/core/diffusion.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

StepStats FirstOrderScheme::step(const graph::Graph& g, std::vector<double>& load,
                                 util::Rng& /*rng*/) {
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  const double alpha = 1.0 / (static_cast<double>(g.max_degree()) + 1.0);
  next_.assign(load.size(), 0.0);

  auto sweep = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      const double lu = load[u];
      double acc = lu;
      for (graph::NodeId v : g.neighbors(static_cast<graph::NodeId>(u))) {
        acc += alpha * (load[v] - lu);
      }
      next_[u] = acc;
    }
  };
  if (parallel_) {
    util::ThreadPool::global().parallel_for(0, load.size(), 1024, sweep);
  } else {
    sweep(0, load.size());
  }

  StepStats stats;
  stats.links = g.num_edges();
  for (const graph::Edge& e : g.edges()) {
    const double f = alpha * std::fabs(load[e.u] - load[e.v]);
    if (f > 0.0) {
      stats.transferred += f;
      ++stats.active_edges;
    }
  }
  load.swap(next_);
  return stats;
}

std::unique_ptr<ContinuousBalancer> make_fos_continuous() {
  return std::make_unique<FirstOrderScheme>();
}

std::unique_ptr<DiscreteBalancer> make_fos_discrete() {
  DiffusionConfig cfg;
  cfg.rule = DenominatorRule::kDegreePlusOne;
  return std::make_unique<DiscreteDiffusion>(cfg);
}

}  // namespace lb::core
