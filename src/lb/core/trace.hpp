// Per-round run traces: the raw series behind every convergence figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lb::core {

struct RoundRecord {
  std::size_t round = 0;        ///< 1-indexed, matching the paper
  double potential = 0.0;       ///< Φ after this round
  double discrepancy = 0.0;     ///< max − min after this round
  double transferred = 0.0;     ///< total load moved this round
  std::size_t active_edges = 0; ///< edges that moved a nonzero amount
  double step_us = 0.0;         ///< wall-clock µs in Balancer::step()
  /// Wall-clock µs computing the post-round summary *outside* step();
  /// ~0 when the balancer fused the metrics sweep into its apply phase.
  double metrics_us = 0.0;
  // Sharded-execution comm observability (lb/shard/): modeled, therefore
  // deterministic, unlike the two wall fields above.  Zero for
  // shared-memory rounds.
  std::uint64_t messages = 0;        ///< halo messages this round
  std::uint64_t boundary_bytes = 0;  ///< boundary payload bytes this round
  double halo_wait_us = 0.0;         ///< modeled critical-path halo wait
  // Open-system traffic (lb/workload/stream.hpp): APPLIED totals, i.e.
  // post departure clamping.  Zero for closed-system rounds; the CSV
  // columns appear only when the trace is marked open-system, so
  // zero-stream runs keep byte-identical output.
  double arrivals = 0.0;    ///< Σ applied arrivals this round
  double departures = 0.0;  ///< Σ applied departures this round
  double net_load = 0.0;    ///< cumulative Σ(arrivals − departures) so far
};

class Trace {
 public:
  void reserve(std::size_t rounds) { records_.reserve(rounds); }
  void add(RoundRecord r) { records_.push_back(r); }

  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  const RoundRecord& operator[](std::size_t i) const { return records_[i]; }
  const std::vector<RoundRecord>& records() const { return records_; }

  /// Potential series (index 0 = after round 1).
  std::vector<double> potentials() const;

  /// First round whose potential is <= target; 0 if never reached.
  std::size_t first_round_at_or_below(double target_potential) const;

  /// Mark this trace as recording an open-system run: to_csv appends
  /// the arrivals,departures,net_load columns.  Off by default so
  /// closed-system CSVs stay byte-identical to pre-stream output
  /// (golden comparisons, bench ablation CSVs).
  void set_open_system(bool open) { open_system_ = open; }
  bool open_system() const { return open_system_; }

  /// CSV with header round,potential,discrepancy,transferred,
  /// active_edges,step_us,metrics_us,messages,boundary_bytes,halo_wait_us
  /// (plus ,arrivals,departures,net_load when open_system()).
  std::string to_csv() const;

 private:
  std::vector<RoundRecord> records_;
  bool open_system_ = false;
};

}  // namespace lb::core
