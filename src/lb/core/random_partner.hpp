// Algorithm 2 of the paper (§6): random balancing partners.
//
//   1. every node i picks a partner j uniformly at random; the link
//      (i, j) joins the round's link multiset E;
//   2. every link (i, j) with ℓ_i > ℓ_j moves (ℓ_i − ℓ_j)/(4·max(d_i,d_j))
//      from i to j, where d(i) is i's number of balancing partners this
//      round (own pick + picks received).
//
// Unlike Algorithm 1 this needs no network: it is neighbourhood balancing
// over a random graph redrawn every round, and a node picked by many
// others performs many concurrent balancing actions — the hard case the
// paper's technique is built for (Lemma 9 shows both endpoints of a link
// have ≤ 5 partners with probability > 1/2, which drives Lemma 11's
// E[Φ^{t+1}] ≤ (19/20)·Φ^t and Theorem 12's topology-free O(log Φ) time).
//
// The discrete variant floors every transfer (§6.2, Lemma 13/Theorem 14).
#pragma once

#include <memory>

#include "lb/core/algorithm.hpp"

namespace lb::core {

/// One round's link structure: the multiset of links plus per-node degrees.
struct PartnerLinks {
  /// One entry per node i: the partner chosen by i (link (i, partner[i])).
  std::vector<graph::NodeId> partner;
  /// d(i): number of links incident to node i (multiplicity counted).
  std::vector<std::uint32_t> degree;
};

/// Sample the round's links: each node picks a partner uniformly from the
/// other n−1 nodes.  Exposed separately so the Lemma-9 Monte-Carlo bench
/// can reuse the exact production sampling path.
PartnerLinks sample_partner_links(std::size_t n, util::Rng& rng);

template <class T>
class RandomPartnerBalancer final : public Balancer<T> {
 public:
  RandomPartnerBalancer() = default;

  std::string name() const override {
    return std::is_integral_v<T> ? "randpartner-disc" : "randpartner-cont";
  }
  bool uses_network() const override { return false; }

  using Balancer<T>::step;
  StepStats step(RoundContext<T>& ctx, std::vector<T>& load) override;
};

using ContinuousRandomPartner = RandomPartnerBalancer<double>;
using DiscreteRandomPartner = RandomPartnerBalancer<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_random_partner_continuous();
std::unique_ptr<DiscreteBalancer> make_random_partner_discrete();

}  // namespace lb::core
