// Heterogeneous diffusion: nodes with different processing speeds.
//
// Elsässer, Monien & Preis ("Diffusion Schemes for Load Balancing on
// Heterogeneous Networks", reference [9] of the paper) generalize
// neighbourhood balancing to machines where node i has speed s_i > 0 and
// the fair share of the total work W is s_i·W/Σs rather than W/n.  The
// natural generalization of Algorithm 1 balances *normalized* loads
// ℓ_i/s_i: an edge (i,j) with ℓ_i/s_i > ℓ_j/s_j moves
//
//     w = (ℓ_i/s_i − ℓ_j/s_j) · h_ij / (4·max(d_i, d_j)),
//     h_ij = harmonic mean of (s_i, s_j) = 2 s_i s_j / (s_i + s_j),
//
// which reduces to the paper's rule when all speeds are 1 and keeps the
// weighted potential  Φ_s(L) = Σ_i s_i·(ℓ_i/s_i − W/Σs)²  non-increasing
// (the h_ij factor guarantees the normalized gap cannot overshoot: the
// normalized transfer w/s seen by either endpoint is at most the gap
// divided by 2·max(d_i,d_j)).
//
// Extension feature beyond the paper's uniform-speed model; tested for
// conservation, monotone weighted potential, and convergence to the
// proportional share on every topology family.
#pragma once

#include <memory>

#include "lb/core/algorithm.hpp"
#include "lb/core/flow_ledger.hpp"

namespace lb::core {

/// Weighted potential Φ_s(L) = Σ_i s_i (ℓ_i/s_i − W/S)², S = Σ_i s_i.
/// Zero exactly at the proportional distribution ℓ_i = s_i·W/S.
template <class T>
double weighted_potential(const std::vector<T>& load, const std::vector<double>& speed);

/// Max_i |ℓ_i/s_i − W/S| — the normalized discrepancy.
template <class T>
double weighted_discrepancy(const std::vector<T>& load,
                            const std::vector<double>& speed);

template <class T>
class HeterogeneousDiffusion final : public Balancer<T> {
 public:
  /// `speed[i] > 0` for all i.
  explicit HeterogeneousDiffusion(std::vector<double> speed);

  std::string name() const override {
    return std::is_integral_v<T> ? "hetero-diffusion-disc" : "hetero-diffusion-cont";
  }
  using Balancer<T>::step;
  StepStats step(RoundContext<T>& ctx, std::vector<T>& load) override;

  const std::vector<double>& speed() const { return speed_; }

 private:
  // speed_ is configuration, not trajectory state: the default (no-op)
  // on_run_begin() suffices — reused instances are trivially run-isolated
  // (tests/test_run_isolation.cpp still exercises the reuse).
  std::vector<double> speed_;
};

using ContinuousHeterogeneousDiffusion = HeterogeneousDiffusion<double>;
using DiscreteHeterogeneousDiffusion = HeterogeneousDiffusion<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_heterogeneous_continuous(
    std::vector<double> speed);
std::unique_ptr<DiscreteBalancer> make_heterogeneous_discrete(
    std::vector<double> speed);

}  // namespace lb::core
