#include "lb/core/sos.hpp"

#include <cmath>

#include "lb/linalg/spectral.hpp"
#include "lb/util/assert.hpp"

namespace lb::core {

SecondOrderScheme::SecondOrderScheme(std::optional<double> beta) : beta_(beta) {
  if (beta_) {
    LB_ASSERT_MSG(*beta_ >= 1.0 && *beta_ < 2.0, "SOS needs beta in [1, 2)");
  }
}

double SecondOrderScheme::optimal_beta(double gamma) {
  LB_ASSERT_MSG(gamma >= 0.0 && gamma < 1.0, "gamma must lie in [0, 1)");
  return 2.0 / (1.0 + std::sqrt(1.0 - gamma * gamma));
}

StepStats SecondOrderScheme::step(const graph::Graph& g, std::vector<double>& load,
                                  util::Rng& /*rng*/) {
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  if (!beta_) {
    beta_ = optimal_beta(linalg::diffusion_gamma(g));
  }
  const double alpha = 1.0 / (static_cast<double>(g.max_degree()) + 1.0);

  // scratch = M·load (matrix-free neighbour sweep).
  scratch_.assign(load.size(), 0.0);
  for (std::size_t u = 0; u < load.size(); ++u) {
    double acc = load[u];
    for (graph::NodeId v : g.neighbors(static_cast<graph::NodeId>(u))) {
      acc += alpha * (load[v] - load[u]);
    }
    scratch_[u] = acc;
  }

  StepStats stats;
  stats.links = g.num_edges();
  for (const graph::Edge& e : g.edges()) {
    const double f = alpha * std::fabs(load[e.u] - load[e.v]);
    if (f > 0.0) {
      stats.transferred += f;
      ++stats.active_edges;
    }
  }

  if (!have_prev_) {
    // First round is a plain FOS step.
    prev_ = load;
    load.swap(scratch_);
    have_prev_ = true;
    return stats;
  }

  const double b = *beta_;
  for (std::size_t u = 0; u < load.size(); ++u) {
    const double next = b * scratch_[u] + (1.0 - b) * prev_[u];
    prev_[u] = load[u];
    load[u] = next;
  }
  return stats;
}

std::unique_ptr<ContinuousBalancer> make_sos(std::optional<double> beta) {
  return std::make_unique<SecondOrderScheme>(beta);
}

}  // namespace lb::core
