#include "lb/core/sos.hpp"

#include <cmath>

#include "lb/core/flow_program.hpp"
#include "lb/core/round_context.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/linalg/spectral_cache.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

namespace {

/// γ for the auto-β derivation: through the run's spectral cache when
/// the engine carries one (Tier-1 exact — summary() computes through the
/// identical lambda2/lambda_max path on a miss, so the value is
/// bit-identical to the cold call and the trajectory cannot move), cold
/// otherwise.
double round_gamma(RoundContext<double>& ctx) {
  const graph::Graph& g = ctx.graph();
  linalg::SpectralCache* cache = ctx.spectral_cache();
  if (cache != nullptr) return cache->summary(g).gamma;
  return linalg::diffusion_gamma(g);
}

}  // namespace

SecondOrderScheme::SecondOrderScheme(std::optional<double> beta, bool parallel,
                                     ApplyPath apply)
    : configured_beta_(beta), beta_(beta), parallel_(parallel), apply_(apply) {
  if (beta_) {
    LB_ASSERT_MSG(*beta_ >= 1.0 && *beta_ < 2.0, "SOS needs beta in [1, 2)");
  }
}

double SecondOrderScheme::optimal_beta(double gamma) {
  LB_ASSERT_MSG(gamma >= 0.0 && gamma < 1.0, "gamma must lie in [0, 1)");
  return 2.0 / (1.0 + std::sqrt(1.0 - gamma * gamma));
}

StepStats SecondOrderScheme::step(RoundContext<double>& ctx,
                                  std::vector<double>& load) {
  const graph::TopologyFrame& frame = ctx.frame();
  const bool masked = ctx.masked() && apply_ == ApplyPath::kLedger;
  LB_ASSERT_MSG(load.size() == frame.num_nodes(), "load vector does not match graph");
  if (!beta_) {
    // γ needs the full spectral machinery; on a masked round this
    // materializes the (cached) round-1 view once — identical to what
    // the rebuild path computes.  Dynamic runs normally pass β explicitly.
    beta_ = optimal_beta(round_gamma(ctx));
  }
  const double alpha = 1.0 / (static_cast<double>(frame.max_degree()) + 1.0);
  util::ThreadPool* pool = parallel_ ? ctx.pool() : nullptr;
  std::vector<double>& flows = ctx.arena().flows();

  // scratch = M·load via the flow-ledger kernel: the FOS edge flows
  // α·(ℓ_u − ℓ_v) applied to a copy of the snapshot.
  const auto flow_fn = [alpha](std::size_t, const graph::Edge&, double lu,
                               double lv) { return alpha * (lu - lv); };

  StepStats stats;
  stats.links = frame.num_edges();
  if (masked) {
    // Masked dynamic round: flows over alive base edges, CSR keyed on
    // the base — no materialization, bit-identical to the rebuild path.
    if (pool == nullptr || pool->size() <= 1) {
      scratch_ = load;
      run_fused_sequential_round_masked(frame, scratch_, ctx.arena().node_scratch(),
                                        stats, flow_fn);
    } else {
      FlowLedger& ledger = ctx.frame_ledger();
      compute_edge_flows_masked(frame, load, flows, pool, flow_fn);
      accumulate_flow_totals_masked<double>(frame, flows, stats);
      scratch_ = load;
      ledger.apply(frame, flows, scratch_, pool);
    }
  } else if (apply_ == ApplyPath::kLedger) {
    const graph::Graph& g = ctx.graph();
    if (pool == nullptr || pool->size() <= 1) {
      // The fused path never reads the CSR view; don't build it.
      scratch_ = load;
      run_fused_sequential_round(g, scratch_, ctx.arena().node_scratch(), stats,
                                 flow_fn);
    } else {
      FlowLedger& ledger = ctx.ledger();
      compute_edge_flows(g, load, flows, pool, flow_fn);
      accumulate_flow_totals<double>(flows, stats);
      scratch_ = load;
      ledger.apply(g, flows, scratch_, pool);
    }
  } else {
    const graph::Graph& g = ctx.graph();
    compute_edge_flows(g, load, flows, pool, flow_fn);
    accumulate_flow_totals<double>(flows, stats);
    scratch_ = load;
    apply_edge_sweep(g, flows, scratch_);
  }

  if (!have_prev_) {
    // First round is a plain FOS step.
    prev_ = load;
    load.swap(scratch_);
    have_prev_ = true;
    return stats;
  }

  // The final load is produced by the β-combination, not the apply, so
  // the fused summary rides this sweep instead: the combine is driven by
  // the fixed metrics chunks and each node's new value is accumulated as
  // it is written — bit-identical loads (per-node ops unchanged) and a
  // bit-deterministic summary at every pool size.
  const double b = *beta_;
  const std::size_t n = load.size();
  if (ctx.summary_requested()) {
    ctx.publish_summary(fused_sweep_with_summary<double>(
        pool, n, ctx.summary_average(), ctx.summary_mode(),
        ctx.arena().summary_parts(),
        [&](std::size_t u) {
          const double next = b * scratch_[u] + (1.0 - b) * prev_[u];
          prev_[u] = load[u];
          load[u] = next;
          return next;
        }));
  } else {
    auto combine = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t u = lo; u < hi; ++u) {
        const double next = b * scratch_[u] + (1.0 - b) * prev_[u];
        prev_[u] = load[u];
        load[u] = next;
      }
    };
    if (pool != nullptr) {
      pool->parallel_for(0, n, 1024, combine);
    } else {
      combine(0, n);
    }
  }
  return stats;
}

bool SecondOrderScheme::plan_round(RoundContext<double>& ctx,
                                   FlowProgram<double>& program) {
  if (apply_ != ApplyPath::kLedger) return false;
  const graph::TopologyFrame& frame = ctx.frame();
  if (!beta_) {
    // Same round-1 spectral derivation as step(); on masked rounds this
    // materializes the cached view, identical to the stepped run.
    beta_ = optimal_beta(round_gamma(ctx));
  }
  const double alpha = 1.0 / (static_cast<double>(frame.max_degree()) + 1.0);
  program.links = frame.num_edges();
  program.flow = [alpha](std::size_t, const graph::Edge&, double lu, double lv) {
    return alpha * (lu - lv);
  };
  if (!have_prev_) {
    // First round is a plain FOS step: the applied value stands, and the
    // round-start load becomes L^{t-1} (step()'s prev_ = load copy).
    prev_.resize(frame.num_nodes());
    program.post = [this](std::size_t u, double applied, double before) {
      prev_[u] = before;
      return applied;
    };
    have_prev_ = true;
    return true;
  }
  const double b = *beta_;
  program.post = [this, b](std::size_t u, double applied, double before) {
    // `applied` is step()'s scratch_[u] (M·L at u), so this is the exact
    // combine expression: b·scratch + (1−b)·prev, then prev <- L^t.
    const double next = b * applied + (1.0 - b) * prev_[u];
    prev_[u] = before;
    return next;
  };
  return true;
}

std::unique_ptr<ContinuousBalancer> make_sos(std::optional<double> beta) {
  return std::make_unique<SecondOrderScheme>(beta);
}

}  // namespace lb::core
