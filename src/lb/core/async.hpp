// Asynchronous diffusion: only a random subset of nodes act each round.
//
// Real machines rarely run in lockstep.  Following the asynchronous
// discrete model of Cortés et al. (reference [5] of the paper), each
// round every node is independently *active* with probability p; an
// active node runs its half of Algorithm 1's rule against the round-start
// loads of all its neighbours (active or not), while sleeping nodes only
// receive.  p = 1 recovers Algorithm 1 exactly; smaller p thins the
// concurrent actions, trading rounds for per-round work — the expected
// potential drop scales with p, which the tests verify.
#pragma once

#include <memory>

#include "lb/core/algorithm.hpp"
#include "lb/core/diffusion.hpp"

namespace lb::core {

template <class T>
class AsyncDiffusion final : public Balancer<T> {
 public:
  /// `activation_probability` in (0, 1].
  explicit AsyncDiffusion(double activation_probability, DiffusionConfig cfg = {});

  std::string name() const override;
  using Balancer<T>::step;
  StepStats step(RoundContext<T>& ctx, std::vector<T>& load) override;

  double activation_probability() const { return p_; }

 private:
  // No inter-round state: the active set is drawn fresh each round from
  // the context's Rng, so the default (no-op) on_run_begin() suffices —
  // reused instances are trivially run-isolated.
  double p_;
  DiffusionConfig cfg_;
};

using ContinuousAsyncDiffusion = AsyncDiffusion<double>;
using DiscreteAsyncDiffusion = AsyncDiffusion<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_async_continuous(double p);
std::unique_ptr<DiscreteBalancer> make_async_discrete(double p);

}  // namespace lb::core
