// RoundContext: everything one balancing round executes against.
//
// Before this existed, Balancer::step(g, load, rng) gave algorithms no
// access to the thread pool or reusable scratch, so each balancer
// re-plumbed its own (flow buffers, snapshots, CSR ledgers).  The context
// bundles the per-round view (graph + rng + pool) with the per-run
// resources (scratch arena + shared flow ledger keyed on the graph's
// topology epoch), and carries the engine's fused-summary request so the
// metrics sweep can ride inside the apply phase instead of being a second
// sequential O(n) pass.  See DESIGN.md §3 for the contract.
//
// Ownership model:
//   * RunArena<T> lives for a whole run (the engine owns one per run; the
//     deprecated legacy step() shim owns one per balancer).  Its buffers
//     are sized lazily by whoever uses them and reused across rounds.
//   * RoundContext<T> is a cheap per-round view: references into the
//     arena plus the current graph/rng/pool and the summary slot.  It is
//     constructed fresh each round (dynamic sequences swap the graph).
#pragma once

#include <cstdint>
#include <vector>

#include "lb/core/flow_ledger.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/graph/edge_mask.hpp"
#include "lb/graph/graph.hpp"
#include "lb/util/rng.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::linalg {
class SpectralCache;
}

namespace lb::core {

/// Per-run reusable state shared by every round: scratch buffers sized
/// lazily by the balancers that use them, plus the flow-ledger CSR view,
/// which re-keys itself on graph::Graph::revision() (the topology epoch)
/// so dynamic sequences rebuild it exactly when the topology changes.
///
/// An arena may also outlive a run: Engine::run's caller-owned-arena
/// overload lets back-to-back runs share one, in which case the CSR
/// (revision-keyed) survives across runs on the same base — the campaign
/// layer's per-cell amortization (lb/exp/, DESIGN.md §6).  That reuse is
/// sound because nothing here is trajectory state: every buffer is
/// (re)assigned before it is read within a round.
template <class T>
class RunArena {
 public:
  /// Per-edge signed flow buffer (positive moves load u -> v).
  std::vector<double>& flows() { return flows_; }
  /// Per-node T scratch (round-start snapshots, per-node deltas).
  /// Handing the buffer out invalidates the blocked round's cross-round
  /// snapshot cache: any caller of this accessor may clobber it.
  std::vector<T>& node_scratch() {
    snapshot_ready_ = false;
    return node_scratch_;
  }
  /// Per-node flag scratch (e.g. async activation sets).
  std::vector<std::uint8_t>& node_flags() { return node_flags_; }
  /// Per-chunk partial buffer for the deterministic summary reductions
  /// (fused_sweep_with_summary's scratch overload) — kept here so
  /// steady-state rounds perform zero transient allocations.
  std::vector<SummaryPartial<T>>& summary_parts() { return summary_parts_; }
  /// The shared CSR incident-edge view; callers go through
  /// RoundContext::ledger(), which ensure()s it against the round's graph.
  FlowLedger& ledger() { return ledger_; }

  /// The blocked fused round's snapshot cache (DESIGN.md §9).  It is the
  /// same buffer as node_scratch(), but accessed WITHOUT dropping the
  /// validity flag: when snapshot_ready() is true the buffer holds a
  /// byte-accurate copy of the run's load vector as the previous blocked
  /// round left it, so the next blocked round skips its O(n) round-start
  /// copy.  The contract is invalidation-by-default — every other user
  /// of the buffer (node_scratch()) and every code path that mutates the
  /// load vector outside a blocked round (run start, sharded halo
  /// rounds, the legacy step() shim) clears the flag, and only a
  /// completed blocked round sets it.
  std::vector<T>& snapshot_scratch() { return node_scratch_; }
  bool snapshot_ready() const { return snapshot_ready_; }
  void set_snapshot_ready(bool ready) { snapshot_ready_ = ready; }
  /// Call after any load mutation the blocked round did not see.
  void invalidate_snapshot() { snapshot_ready_ = false; }

  /// Pre-size every per-run buffer for an n-node / m-edge topology so the
  /// first round allocates nothing either (the allocation audit's
  /// warm-start hook; bench_scale calls this before its counted region).
  void reserve_for(std::size_t num_nodes, std::size_t num_edges) {
    flows_.reserve(num_edges);
    node_scratch_.reserve(num_nodes);
    node_flags_.reserve(num_nodes);
    summary_parts_.reserve(summary_chunk_count(num_nodes));
  }

 private:
  std::vector<double> flows_;
  std::vector<T> node_scratch_;
  std::vector<std::uint8_t> node_flags_;
  std::vector<SummaryPartial<T>> summary_parts_;
  FlowLedger ledger_;
  bool snapshot_ready_ = false;
};

template <class T>
class RoundContext {
 public:
  /// Frame-carrying constructor: the round executes against a
  /// TopologyFrame (base graph + optional edge-alive mask).  The frame —
  /// and the base/mask it references — must outlive the round.
  RoundContext(const graph::TopologyFrame& frame, util::Rng& rng,
               util::ThreadPool* pool, RunArena<T>& arena)
      : frame_(&frame), rng_(&rng), pool_(pool), arena_(&arena) {}

  /// Full-graph convenience constructor (static rounds, the legacy
  /// step() shim, direct test call sites).
  RoundContext(const graph::Graph& g, util::Rng& rng, util::ThreadPool* pool,
               RunArena<T>& arena)
      : own_frame_(g), frame_(&own_frame_), rng_(&rng), pool_(pool), arena_(&arena) {}

  /// The round's topology frame.  Mask-aware balancers read degrees and
  /// edge liveness from here and never materialize.
  const graph::TopologyFrame& frame() const { return *frame_; }
  bool masked() const { return frame_->masked(); }

  /// The round's network as a real Graph.  On masked rounds this
  /// *materializes* the subgraph (lazily, cached per mask revision) —
  /// which keeps every balancer that needs full Graph structure
  /// (matchings, spectral lookups) semantically unmodified on dynamic
  /// sequences, at the old rebuild cost.  Mask-aware fast paths use
  /// frame() instead.
  const graph::Graph& graph() const { return frame_->view(); }
  util::Rng& rng() { return *rng_; }

  /// The pool rounds should parallelize on; nullptr means run sequential.
  /// Balancers configured sequential (e.g. DiffusionConfig::parallel ==
  /// false) ignore it.
  util::ThreadPool* pool() const { return pool_; }
  std::size_t workers() const { return pool_ == nullptr ? 1 : pool_->size(); }
  /// True when parallel kernels are worth engaging.
  bool parallel() const { return workers() > 1; }

  RunArena<T>& arena() { return *arena_; }

  /// Shared spectral cache (EngineConfig::spectral_cache; DESIGN.md §10),
  /// or nullptr when the run is cold.  Balancers that bind schedules to
  /// spectral quantities (SOS auto-β, OPS) route their lookups through it
  /// when present; its schedule-feeding paths (summary/spectrum) are
  /// Tier-1 exact, so the trajectory is bit-identical either way.
  linalg::SpectralCache* spectral_cache() const { return spectral_cache_; }
  void set_spectral_cache(linalg::SpectralCache* cache) { spectral_cache_ = cache; }

  /// The shared flow ledger, rebuilt iff its epoch differs from the
  /// round's graph.  Returns a view valid for graph() — on masked rounds
  /// this materializes; mask-aware balancers use frame_ledger().
  FlowLedger& ledger() {
    arena_->ledger().ensure(frame_->view());
    return arena_->ledger();
  }

  /// The shared flow ledger keyed on the frame's *base* graph: built
  /// once per base revision and reused across every mask revision — the
  /// masked substrate's whole point.  Valid for FlowLedger's frame
  /// overloads (and for plain apply on unmasked frames).
  FlowLedger& frame_ledger() {
    arena_->ledger().ensure(*frame_);
    return arena_->ledger();
  }

  // --- Fused-summary protocol (engine -> balancer) ---------------------
  //
  // The engine requests a post-round LoadSummary with Φ measured against
  // `average` (the run-start average; see metrics.hpp).  A balancer whose
  // apply phase sweeps every node SHOULD compute the summary during that
  // sweep (FlowLedger::apply_with_summary, or a fixed-chunk fused loop)
  // and publish it; the engine falls back to a standalone deterministic
  // reduction otherwise.  Either way the bits are identical — publishing
  // just saves the second pass over the load vector.

  void request_summary(SummaryMode mode, double average) {
    summary_requested_ = true;
    summary_mode_ = mode;
    summary_average_ = average;
  }
  bool summary_requested() const { return summary_requested_; }
  SummaryMode summary_mode() const { return summary_mode_; }
  double summary_average() const { return summary_average_; }

  void publish_summary(const LoadSummary<T>& s) {
    summary_ = s;
    has_summary_ = true;
  }
  bool has_summary() const { return has_summary_; }
  const LoadSummary<T>& summary() const { return summary_; }

 private:
  graph::TopologyFrame own_frame_;  // backs the Graph convenience ctor
  const graph::TopologyFrame* frame_;
  util::Rng* rng_;
  util::ThreadPool* pool_;
  RunArena<T>* arena_;
  linalg::SpectralCache* spectral_cache_ = nullptr;

  bool summary_requested_ = false;
  SummaryMode summary_mode_ = SummaryMode::kFull;
  double summary_average_ = 0.0;
  bool has_summary_ = false;
  LoadSummary<T> summary_{};
};

/// The shared tail of every ledger-based round: apply `flows` through
/// `ledger`, riding the fused deterministic summary inside the gather
/// when the engine requested one (and publishing it), plain apply
/// otherwise.  `ledger` must already be valid for ctx.graph().
template <class T>
inline void apply_flows_observed(RoundContext<T>& ctx, FlowLedger& ledger,
                                 const std::vector<double>& flows,
                                 std::vector<T>& load, util::ThreadPool* pool) {
  if (ctx.summary_requested()) {
    LoadSummary<T> summary;
    ledger.apply_with_summary(ctx.graph(), flows, load, pool,
                              ctx.summary_average(), ctx.summary_mode(),
                              ctx.arena().summary_parts(), summary);
    ctx.publish_summary(summary);
  } else {
    ledger.apply(ctx.graph(), flows, load, pool);
  }
}

/// Masked-frame variant: `ledger` must be valid for the frame's base
/// graph (ctx.frame_ledger()); dead edges are skipped inside the apply.
template <class T>
inline void apply_flows_observed(RoundContext<T>& ctx, FlowLedger& ledger,
                                 const graph::TopologyFrame& frame,
                                 const std::vector<double>& flows,
                                 std::vector<T>& load, util::ThreadPool* pool) {
  if (ctx.summary_requested()) {
    LoadSummary<T> summary;
    ledger.apply_with_summary(frame, flows, load, pool, ctx.summary_average(),
                              ctx.summary_mode(), ctx.arena().summary_parts(),
                              summary);
    ctx.publish_summary(summary);
  } else {
    ledger.apply(frame, flows, load, pool);
  }
}

/// The shared masked ledger round (diffusion, FOS, async, heterogeneous):
/// a single worker takes the fused one-pass masked sweep; otherwise the
/// flows are filled over alive base edges, totalled, and applied through
/// the base-keyed CSR with the fused summary riding the gather.  There is
/// exactly one copy of this dispatch so the bit-identity contract cannot
/// drift apart between balancers.  (SOS applies into a scratch vector and
/// fuses its summary into the β-combine instead, so it stays bespoke.)
template <class T, class FlowFn>
inline void run_masked_ledger_round(RoundContext<T>& ctx,
                                    const graph::TopologyFrame& frame,
                                    std::vector<T>& load, util::ThreadPool* pool,
                                    StepStats& stats, FlowFn&& flow_fn) {
  if (pool == nullptr || pool->size() <= 1) {
    const std::size_t width = blocked_round_width();
    if (width != 0 && ctx.summary_requested()) {
      // Cache-blocked fused round (DESIGN.md §9): apply + summary per
      // L2-sized node block, bit-identical to the flat path below at
      // every block width.  Engaged only when the engine wants a summary —
      // without one the flat masked sweep already makes a single pass.
      // Deliberately does NOT touch ctx.frame_ledger(): the sweep needs
      // no CSR, so the ledger build is skipped entirely on this path.
      RunArena<T>& arena = ctx.arena();
      const bool ready = arena.snapshot_ready();
      arena.set_snapshot_ready(false);  // never leave a stale claim mid-round
      ctx.publish_summary(run_blocked_fused_round<T>(
          frame, load, arena.snapshot_scratch(), ready, ctx.summary_average(),
          ctx.summary_mode(), stats, width, flow_fn));
      arena.set_snapshot_ready(true);
      return;
    }
    run_fused_sequential_round_masked(frame, load, ctx.arena().node_scratch(),
                                      stats, flow_fn);
    return;
  }
  FlowLedger& ledger = ctx.frame_ledger();  // CSR keyed on the base graph
  ctx.arena().invalidate_snapshot();  // parallel apply mutates load directly
  std::vector<double>& flows = ctx.arena().flows();
  compute_edge_flows_masked(frame, load, flows, pool, flow_fn);
  accumulate_flow_totals_masked<T>(frame, flows, stats);
  apply_flows_observed(ctx, ledger, frame, flows, load, pool);
}

/// Unmasked counterpart of run_masked_ledger_round, shared by the ported
/// balancers' kLedger paths (diffusion, FOS): one copy of the
/// single-worker / blocked / parallel dispatch so the bit-identity
/// contract cannot drift between balancers.  `g` must be ctx.graph().
template <class T, class FlowFn>
inline void run_ledger_round(RoundContext<T>& ctx, const graph::Graph& g,
                             std::vector<T>& load, util::ThreadPool* pool,
                             StepStats& stats, FlowFn&& flow_fn) {
  if (pool == nullptr || pool->size() <= 1) {
    const std::size_t width = blocked_round_width();
    if (width != 0 && ctx.summary_requested()) {
      RunArena<T>& arena = ctx.arena();
      const bool ready = arena.snapshot_ready();
      arena.set_snapshot_ready(false);  // never leave a stale claim mid-round
      ctx.publish_summary(run_blocked_fused_round<T>(
          g, load, arena.snapshot_scratch(), ready, ctx.summary_average(),
          ctx.summary_mode(), stats, width, flow_fn));
      arena.set_snapshot_ready(true);
      return;
    }
    run_fused_sequential_round(g, load, ctx.arena().node_scratch(), stats,
                               flow_fn);
    return;
  }
  FlowLedger& ledger = ctx.ledger();
  ctx.arena().invalidate_snapshot();  // parallel apply mutates load directly
  std::vector<double>& flows = ctx.arena().flows();
  compute_edge_flows(g, load, flows, pool, flow_fn);
  accumulate_flow_totals<T>(flows, stats);
  apply_flows_observed(ctx, ledger, flows, load, pool);
}

}  // namespace lb::core
