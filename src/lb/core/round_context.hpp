// RoundContext: everything one balancing round executes against.
//
// Before this existed, Balancer::step(g, load, rng) gave algorithms no
// access to the thread pool or reusable scratch, so each balancer
// re-plumbed its own (flow buffers, snapshots, CSR ledgers).  The context
// bundles the per-round view (graph + rng + pool) with the per-run
// resources (scratch arena + shared flow ledger keyed on the graph's
// topology epoch), and carries the engine's fused-summary request so the
// metrics sweep can ride inside the apply phase instead of being a second
// sequential O(n) pass.  See DESIGN.md §3 for the contract.
//
// Ownership model:
//   * RunArena<T> lives for a whole run (the engine owns one per run; the
//     deprecated legacy step() shim owns one per balancer).  Its buffers
//     are sized lazily by whoever uses them and reused across rounds.
//   * RoundContext<T> is a cheap per-round view: references into the
//     arena plus the current graph/rng/pool and the summary slot.  It is
//     constructed fresh each round (dynamic sequences swap the graph).
#pragma once

#include <cstdint>
#include <vector>

#include "lb/core/flow_ledger.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/graph/graph.hpp"
#include "lb/util/rng.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

/// Per-run reusable state shared by every round: scratch buffers sized
/// lazily by the balancers that use them, plus the flow-ledger CSR view,
/// which re-keys itself on graph::Graph::revision() (the topology epoch)
/// so dynamic sequences rebuild it exactly when the topology changes.
template <class T>
class RunArena {
 public:
  /// Per-edge signed flow buffer (positive moves load u -> v).
  std::vector<double>& flows() { return flows_; }
  /// Per-node T scratch (round-start snapshots, per-node deltas).
  std::vector<T>& node_scratch() { return node_scratch_; }
  /// Per-node flag scratch (e.g. async activation sets).
  std::vector<std::uint8_t>& node_flags() { return node_flags_; }
  /// The shared CSR incident-edge view; callers go through
  /// RoundContext::ledger(), which ensure()s it against the round's graph.
  FlowLedger& ledger() { return ledger_; }

 private:
  std::vector<double> flows_;
  std::vector<T> node_scratch_;
  std::vector<std::uint8_t> node_flags_;
  FlowLedger ledger_;
};

template <class T>
class RoundContext {
 public:
  RoundContext(const graph::Graph& g, util::Rng& rng, util::ThreadPool* pool,
               RunArena<T>& arena)
      : graph_(&g), rng_(&rng), pool_(pool), arena_(&arena) {}

  const graph::Graph& graph() const { return *graph_; }
  util::Rng& rng() { return *rng_; }

  /// The pool rounds should parallelize on; nullptr means run sequential.
  /// Balancers configured sequential (e.g. DiffusionConfig::parallel ==
  /// false) ignore it.
  util::ThreadPool* pool() const { return pool_; }
  std::size_t workers() const { return pool_ == nullptr ? 1 : pool_->size(); }
  /// True when parallel kernels are worth engaging.
  bool parallel() const { return workers() > 1; }

  RunArena<T>& arena() { return *arena_; }

  /// Current topology epoch (graph::Graph::revision()).
  std::uint64_t epoch() const { return graph_->revision(); }

  /// The shared flow ledger, rebuilt iff its epoch differs from the
  /// round's graph.  Returns a view valid for graph().
  FlowLedger& ledger() {
    arena_->ledger().ensure(*graph_);
    return arena_->ledger();
  }

  // --- Fused-summary protocol (engine -> balancer) ---------------------
  //
  // The engine requests a post-round LoadSummary with Φ measured against
  // `average` (the run-start average; see metrics.hpp).  A balancer whose
  // apply phase sweeps every node SHOULD compute the summary during that
  // sweep (FlowLedger::apply_with_summary, or a fixed-chunk fused loop)
  // and publish it; the engine falls back to a standalone deterministic
  // reduction otherwise.  Either way the bits are identical — publishing
  // just saves the second pass over the load vector.

  void request_summary(SummaryMode mode, double average) {
    summary_requested_ = true;
    summary_mode_ = mode;
    summary_average_ = average;
  }
  bool summary_requested() const { return summary_requested_; }
  SummaryMode summary_mode() const { return summary_mode_; }
  double summary_average() const { return summary_average_; }

  void publish_summary(const LoadSummary<T>& s) {
    summary_ = s;
    has_summary_ = true;
  }
  bool has_summary() const { return has_summary_; }
  const LoadSummary<T>& summary() const { return summary_; }

 private:
  const graph::Graph* graph_;
  util::Rng* rng_;
  util::ThreadPool* pool_;
  RunArena<T>* arena_;

  bool summary_requested_ = false;
  SummaryMode summary_mode_ = SummaryMode::kFull;
  double summary_average_ = 0.0;
  bool has_summary_ = false;
  LoadSummary<T> summary_{};
};

/// The shared tail of every ledger-based round: apply `flows` through
/// `ledger`, riding the fused deterministic summary inside the gather
/// when the engine requested one (and publishing it), plain apply
/// otherwise.  `ledger` must already be valid for ctx.graph().
template <class T>
inline void apply_flows_observed(RoundContext<T>& ctx, FlowLedger& ledger,
                                 const std::vector<double>& flows,
                                 std::vector<T>& load, util::ThreadPool* pool) {
  if (ctx.summary_requested()) {
    LoadSummary<T> summary;
    ledger.apply_with_summary(ctx.graph(), flows, load, pool,
                              ctx.summary_average(), ctx.summary_mode(), summary);
    ctx.publish_summary(summary);
  } else {
    ledger.apply(ctx.graph(), flows, load, pool);
  }
}

}  // namespace lb::core
