#include "lb/core/trace.hpp"

#include <sstream>

namespace lb::core {

std::vector<double> Trace::potentials() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const RoundRecord& r : records_) out.push_back(r.potential);
  return out;
}

std::size_t Trace::first_round_at_or_below(double target_potential) const {
  for (const RoundRecord& r : records_) {
    if (r.potential <= target_potential) return r.round;
  }
  return 0;
}

std::string Trace::to_csv() const {
  std::ostringstream os;
  os << "round,potential,discrepancy,transferred,active_edges,step_us,metrics_us,"
        "messages,boundary_bytes,halo_wait_us";
  if (open_system_) os << ",arrivals,departures,net_load";
  os << '\n';
  for (const RoundRecord& r : records_) {
    os << r.round << ',' << r.potential << ',' << r.discrepancy << ','
       << r.transferred << ',' << r.active_edges << ',' << r.step_us << ','
       << r.metrics_us << ',' << r.messages << ',' << r.boundary_bytes << ','
       << r.halo_wait_us;
    if (open_system_) {
      os << ',' << r.arrivals << ',' << r.departures << ',' << r.net_load;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace lb::core
