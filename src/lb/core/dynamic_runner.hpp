// Section-5 experiments: run a balancer over a dynamic network while
// tracking the per-round spectral quantities (λ2(G_k), δ(G_k)) that
// Theorems 7 and 8 are stated in.  Computing λ2 every round is O(n³) on
// the dense path, so the runner takes the spectral data from a recorded
// prefix of the sequence — the caller decides how many rounds to measure.
#pragma once

#include <functional>
#include <memory>

#include "lb/core/algorithm.hpp"
#include "lb/core/engine.hpp"
#include "lb/graph/dynamic.hpp"

namespace lb::core {

struct DynamicSpectralProfile {
  std::vector<double> lambda2_per_round;
  std::vector<std::size_t> delta_per_round;
  std::vector<std::size_t> edges_per_round;
  std::size_t disconnected_rounds = 0;
  double average_ratio = 0.0;  ///< A_K of Theorem 7
};

/// Replay the first `rounds` graphs of a sequence and record λ2 and δ of
/// each.  The sequence is consumed (stateful sequences advance), so use a
/// fresh sequence constructed with the same seed for the actual run.
DynamicSpectralProfile profile_sequence(graph::GraphSequence& seq, std::size_t rounds,
                                        std::size_t dense_cutoff = 512);

struct DynamicRunResult {
  RunResult run;
  DynamicSpectralProfile profile;
  double theorem_bound_rounds = 0.0;  ///< Thm 7 (continuous) or Thm 8 (discrete)
  double threshold = 0.0;             ///< Thm 8 threshold Φ*; 0 for continuous
};

/// Run + profile in one call: `make_sequence` must build identically-
/// seeded sequences on each invocation (it is called twice: once for the
/// spectral profile, once for the balancing run).
template <class T>
DynamicRunResult run_dynamic(
    Balancer<T>& balancer,
    const std::function<std::unique_ptr<graph::GraphSequence>()>& make_sequence,
    std::vector<T> load, std::size_t rounds, double epsilon,
    std::size_t dense_cutoff = 512);

}  // namespace lb::core
