// Section-5 experiments: run a balancer over a dynamic network while
// tracking the per-round spectral quantities (λ2(G_k), δ(G_k)) that
// Theorems 7 and 8 are stated in.  Computing λ2 every round is O(n³) on
// the dense path, so the runner takes the spectral data from a recorded
// prefix of the sequence — the caller decides how many rounds to measure.
//
// The profiling pass consumes TopologyFrames (graph/edge_mask.hpp):
// masked rounds are profiled straight off the base graph + alive mask
// (union-find connectivity, frame-assembled Laplacians) with no subgraph
// materialization.  One sequence serves both the profile and the run:
// profile_sequence records a fingerprint per frame, the sequence is
// reset(), and the run asserts round-by-round that it replays the exact
// same topologies — eliminating the old build-two-identically-seeded-
// sequences footgun.
#pragma once

#include <functional>
#include <memory>

#include "lb/core/algorithm.hpp"
#include "lb/core/bounds.hpp"
#include "lb/core/engine.hpp"
#include "lb/graph/dynamic.hpp"
#include "lb/linalg/spectral_cache.hpp"

namespace lb::core {

struct DynamicSpectralProfile {
  std::vector<double> lambda2_per_round;
  std::vector<std::size_t> delta_per_round;
  std::vector<std::size_t> edges_per_round;
  /// TopologyFrame::fingerprint() per round, for replay verification.
  std::vector<std::uint64_t> frame_fingerprints;
  /// Provenance of each lambda2_per_round entry — resolves the old
  /// ambiguous 0.0 sentinel (disconnected vs guard-skipped) and records
  /// which cache tier served warm rounds.
  std::vector<bounds::RoundSpectralStatus> status_per_round;
  std::size_t disconnected_rounds = 0;
  /// Rounds whose λ2 was skipped by a linalg scale guard (recorded as
  /// 0.0 in lambda2_per_round); run_dynamic mirrors any nonzero count
  /// into RunResult::spectral_skipped.
  std::size_t spectral_skipped_rounds = 0;
  /// Which guard fired on the first skipped round (kNone if none did).
  linalg::SpectralGuard guard_fired = linalg::SpectralGuard::kNone;
  // Cache-tier accounting (all zero on a cold profile).
  std::size_t solved_rounds = 0;         ///< fresh solves (dense/cold/warm)
  std::size_t warm_solved_rounds = 0;    ///< of which warm-started Lanczos
  std::size_t cache_hit_rounds = 0;      ///< Tier-1 exact hits
  std::size_t bound_skipped_rounds = 0;  ///< Tier-2 bracket skips
  double average_ratio = 0.0;  ///< A_K of Theorem 7
};

/// Tier policy for a profiling pass (DESIGN.md §10).
struct SpectralProfileOptions {
  std::size_t dense_cutoff = 512;
  /// Cache serving tiers 1–3.  nullptr + warm: the profiler uses a pass-
  /// local cache (repeated frames within the pass still hit).  A caller-
  /// owned cache additionally carries entries across passes/sequences.
  linalg::SpectralCache* cache = nullptr;
  /// false = the cold oracle: every connected round pays a fresh cold
  /// solve (the pre-cache behaviour, and the bench ablation baseline).
  bool warm = true;
  /// Tier-2 relative tolerance.  The profile's λ2 entries feed only the
  /// A_K average and the Theorem 7/8 bound *reporting* — never the
  /// engine trajectory — so a bounded relative error is acceptable
  /// there; kDefaultBoundSkipTol documents the policy.  0 disables.
  double bound_skip_tol = kDefaultBoundSkipTol;

  /// Default Tier-2 tolerance for profile-grade λ2: 1e-3 relative moves
  /// A_K (and the theorem-bound estimates derived from it) by at most
  /// 0.1% — far below the constant-factor slack in the bounds themselves.
  static constexpr double kDefaultBoundSkipTol = 1e-3;
};

/// Replay the first `rounds` frames of a sequence and record λ2 and δ of
/// each (plus a structure fingerprint).  The sequence is consumed
/// (stateful sequences advance): reset() it — or let run_dynamic do so —
/// before reusing it for the balancing run.
DynamicSpectralProfile profile_sequence(graph::GraphSequence& seq, std::size_t rounds,
                                        const SpectralProfileOptions& options);

/// Back-compat wrapper: warm defaults (pass-local cache) at this cutoff.
DynamicSpectralProfile profile_sequence(graph::GraphSequence& seq, std::size_t rounds,
                                        std::size_t dense_cutoff = 512);

struct DynamicRunResult {
  RunResult run;
  DynamicSpectralProfile profile;
  double theorem_bound_rounds = 0.0;  ///< Thm 7 (continuous) or Thm 8 (discrete)
  double threshold = 0.0;             ///< Thm 8 threshold Φ*; 0 for continuous
};

/// Profile + run on ONE sequence: profile the first `rounds` frames,
/// reset(), then run the balancer over the replayed stream.  Every round
/// of the run asserts its frame fingerprint against the profile's — the
/// two passes provably saw identical topologies.
///
/// `profile_options` (when non-null) sets the profiling-pass tier policy;
/// its dense_cutoff overrides the `dense_cutoff` argument.  When it
/// carries a cache and base_config does not already set one, the run's
/// EngineConfig::spectral_cache is pointed at it too, so SOS auto-β /
/// OPS schedule binding reuse the profile's Tier-1 entries (exact, hence
/// bit-identical trajectories).  RunResult::spectral_guard reports the
/// profile's guard_fired.
template <class T>
DynamicRunResult run_dynamic(Balancer<T>& balancer, graph::GraphSequence& seq,
                             std::vector<T> load, std::size_t rounds, double epsilon,
                             std::size_t dense_cutoff = 512,
                             const EngineConfig* base_config = nullptr,
                             const SpectralProfileOptions* profile_options = nullptr);

/// Factory convenience (the pre-reset() API): builds the sequence once
/// and delegates to the single-sequence overload — the factory is no
/// longer invoked twice, so seeding mistakes can't desynchronize the
/// profile from the run.
template <class T>
DynamicRunResult run_dynamic(
    Balancer<T>& balancer,
    const std::function<std::unique_ptr<graph::GraphSequence>()>& make_sequence,
    std::vector<T> load, std::size_t rounds, double epsilon,
    std::size_t dense_cutoff = 512);

}  // namespace lb::core
