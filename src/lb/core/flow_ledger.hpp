// Node-centric flow-ledger kernel: the shared substrate for every
// edge-flow balancing round (Algorithm 1 diffusion, FOS/SOS, dimension
// exchange).
//
// A synchronous round in the paper is "compute every edge flow from the
// round-start snapshot, then apply all of them".  The seed implemented the
// apply as a sequential edge-list sweep; the ledger makes it node-centric:
// a CSR view (linalg::CsrMatrix layout: row_ptr over nodes, column array
// of incident edge ids) is precomputed once per graph epoch, and the apply
// phase walks each node's incident edges, updating only that node's load.
// Each node owns its row, so the sweep parallelizes with no write races
// and no atomics — and because a node's incident edges are stored in
// ascending edge-index order and applied with per-edge operations that
// round exactly like the edge sweep's ±amount updates, the resulting load
// vector is BIT-IDENTICAL to the sequential edge-list apply at every
// thread count (floating-point included: same operand values, same
// operation order per node).  On a single-worker pool the ledger instead
// falls back to the linear edge sweep itself, because a one-thread gather
// pays the CSR indirection for no parallel gain.
//
// Epoch invalidation: the ledger is keyed on graph::Graph::revision(), a
// process-unique id minted per build.  Dynamic sequences (graph/dynamic.hpp)
// rebuild their current graph each round — often at the same address — and
// the revision changes with them, so ensure() rebuilds exactly when the
// topology actually changed and is free for static networks.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "lb/core/algorithm.hpp"
#include "lb/core/metrics.hpp"
#include "lb/graph/edge_mask.hpp"
#include "lb/graph/graph.hpp"
#include "lb/util/index_array.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

/// Node-block width for the cache-blocked fused round (DESIGN.md §9), in
/// nodes.  Resolution order: set_blocked_width_override() ▸ the
/// LB_BLOCK_NODES environment variable ▸ a 16384-node default (64–128 KiB
/// of load vector — L2-resident on everything we target).  Always a
/// multiple of kSummaryChunkWidth so summary chunks never straddle a
/// block; 0 disables blocking (the flat fused sweep).  The width NEVER
/// affects results — every width is bit-identical (the property tests
/// randomize it) — so this is a pure performance knob.
std::size_t blocked_round_width();

/// Test/bench hook: width < 0 clears the override (back to env/default),
/// 0 forces the flat path, > 0 is rounded up to a kSummaryChunkWidth
/// multiple and used as the block width.
void set_blocked_width_override(long long width);

/// Which apply implementation a ported balancer uses.  kEdgeSweep is the
/// seed's sequential edge-list path, kept as the equivalence oracle for
/// tests and the ablation benches; kLedger is the parallel node-centric
/// path and the production default.
enum class ApplyPath {
  kLedger,
  kEdgeSweep,
};

class FlowLedger {
 public:
  FlowLedger() = default;

  /// Build the CSR incident-edge view for `g`.  O(n + m).
  void rebuild(const graph::Graph& g);

  /// True if the ledger was built for exactly this topology epoch.
  bool valid_for(const graph::Graph& g) const {
    return revision_ != 0 && revision_ == g.revision();
  }

  /// Drop the cached view; the next ensure() rebuilds.
  void invalidate() { revision_ = 0; }

  /// Rebuild iff the cached view does not match `g`'s epoch.  Returns true
  /// when a rebuild happened, so callers can refresh their own per-epoch
  /// caches (e.g. per-edge denominators) in lockstep.
  bool ensure(const graph::Graph& g) {
    if (valid_for(g)) return false;
    rebuild(g);
    return true;
  }

  /// Masked-frame keying: the CSR depends only on the *base* graph, so a
  /// frame ensure() rebuilds exactly when the base revision moves — mask
  /// revisions churn every dynamic round without touching the CSR.  This
  /// is the (base_revision, mask_revision) cache split: the ledger holds
  /// the base_revision half, the per-round flows/degrees carry the
  /// mask_revision half.
  bool ensure(const graph::TopologyFrame& frame) { return ensure(frame.base()); }

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return num_edges_; }

  /// Read-only views of the CSR arrays, for the lb::check invariant layer
  /// (check_ledger recomputes well-formedness from these after each epoch
  /// rebuild).  Layout documented at the member declarations below.
  const util::IndexArray& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& edge_indices() const { return edge_idx_; }
  const std::vector<std::int8_t>& signs() const { return sign_; }
  /// Resident bytes of the ledger's index/sign arrays — the CSR half of
  /// the bytes/node scale metric.
  std::size_t memory_bytes() const {
    return row_ptr_.size_bytes() + edge_idx_.size() * sizeof(std::uint32_t) +
           sign_.size() * sizeof(std::int8_t);
  }

  /// Apply signed per-edge flows (positive moves load e.u -> e.v) to
  /// `load`, node-parallel on `pool` (nullptr or a single-worker pool
  /// falls back to the sequential edge sweep over `g`).  `g` must be the
  /// graph the ledger was built for.  Bit-identical to apply_edge_sweep
  /// on the same flows for any pool size.
  template <class T>
  void apply(const graph::Graph& g, const std::vector<double>& flows,
             std::vector<T>& load, util::ThreadPool* pool) const;

  /// Fused apply + deterministic summary: performs the exact same per-node
  /// load updates as apply(), and while each node's final value is still in
  /// register accumulates it into the fixed-chunk reduction of
  /// core/metrics.hpp (Φ measured against `average`) — one sweep over the
  /// load vector instead of apply-then-summarize's two.  The node gather is
  /// driven chunk-by-chunk (chunk boundaries a function of n only), so both
  /// the loads and `out` are bit-identical to apply() followed by
  /// summarize_deterministic() at every pool size, including sequential.
  /// `parts` is the caller's per-chunk partial scratch (RunArena keeps one
  /// per run) so steady-state rounds allocate nothing.
  template <class T>
  void apply_with_summary(const graph::Graph& g, const std::vector<double>& flows,
                          std::vector<T>& load, util::ThreadPool* pool,
                          double average, SummaryMode mode,
                          std::vector<SummaryPartial<T>>& parts,
                          LoadSummary<T>& out) const;

  /// Masked apply: the CSR stays the base graph's, and each node's row
  /// walk skips dead incident edges via the frame's alive bitmap before
  /// ever reading the flow slot (dead slots are never written by the
  /// masked flow fill, so they may hold stale values).  Because a node's
  /// alive incident edges appear in ascending base-edge order — the same
  /// relative order they have in the materialized subgraph — the result
  /// is bit-identical to apply() on the materialized view at every pool
  /// size.  Single-worker pools fall back to the masked edge sweep.
  template <class T>
  void apply(const graph::TopologyFrame& frame, const std::vector<double>& flows,
             std::vector<T>& load, util::ThreadPool* pool) const;

  /// Masked fused apply + deterministic summary (see apply_with_summary).
  template <class T>
  void apply_with_summary(const graph::TopologyFrame& frame,
                          const std::vector<double>& flows, std::vector<T>& load,
                          util::ThreadPool* pool, double average, SummaryMode mode,
                          std::vector<SummaryPartial<T>>& parts,
                          LoadSummary<T>& out) const;

 private:
  template <class T>
  void apply_gather(const std::vector<double>& flows, std::vector<T>& load,
                    util::ThreadPool& pool) const;

  // Masked row walk: identical ±updates to gather_node restricted to the
  // alive incident edges (ascending base order = subgraph order).
  template <class T>
  T gather_node_masked(std::size_t u, const graph::EdgeMask& mask,
                       const std::vector<double>& flows,
                       const std::vector<T>& load) const {
    T value = load[u];
    const std::size_t row_end = static_cast<std::size_t>(row_ptr_[u + 1]);
    for (std::size_t p = static_cast<std::size_t>(row_ptr_[u]); p < row_end; ++p) {
      const std::uint32_t k = edge_idx_[p];
      if (!mask.alive(k)) continue;  // dead slot: flows[k] may be stale
      const double f = flows[k];
      if (f == 0.0) continue;
      if constexpr (std::is_integral_v<T>) {
        value += static_cast<T>(sign_[p] * f);
      } else {
        value += static_cast<T>(sign_[p]) * static_cast<T>(f);
      }
    }
    return value;
  }

  // The shared per-node row walk: node u's final value from its incident
  // rows, with the rounding rules that make the gather bit-identical to
  // the sequential edge sweep (see apply_gather's commentary).
  template <class T>
  T gather_node(std::size_t u, const std::vector<double>& flows,
                const std::vector<T>& load) const {
    T value = load[u];
    const std::size_t row_end = static_cast<std::size_t>(row_ptr_[u + 1]);
    for (std::size_t p = static_cast<std::size_t>(row_ptr_[u]); p < row_end; ++p) {
      const double f = flows[edge_idx_[p]];
      if (f == 0.0) continue;
      // sign_[p]·f is exactly ±f (an int8 ±1 promotes to ±1.0 exactly),
      // and x + (−f) rounds identically to the edge sweep's x −= |f|
      // (x − |f| ≡ x + (−|f|) in IEEE), so every per-node update matches
      // the oracle bit for bit.  For integral T the truncating cast of ±f
      // equals the sweep's ±⌊|f|⌋, and adding a zero amount is the
      // identity, matching the sweep's skip.
      if constexpr (std::is_integral_v<T>) {
        value += static_cast<T>(sign_[p] * f);
      } else {
        value += static_cast<T>(sign_[p]) * static_cast<T>(f);
      }
    }
    return value;
  }

  std::uint64_t revision_ = 0;
  std::size_t num_nodes_ = 0;
  std::size_t num_edges_ = 0;
  util::IndexArray row_ptr_;             // n + 1 entries (CsrMatrix layout; narrow when 2m < 2^32)
  std::vector<std::uint32_t> edge_idx_;  // 2m incident edge ids, ascending per row
  std::vector<std::int8_t> sign_;        // -1 if the row's node is the edge's u
};

/// The seed's sequential edge-list apply, shared by every ported balancer's
/// kEdgeSweep path (and the oracle the ledger is tested against).
template <class T>
void apply_edge_sweep(const graph::Graph& g, const std::vector<double>& flows,
                      std::vector<T>& load);

/// The seed's fused apply + stats loop, verbatim: one pass that moves the
/// load and accumulates transferred/active_edges.  The kEdgeSweep baseline
/// uses this so the ablation benches compare against the seed's true cost.
/// `stats.links` is left to the caller.
template <class T>
void apply_edge_sweep_with_stats(const graph::Graph& g,
                                 const std::vector<double>& flows,
                                 std::vector<T>& load, StepStats& stats);

/// transferred/active_edges totals for a flow vector, accumulated in edge
/// order with the same cast/skip rules as apply_edge_sweep, so both apply
/// paths report identical StepStats.  `stats.links` is left to the caller.
template <class T>
void accumulate_flow_totals(const std::vector<double>& flows, StepStats& stats);

/// Masked variants: `flows` is indexed by *base* edge id and only alive
/// slots are valid; dead edges are skipped via the frame's bitmap before
/// the flow value is read.  Alive edges are visited in ascending base
/// order — the materialized subgraph's edge order — so each is
/// bit-identical to its unmasked counterpart run on the materialized
/// view with the compacted flow vector.
template <class T>
void apply_edge_sweep_masked(const graph::TopologyFrame& frame,
                             const std::vector<double>& flows, std::vector<T>& load);

template <class T>
void accumulate_flow_totals_masked(const graph::TopologyFrame& frame,
                                   const std::vector<double>& flows,
                                   StepStats& stats);

/// Phase 1 of the shared kernel: fill `flows` with
/// flow_fn(edge_index, edge, load_u, load_v) for every edge, edge-parallel
/// on `pool` (nullptr = sequential).  flow_fn must be pure in its inputs;
/// positive return moves load u -> v.
template <class T, class FlowFn>
void compute_edge_flows(const graph::Graph& g, const std::vector<T>& load,
                        std::vector<double>& flows, util::ThreadPool* pool,
                        FlowFn&& flow_fn) {
  const auto& edges = g.edges();
  flows.resize(edges.size());  // every slot is written below; no zero-fill
  auto fill = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const graph::Edge& e = edges[k];
      flows[k] = flow_fn(k, e, static_cast<double>(load[e.u]),
                         static_cast<double>(load[e.v]));
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, edges.size(), 2048, fill);
  } else {
    fill(0, edges.size());
  }
}

/// Masked phase 1: fill only the *alive* slots of `flows` (indexed by
/// base edge id) with flow_fn(edge_index, edge, load_u, load_v).  Dead
/// slots are left untouched — every masked consumer skips them via the
/// frame's bitmap, so no O(m) zero-fill is paid either.
template <class T, class FlowFn>
void compute_edge_flows_masked(const graph::TopologyFrame& frame,
                               const std::vector<T>& load,
                               std::vector<double>& flows, util::ThreadPool* pool,
                               FlowFn&& flow_fn) {
  const auto& edges = frame.base().edges();
  flows.resize(edges.size());
  auto fill = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      if (!frame.alive(k)) continue;
      const graph::Edge& e = edges[k];
      flows[k] = flow_fn(k, e, static_cast<double>(load[e.u]),
                         static_cast<double>(load[e.v]));
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, edges.size(), 2048, fill);
  } else {
    fill(0, edges.size());
  }
}

/// Single-worker specialization of the whole round: copy the load into
/// `snapshot`, then make one pass over the edge list that computes each
/// flow from the snapshot, applies it to `load` immediately, and
/// accumulates the fused stats — no flow buffer traffic, no separate
/// totals pass.  Bit-identical to compute_edge_flows + totals + apply:
/// the flow values are the same (computed from the same snapshot values)
/// and each node still receives the same ±amount updates in ascending
/// edge-index order.  `stats.links` is left to the caller.
template <class T, class FlowFn>
void run_fused_sequential_round(const graph::Graph& g, std::vector<T>& load,
                                std::vector<T>& snapshot, StepStats& stats,
                                FlowFn&& flow_fn) {
  snapshot = load;
  const auto& edges = g.edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const graph::Edge& e = edges[k];
    const double f = flow_fn(k, e, static_cast<double>(snapshot[e.u]),
                             static_cast<double>(snapshot[e.v]));
    if (f == 0.0) continue;
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    if (f > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
}

/// Masked single-worker fused round: one pass over the base edge list
/// skipping dead edges, computing each alive flow from the snapshot and
/// applying it immediately with fused stats.  Alive edges are processed
/// in ascending base order (= the materialized subgraph's edge order),
/// so this is bit-identical to run_fused_sequential_round on the
/// materialized view.  No GraphBuilder, no CSR, no allocations.
template <class T, class FlowFn>
void run_fused_sequential_round_masked(const graph::TopologyFrame& frame,
                                       std::vector<T>& load, std::vector<T>& snapshot,
                                       StepStats& stats, FlowFn&& flow_fn) {
  snapshot = load;
  const auto& edges = frame.base().edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (!frame.alive(k)) continue;
    const graph::Edge& e = edges[k];
    const double f = flow_fn(k, e, static_cast<double>(snapshot[e.u]),
                             static_cast<double>(snapshot[e.v]));
    if (f == 0.0) continue;
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    if (f > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
}

/// Cache-blocked single-worker fused round (DESIGN.md §9).  Keeps the
/// fused edge sweep's apply-immediately structure (snapshot the loads,
/// then one ascending pass over the edge list applying each flow as it
/// is computed) but walks it in node blocks of `block_width` (a
/// kSummaryChunkWidth multiple): the edge list is sorted by canonical
/// source u, so block [lo,hi)'s outgoing edges are one contiguous slice
/// found by a monotone cursor — no index structure, no CSR, no ledger.
/// After that slice is applied every node in the block is FINAL (any
/// edge touching w < hi has canonical endpoint u ≤ w, so it lies in this
/// or an earlier slice), and the block's Φ/extrema summary chunks are
/// folded right there, while the block is still cache-resident.  Loads,
/// StepStats (global ascending edge order) and the summary are all
/// BIT-IDENTICAL to run_fused_sequential_round + a standalone
/// summarize_deterministic at any block width; the win is that the flat
/// path re-streams the whole load vector through cache for that trailing
/// summary sweep, which at n ≥ 2^19 no longer fits.
///
/// The same finality argument also fuses the round-start snapshot copy:
/// once block [lo,hi) is final, `snapshot[lo,hi)` is refreshed to the
/// block's final loads while they are still cache-resident — later edge
/// slices only ever read snapshot at indices ≥ hi (canonical u < v), so
/// the in-place overwrite is invisible to the rest of the round.  The
/// next blocked round then starts from a snapshot that already equals
/// its round-start loads and skips the flat O(n) copy entirely.
/// `snapshot_ready` says whether the caller's scratch holds that copy
/// (RunArena::snapshot_ready(), invalidated by every other user of the
/// buffer and by every out-of-round load mutation); when false the round
/// opens with the full copy, exactly like the flat path.
template <class T, class FlowFn>
LoadSummary<T> run_blocked_fused_round(const graph::Graph& g, std::vector<T>& load,
                                       std::vector<T>& snapshot, bool snapshot_ready,
                                       double average, SummaryMode mode,
                                       StepStats& stats, std::size_t block_width,
                                       FlowFn&& flow_fn) {
  const std::size_t n = g.num_nodes();
  LB_ASSERT_MSG(load.size() == n, "load vector does not match graph");
  LB_ASSERT_MSG(block_width > 0 && block_width % kSummaryChunkWidth == 0,
                "block width must be a positive summary-chunk multiple");
  if (!snapshot_ready) {
    snapshot = load;
  } else {
    LB_ASSERT_MSG(snapshot.size() == n, "stale snapshot cache: size mismatch");
  }
  const auto& edges = g.edges();
  SummaryFold<T> fold;
  std::size_t k = 0;
  for (std::size_t lo = 0; lo < n; lo += block_width) {
    const std::size_t hi = std::min(lo + block_width, n);
    // Resolve the block's edge-slice end up front (edges are sorted by
    // canonical u) so the hot loop carries a single counter condition,
    // exactly like the flat sweep's.  The probes touch edges the stream
    // is about to read anyway.
    const std::size_t k_end = static_cast<std::size_t>(
        std::partition_point(
            edges.begin() + static_cast<std::ptrdiff_t>(k), edges.end(),
            [hi](const graph::Edge& e) { return e.u < hi; }) -
        edges.begin());
    for (; k < k_end; ++k) {
      const graph::Edge& e = edges[k];
      const double f = flow_fn(k, e, static_cast<double>(snapshot[e.u]),
                               static_cast<double>(snapshot[e.v]));
      if (f == 0.0) continue;
      const T amount = static_cast<T>(std::fabs(f));
      if (amount == T{}) continue;
      if (f > 0.0) {
        load[e.u] -= amount;
        load[e.v] += amount;
      } else {
        load[e.v] -= amount;
        load[e.u] += amount;
      }
      stats.transferred += static_cast<double>(amount);
      ++stats.active_edges;
    }
    // Cache-resident block epilogue, one pass per chunk: fold the
    // block's summary and refresh the snapshot for the next round from
    // the same load read (the flat path pays that copy against cold
    // memory at its next round start instead).
    for (std::size_t clo = lo; clo < hi; clo += kSummaryChunkWidth) {
      const std::size_t chi = std::min(clo + kSummaryChunkWidth, hi);
      SummaryPartial<T> p;
      summary_begin(p, load[clo]);
      for (std::size_t u = clo; u < chi; ++u) {
        const T v = load[u];
        summary_accumulate(p, v, average, mode);
        snapshot[u] = v;
      }
      fold.add(p);
    }
  }
  return fold.finish(n, average, mode);
}

/// Masked blocked round: the identical block walk over the *base* edge
/// list with dead edges skipped in the fill — alive edges are processed
/// in ascending base order, which is the materialized subgraph's edge
/// order, so it is bit-identical to the masked flat path at any block
/// width.  The summary folds every node (masks kill edges, not nodes),
/// matching the flat path's full-vector sweep.  The snapshot cache works
/// unchanged across mask revisions: it caches load *values*, and masks
/// kill edges, not loads.
template <class T, class FlowFn>
LoadSummary<T> run_blocked_fused_round(const graph::TopologyFrame& frame,
                                       std::vector<T>& load, std::vector<T>& snapshot,
                                       bool snapshot_ready, double average,
                                       SummaryMode mode, StepStats& stats,
                                       std::size_t block_width, FlowFn&& flow_fn) {
  if (!frame.masked()) {
    return run_blocked_fused_round<T>(frame.base(), load, snapshot, snapshot_ready,
                                      average, mode, stats, block_width,
                                      std::forward<FlowFn>(flow_fn));
  }
  const std::size_t n = frame.num_nodes();
  LB_ASSERT_MSG(load.size() == n, "load vector does not match frame");
  LB_ASSERT_MSG(block_width > 0 && block_width % kSummaryChunkWidth == 0,
                "block width must be a positive summary-chunk multiple");
  if (!snapshot_ready) {
    snapshot = load;
  } else {
    LB_ASSERT_MSG(snapshot.size() == n, "stale snapshot cache: size mismatch");
  }
  const auto& edges = frame.base().edges();
  SummaryFold<T> fold;
  std::size_t k = 0;
  for (std::size_t lo = 0; lo < n; lo += block_width) {
    const std::size_t hi = std::min(lo + block_width, n);
    const std::size_t k_end = static_cast<std::size_t>(
        std::partition_point(
            edges.begin() + static_cast<std::ptrdiff_t>(k), edges.end(),
            [hi](const graph::Edge& e) { return e.u < hi; }) -
        edges.begin());
    for (; k < k_end; ++k) {
      if (!frame.alive(k)) continue;
      const graph::Edge& e = edges[k];
      const double f = flow_fn(k, e, static_cast<double>(snapshot[e.u]),
                               static_cast<double>(snapshot[e.v]));
      if (f == 0.0) continue;
      const T amount = static_cast<T>(std::fabs(f));
      if (amount == T{}) continue;
      if (f > 0.0) {
        load[e.u] -= amount;
        load[e.v] += amount;
      } else {
        load[e.v] -= amount;
        load[e.u] += amount;
      }
      stats.transferred += static_cast<double>(amount);
      ++stats.active_edges;
    }
    for (std::size_t clo = lo; clo < hi; clo += kSummaryChunkWidth) {
      const std::size_t chi = std::min(clo + kSummaryChunkWidth, hi);
      SummaryPartial<T> p;
      summary_begin(p, load[clo]);
      for (std::size_t u = clo; u < chi; ++u) {
        const T v = load[u];
        summary_accumulate(p, v, average, mode);
        snapshot[u] = v;
      }
      fold.add(p);
    }
  }
  return fold.finish(n, average, mode);
}

}  // namespace lb::core
