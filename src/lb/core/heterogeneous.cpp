#include "lb/core/heterogeneous.hpp"

#include <cmath>

#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

template <class T>
double weighted_potential(const std::vector<T>& load, const std::vector<double>& speed) {
  LB_ASSERT_MSG(load.size() == speed.size(), "load/speed size mismatch");
  double total = 0.0, total_speed = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    total += static_cast<double>(load[i]);
    total_speed += speed[i];
  }
  if (total_speed <= 0.0) return 0.0;
  const double share = total / total_speed;  // W/S
  double acc = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    const double d = static_cast<double>(load[i]) / speed[i] - share;
    acc += speed[i] * d * d;
  }
  return acc;
}

template <class T>
double weighted_discrepancy(const std::vector<T>& load,
                            const std::vector<double>& speed) {
  LB_ASSERT_MSG(load.size() == speed.size(), "load/speed size mismatch");
  double total = 0.0, total_speed = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    total += static_cast<double>(load[i]);
    total_speed += speed[i];
  }
  if (total_speed <= 0.0) return 0.0;
  const double share = total / total_speed;
  double worst = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    worst = std::max(worst,
                     std::fabs(static_cast<double>(load[i]) / speed[i] - share));
  }
  return worst;
}

template <class T>
HeterogeneousDiffusion<T>::HeterogeneousDiffusion(std::vector<double> speed)
    : speed_(std::move(speed)) {
  for (double s : speed_) {
    LB_ASSERT_MSG(s > 0.0, "node speeds must be positive");
  }
}

template <class T>
StepStats HeterogeneousDiffusion<T>::step(const graph::Graph& g, std::vector<T>& load,
                                          util::Rng& /*rng*/) {
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  LB_ASSERT_MSG(speed_.size() == g.num_nodes(), "speed vector does not match graph");
  const auto& edges = g.edges();
  flows_.assign(edges.size(), 0.0);

  util::ThreadPool::global().parallel_for(
      0, edges.size(), 2048, [this, &g, &load, &edges](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const graph::Edge& e = edges[k];
          const double ni = static_cast<double>(load[e.u]) / speed_[e.u];
          const double nj = static_cast<double>(load[e.v]) / speed_[e.v];
          if (ni == nj) continue;
          const double harmonic =
              2.0 * speed_[e.u] * speed_[e.v] / (speed_[e.u] + speed_[e.v]);
          const double denom =
              4.0 * static_cast<double>(std::max(g.degree(e.u), g.degree(e.v)));
          double w = std::fabs(ni - nj) * harmonic / denom;
          if constexpr (std::is_integral_v<T>) {
            w = std::floor(w);
          }
          flows_[k] = ni > nj ? w : -w;
        }
      });

  StepStats stats;
  stats.links = edges.size();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const double f = flows_[k];
    if (f == 0.0) continue;
    const graph::Edge& e = edges[k];
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    if (f > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
  return stats;
}

template double weighted_potential<double>(const std::vector<double>&,
                                           const std::vector<double>&);
template double weighted_potential<std::int64_t>(const std::vector<std::int64_t>&,
                                                 const std::vector<double>&);
template double weighted_discrepancy<double>(const std::vector<double>&,
                                             const std::vector<double>&);
template double weighted_discrepancy<std::int64_t>(const std::vector<std::int64_t>&,
                                                   const std::vector<double>&);
template class HeterogeneousDiffusion<double>;
template class HeterogeneousDiffusion<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_heterogeneous_continuous(
    std::vector<double> speed) {
  return std::make_unique<ContinuousHeterogeneousDiffusion>(std::move(speed));
}

std::unique_ptr<DiscreteBalancer> make_heterogeneous_discrete(
    std::vector<double> speed) {
  return std::make_unique<DiscreteHeterogeneousDiffusion>(std::move(speed));
}

}  // namespace lb::core
