#include "lb/core/heterogeneous.hpp"

#include <cmath>

#include "lb/core/round_context.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

template <class T>
double weighted_potential(const std::vector<T>& load, const std::vector<double>& speed) {
  LB_ASSERT_MSG(load.size() == speed.size(), "load/speed size mismatch");
  double total = 0.0, total_speed = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    total += static_cast<double>(load[i]);
    total_speed += speed[i];
  }
  if (total_speed <= 0.0) return 0.0;
  const double share = total / total_speed;  // W/S
  double acc = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    const double d = static_cast<double>(load[i]) / speed[i] - share;
    acc += speed[i] * d * d;
  }
  return acc;
}

template <class T>
double weighted_discrepancy(const std::vector<T>& load,
                            const std::vector<double>& speed) {
  LB_ASSERT_MSG(load.size() == speed.size(), "load/speed size mismatch");
  double total = 0.0, total_speed = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    total += static_cast<double>(load[i]);
    total_speed += speed[i];
  }
  if (total_speed <= 0.0) return 0.0;
  const double share = total / total_speed;
  double worst = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    worst = std::max(worst,
                     std::fabs(static_cast<double>(load[i]) / speed[i] - share));
  }
  return worst;
}

template <class T>
HeterogeneousDiffusion<T>::HeterogeneousDiffusion(std::vector<double> speed)
    : speed_(std::move(speed)) {
  for (double s : speed_) {
    LB_ASSERT_MSG(s > 0.0, "node speeds must be positive");
  }
}

template <class T>
StepStats HeterogeneousDiffusion<T>::step(RoundContext<T>& ctx, std::vector<T>& load) {
  const graph::TopologyFrame& frame = ctx.frame();
  LB_ASSERT_MSG(load.size() == frame.num_nodes(), "load vector does not match graph");
  LB_ASSERT_MSG(speed_.size() == frame.num_nodes(),
                "speed vector does not match graph");
  util::ThreadPool* pool = ctx.pool();
  std::vector<double>& flows = ctx.arena().flows();
  StepStats stats;

  // The normalized-gap flow of Elsässer–Monien–Preis, on the shared
  // flow-ledger kernel.  One definition serves both branches: on masked
  // rounds frame.degree is the mask's alive-degree (= the materialized
  // subgraph's degree), on unmasked rounds it is the graph's own — the
  // identical doubles the original inline loop computed either way.
  const auto flow_fn = [this, &frame](std::size_t, const graph::Edge& e, double li,
                                      double lj) {
    const double ni = li / speed_[e.u];
    const double nj = lj / speed_[e.v];
    if (ni == nj) return 0.0;
    const double harmonic =
        2.0 * speed_[e.u] * speed_[e.v] / (speed_[e.u] + speed_[e.v]);
    const double denom =
        4.0 * static_cast<double>(std::max(frame.degree(e.u), frame.degree(e.v)));
    double w = std::fabs(ni - nj) * harmonic / denom;
    if constexpr (std::is_integral_v<T>) {
      w = std::floor(w);
    }
    return ni > nj ? w : -w;
  };

  if (ctx.masked()) {
    // Masked dynamic round: flows over alive base edges only, CSR keyed
    // on the base — no materialization, bit-identical to the rebuild path.
    stats.links = frame.num_edges();
    run_masked_ledger_round(ctx, frame, load, pool, stats, flow_fn);
    return stats;
  }

  const graph::Graph& g = ctx.graph();
  stats.links = g.num_edges();

  if (pool == nullptr || pool->size() <= 1) {
    run_fused_sequential_round(g, load, ctx.arena().node_scratch(), stats, flow_fn);
    return stats;
  }
  FlowLedger& ledger = ctx.ledger();
  compute_edge_flows(g, load, flows, pool, flow_fn);
  accumulate_flow_totals<T>(flows, stats);
  apply_flows_observed(ctx, ledger, flows, load, pool);
  return stats;
}

template double weighted_potential<double>(const std::vector<double>&,
                                           const std::vector<double>&);
template double weighted_potential<std::int64_t>(const std::vector<std::int64_t>&,
                                                 const std::vector<double>&);
template double weighted_discrepancy<double>(const std::vector<double>&,
                                             const std::vector<double>&);
template double weighted_discrepancy<std::int64_t>(const std::vector<std::int64_t>&,
                                                   const std::vector<double>&);
template class HeterogeneousDiffusion<double>;
template class HeterogeneousDiffusion<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_heterogeneous_continuous(
    std::vector<double> speed) {
  return std::make_unique<ContinuousHeterogeneousDiffusion>(std::move(speed));
}

std::unique_ptr<DiscreteBalancer> make_heterogeneous_discrete(
    std::vector<double> speed) {
  return std::make_unique<DiscreteHeterogeneousDiffusion>(std::move(speed));
}

}  // namespace lb::core
