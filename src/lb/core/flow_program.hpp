// FlowProgram: a balancer round expressed as data, for distributed replay.
//
// The shared-memory engine lets a balancer execute its round however it
// likes inside step().  The sharded engine (lb/shard/) cannot: domains
// must compute their owned edges' flows independently from halo copies of
// boundary loads, so the round has to be *described* — a pure per-edge
// flow function plus optional structure — rather than executed.  A
// Balancer that can be distributed implements plan_round() (see
// algorithm.hpp) by filling one of these; the sharded engine then runs
// the identical arithmetic through its ownership/halo machinery.
//
// The bit-identity contract: replaying a program through
//   compute-flows (ascending edge order, round-start snapshot)
//   + per-node gather in ascending incident-edge order
//   + optional per-node post combine
// must produce the exact load vector step() produces.  Every closure
// below is therefore required to be PURE in its stated inputs — flows
// may depend only on (edge index, endpoints, the two endpoint loads at
// round start), never on neighbouring loads or mutable state — because a
// remote domain evaluates it against halo *copies* of those operands and
// copies of doubles are bitwise verbatim.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lb/graph/graph.hpp"

namespace lb::core {

template <class T>
struct FlowProgram {
  /// Which edges carry flow this round.
  enum class Support : std::uint8_t {
    /// Every alive edge (diffusion, FOS, SOS): flows are gathered per
    /// node over all incident edges, exactly like FlowLedger.
    kAllEdges,
    /// Only `matched` (dimension exchange): a vertex-disjoint edge set in
    /// matching order; each endpoint receives a single ±amount update.
    kMatching,
  };

  /// Signed flow for edge k = (e.u, e.v) from the round-start endpoint
  /// loads; positive moves load u -> v.  Must reproduce the balancer's
  /// step() flow for that edge bit for bit (same operand values, same
  /// operation order).
  using FlowFn =
      std::function<double(std::size_t k, const graph::Edge& e, double lu, double lv)>;

  /// Optional per-node combine applied after the flow apply: the node's
  /// final value from (applied gather result, round-start value).  Runs
  /// exactly once per node per round, in any order across nodes (it may
  /// only touch per-node state, e.g. SOS's prev_[u]).
  using PostFn = std::function<T(std::size_t u, T applied, T before)>;

  Support support = Support::kAllEdges;
  FlowFn flow;
  /// Base edge ids in matching order (kMatching only).  Ids index the
  /// frame's BASE edge list, so masked rounds need no materialized view.
  std::vector<std::uint32_t> matched;
  PostFn post;
  /// StepStats::links for the round (|E| or matching size).
  std::size_t links = 0;

  void reset() {
    support = Support::kAllEdges;
    flow = nullptr;
    matched.clear();
    post = nullptr;
    links = 0;
  }
};

}  // namespace lb::core
