#include "lb/core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "lb/util/assert.hpp"

namespace lb::core::bounds {

double lemma2_drop_lower_bound(double edge_difference_sum, std::size_t max_degree) {
  LB_ASSERT_MSG(max_degree >= 1, "graph must have at least one edge");
  return edge_difference_sum / (4.0 * static_cast<double>(max_degree));
}

double theorem4_drop_fraction(double lambda2, std::size_t max_degree) {
  LB_ASSERT_MSG(max_degree >= 1, "graph must have at least one edge");
  return lambda2 / (4.0 * static_cast<double>(max_degree));
}

double theorem4_rounds(double lambda2, std::size_t max_degree, double epsilon) {
  LB_ASSERT_MSG(lambda2 > 0.0, "theorem 4 needs a connected graph (lambda2 > 0)");
  LB_ASSERT_MSG(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
  return 4.0 * static_cast<double>(max_degree) * std::log(1.0 / epsilon) / lambda2;
}

double discrete_potential_threshold(std::size_t max_degree, std::size_t n,
                                    double lambda2) {
  LB_ASSERT_MSG(lambda2 > 0.0, "threshold needs lambda2 > 0");
  const double d = static_cast<double>(max_degree);
  return 64.0 * d * d * d * static_cast<double>(n) / lambda2;
}

double lemma5_drop_fraction(double lambda2, std::size_t max_degree) {
  LB_ASSERT_MSG(max_degree >= 1, "graph must have at least one edge");
  return lambda2 / (8.0 * static_cast<double>(max_degree));
}

double theorem6_rounds(double lambda2, std::size_t max_degree, std::size_t n,
                       double initial_potential) {
  const double threshold = discrete_potential_threshold(max_degree, n, lambda2);
  if (initial_potential <= threshold) return 0.0;
  return 8.0 * static_cast<double>(max_degree) / lambda2 *
         std::log(initial_potential / threshold);
}

double dynamic_average_ratio(const std::vector<double>& lambda2_per_round,
                             const std::vector<std::size_t>& delta_per_round) {
  LB_ASSERT_MSG(lambda2_per_round.size() == delta_per_round.size(),
                "per-round arrays must align");
  LB_ASSERT_MSG(!lambda2_per_round.empty(), "need at least one round");
  double acc = 0.0;
  for (std::size_t k = 0; k < lambda2_per_round.size(); ++k) {
    if (delta_per_round[k] == 0) continue;  // edgeless round contributes 0
    acc += lambda2_per_round[k] / static_cast<double>(delta_per_round[k]);
  }
  return acc / static_cast<double>(lambda2_per_round.size());
}

double dynamic_average_ratio(const std::vector<double>& lambda2_per_round,
                             const std::vector<std::size_t>& delta_per_round,
                             const std::vector<RoundSpectralStatus>& status_per_round) {
  LB_ASSERT_MSG(lambda2_per_round.size() == delta_per_round.size() &&
                    lambda2_per_round.size() == status_per_round.size(),
                "per-round arrays must align");
  LB_ASSERT_MSG(!lambda2_per_round.empty(), "need at least one round");
  double acc = 0.0;
  for (std::size_t k = 0; k < lambda2_per_round.size(); ++k) {
    switch (status_per_round[k]) {
      case RoundSpectralStatus::kComputed:
      case RoundSpectralStatus::kCacheHit:
      case RoundSpectralStatus::kBoundSkipped:
        if (delta_per_round[k] == 0) continue;  // edgeless round contributes 0
        acc += lambda2_per_round[k] / static_cast<double>(delta_per_round[k]);
        break;
      case RoundSpectralStatus::kGuardSkipped:
      case RoundSpectralStatus::kDisconnected:
        // Explicitly no contribution — and the recorded value must agree,
        // so a round mislabeled as skipped cannot silently drop a real λ2.
        LB_ASSERT_MSG(lambda2_per_round[k] == 0.0,
                      "skipped/disconnected round carries a nonzero lambda2");
        break;
    }
  }
  return acc / static_cast<double>(lambda2_per_round.size());
}

double theorem7_rounds(double average_ratio, double epsilon) {
  LB_ASSERT_MSG(average_ratio > 0.0, "average spectral ratio must be positive");
  LB_ASSERT_MSG(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
  return 4.0 * std::log(1.0 / epsilon) / average_ratio;
}

double theorem8_threshold(std::size_t n, const std::vector<double>& lambda2_per_round,
                          const std::vector<std::size_t>& delta_per_round) {
  LB_ASSERT_MSG(lambda2_per_round.size() == delta_per_round.size(),
                "per-round arrays must align");
  double worst = 0.0;
  for (std::size_t k = 0; k < lambda2_per_round.size(); ++k) {
    if (lambda2_per_round[k] <= 0.0) continue;  // disconnected round excluded
    const double d = static_cast<double>(delta_per_round[k]);
    worst = std::max(worst, d * d * d / lambda2_per_round[k]);
  }
  return 64.0 * static_cast<double>(n) * worst;
}

double theorem8_rounds(double average_ratio, double initial_potential,
                       double threshold) {
  LB_ASSERT_MSG(average_ratio > 0.0, "average spectral ratio must be positive");
  if (initial_potential <= threshold || threshold <= 0.0) return 0.0;
  return 8.0 / average_ratio * std::log(initial_potential / threshold);
}

double random_partner_threshold(std::size_t n) {
  return 3200.0 * static_cast<double>(n);
}

double theorem12_rounds(double c, double initial_potential) {
  LB_ASSERT_MSG(c > 0.0, "c must be positive");
  LB_ASSERT_MSG(initial_potential > 1.0, "theorem 12 needs Phi > 1");
  return 120.0 * c * std::log(initial_potential);
}

double theorem14_rounds(double c, double initial_potential, std::size_t n) {
  LB_ASSERT_MSG(c > 0.0, "c must be positive");
  const double threshold = random_partner_threshold(n);
  if (initial_potential <= threshold) return 0.0;
  return 240.0 * c * std::log(initial_potential / threshold);
}

}  // namespace lb::core::bounds
