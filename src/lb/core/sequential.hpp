// The paper's proof technique, made executable.
//
// Algorithm 1 computes every edge's transfer amount from the round-start
// state L^{t-1} and applies them all concurrently.  Because the amounts
// are fixed, applying them one edge at a time — in *increasing order of
// weight* w_ij = |ℓ_i − ℓ_j| / (4·max(d_i,d_j)), as the paper prescribes —
// reaches exactly the same end state, and the round's total potential
// drop decomposes into per-edge drops ΔΦ_k.
//
// Lemma 1 certifies each term:   ΔΦ_k ≥ w_ij · |ℓ_i^{t-1} − ℓ_j^{t-1}|
// (for the discrete variant with w replaced by ⌊w⌋).  Summing and
// invoking the Courant–Fischer bound (Lemma 3) yields the per-round drop
// Φ(L^{t-1}) − Φ(L^t) ≥ (λ2/4δ)·Φ(L^{t-1}) of Theorem 4.
//
// sequentialize_round() produces the full activation ledger with the
// certificate checked per edge; it is used by tests (property: no
// instance violates Lemma 1), by bench_seq_ledger (E1) and by
// bench_seq_vs_concurrent (E4), which also compares against
// greedy_sequential_round() — the "true" sequential algorithm that
// re-evaluates the transfer from the *current* state before each
// activation, quantifying how much the concurrency actually costs.
#pragma once

#include <cstdint>
#include <vector>

#include "lb/core/diffusion.hpp"
#include "lb/graph/graph.hpp"

namespace lb::core {

/// One edge activation in the sequentialized round.
struct EdgeActivation {
  graph::Edge edge;
  double weight = 0.0;        ///< transfer amount actually moved (⌊w⌋ for discrete)
  double raw_weight = 0.0;    ///< unrounded w_ij from the snapshot
  double start_difference = 0.0;  ///< |ℓ_i^{t-1} − ℓ_j^{t-1}| (snapshot)
  double potential_drop = 0.0;    ///< ΔΦ_k from this activation
  double lemma1_bound = 0.0;      ///< weight · start_difference
  bool certified = false;         ///< potential_drop >= lemma1_bound − slack
};

struct SequentialLedger {
  std::vector<EdgeActivation> activations;  ///< ascending-weight order
  double initial_potential = 0.0;
  double final_potential = 0.0;
  /// Σ_k ΔΦ_k; equals initial − final up to rounding.
  double total_drop = 0.0;
  /// The Lemma 2 lower bound (1/4δ)·Σ_E (ℓ_i − ℓ_j)² for this round
  /// (continuous rule; reported for reference in the discrete case too).
  double lemma2_bound = 0.0;
  /// All per-edge certificates hold.
  bool all_certified = true;
};

/// Decompose one Algorithm-1 round into ascending-weight edge activations
/// with per-edge Lemma-1 certificates.  `load` is the round-start state
/// and is not modified.  The configuration must match the balancer whose
/// round is being audited (factors, rule).
template <class T>
SequentialLedger sequentialize_round(const graph::Graph& g, const std::vector<T>& load,
                                     const DiffusionConfig& cfg = {});

struct GreedySequentialResult {
  double initial_potential = 0.0;
  double final_potential = 0.0;
  double total_drop = 0.0;
  std::size_t active_edges = 0;
};

/// The comparator "sequential algorithm": visit edges in ascending order
/// of the snapshot weights, but compute each transfer from the *current*
/// loads — i.e. no concurrency at all.  Modifies `load` in place.
template <class T>
GreedySequentialResult greedy_sequential_round(const graph::Graph& g,
                                               std::vector<T>& load,
                                               const DiffusionConfig& cfg = {});

}  // namespace lb::core
