#include "lb/core/engine.hpp"

#include "lb/check/invariants.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/core/round_context.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/util/timer.hpp"
#include "lb/workload/stream.hpp"

namespace lb::core {

template <class T>
RunResult run(Balancer<T>& balancer, graph::GraphSequence& seq, std::vector<T>& load,
              const EngineConfig& config, RunArena<T>& arena) {
  LB_ASSERT_MSG(load.size() == seq.num_nodes(), "load vector does not match network");
  util::Rng rng(config.seed);
  const util::Stopwatch run_watch;

  // Run isolation: trajectory state from a previous run (SOS's L^{t-1},
  // OPS's schedule position, ...) must not leak into this one.  The
  // arena's blocked-round snapshot cache is tied to a specific load
  // vector's values, so a new run (possibly reusing a caller-owned
  // arena) always starts with it invalid.
  balancer.on_run_begin();
  arena.invalidate_snapshot();

  // Open-system traffic (DESIGN.md §11): the stream rides the config
  // type-erased; re-type it here and replay it from round 1.  Every
  // stream-touching branch below is guarded on `stream != nullptr`, so a
  // closed-system run executes the exact pre-stream code path.
  workload::Stream<T>* stream = nullptr;
  if (config.stream != nullptr) {
    stream = dynamic_cast<workload::Stream<T>*>(config.stream);
    LB_ASSERT_MSG(stream != nullptr,
                  "EngineConfig::stream scalar type does not match the run");
    stream->reset();
  }

  const bool fused = config.metrics == MetricsPath::kFusedParallel;
  util::ThreadPool* pool =
      config.pool != nullptr ? config.pool : &util::ThreadPool::global();

  // Invariant checking (DESIGN.md §8): opt-in via config or LB_CHECK=1.
  // Everything below under `checking` only *reads* engine state, so the
  // trajectory is bit-identical with checks on or off.
  const bool checking = config.check_invariants || check::env_enabled();
  check::ConservationBaseline<T> baseline;
  if (checking) baseline = check::conservation_baseline(load);

  RunResult result;
  result.open_system = stream != nullptr;

  // Run-start summary.  The fused path measures every later Φ against a
  // running average: with no stream the total is invariant under every
  // balancer (exactly for Tokens, up to float drift for Real), the
  // paper's Φ is stated against that fixed ℓ̄, and `run_average` never
  // moves; with a stream attached it is re-derived from the applied
  // ledger whenever the total changes.  For n <= kSummaryChunkWidth the
  // parallel summary is bit-identical to the sequential one.
  const LoadSummary<T> initial =
      fused ? summarize_parallel(load, pool) : summarize(load);
  double run_average = initial.average;
  // Open-system ledger: the running total behind the Φ baseline and the
  // cumulative applied net for the ledgered conservation check.  Both
  // come from the central sequential tally (stream.hpp), so every
  // substrate derives the same values.
  T running_total = initial.total;
  T net_stream{};
  result.initial_potential = initial.potential;

  if (stream == nullptr && result.initial_potential <= config.target_potential) {
    result.reached_target = true;
    result.final_potential = result.initial_potential;
    result.final_discrepancy = initial.discrepancy;
    result.total_seconds = run_watch.elapsed_seconds();
    return result;
  }

  if (config.record_trace) {
    result.trace.reserve(std::min<std::size_t>(config.max_rounds, 4096));
    result.trace.set_open_system(stream != nullptr);
  }
  // Without a trace only Φ matters per round; min/max are computed once
  // at run end for the terminal discrepancy.  An attached stream forces
  // the full summary: the steady-state reducer needs per-round extrema.
  const SummaryMode mode = (config.record_trace || stream != nullptr)
                               ? SummaryMode::kFull
                               : SummaryMode::kPotentialOnly;

  metrics::SteadyState steady;

  const auto finish = [&](RunResult& r) {
    if (fused && !config.record_trace && stream == nullptr) {
      r.final_discrepancy =
          summarize_deterministic(load, run_average, pool, SummaryMode::kExtremaOnly,
                                  arena.summary_parts())
              .discrepancy;
    }
    if (stream != nullptr) r.steady = steady.finalize();
    r.total_seconds = run_watch.elapsed_seconds();
  };

  std::size_t consecutive_idle = 0;
  // Topology epoch = (base revision, mask revision): static rounds move
  // neither, materializing sequences mint a new base revision per
  // rebuild, masked sequences keep the base and bump only the mask.
  std::uint64_t base_epoch = 0;  // no frame seen yet (revisions are nonzero)
  std::uint64_t mask_epoch = 0;
  for (std::size_t round = 1; round <= config.max_rounds; ++round) {
    const graph::TopologyFrame& frame = seq.frame_at(round);
    // The context's shared flow ledger re-keys itself on the base
    // revision; the balancer hook remains for private per-graph caches.
    bool epoch_changed = false;
    if (frame.base_revision() != base_epoch || frame.mask_revision() != mask_epoch) {
      balancer.on_topology_changed();
      base_epoch = frame.base_revision();
      mask_epoch = frame.mask_revision();
      epoch_changed = true;
      if (checking && frame.mask() != nullptr) {
        // Mask commit: recount alive bitmap vs the incremental summaries.
        check::check_mask(*frame.mask());
      }
    }

    // The stream delta lands at a fixed point in the round: after the
    // frame/epoch bookkeeping, before the balancer plans any flow — the
    // balancer always reacts to traffic that is already on the nodes.
    workload::AppliedStream<T> applied{};
    bool delta_applied = false;
    if (stream != nullptr) {
      const workload::StreamDelta<T>& delta = stream->delta_at(round);
      if (!delta.empty()) {
        applied = workload::tally_stream_delta(delta, load);
        workload::apply_stream_delta(delta, load);
        arena.invalidate_snapshot();  // blocked-round load cache is stale
        delta_applied = true;
        const T net = applied.net();
        if (net != T{}) {
          // Re-derive the Φ/K baseline only when the total actually
          // moved, so empty-net rounds keep the closed-system bytes.
          running_total += net;
          run_average = static_cast<double>(running_total) /
                        static_cast<double>(load.size());
        }
        net_stream += net;
        result.stream_arrivals += static_cast<double>(applied.arrivals);
        result.stream_departures += static_cast<double>(applied.departures);
      }
    }

    RoundContext<T> ctx(frame, rng, pool, arena);
    ctx.set_spectral_cache(config.spectral_cache);
    if (fused) ctx.request_summary(mode, run_average);

    util::Stopwatch watch;
    const StepStats stats = balancer.step(ctx, load);
    const double step_us = watch.elapsed_seconds() * 1e6;
    ++result.rounds;

    // Post-round observability: the balancer's fused summary when it
    // published one, the standalone deterministic reduction otherwise
    // (bit-identical either way), or the sequential oracle.
    watch.reset();
    LoadSummary<T> summary;
    if (!fused) {
      summary = summarize(load);
    } else if (ctx.has_summary()) {
      summary = ctx.summary();
    } else {
      summary = summarize_deterministic(load, run_average, pool, mode,
                                        arena.summary_parts());
    }
    const double metrics_us = watch.elapsed_seconds() * 1e6;
    result.step_seconds += step_us * 1e-6;
    result.metrics_seconds += metrics_us * 1e-6;

    if (checking) {
      check::check_conservation(baseline, load, round, stats.links, "engine",
                                net_stream);
      // The shared ledger re-keys lazily inside balancers and its CSR
      // only moves on a base rebuild, so verify it on epoch-change
      // rounds (round 1 included) rather than every round.
      if ((epoch_changed || round == 1) && arena.ledger().valid_for(frame.base())) {
        check::check_ledger(arena.ledger(), frame.base());
      }
    }

    if (stream != nullptr) {
      steady.observe(round, summary.potential, summary.discrepancy,
                     static_cast<double>(summary.max),
                     static_cast<double>(applied.arrivals),
                     static_cast<double>(applied.departures));
    }

    if (config.record_trace) {
      RoundRecord rec{round, summary.potential, summary.discrepancy,
                      stats.transferred, stats.active_edges, step_us,
                      metrics_us};
      if (stream != nullptr) {
        rec.arrivals = static_cast<double>(applied.arrivals);
        rec.departures = static_cast<double>(applied.departures);
        rec.net_load = static_cast<double>(net_stream);
      }
      result.trace.add(rec);
      result.final_discrepancy = summary.discrepancy;
    } else if (!fused || stream != nullptr) {
      result.final_discrepancy = summary.discrepancy;
    }
    result.final_potential = summary.potential;

    if (summary.potential <= config.target_potential) {
      result.reached_target = true;
      finish(result);
      return result;
    }
    // A round where traffic landed is never idle, even if the balancer
    // chose not to move anything — the stall exit is for settled closed
    // systems and drained streams, not for live churn.
    if (stats.transferred == 0.0 && !delta_applied) {
      ++consecutive_idle;
      if (config.stall_rounds > 0 && consecutive_idle >= config.stall_rounds) {
        result.stalled = true;
        finish(result);
        return result;
      }
    } else {
      consecutive_idle = 0;
    }
  }
  finish(result);
  return result;
}

template <class T>
RunResult run(Balancer<T>& balancer, graph::GraphSequence& seq, std::vector<T>& load,
              const EngineConfig& config) {
  RunArena<T> arena;
  return run(balancer, seq, load, config, arena);
}

template <class T>
RunResult run_static(Balancer<T>& balancer, const graph::Graph& g, std::vector<T>& load,
                     const EngineConfig& config) {
  auto seq = graph::make_static_sequence(g);
  return run(balancer, *seq, load, config);
}

#define LB_INSTANTIATE(T)                                                           \
  template RunResult run<T>(Balancer<T>&, graph::GraphSequence&, std::vector<T>&,   \
                            const EngineConfig&, RunArena<T>&);                     \
  template RunResult run<T>(Balancer<T>&, graph::GraphSequence&, std::vector<T>&,   \
                            const EngineConfig&);                                   \
  template RunResult run_static<T>(Balancer<T>&, const graph::Graph&,               \
                                   std::vector<T>&, const EngineConfig&);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::core
