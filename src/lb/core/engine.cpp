#include "lb/core/engine.hpp"

#include "lb/core/load.hpp"
#include "lb/util/assert.hpp"

namespace lb::core {

template <class T>
RunResult run(Balancer<T>& balancer, graph::GraphSequence& seq, std::vector<T>& load,
              const EngineConfig& config) {
  LB_ASSERT_MSG(load.size() == seq.num_nodes(), "load vector does not match network");
  util::Rng rng(config.seed);

  RunResult result;
  result.initial_potential = potential(load);
  if (config.record_trace) result.trace.reserve(std::min<std::size_t>(config.max_rounds, 4096));

  if (result.initial_potential <= config.target_potential) {
    result.reached_target = true;
    result.final_potential = result.initial_potential;
    result.final_discrepancy = discrepancy(load);
    return result;
  }

  std::size_t consecutive_idle = 0;
  std::uint64_t topology_epoch = 0;  // no graph seen yet
  for (std::size_t round = 1; round <= config.max_rounds; ++round) {
    const graph::Graph& g = seq.at_round(round);
    // Dynamic sequences rebuild their current graph per round (often at
    // the same address); the revision id is the reliable change signal.
    // Notify the balancer so cached per-graph views (the flow ledger's
    // CSR) are dropped before they can be read against a stale topology.
    if (g.revision() != topology_epoch) {
      balancer.on_topology_changed();
      topology_epoch = g.revision();
    }
    const StepStats stats = balancer.step(g, load, rng);
    ++result.rounds;

    const LoadSummary<T> summary = summarize(load);
    if (config.record_trace) {
      result.trace.add(RoundRecord{round, summary.potential, summary.discrepancy,
                                   stats.transferred, stats.active_edges});
    }
    result.final_potential = summary.potential;
    result.final_discrepancy = summary.discrepancy;

    if (summary.potential <= config.target_potential) {
      result.reached_target = true;
      return result;
    }
    if (stats.transferred == 0.0) {
      ++consecutive_idle;
      if (config.stall_rounds > 0 && consecutive_idle >= config.stall_rounds) {
        result.stalled = true;
        return result;
      }
    } else {
      consecutive_idle = 0;
    }
  }
  return result;
}

template <class T>
RunResult run_static(Balancer<T>& balancer, const graph::Graph& g, std::vector<T>& load,
                     const EngineConfig& config) {
  auto seq = graph::make_static_sequence(g);
  return run(balancer, *seq, load, config);
}

#define LB_INSTANTIATE(T)                                                           \
  template RunResult run<T>(Balancer<T>&, graph::GraphSequence&, std::vector<T>&,   \
                            const EngineConfig&);                                   \
  template RunResult run_static<T>(Balancer<T>&, const graph::Graph&,               \
                                   std::vector<T>&, const EngineConfig&);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::core
