#include "lb/core/load.hpp"

#include <algorithm>

#include "lb/util/assert.hpp"

namespace lb::core {

template <class T>
T total_load(const std::vector<T>& load) {
  T acc{};
  for (const T& v : load) acc += v;
  return acc;
}

template <class T>
double average_load(const std::vector<T>& load) {
  if (load.empty()) return 0.0;
  return static_cast<double>(total_load(load)) / static_cast<double>(load.size());
}

template <class T>
double potential(const std::vector<T>& load) {
  const double avg = average_load(load);
  double acc = 0.0;
  for (const T& v : load) {
    const double d = static_cast<double>(v) - avg;
    acc += d * d;
  }
  return acc;
}

template <class T>
double discrepancy(const std::vector<T>& load) {
  if (load.empty()) return 0.0;
  const auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  return static_cast<double>(*mx) - static_cast<double>(*mn);
}

template <class T>
LoadSummary<T> summarize(const std::vector<T>& load) {
  LoadSummary<T> s;
  if (load.empty()) return s;
  s.total = total_load(load);
  s.average = static_cast<double>(s.total) / static_cast<double>(load.size());
  s.min = s.max = load.front();
  double acc = 0.0;
  for (const T& v : load) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    const double d = static_cast<double>(v) - s.average;
    acc += d * d;
  }
  s.potential = acc;
  s.discrepancy = static_cast<double>(s.max) - static_cast<double>(s.min);
  return s;
}

template <class T>
double pairwise_square_sum(const std::vector<T>& load) {
  // Σ_i Σ_j (ℓ_i − ℓ_j)² = 2n Σ ℓ_i² − 2 (Σ ℓ_i)², evaluated directly.
  const double n = static_cast<double>(load.size());
  double sum = 0.0, sum_sq = 0.0;
  for (const T& v : load) {
    const double x = static_cast<double>(v);
    sum += x;
    sum_sq += x * x;
  }
  return 2.0 * n * sum_sq - 2.0 * sum * sum;
}

template <class T>
double pairwise_square_sum_naive(const std::vector<T>& load) {
  double acc = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    for (std::size_t j = 0; j < load.size(); ++j) {
      const double d = static_cast<double>(load[i]) - static_cast<double>(load[j]);
      acc += d * d;
    }
  }
  return acc;
}

template <class T>
double edge_difference_sum(const graph::Graph& g, const std::vector<T>& load) {
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  double acc = 0.0;
  for (const graph::Edge& e : g.edges()) {
    const double d = static_cast<double>(load[e.u]) - static_cast<double>(load[e.v]);
    acc += d * d;
  }
  return acc;
}

template <class T>
bool all_non_negative(const std::vector<T>& load) {
  for (const T& v : load) {
    if (v < T{}) return false;
  }
  return true;
}

// Explicit instantiations for the two scalar models of the paper.
#define LB_INSTANTIATE(T)                                                   \
  template T total_load<T>(const std::vector<T>&);                          \
  template double average_load<T>(const std::vector<T>&);                   \
  template double potential<T>(const std::vector<T>&);                      \
  template double discrepancy<T>(const std::vector<T>&);                    \
  template LoadSummary<T> summarize<T>(const std::vector<T>&);              \
  template double pairwise_square_sum<T>(const std::vector<T>&);            \
  template double pairwise_square_sum_naive<T>(const std::vector<T>&);      \
  template double edge_difference_sum<T>(const graph::Graph&, const std::vector<T>&); \
  template bool all_non_negative<T>(const std::vector<T>&);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::core
