// Dimension-exchange baseline: Ghosh & Muthukrishnan's random-matching
// protocol (SPAA'94, [12]) — the algorithm whose potential argument the
// paper adapts, and whose convergence it claims to beat by a constant
// factor thanks to concurrency.
//
// Each round a matching of the network is selected; every matched pair
// balances completely: the richer endpoint sends (ℓ_i − ℓ_j)/2
// (⌊·⌋ for the discrete variant, as in §4 of [12]).  The matching is
// expressed as a sparse flow vector and applied through the shared
// flow-ledger kernel (core/flow_ledger.hpp).
#pragma once

#include <memory>

#include "lb/core/algorithm.hpp"
#include "lb/core/flow_ledger.hpp"
#include "lb/graph/matching.hpp"

namespace lb::core {

enum class MatchingStrategy {
  /// The local protocol of [12]: Pr[e ∈ M] >= 1/(8δ).
  kGhoshMuthukrishnan,
  /// Greedy maximal matching over a random edge order (denser matchings,
  /// still uniform-ish; the "best case" for dimension exchange).
  kRandomMaximal,
  /// Round-robin over hypercube dimensions (classic dimension exchange;
  /// only valid on hypercubes — asserts otherwise).
  kHypercubeRoundRobin,
};

template <class T>
class DimensionExchange final : public Balancer<T> {
 public:
  explicit DimensionExchange(
      MatchingStrategy strategy = MatchingStrategy::kGhoshMuthukrishnan,
      ApplyPath apply = ApplyPath::kLedger);

  std::string name() const override;
  StepStats step(const graph::Graph& g, std::vector<T>& load, util::Rng& rng) override;
  void on_topology_changed() override;

  MatchingStrategy strategy() const { return strategy_; }

 private:
  MatchingStrategy strategy_;
  ApplyPath apply_;
  std::size_t round_ = 0;  // for round-robin colour selection
  std::vector<double> flows_;          // all-zero between rounds
  std::vector<std::uint32_t> matched_; // edge ids to re-zero after a gather
  FlowLedger ledger_;
};

using ContinuousDimensionExchange = DimensionExchange<double>;
using DiscreteDimensionExchange = DimensionExchange<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_dimension_exchange_continuous(
    MatchingStrategy strategy = MatchingStrategy::kGhoshMuthukrishnan);
std::unique_ptr<DiscreteBalancer> make_dimension_exchange_discrete(
    MatchingStrategy strategy = MatchingStrategy::kGhoshMuthukrishnan);

}  // namespace lb::core
