// Dimension-exchange baseline: Ghosh & Muthukrishnan's random-matching
// protocol (SPAA'94, [12]) — the algorithm whose potential argument the
// paper adapts, and whose convergence it claims to beat by a constant
// factor thanks to concurrency.
//
// Each round a matching of the network is selected; every matched pair
// balances completely: the richer endpoint sends (ℓ_i − ℓ_j)/2
// (⌊·⌋ for the discrete variant, as in §4 of [12]).  The matching is
// expressed as a sparse flow vector and applied through the shared
// flow-ledger kernel (core/flow_ledger.hpp).
#pragma once

#include <memory>

#include "lb/core/algorithm.hpp"
#include "lb/core/flow_ledger.hpp"
#include "lb/graph/matching.hpp"

namespace lb::core {

enum class MatchingStrategy {
  /// The local protocol of [12]: Pr[e ∈ M] >= 1/(8δ).
  kGhoshMuthukrishnan,
  /// Greedy maximal matching over a random edge order (denser matchings,
  /// still uniform-ish; the "best case" for dimension exchange).
  kRandomMaximal,
  /// Round-robin over hypercube dimensions (classic dimension exchange;
  /// only valid on hypercubes — asserts otherwise).
  kHypercubeRoundRobin,
};

template <class T>
class DimensionExchange final : public Balancer<T> {
 public:
  explicit DimensionExchange(
      MatchingStrategy strategy = MatchingStrategy::kGhoshMuthukrishnan,
      ApplyPath apply = ApplyPath::kLedger);

  std::string name() const override;
  using Balancer<T>::step;
  StepStats step(RoundContext<T>& ctx, std::vector<T>& load) override;

  /// Sharded replay (flow_program.hpp): draws the round's matching from
  /// ctx.rng() exactly as step() would (same stream position), exports
  /// it as base edge ids in matching order, and describes the matched
  /// transfer ±⌊|ℓ_u − ℓ_v|/2⌋ as the flow function.  The kEdgeSweep
  /// ablation configuration is not planned.
  bool plan_round(RoundContext<T>& ctx, FlowProgram<T>& program) override;

  MatchingStrategy strategy() const { return strategy_; }

  /// Run isolation: restart the round-robin dimension schedule.  Only
  /// kHypercubeRoundRobin carries trajectory state between rounds; the
  /// randomized strategies draw everything from the context's Rng.
  void on_run_begin() override { round_ = 0; }

 private:
  MatchingStrategy strategy_;
  ApplyPath apply_;
  std::size_t round_ = 0;  // for round-robin colour selection
  // Private flow buffer (not the arena's): the gather path relies on the
  // all-zero-between-rounds invariant, which a shared buffer written by
  // compute_edge_flows would break.
  std::vector<double> flows_;
  std::vector<std::uint32_t> matched_; // edge ids to re-zero after a gather
};

using ContinuousDimensionExchange = DimensionExchange<double>;
using DiscreteDimensionExchange = DimensionExchange<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_dimension_exchange_continuous(
    MatchingStrategy strategy = MatchingStrategy::kGhoshMuthukrishnan);
std::unique_ptr<DiscreteBalancer> make_dimension_exchange_discrete(
    MatchingStrategy strategy = MatchingStrategy::kGhoshMuthukrishnan);

}  // namespace lb::core
