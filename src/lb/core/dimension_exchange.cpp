#include "lb/core/dimension_exchange.hpp"

#include <cmath>

#include "lb/util/assert.hpp"

namespace lb::core {

namespace {

std::size_t hypercube_dimensions(const graph::Graph& g) {
  std::size_t d = 0;
  while ((std::size_t{1} << d) < g.num_nodes()) ++d;
  LB_ASSERT_MSG((std::size_t{1} << d) == g.num_nodes(),
                "round-robin matching requires a 2^d-node hypercube");
  return d;
}

}  // namespace

template <class T>
DimensionExchange<T>::DimensionExchange(MatchingStrategy strategy)
    : strategy_(strategy) {}

template <class T>
std::string DimensionExchange<T>::name() const {
  const char* base = std::is_integral_v<T> ? "dimexch-disc" : "dimexch-cont";
  switch (strategy_) {
    case MatchingStrategy::kGhoshMuthukrishnan: return std::string(base) + "(gm)";
    case MatchingStrategy::kRandomMaximal: return std::string(base) + "(maximal)";
    case MatchingStrategy::kHypercubeRoundRobin: return std::string(base) + "(rr)";
  }
  return base;
}

template <class T>
StepStats DimensionExchange<T>::step(const graph::Graph& g, std::vector<T>& load,
                                     util::Rng& rng) {
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  graph::Matching m;
  switch (strategy_) {
    case MatchingStrategy::kGhoshMuthukrishnan:
      m = graph::gm_random_matching(g, rng);
      break;
    case MatchingStrategy::kRandomMaximal:
      m = graph::random_maximal_matching(g, rng);
      break;
    case MatchingStrategy::kHypercubeRoundRobin: {
      const std::size_t d = hypercube_dimensions(g);
      m = graph::hypercube_dimension_matching(g, d, round_ % d);
      break;
    }
  }
  ++round_;

  StepStats stats;
  stats.links = m.size();
  for (const graph::Edge& e : m) {
    const double diff =
        static_cast<double>(load[e.u]) - static_cast<double>(load[e.v]);
    if (diff == 0.0) continue;
    T amount;
    if constexpr (std::is_integral_v<T>) {
      amount = static_cast<T>(std::floor(std::fabs(diff) / 2.0));
    } else {
      amount = static_cast<T>(std::fabs(diff) / 2.0);
    }
    if (amount == T{}) continue;
    if (diff > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
  return stats;
}

template class DimensionExchange<double>;
template class DimensionExchange<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_dimension_exchange_continuous(
    MatchingStrategy strategy) {
  return std::make_unique<ContinuousDimensionExchange>(strategy);
}

std::unique_ptr<DiscreteBalancer> make_dimension_exchange_discrete(
    MatchingStrategy strategy) {
  return std::make_unique<DiscreteDimensionExchange>(strategy);
}

}  // namespace lb::core
