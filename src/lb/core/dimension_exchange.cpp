#include "lb/core/dimension_exchange.hpp"

#include <cmath>

#include "lb/core/flow_program.hpp"
#include "lb/core/round_context.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

namespace {

std::size_t hypercube_dimensions(const graph::Graph& g) {
  std::size_t d = 0;
  while ((std::size_t{1} << d) < g.num_nodes()) ++d;
  LB_ASSERT_MSG((std::size_t{1} << d) == g.num_nodes(),
                "round-robin matching requires a 2^d-node hypercube");
  return d;
}

}  // namespace

template <class T>
DimensionExchange<T>::DimensionExchange(MatchingStrategy strategy, ApplyPath apply)
    : strategy_(strategy), apply_(apply) {}

template <class T>
std::string DimensionExchange<T>::name() const {
  const char* base = std::is_integral_v<T> ? "dimexch-disc" : "dimexch-cont";
  switch (strategy_) {
    case MatchingStrategy::kGhoshMuthukrishnan: return std::string(base) + "(gm)";
    case MatchingStrategy::kRandomMaximal: return std::string(base) + "(maximal)";
    case MatchingStrategy::kHypercubeRoundRobin: return std::string(base) + "(rr)";
  }
  return base;
}

template <class T>
StepStats DimensionExchange<T>::step(RoundContext<T>& ctx, std::vector<T>& load) {
  const graph::Graph& g = ctx.graph();
  util::Rng& rng = ctx.rng();
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  graph::Matching m;
  switch (strategy_) {
    case MatchingStrategy::kGhoshMuthukrishnan:
      m = graph::gm_random_matching(g, rng);
      break;
    case MatchingStrategy::kRandomMaximal:
      m = graph::random_maximal_matching(g, rng);
      break;
    case MatchingStrategy::kHypercubeRoundRobin: {
      const std::size_t d = hypercube_dimensions(g);
      m = graph::hypercube_dimension_matching(g, d, round_ % d);
      break;
    }
  }
  ++round_;

  // A matching touches each node at most once, so matched-pair transfers
  // are order-independent: the direct seed loop and the node-parallel
  // ledger gather land on identical loads.  The gather walks every node
  // row (O(n + 2m)) to apply an O(|matching|) sparse update, so it is
  // only engaged when the matching actually covers a large fraction of
  // the edge list AND multiple workers can share the walk; sparse
  // matchings (hypercube round-robin: |M|/m = 1/d) stay on the direct
  // O(|matching|) loop at any thread count.  Stats accumulate in matching
  // order on every path, so StepStats is identical too.
  util::ThreadPool* pool = ctx.pool();
  const bool use_gather = apply_ == ApplyPath::kLedger && pool != nullptr &&
                          pool->size() > 1 && 2 * m.size() >= g.num_edges();
  StepStats stats;
  stats.links = m.size();
  if (use_gather) {
    if (flows_.size() != g.num_edges()) flows_.assign(g.num_edges(), 0.0);
    matched_.clear();
  }
  for (const graph::Edge& e : m) {
    const double diff =
        static_cast<double>(load[e.u]) - static_cast<double>(load[e.v]);
    if (diff == 0.0) continue;
    T amount;
    if constexpr (std::is_integral_v<T>) {
      amount = static_cast<T>(std::floor(std::fabs(diff) / 2.0));
    } else {
      amount = static_cast<T>(std::fabs(diff) / 2.0);
    }
    if (amount == T{}) continue;
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
    if (use_gather) {
      const std::size_t k = g.edge_index(e.u, e.v);
      LB_DEBUG_ASSERT(k < g.num_edges());
      flows_[k] = diff > 0.0 ? static_cast<double>(amount)
                             : -static_cast<double>(amount);
      matched_.push_back(static_cast<std::uint32_t>(k));
    } else if (diff > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
  }
  if (use_gather) {
    apply_flows_observed(ctx, ctx.ledger(), flows_, load, pool);
    // Re-zero only the matched entries so the next round starts from an
    // all-zero vector without an O(m) refill.
    for (const std::uint32_t k : matched_) flows_[k] = 0.0;
  }
  return stats;
}

template <class T>
bool DimensionExchange<T>::plan_round(RoundContext<T>& ctx, FlowProgram<T>& program) {
  if (apply_ != ApplyPath::kLedger) return false;
  // Identical matching draw to step(): same view (materialized on masked
  // rounds), same RNG stream, same round-robin counter advance.
  const graph::Graph& g = ctx.graph();
  util::Rng& rng = ctx.rng();
  graph::Matching m;
  switch (strategy_) {
    case MatchingStrategy::kGhoshMuthukrishnan:
      m = graph::gm_random_matching(g, rng);
      break;
    case MatchingStrategy::kRandomMaximal:
      m = graph::random_maximal_matching(g, rng);
      break;
    case MatchingStrategy::kHypercubeRoundRobin: {
      const std::size_t d = hypercube_dimensions(g);
      m = graph::hypercube_dimension_matching(g, d, round_ % d);
      break;
    }
  }
  ++round_;

  // Export as BASE edge ids (a masked view's edges are a subset of the
  // base list with identical endpoints), preserving matching order so
  // the replayed stats accumulate exactly like step()'s loop.  The
  // transfer itself is orientation-symmetric (richer endpoint sends), so
  // canonical endpoint order is equivalent to the matching's own.
  const graph::Graph& base = ctx.frame().base();
  program.support = FlowProgram<T>::Support::kMatching;
  program.links = m.size();
  program.matched.clear();
  program.matched.reserve(m.size());
  for (const graph::Edge& e : m) {
    const std::size_t k = base.edge_index(e.u, e.v);
    LB_DEBUG_ASSERT(k < base.num_edges());
    program.matched.push_back(static_cast<std::uint32_t>(k));
  }
  program.flow = [](std::size_t, const graph::Edge&, double lu, double lv) {
    const double diff = lu - lv;
    if (diff == 0.0) return 0.0;
    double amount;
    if constexpr (std::is_integral_v<T>) {
      amount = std::floor(std::fabs(diff) / 2.0);
    } else {
      amount = std::fabs(diff) / 2.0;
    }
    if (amount == 0.0) return 0.0;
    return diff > 0.0 ? amount : -amount;
  };
  return true;
}

template class DimensionExchange<double>;
template class DimensionExchange<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_dimension_exchange_continuous(
    MatchingStrategy strategy) {
  return std::make_unique<ContinuousDimensionExchange>(strategy);
}

std::unique_ptr<DiscreteBalancer> make_dimension_exchange_discrete(
    MatchingStrategy strategy) {
  return std::make_unique<DiscreteDimensionExchange>(strategy);
}

}  // namespace lb::core
