// Second-order scheme (SOS) of Muthukrishnan, Ghosh & Schultz [15]:
//
//   L^1     = M·L^0
//   L^{t+1} = β·M·L^t + (1 − β)·L^{t-1},   1 <= β < 2.
//
// With the optimal β = 2 / (1 + sqrt(1 − γ²)) (γ the second-largest
// |eigenvalue| of M) the scheme converges like the Chebyshev-accelerated
// iteration — asymptotically much faster than FOS on slowly-mixing
// topologies.  Continuous only: the affine combination conserves total
// load but produces fractional (and possibly transiently negative)
// intermediate loads, exactly as in [15].
//
// The M·L product runs on the shared flow-ledger kernel
// (core/flow_ledger.hpp), so every phase of a round — flow computation,
// apply, and the β-combination — is parallel and deterministic across
// thread counts.
#pragma once

#include <memory>
#include <optional>

#include "lb/core/algorithm.hpp"
#include "lb/core/flow_ledger.hpp"

namespace lb::core {

class SecondOrderScheme final : public Balancer<double> {
 public:
  /// If `beta` is nullopt it is computed on first use from the graph's
  /// spectrum via diffusion_gamma (dense path; intended for n <= 4096).
  explicit SecondOrderScheme(std::optional<double> beta = std::nullopt,
                             bool parallel = true,
                             ApplyPath apply = ApplyPath::kLedger);

  std::string name() const override { return "sos"; }
  using Balancer<double>::step;
  StepStats step(RoundContext<double>& ctx, std::vector<double>& load) override;

  /// Sharded replay (flow_program.hpp): the FOS edge flow plus a per-node
  /// post combine carrying the β-recurrence — plain FOS on the first
  /// round (recording L^{t-1}), β·(M·L)_u + (1−β)·prev otherwise, with
  /// the exact per-node expression step() evaluates.  prev_ is per-node
  /// state, so the post closure is safe to run from any domain.
  bool plan_round(RoundContext<double>& ctx,
                  FlowProgram<double>& program) override;

  /// Run isolation: forget L^{t-1} (the next step is a plain FOS round
  /// again, as for a fresh instance) and, when β was auto-computed,
  /// forget it too so a run on a different graph re-derives its own
  /// optimal β exactly as a fresh balancer would.
  void on_run_begin() override {
    have_prev_ = false;
    beta_ = configured_beta_;
  }

  double beta() const { return beta_.value_or(0.0); }

  /// Optimal β for a given γ ∈ [0, 1).
  static double optimal_beta(double gamma);

 private:
  std::optional<double> configured_beta_;  // constructor argument, verbatim
  std::optional<double> beta_;             // in effect (auto-filled on first step)
  bool parallel_;
  ApplyPath apply_;
  std::vector<double> prev_;     // L^{t-1} — algorithm state, not scratch
  std::vector<double> scratch_;  // M·L^t
  bool have_prev_ = false;
};

std::unique_ptr<ContinuousBalancer> make_sos(std::optional<double> beta = std::nullopt);

}  // namespace lb::core
