// Algorithm 1 of the paper: concurrent neighbourhood diffusion.
//
//   for every node i in parallel:
//     for every neighbour j:
//       if ℓ_i > ℓ_j: send (ℓ_i − ℓ_j) / (4·max(d_i, d_j)) from i to j
//
// The continuous variant sends the exact fraction; the discrete variant
// sends ⌊·⌋ tokens (§4.2).  All amounts are computed from the round-start
// snapshot and applied together, which is exactly the concurrency the
// paper's sequentialization technique analyzes.
//
// The denominator is configurable for two reasons:
//   * DenominatorRule::kDegreePlusOne turns the same flow computation into
//     the classic first-order scheme of Cybenko [3] (α = 1/(δ+1)) —
//     including its natural discrete rounding, as studied in [15];
//   * the bench ablation varies the safety factor (2/4/8·max) to show why
//     the paper divides by 4·max(d_i,d_j): smaller denominators let load
//     overshoot and bounce ("ping-pong"), larger ones slow convergence.
#pragma once

#include <algorithm>
#include <memory>

#include "lb/core/algorithm.hpp"
#include "lb/core/flow_ledger.hpp"

namespace lb::core {

enum class DenominatorRule {
  /// factor · max(d_i, d_j) — the paper's rule with factor 4.
  kFactorTimesMaxDegree,
  /// δ + 1 globally (Cybenko's first-order scheme denominator).
  kDegreePlusOne,
};

struct DiffusionConfig {
  DenominatorRule rule = DenominatorRule::kFactorTimesMaxDegree;
  /// The safety factor in front of max(d_i, d_j); the paper uses 4.
  double factor = 4.0;
  /// Compute per-edge flows and the ledger apply on the global thread pool.
  bool parallel = true;
  /// Apply phase implementation: the parallel node-centric ledger
  /// (default) or the seed's sequential edge sweep (ablation/oracle).
  ApplyPath apply = ApplyPath::kLedger;
};

/// Per-edge flow magnitude |ℓ_i − ℓ_j| / denom with the configured rule
/// (before rounding).  Exposed for the sequentialization toolkit, which
/// must reproduce Algorithm 1's weights exactly.
double diffusion_edge_weight(const graph::Graph& g, graph::NodeId i, graph::NodeId j,
                             double load_i, double load_j, const DiffusionConfig& cfg);

/// Algorithm-1 denominator on a masked frame — the single definition the
/// masked fast paths (plain and async diffusion) share, computing the
/// identical double diffusion_edge_weight derives from a materialized
/// subgraph's degrees.  `degree_plus_one` is the precomputed
/// frame.max_degree()+1 so the per-edge call stays branch+lookup only.
inline double masked_diffusion_denominator(const graph::TopologyFrame& frame,
                                           const graph::Edge& e,
                                           DenominatorRule rule, double factor,
                                           double degree_plus_one) {
  switch (rule) {
    case DenominatorRule::kFactorTimesMaxDegree:
      return factor *
             static_cast<double>(std::max(frame.degree(e.u), frame.degree(e.v)));
    case DenominatorRule::kDegreePlusOne:
      return degree_plus_one;
  }
  return 0.0;
}

template <class T>
class DiffusionBalancer final : public Balancer<T> {
 public:
  explicit DiffusionBalancer(DiffusionConfig cfg = {});

  std::string name() const override;
  using Balancer<T>::step;  // keep the deprecated (g, load, rng) shim visible
  StepStats step(RoundContext<T>& ctx, std::vector<T>& load) override;

  /// Sharded replay (flow_program.hpp): the identical flow function the
  /// ledger paths run — cached per-epoch denominators unmasked, inline
  /// alive-degree denominators masked.  The kEdgeSweep ablation oracle
  /// keeps its bespoke step() shape and is not planned.
  bool plan_round(RoundContext<T>& ctx, FlowProgram<T>& program) override;

  const DiffusionConfig& config() const { return cfg_; }

 private:
  // (Re)fill denoms_ for `g`'s epoch if stale — the shared per-epoch
  // precomputation behind both the ledger step() and plan_round().
  void ensure_denominators(const graph::Graph& g, util::ThreadPool* pool);

  // Masked-frame fast path: flows over the base edge list with dead
  // edges skipped and denominators from the mask's alive-degrees — no
  // graph materialization, no CSR rebuild.  Bit-identical to stepping on
  // the materialized subgraph.
  StepStats step_masked(RoundContext<T>& ctx, const graph::TopologyFrame& frame,
                        std::vector<T>& load);

  DiffusionConfig cfg_;
  // Per-edge denominators: a per-epoch precomputation private to this
  // config (they depend on rule/factor), keyed on the graph revision —
  // a pure function of the topology, so it survives run boundaries and
  // on_topology_changed needs no override (revisions are process-unique;
  // the step-time key check is the single source of invalidation).
  // Only the unmasked path uses it — alive-degrees move every mask
  // revision, so masked rounds compute denominators inline instead.
  // Flow/snapshot buffers and the CSR ledger come from the RoundContext.
  std::vector<double> denoms_;
  std::uint64_t denom_revision_ = 0;
};

using ContinuousDiffusion = DiffusionBalancer<double>;
using DiscreteDiffusion = DiffusionBalancer<std::int64_t>;

/// Algorithm 1 with the paper's parameters.
std::unique_ptr<ContinuousBalancer> make_diffusion_continuous();
std::unique_ptr<DiscreteBalancer> make_diffusion_discrete();

}  // namespace lb::core
