// First-order scheme (FOS) of Cybenko [3] / Boillat [2]: L^{t+1} = M·L^t
// with the uniform diffusion matrix M (α = 1/(δ+1)).
//
// Runs on the shared flow-ledger kernel (core/flow_ledger.hpp): the edge
// flows α·(ℓ_u − ℓ_v) are computed edge-parallel from the round snapshot
// and applied node-parallel via the cached CSR ledger — equivalent to the
// matrix-vector form, and bit-identical across thread counts.  The
// discrete first-order scheme of Muthukrishnan–Ghosh–Schultz [15]
// (integer flows, floored per edge) is the flow-form DiffusionBalancer
// with DenominatorRule::kDegreePlusOne over Tokens; make_fos_discrete()
// returns it.
#pragma once

#include <memory>

#include "lb/core/algorithm.hpp"
#include "lb/core/flow_ledger.hpp"

namespace lb::core {

class FirstOrderScheme final : public Balancer<double> {
 public:
  explicit FirstOrderScheme(bool parallel = true,
                            ApplyPath apply = ApplyPath::kLedger)
      : parallel_(parallel), apply_(apply) {}

  std::string name() const override { return "fos"; }
  using Balancer<double>::step;
  StepStats step(RoundContext<double>& ctx, std::vector<double>& load) override;

  /// Sharded replay (flow_program.hpp): the FOS edge flow α·(ℓ_u − ℓ_v)
  /// with α from the frame's (alive) max degree — the identical closure
  /// step() runs.  The kEdgeSweep oracle is not planned.
  bool plan_round(RoundContext<double>& ctx,
                  FlowProgram<double>& program) override;

 private:
  bool parallel_;
  ApplyPath apply_;
};

std::unique_ptr<ContinuousBalancer> make_fos_continuous();
std::unique_ptr<DiscreteBalancer> make_fos_discrete();

}  // namespace lb::core
