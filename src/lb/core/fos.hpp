// First-order scheme (FOS) of Cybenko [3] / Boillat [2]: L^{t+1} = M·L^t
// with the uniform diffusion matrix M (α = 1/(δ+1)).
//
// Two equivalent continuous implementations are provided:
//   * FirstOrderScheme — matrix-free neighbour sweep (O(m) per round,
//     parallelized over nodes), the production path;
//   * the flow-form DiffusionBalancer with DenominatorRule::kDegreePlusOne
//     (diffusion.hpp), which the tests use to cross-validate this one.
// The discrete first-order scheme of Muthukrishnan–Ghosh–Schultz [15]
// (integer flows, floored per edge) is exactly the flow form with
// kDegreePlusOne over Tokens; make_fos_discrete() returns it.
#pragma once

#include <memory>

#include "lb/core/algorithm.hpp"

namespace lb::core {

class FirstOrderScheme final : public Balancer<double> {
 public:
  explicit FirstOrderScheme(bool parallel = true) : parallel_(parallel) {}

  std::string name() const override { return "fos"; }
  StepStats step(const graph::Graph& g, std::vector<double>& load,
                 util::Rng& rng) override;

 private:
  bool parallel_;
  std::vector<double> next_;
};

std::unique_ptr<ContinuousBalancer> make_fos_continuous();
std::unique_ptr<DiscreteBalancer> make_fos_discrete();

}  // namespace lb::core
