// Load vectors and the potential function Φ.
//
// The paper models load as a vector L = (ℓ_1, ..., ℓ_n); the continuous
// setting allows arbitrarily divisible load (double), the discrete one
// indivisible unit tokens (int64).  All analysis quantities — the average
// load ℓ̄, the potential Φ(L) = Σ_i (ℓ_i − ℓ̄)², the discrepancy
// K = max_i ℓ_i − min_i ℓ_i, and the ℓ2 error — are computed in double.
//
// Everything in lb::core is templated over the scalar T ∈ {double,
// int64_t}; the two instantiations are compiled once in load.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "lb/graph/graph.hpp"

namespace lb::core {

/// Continuous load scalar.
using Real = double;
/// Discrete (token) load scalar.
using Tokens = std::int64_t;

template <class T>
struct LoadSummary {
  T total{};
  double average = 0.0;
  double potential = 0.0;    ///< Φ(L) = Σ (ℓ_i − ℓ̄)²
  double discrepancy = 0.0;  ///< max − min
  T min{};
  T max{};
};

/// Sum of all load (exact for Tokens; numerically summed for Real).
template <class T>
T total_load(const std::vector<T>& load);

/// Average load ℓ̄ as a double.
template <class T>
double average_load(const std::vector<T>& load);

/// Potential Φ(L) = Σ_i (ℓ_i − ℓ̄)².  This is the potential function the
/// paper's Lemmas 1–13 are stated over.
template <class T>
double potential(const std::vector<T>& load);

/// Discrepancy K = max_i ℓ_i − min_i ℓ_i (0 for empty vectors).
template <class T>
double discrepancy(const std::vector<T>& load);

/// All of the above in one pass.
template <class T>
LoadSummary<T> summarize(const std::vector<T>& load);

/// Σ_i Σ_j (ℓ_i − ℓ_j)² — the left side of Lemma 10; equals 2n·Φ(L).
/// Computed directly in O(n) via the algebraic identity with the sums,
/// and exercised quadratically in the tests for the lemma check.
template <class T>
double pairwise_square_sum(const std::vector<T>& load);

/// O(n²) literal evaluation of Σ_i Σ_j (ℓ_i − ℓ_j)², for validating the
/// identity of Lemma 10 in tests and benches.
template <class T>
double pairwise_square_sum_naive(const std::vector<T>& load);

/// Σ_{(i,j) ∈ E} (ℓ_i − ℓ_j)² — the Dirichlet form x^T L x appearing in
/// Lemma 2 and Lemma 3 (with x the centered load vector).
template <class T>
double edge_difference_sum(const graph::Graph& g, const std::vector<T>& load);

/// True when no entry is negative (invariant of all our algorithms).
template <class T>
bool all_non_negative(const std::vector<T>& load);

}  // namespace lb::core
