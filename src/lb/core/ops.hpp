// Optimal Polynomial Scheme (OPS) of Diekmann, Frommer & Monien [7].
//
// Given the m distinct nonzero eigenvalues λ_1 < ... < λ_m of the graph
// Laplacian, the iteration
//
//   L^k = L^{k-1} − (1/λ_k) · (Laplacian · L^{k-1})
//
// applies the error polynomial p(λ) = Π_k (1 − λ/λ_k), which vanishes on
// every nonzero eigenvalue — so after exactly m rounds the load is
// perfectly balanced (up to floating-point error).  This is the strongest
// continuous comparator in the paper's related-work section and a direct
// consumer of the library's own eigensolver (the environment has no
// Eigen, so the spectrum comes from lb::linalg).
//
// Continuous only; intermediate loads may go negative (a known property
// of polynomial flow schemes).  Requires a static graph *within a run*:
// the spectrum is computed on first step, keyed on the graph's topology
// revision, and the schedule asserts the graph stays put mid-schedule.
// Across runs (on_run_begin) the scheme may be rebound to a new graph —
// it recomputes the schedule then, while a run on the *same* graph
// reuses the cached spectrum (the campaign layer's amortization).
#pragma once

#include <memory>

#include "lb/core/algorithm.hpp"

namespace lb::core {

class OptimalPolynomialScheme final : public Balancer<double> {
 public:
  /// `eigenvalue_tolerance` clusters numerically-equal eigenvalues when
  /// extracting the distinct values.
  explicit OptimalPolynomialScheme(double eigenvalue_tolerance = 1e-8);

  std::string name() const override { return "ops"; }
  using Balancer<double>::step;
  StepStats step(RoundContext<double>& ctx, std::vector<double>& load) override;

  /// Number of rounds needed for perfect balance (m = #distinct nonzero
  /// Laplacian eigenvalues); 0 before the first step.
  std::size_t schedule_length() const { return schedule_.size(); }
  /// Rounds already executed; past schedule_length() the scheme restarts
  /// its schedule (useful when loads changed externally).
  std::size_t position() const { return position_; }

  /// Run isolation: restart the schedule from λ_1.  The cached spectrum
  /// is kept — it is a pure function of the graph (revision-keyed), so
  /// the next run recomputes it only if it executes on a new topology.
  void on_run_begin() override { position_ = 0; }

 private:
  double tol_;
  std::vector<double> schedule_;  // distinct nonzero eigenvalues, Leja-ordered
  std::size_t position_ = 0;
  std::uint64_t bound_revision_ = 0;  // topology the schedule was computed for
  std::vector<double> lx_;        // scratch: Laplacian * load
};

std::unique_ptr<ContinuousBalancer> make_ops();

}  // namespace lb::core
