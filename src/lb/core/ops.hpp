// Optimal Polynomial Scheme (OPS) of Diekmann, Frommer & Monien [7].
//
// Given the m distinct nonzero eigenvalues λ_1 < ... < λ_m of the graph
// Laplacian, the iteration
//
//   L^k = L^{k-1} − (1/λ_k) · (Laplacian · L^{k-1})
//
// applies the error polynomial p(λ) = Π_k (1 − λ/λ_k), which vanishes on
// every nonzero eigenvalue — so after exactly m rounds the load is
// perfectly balanced (up to floating-point error).  This is the strongest
// continuous comparator in the paper's related-work section and a direct
// consumer of the library's own eigensolver (the environment has no
// Eigen, so the spectrum comes from lb::linalg).
//
// Continuous only; intermediate loads may go negative (a known property
// of polynomial flow schemes).  Requires a static graph: the spectrum is
// computed on first step and the schedule asserts the graph stays put.
#pragma once

#include <memory>

#include "lb/core/algorithm.hpp"

namespace lb::core {

class OptimalPolynomialScheme final : public Balancer<double> {
 public:
  /// `eigenvalue_tolerance` clusters numerically-equal eigenvalues when
  /// extracting the distinct values.
  explicit OptimalPolynomialScheme(double eigenvalue_tolerance = 1e-8);

  std::string name() const override { return "ops"; }
  using Balancer<double>::step;
  StepStats step(RoundContext<double>& ctx, std::vector<double>& load) override;

  /// Number of rounds needed for perfect balance (m = #distinct nonzero
  /// Laplacian eigenvalues); 0 before the first step.
  std::size_t schedule_length() const { return schedule_.size(); }
  /// Rounds already executed; past schedule_length() the scheme restarts
  /// its schedule (useful when loads changed externally).
  std::size_t position() const { return position_; }

 private:
  double tol_;
  std::vector<double> schedule_;  // distinct nonzero eigenvalues, ascending
  std::size_t position_ = 0;
  std::size_t bound_nodes_ = 0;   // sanity: graph must not change
  std::size_t bound_edges_ = 0;
  std::vector<double> lx_;        // scratch: Laplacian * load
};

std::unique_ptr<ContinuousBalancer> make_ops();

}  // namespace lb::core
