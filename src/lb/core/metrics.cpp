#include "lb/core/metrics.hpp"

#include <cmath>
#include <limits>

#include "lb/util/stats.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

ConvergenceReport analyze(const Trace& trace, double initial_potential, double epsilon,
                          double floor_potential) {
  ConvergenceReport rep;
  rep.initial_potential = initial_potential;
  rep.rounds = trace.size();
  if (trace.empty()) {
    rep.final_potential = initial_potential;
    return rep;
  }
  rep.final_potential = trace[trace.size() - 1].potential;
  rep.rounds_to_epsilon = trace.first_round_at_or_below(epsilon * initial_potential);

  // Geometric mean of the per-round ratios over the decaying prefix.
  double log_sum = 0.0;
  std::size_t terms = 0;
  double prev = initial_potential;
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double cur = trace[i].potential;
    if (prev > floor_potential && cur > floor_potential) {
      log_sum += std::log(cur / prev);
      ++terms;
      xs.push_back(static_cast<double>(trace[i].round));
      ys.push_back(std::log(cur));
    }
    prev = cur;
  }
  if (terms > 0) rep.mean_drop_ratio = std::exp(log_sum / static_cast<double>(terms));
  if (xs.size() >= 2) {
    const util::LinearFit fit = util::linear_fit(xs, ys);
    rep.log_slope = fit.slope;
    rep.fit_r_squared = fit.r_squared;
  }
  return rep;
}

double safe_ratio(double measured, double bound) {
  if (bound == 0.0) return measured == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  return measured / bound;
}

template <class T>
LoadSummary<T> combine_summary_partials(const std::vector<SummaryPartial<T>>& parts,
                                        std::size_t n, double average,
                                        SummaryMode mode) {
  // Chunk-index order: the one combination order, independent of which
  // worker produced which partial.
  SummaryFold<T> fold;
  for (const SummaryPartial<T>& p : parts) fold.add(p);
  return fold.finish(n, average, mode);
}

template <class T>
LoadSummary<T> summarize_deterministic(const std::vector<T>& load, double average,
                                       util::ThreadPool* pool, SummaryMode mode) {
  return fused_sweep_with_summary<T>(pool, load.size(), average, mode,
                                     [&load](std::size_t i) { return load[i]; });
}

template <class T>
LoadSummary<T> summarize_deterministic(const std::vector<T>& load, double average,
                                       util::ThreadPool* pool, SummaryMode mode,
                                       std::vector<SummaryPartial<T>>& parts) {
  return fused_sweep_with_summary<T>(pool, load.size(), average, mode, parts,
                                     [&load](std::size_t i) { return load[i]; });
}

template <class T>
LoadSummary<T> summarize_parallel(const std::vector<T>& load, util::ThreadPool* pool) {
  const std::size_t n = load.size();
  if (n == 0) return LoadSummary<T>{};
  // Pass 1: totals and extrema; the average falls out of the totals.
  LoadSummary<T> s =
      summarize_deterministic(load, 0.0, pool, SummaryMode::kExtremaOnly);
  s.average = static_cast<double>(s.total) / static_cast<double>(n);
  // Pass 2: Φ against that average.
  s.potential =
      summarize_deterministic(load, s.average, pool, SummaryMode::kPotentialOnly)
          .potential;
  return s;
}

#define LB_INSTANTIATE(T)                                                      \
  template LoadSummary<T> combine_summary_partials<T>(                         \
      const std::vector<SummaryPartial<T>>&, std::size_t, double, SummaryMode);\
  template LoadSummary<T> summarize_deterministic<T>(                          \
      const std::vector<T>&, double, util::ThreadPool*, SummaryMode);          \
  template LoadSummary<T> summarize_deterministic<T>(                          \
      const std::vector<T>&, double, util::ThreadPool*, SummaryMode,           \
      std::vector<SummaryPartial<T>>&);                                        \
  template LoadSummary<T> summarize_parallel<T>(const std::vector<T>&,         \
                                                util::ThreadPool*);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::core
