#include "lb/core/metrics.hpp"

#include <cmath>
#include <limits>

#include "lb/util/stats.hpp"

namespace lb::core {

ConvergenceReport analyze(const Trace& trace, double initial_potential, double epsilon,
                          double floor_potential) {
  ConvergenceReport rep;
  rep.initial_potential = initial_potential;
  rep.rounds = trace.size();
  if (trace.empty()) {
    rep.final_potential = initial_potential;
    return rep;
  }
  rep.final_potential = trace[trace.size() - 1].potential;
  rep.rounds_to_epsilon = trace.first_round_at_or_below(epsilon * initial_potential);

  // Geometric mean of the per-round ratios over the decaying prefix.
  double log_sum = 0.0;
  std::size_t terms = 0;
  double prev = initial_potential;
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double cur = trace[i].potential;
    if (prev > floor_potential && cur > floor_potential) {
      log_sum += std::log(cur / prev);
      ++terms;
      xs.push_back(static_cast<double>(trace[i].round));
      ys.push_back(std::log(cur));
    }
    prev = cur;
  }
  if (terms > 0) rep.mean_drop_ratio = std::exp(log_sum / static_cast<double>(terms));
  if (xs.size() >= 2) {
    const util::LinearFit fit = util::linear_fit(xs, ys);
    rep.log_slope = fit.slope;
    rep.fit_r_squared = fit.r_squared;
  }
  return rep;
}

double safe_ratio(double measured, double bound) {
  if (bound == 0.0) return measured == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  return measured / bound;
}

}  // namespace lb::core
