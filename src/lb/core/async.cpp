#include "lb/core/async.hpp"

#include <cmath>
#include <cstdio>

#include "lb/util/assert.hpp"

namespace lb::core {

template <class T>
AsyncDiffusion<T>::AsyncDiffusion(double activation_probability, DiffusionConfig cfg)
    : p_(activation_probability), cfg_(cfg) {
  LB_ASSERT_MSG(p_ > 0.0 && p_ <= 1.0, "activation probability must lie in (0,1]");
}

template <class T>
std::string AsyncDiffusion<T>::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s(p=%.2f)",
                std::is_integral_v<T> ? "async-diffusion-disc" : "async-diffusion-cont",
                p_);
  return buf;
}

template <class T>
StepStats AsyncDiffusion<T>::step(const graph::Graph& g, std::vector<T>& load,
                                  util::Rng& rng) {
  LB_ASSERT_MSG(load.size() == g.num_nodes(), "load vector does not match graph");
  const auto& edges = g.edges();

  // Draw this round's active set (sequential: the RNG is a shared stream).
  active_.assign(load.size(), 0);
  for (std::size_t u = 0; u < load.size(); ++u) {
    active_[u] = rng.next_bool(p_) ? 1 : 0;
  }

  // An edge moves load only if its *richer* endpoint is active (that node
  // executes the send); the flow is Algorithm 1's rule on the round-start
  // snapshot, so all the usual safety properties carry over.
  flows_.assign(edges.size(), 0.0);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const graph::Edge& e = edges[k];
    const double li = static_cast<double>(load[e.u]);
    const double lj = static_cast<double>(load[e.v]);
    if (li == lj) continue;
    const graph::NodeId sender = li > lj ? e.u : e.v;
    if (!active_[sender]) continue;
    double w = diffusion_edge_weight(g, e.u, e.v, li, lj, cfg_);
    if constexpr (std::is_integral_v<T>) {
      w = std::floor(w);
    }
    flows_[k] = li > lj ? w : -w;
  }

  StepStats stats;
  stats.links = edges.size();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const double f = flows_[k];
    if (f == 0.0) continue;
    const graph::Edge& e = edges[k];
    const T amount = static_cast<T>(std::fabs(f));
    if (amount == T{}) continue;
    if (f > 0.0) {
      load[e.u] -= amount;
      load[e.v] += amount;
    } else {
      load[e.v] -= amount;
      load[e.u] += amount;
    }
    stats.transferred += static_cast<double>(amount);
    ++stats.active_edges;
  }
  return stats;
}

template class AsyncDiffusion<double>;
template class AsyncDiffusion<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_async_continuous(double p) {
  return std::make_unique<ContinuousAsyncDiffusion>(p);
}

std::unique_ptr<DiscreteBalancer> make_async_discrete(double p) {
  return std::make_unique<DiscreteAsyncDiffusion>(p);
}

}  // namespace lb::core
