#include "lb/core/async.hpp"

#include <cmath>
#include <cstdio>

#include "lb/core/flow_ledger.hpp"
#include "lb/core/round_context.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

template <class T>
AsyncDiffusion<T>::AsyncDiffusion(double activation_probability, DiffusionConfig cfg)
    : p_(activation_probability), cfg_(cfg) {
  LB_ASSERT_MSG(p_ > 0.0 && p_ <= 1.0, "activation probability must lie in (0,1]");
}

template <class T>
std::string AsyncDiffusion<T>::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s(p=%.2f)",
                std::is_integral_v<T> ? "async-diffusion-disc" : "async-diffusion-cont",
                p_);
  return buf;
}

template <class T>
StepStats AsyncDiffusion<T>::step(RoundContext<T>& ctx, std::vector<T>& load) {
  const graph::TopologyFrame& frame = ctx.frame();
  LB_ASSERT_MSG(load.size() == frame.num_nodes(), "load vector does not match graph");
  util::ThreadPool* pool = cfg_.parallel ? ctx.pool() : nullptr;
  StepStats stats;

  // Draw this round's active set (sequential: the RNG is a shared
  // stream) — before any topology access, so masked and materialized
  // runs consume the identical RNG prefix.
  std::vector<std::uint8_t>& active = ctx.arena().node_flags();
  active.assign(load.size(), 0);
  for (std::size_t u = 0; u < load.size(); ++u) {
    active[u] = ctx.rng().next_bool(p_) ? 1 : 0;
  }

  if (ctx.masked() && cfg_.apply == ApplyPath::kLedger) {
    // Masked dynamic round: Algorithm-1 weights from the mask's
    // alive-degrees over alive edges only; no materialization.
    stats.links = frame.num_edges();
    const double factor = cfg_.factor;
    const double degree_plus_one = static_cast<double>(frame.max_degree()) + 1.0;
    const DenominatorRule rule = cfg_.rule;
    const auto flow_fn = [&frame, &active, factor, degree_plus_one, rule](
                             std::size_t, const graph::Edge& e, double li,
                             double lj) {
      if (li == lj) return 0.0;
      const graph::NodeId sender = li > lj ? e.u : e.v;
      if (!active[sender]) return 0.0;
      const double denom =
          masked_diffusion_denominator(frame, e, rule, factor, degree_plus_one);
      double w = std::fabs(li - lj) / denom;
      if constexpr (std::is_integral_v<T>) {
        w = std::floor(w);
      }
      return li > lj ? w : -w;
    };
    run_masked_ledger_round(ctx, frame, load, pool, stats, flow_fn);
    return stats;
  }

  const graph::Graph& g = ctx.graph();
  stats.links = g.num_edges();

  // An edge moves load only if its *richer* endpoint is active (that node
  // executes the send); the flow is Algorithm 1's rule on the round-start
  // snapshot, so all the usual safety properties carry over.  With the
  // active set fixed, the flows are a pure function of the snapshot, so
  // the round runs on the shared flow-ledger kernel like plain diffusion.
  const auto flow_fn = [this, &g, &active](std::size_t, const graph::Edge& e,
                                           double li, double lj) {
    if (li == lj) return 0.0;
    const graph::NodeId sender = li > lj ? e.u : e.v;
    if (!active[sender]) return 0.0;
    double w = diffusion_edge_weight(g, e.u, e.v, li, lj, cfg_);
    if constexpr (std::is_integral_v<T>) {
      w = std::floor(w);
    }
    return li > lj ? w : -w;
  };

  if (pool == nullptr || pool->size() <= 1) {
    run_fused_sequential_round(g, load, ctx.arena().node_scratch(), stats, flow_fn);
    return stats;
  }
  FlowLedger& ledger = ctx.ledger();
  std::vector<double>& flows = ctx.arena().flows();
  compute_edge_flows(g, load, flows, pool, flow_fn);
  accumulate_flow_totals<T>(flows, stats);
  apply_flows_observed(ctx, ledger, flows, load, pool);
  return stats;
}

template class AsyncDiffusion<double>;
template class AsyncDiffusion<std::int64_t>;

std::unique_ptr<ContinuousBalancer> make_async_continuous(double p) {
  return std::make_unique<ContinuousAsyncDiffusion>(p);
}

std::unique_ptr<DiscreteBalancer> make_async_discrete(double p) {
  return std::make_unique<DiscreteAsyncDiffusion>(p);
}

}  // namespace lb::core
