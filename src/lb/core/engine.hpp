// The round-based simulation engine: runs a Balancer over a (possibly
// dynamic) network until the potential target, a stall, or the round
// budget is hit.  This is the substrate substitution for the paper's
// abstract message-passing machine — the theorems speak about synchronous
// rounds, which is exactly what the engine executes (see DESIGN.md §1).
#pragma once

#include <cstdint>

#include "lb/core/algorithm.hpp"
#include "lb/core/steady_state.hpp"
#include "lb/core/trace.hpp"
#include "lb/graph/dynamic.hpp"

namespace lb::util {
class ThreadPool;
}

namespace lb::linalg {
class SpectralCache;
enum class SpectralGuard : std::uint8_t;
}

namespace lb::workload {
class StreamBase;
}

namespace lb::core {

template <class T>
class RunArena;

/// How the engine computes the per-round Φ/discrepancy observability.
enum class MetricsPath : std::uint8_t {
  /// The deterministic fixed-chunk parallel reduction (core/metrics.hpp),
  /// fused into the balancer's apply sweep whenever the balancer supports
  /// it (RoundContext fused-summary protocol) and computed standalone —
  /// still parallel and chunk-deterministic — otherwise.  Φ is measured
  /// against a *running* average: the run-start ℓ̄ while the total is
  /// invariant (every closed-system round; exact for Tokens), re-derived
  /// from the stream ledger whenever open-system traffic changes the
  /// total (DESIGN.md §11).  With no stream attached this reduces to the
  /// historical fixed run-start baseline bit for bit.  Bit-identical
  /// results at every pool size.
  kFusedParallel,
  /// The pre-RoundContext oracle: a strictly sequential summarize(load)
  /// after every step(), with the average recomputed each round.  Kept for
  /// the ablation benches and as the regression baseline.
  kSequential,
};

struct EngineConfig {
  std::size_t max_rounds = 1'000'000;
  /// Stop as soon as Φ <= this value.
  double target_potential = 1e-12;
  /// Stop after this many consecutive rounds with zero transfers (the
  /// discrete fixed point: every edge's floored flow is 0).  0 disables.
  std::size_t stall_rounds = 3;
  /// Record the full per-round trace.  When false the engine skips all
  /// trace bookkeeping and computes only what termination needs: Φ per
  /// round, and min/max once at run end for the final discrepancy.
  bool record_trace = true;
  std::uint64_t seed = 42;
  MetricsPath metrics = MetricsPath::kFusedParallel;
  /// Pool the run executes on; nullptr means ThreadPool::global().  The
  /// determinism contract (DESIGN.md §2) guarantees bit-identical
  /// RunResults for any pool size here, LB_THREADS included.
  util::ThreadPool* pool = nullptr;
  /// Run the lb::check invariant layer (DESIGN.md §8): per-round
  /// conservation, mask/CSR well-formedness after epoch changes; the
  /// sharded engine adds halo-mirror equality, flow antisymmetry, and
  /// comm accounting.  ORed with the LB_CHECK environment variable.
  /// Violations throw check::InvariantViolation; results are unchanged
  /// when no violation fires (checks only read engine state).
  bool check_invariants = false;
  /// Shared spectral cache (DESIGN.md §10), exposed to balancers through
  /// RoundContext::spectral_cache().  Consumers that bind schedules to
  /// spectral quantities (SOS auto-β, OPS) use its Tier-1 exact paths,
  /// which return bit-identical values to a cold compute — so a run with
  /// a cache is bit-identical to one without, just cheaper on repeats.
  /// nullptr (the default) keeps every balancer on its cold path; the
  /// campaign runner's kCold oracle relies on that.
  linalg::SpectralCache* spectral_cache = nullptr;
  /// Open-system traffic (DESIGN.md §11): a workload::Stream<T> whose
  /// per-round arrival/departure delta the engine applies at the top of
  /// every round, before the balancer plans flows.  Must be (or wrap) a
  /// Stream<T> matching the run's scalar type — the engine asserts on a
  /// mismatch.  nullptr (the default) is the closed system: the run
  /// executes the exact pre-stream code path, bit for bit.  The engine
  /// reset()s the stream at run start; pure per-round derivation
  /// (stream.hpp) makes the same stream object safely reusable across
  /// runs and bit-identical across pools and shard counts.
  workload::StreamBase* stream = nullptr;
};

/// Communication accounting for one ownership domain of a sharded run
/// (lb/shard/).  All three fields are *modeled* deterministic quantities
/// — message/byte counts from the halo protocol, wait from the per-link
/// latency/bandwidth config — never wall clock, so they are part of the
/// bit-identity surface (unlike the *_seconds fields below).
struct DomainCommStats {
  std::uint64_t messages = 0;        ///< halo messages received
  std::uint64_t boundary_bytes = 0;  ///< boundary payload bytes received
  double halo_wait_us = 0.0;         ///< modeled wait at halo barriers
};

struct RunResult {
  bool reached_target = false;
  bool stalled = false;
  /// True when any spectral profiling attached to this run (dynamic
  /// runner lambda2 tracking) was skipped by a linalg scale guard
  /// instead of computed.
  bool spectral_skipped = false;
  /// Which guard fired when spectral_skipped is set: the dense-path
  /// ceiling (max_spectral_n) or the Lanczos ceiling
  /// (max_lanczos_spectral_n).  kNone (0) when nothing was skipped.
  linalg::SpectralGuard spectral_guard{};
  std::size_t rounds = 0;           ///< rounds actually executed
  double initial_potential = 0.0;
  double final_potential = 0.0;
  double final_discrepancy = 0.0;
  Trace trace;                      ///< empty unless record_trace
  // Sharded-execution observability (lb/shard/): zero/empty for
  // shared-memory runs and for K=1 (a single domain has no links).
  std::size_t domains = 0;          ///< K; 0 = shared-memory engine
  std::size_t sharded_rounds = 0;   ///< rounds run via the domain path
                                    ///< (others fell back to step())
  DomainCommStats comm;             ///< totals across all domains
  std::vector<DomainCommStats> domain_comm;  ///< per-domain breakdown
  // Open-system observability (lb/workload/stream.hpp): applied stream
  // totals and the steady-state reduction.  All default/invalid for
  // closed-system runs (open_system == false).
  bool open_system = false;          ///< a stream was attached to the run
  double stream_arrivals = 0.0;      ///< Σ applied arrivals over the run
  double stream_departures = 0.0;    ///< Σ applied departures (clamped)
  metrics::SteadyStateReport steady; ///< valid only when open_system
  // Wall-clock observability (seconds; excluded from determinism claims).
  double total_seconds = 0.0;       ///< whole run, setup included
  double step_seconds = 0.0;        ///< Σ Balancer::step() time
  double metrics_seconds = 0.0;     ///< Σ out-of-step summary time
};

/// Run `balancer` on the dynamic network `seq`, mutating `load` in place.
/// Calls balancer.on_run_begin() before round 1 (the run-isolation
/// contract: reused balancers behave exactly like fresh ones).
template <class T>
RunResult run(Balancer<T>& balancer, graph::GraphSequence& seq, std::vector<T>& load,
              const EngineConfig& config = {});

/// As above, but executing against a caller-owned RunArena instead of a
/// run-local one.  The arena's scratch buffers and flow-ledger CSR (keyed
/// on the graph revision) survive across runs, so back-to-back runs on
/// the same base graph skip the CSR rebuild — the campaign layer's
/// per-cell amortization (lb/exp/).  Results are bit-identical to the
/// run-local-arena overload.
template <class T>
RunResult run(Balancer<T>& balancer, graph::GraphSequence& seq, std::vector<T>& load,
              const EngineConfig& config, RunArena<T>& arena);

/// Convenience wrapper for a fixed network.
template <class T>
RunResult run_static(Balancer<T>& balancer, const graph::Graph& g, std::vector<T>& load,
                     const EngineConfig& config = {});

}  // namespace lb::core
