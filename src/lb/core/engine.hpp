// The round-based simulation engine: runs a Balancer over a (possibly
// dynamic) network until the potential target, a stall, or the round
// budget is hit.  This is the substrate substitution for the paper's
// abstract message-passing machine — the theorems speak about synchronous
// rounds, which is exactly what the engine executes (see DESIGN.md §1).
#pragma once

#include <cstdint>

#include "lb/core/algorithm.hpp"
#include "lb/core/trace.hpp"
#include "lb/graph/dynamic.hpp"

namespace lb::core {

struct EngineConfig {
  std::size_t max_rounds = 1'000'000;
  /// Stop as soon as Φ <= this value.
  double target_potential = 1e-12;
  /// Stop after this many consecutive rounds with zero transfers (the
  /// discrete fixed point: every edge's floored flow is 0).  0 disables.
  std::size_t stall_rounds = 3;
  bool record_trace = true;
  std::uint64_t seed = 42;
};

struct RunResult {
  bool reached_target = false;
  bool stalled = false;
  std::size_t rounds = 0;           ///< rounds actually executed
  double initial_potential = 0.0;
  double final_potential = 0.0;
  double final_discrepancy = 0.0;
  Trace trace;                      ///< empty unless record_trace
};

/// Run `balancer` on the dynamic network `seq`, mutating `load` in place.
template <class T>
RunResult run(Balancer<T>& balancer, graph::GraphSequence& seq, std::vector<T>& load,
              const EngineConfig& config = {});

/// Convenience wrapper for a fixed network.
template <class T>
RunResult run_static(Balancer<T>& balancer, const graph::Graph& g, std::vector<T>& load,
                     const EngineConfig& config = {});

}  // namespace lb::core
