// The paper's quantitative bounds as plain functions, so tests and benches
// compare measured behaviour against the exact expressions of each
// theorem.  Section references follow the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lb/graph/graph.hpp"

namespace lb::core::bounds {

// ---- §4.1 continuous, fixed network ----

/// Lemma 2: per-round potential drop ≥ (1/4δ)·Σ_{(i,j)∈E}(ℓ_i − ℓ_j)².
double lemma2_drop_lower_bound(double edge_difference_sum, std::size_t max_degree);

/// Theorem 4 rate: Φ(L^t) ≤ (1 − λ2/4δ)·Φ(L^{t-1}) — the guaranteed
/// per-round drop *fraction*.
double theorem4_drop_fraction(double lambda2, std::size_t max_degree);

/// Theorem 4: T = (4δ/λ2)·ln(1/ε) rounds suffice for Φ(L^T) ≤ ε·Φ(L^0).
double theorem4_rounds(double lambda2, std::size_t max_degree, double epsilon);

// ---- §4.2 discrete, fixed network ----

/// Lemma 5 validity threshold: the drop factor λ2/8δ is guaranteed while
/// Φ ≥ 64·δ³·n/λ2.
double discrete_potential_threshold(std::size_t max_degree, std::size_t n,
                                    double lambda2);

/// Lemma 5 rate: per-round drop fraction λ2/8δ above the threshold.
double lemma5_drop_fraction(double lambda2, std::size_t max_degree);

/// Theorem 6: T = (8δ/λ2)·ln(λ2·Φ(L⁰)/(64δ³n)) rounds to reach the
/// threshold (0 if already below it).
double theorem6_rounds(double lambda2, std::size_t max_degree, std::size_t n,
                       double initial_potential);

// ---- §5 dynamic networks ----

/// How a profiled round's λ2 entry was produced.  The old contract
/// recorded a bare 0.0 for both disconnected frames and guard-skipped
/// rounds, leaving them indistinguishable downstream; the status makes
/// the provenance explicit so consumers (dynamic_average_ratio, the
/// spectral bench's solve/skip accounting) can act on it.
enum class RoundSpectralStatus : std::uint8_t {
  kComputed,      ///< fresh solve (dense or Lanczos, cold or warm-started)
  kCacheHit,      ///< Tier-1 exact cache hit — bit-identical to the solve
  kBoundSkipped,  ///< Tier-2 bracket pinned λ2 to the cached value (within tol)
  kGuardSkipped,  ///< scale guard suppressed the solve; λ2 recorded as 0.0
  kDisconnected,  ///< frame disconnected; λ2 = 0 by definition
};

/// A_K = (1/K)·Σ_k λ2(G_k)/δ(G_k) — the average spectral ratio of the
/// first K rounds (Theorem 7).
double dynamic_average_ratio(const std::vector<double>& lambda2_per_round,
                             const std::vector<std::size_t>& delta_per_round);

/// Status-aware overload: computed/cached/bound-skipped rounds contribute
/// λ2/δ, disconnected and guard-skipped rounds contribute exactly 0 (the
/// theorem grants such rounds no drop) — by explicit status rather than
/// by trusting a 0.0 sentinel.  Asserts the skip statuses actually carry
/// λ2 = 0, so a mislabeled round fails loudly.  Numerically identical to
/// the sentinel-based overload on well-formed inputs.
double dynamic_average_ratio(const std::vector<double>& lambda2_per_round,
                             const std::vector<std::size_t>& delta_per_round,
                             const std::vector<RoundSpectralStatus>& status_per_round);

/// Theorem 7: K = ln(1/ε)/A_K rounds (up to the paper's hidden constant 4;
/// we report the exact 4·ln(1/ε)/A_K matching the Theorem-4 constant).
double theorem7_rounds(double average_ratio, double epsilon);

/// Theorem 8 threshold: Φ* = 64·n·max_k(δ(k)³/λ2(k)).
double theorem8_threshold(std::size_t n, const std::vector<double>& lambda2_per_round,
                          const std::vector<std::size_t>& delta_per_round);

/// Theorem 8: K = (8/A_K)·ln(Φ(L⁰)/Φ*) rounds to reach Φ*.
double theorem8_rounds(double average_ratio, double initial_potential,
                       double threshold);

// ---- §6 random balancing partners ----

/// Lemma 11: E[Φ^{t+1}] ≤ (19/20)·Φ^t (continuous).
inline constexpr double kLemma11Factor = 19.0 / 20.0;

/// Lemma 13 threshold: 3200·n; above it E[Φ^{t+1}] ≤ (39/40)·Φ^t (discrete).
double random_partner_threshold(std::size_t n);
inline constexpr double kLemma13Factor = 39.0 / 40.0;

/// Theorem 12: T = 120·c·ln Φ(L⁰) rounds give Φ ≤ e^{-c} w.p. ≥ 1 − Φ^{-c/4}.
double theorem12_rounds(double c, double initial_potential);

/// Theorem 14: T = 240·c·ln(Φ(L⁰)/3200n) rounds reach Φ ≤ 3200n w.p.
/// ≥ 1 − (Φ/3200n)^{-c/4}.
double theorem14_rounds(double c, double initial_potential, std::size_t n);

/// Lemma 9: Pr[max(d_i,d_j) ≤ 5 | (i,j) ∈ E] > 1/2 — the constant the
/// paper proves; exposed for the Monte-Carlo bench to compare against.
inline constexpr double kLemma9Probability = 0.5;

}  // namespace lb::core::bounds
