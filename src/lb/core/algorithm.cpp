#include "lb/core/algorithm.hpp"

#include "lb/core/round_context.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

// Out of line so the unique_ptr<RunArena<T>> member can be declared over
// an incomplete type in the header.
template <class T>
Balancer<T>::Balancer() = default;

template <class T>
Balancer<T>::~Balancer() = default;

template <class T>
StepStats Balancer<T>::step(const graph::Graph& g, std::vector<T>& load,
                            util::Rng& rng) {
  if (!legacy_arena_) legacy_arena_ = std::make_unique<RunArena<T>>();
  // Manual stepping has no run boundary: the caller may mutate `load` (or
  // pass a different vector) between calls, so the blocked round's
  // snapshot cache can never be trusted across them.
  legacy_arena_->invalidate_snapshot();
  RoundContext<T> ctx(g, rng, &util::ThreadPool::global(), *legacy_arena_);
  return step(ctx, load);
}

template class Balancer<double>;
template class Balancer<std::int64_t>;

}  // namespace lb::core
