#include "lb/core/dynamic_runner.hpp"

#include "lb/core/bounds.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/graph/properties.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

DynamicSpectralProfile profile_sequence(graph::GraphSequence& seq, std::size_t rounds,
                                        std::size_t dense_cutoff) {
  DynamicSpectralProfile profile;
  profile.lambda2_per_round.reserve(rounds);
  profile.delta_per_round.reserve(rounds);
  profile.edges_per_round.reserve(rounds);
  for (std::size_t k = 1; k <= rounds; ++k) {
    const graph::Graph& g = seq.at_round(k);
    profile.edges_per_round.push_back(g.num_edges());
    profile.delta_per_round.push_back(g.max_degree());
    if (g.num_edges() == 0 || !graph::is_connected(g)) {
      // λ2 = 0 for disconnected rounds: they contribute nothing to A_K,
      // matching the theorem (such rounds cannot guarantee any drop).
      profile.lambda2_per_round.push_back(0.0);
      ++profile.disconnected_rounds;
      continue;
    }
    profile.lambda2_per_round.push_back(linalg::lambda2(g, dense_cutoff));
  }
  profile.average_ratio =
      bounds::dynamic_average_ratio(profile.lambda2_per_round, profile.delta_per_round);
  return profile;
}

template <class T>
DynamicRunResult run_dynamic(
    Balancer<T>& balancer,
    const std::function<std::unique_ptr<graph::GraphSequence>()>& make_sequence,
    std::vector<T> load, std::size_t rounds, double epsilon, std::size_t dense_cutoff) {
  DynamicRunResult out;

  {
    auto profiling_seq = make_sequence();
    out.profile = profile_sequence(*profiling_seq, rounds, dense_cutoff);
  }

  // Deterministic parallel summary (same reduction the engine uses) in
  // place of the sequential potential() sweep.
  const double initial_potential =
      summarize_parallel(load, &util::ThreadPool::global()).potential;
  EngineConfig config;
  config.max_rounds = rounds;
  config.target_potential = epsilon * initial_potential;
  config.record_trace = true;

  // A balancer may be reused across run_dynamic calls with different
  // sequences; drop any per-graph caches before the measured run (the
  // engine also invalidates per round via Graph::revision()).
  balancer.on_topology_changed();
  auto run_seq = make_sequence();
  out.run = run(balancer, *run_seq, load, config);

  if (out.profile.average_ratio > 0.0) {
    if constexpr (std::is_integral_v<T>) {
      out.threshold = bounds::theorem8_threshold(
          load.size(), out.profile.lambda2_per_round, out.profile.delta_per_round);
      out.theorem_bound_rounds = bounds::theorem8_rounds(
          out.profile.average_ratio, initial_potential, out.threshold);
    } else {
      out.theorem_bound_rounds =
          bounds::theorem7_rounds(out.profile.average_ratio, epsilon);
    }
  }
  return out;
}

#define LB_INSTANTIATE(T)                                                    \
  template DynamicRunResult run_dynamic<T>(                                  \
      Balancer<T>&,                                                          \
      const std::function<std::unique_ptr<graph::GraphSequence>()>&,         \
      std::vector<T>, std::size_t, double, std::size_t);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::core
