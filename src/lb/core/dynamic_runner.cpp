#include "lb/core/dynamic_runner.hpp"

#include "lb/core/bounds.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/graph/properties.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

namespace {

/// Forwards frames from an inner sequence while asserting each one's
/// fingerprint against the profiling pass's record: if a sequence's
/// reset() fails to replay the identical topology stream, the run dies
/// loudly instead of silently measuring a different network.
class ReplayCheckSequence final : public graph::GraphSequence {
 public:
  ReplayCheckSequence(graph::GraphSequence& inner,
                      const std::vector<std::uint64_t>& expected)
      : inner_(&inner), expected_(&expected) {}

  std::size_t num_nodes() const override { return inner_->num_nodes(); }

  const graph::TopologyFrame& frame_at(std::size_t k) override {
    const graph::TopologyFrame& frame = inner_->frame_at(k);
    if (k >= 1 && k <= expected_->size()) {
      LB_ASSERT_MSG(frame.fingerprint() == (*expected_)[k - 1],
                    "profile/run frame mismatch: sequence did not replay "
                    "identically after reset()");
    }
    return frame;
  }

  void reset() override { inner_->reset(); }
  std::string name() const override { return inner_->name(); }

 private:
  graph::GraphSequence* inner_;
  const std::vector<std::uint64_t>* expected_;
};

}  // namespace

DynamicSpectralProfile profile_sequence(graph::GraphSequence& seq, std::size_t rounds,
                                        std::size_t dense_cutoff) {
  DynamicSpectralProfile profile;
  profile.lambda2_per_round.reserve(rounds);
  profile.delta_per_round.reserve(rounds);
  profile.edges_per_round.reserve(rounds);
  profile.frame_fingerprints.reserve(rounds);
  for (std::size_t k = 1; k <= rounds; ++k) {
    // Frames, not graphs: masked rounds are profiled off the base +
    // alive mask (degrees from the mask, union-find connectivity,
    // frame-assembled Laplacian) with no subgraph materialization.
    const graph::TopologyFrame& frame = seq.frame_at(k);
    profile.edges_per_round.push_back(frame.num_edges());
    profile.delta_per_round.push_back(frame.max_degree());
    profile.frame_fingerprints.push_back(frame.fingerprint());
    if (frame.num_edges() == 0 || !graph::is_connected(frame)) {
      // λ2 = 0 for disconnected rounds: they contribute nothing to A_K,
      // matching the theorem (such rounds cannot guarantee any drop).
      profile.lambda2_per_round.push_back(0.0);
      ++profile.disconnected_rounds;
      continue;
    }
    if (linalg::spectral_guard_active(frame.num_nodes())) {
      // Scale guard (satellite of the 2^20 substrate): record the skip —
      // λ2 = 0 contributes nothing to A_K, like a disconnected round —
      // instead of silently stalling in an O(n·iters) Lanczos per round.
      profile.lambda2_per_round.push_back(0.0);
      ++profile.spectral_skipped_rounds;
      continue;
    }
    profile.lambda2_per_round.push_back(linalg::lambda2(frame, dense_cutoff));
  }
  profile.average_ratio =
      bounds::dynamic_average_ratio(profile.lambda2_per_round, profile.delta_per_round);
  return profile;
}

template <class T>
DynamicRunResult run_dynamic(Balancer<T>& balancer, graph::GraphSequence& seq,
                             std::vector<T> load, std::size_t rounds, double epsilon,
                             std::size_t dense_cutoff,
                             const EngineConfig* base_config) {
  DynamicRunResult out;
  out.profile = profile_sequence(seq, rounds, dense_cutoff);

  EngineConfig config;
  if (base_config != nullptr) {
    config = *base_config;
  } else {
    config.record_trace = true;
  }
  util::ThreadPool* pool =
      config.pool != nullptr ? config.pool : &util::ThreadPool::global();

  // Deterministic parallel summary (same reduction the engine uses) in
  // place of the sequential potential() sweep.
  const double initial_potential = summarize_parallel(load, pool).potential;
  config.max_rounds = rounds;
  config.target_potential = epsilon * initial_potential;

  // A balancer may be reused across run_dynamic calls with different
  // sequences; drop any per-graph caches before the measured run (the
  // engine also invalidates per round via the frame's revisions).
  balancer.on_topology_changed();

  // One sequence, two passes: rewind, then assert each run round replays
  // the exact frame the profiler measured.
  seq.reset();
  ReplayCheckSequence checked(seq, out.profile.frame_fingerprints);
  out.run = run(balancer, checked, load, config);
  out.run.spectral_skipped = out.profile.spectral_skipped_rounds > 0;

  if (out.profile.average_ratio > 0.0) {
    if constexpr (std::is_integral_v<T>) {
      out.threshold = bounds::theorem8_threshold(
          load.size(), out.profile.lambda2_per_round, out.profile.delta_per_round);
      out.theorem_bound_rounds = bounds::theorem8_rounds(
          out.profile.average_ratio, initial_potential, out.threshold);
    } else {
      out.theorem_bound_rounds =
          bounds::theorem7_rounds(out.profile.average_ratio, epsilon);
    }
  }
  return out;
}

template <class T>
DynamicRunResult run_dynamic(
    Balancer<T>& balancer,
    const std::function<std::unique_ptr<graph::GraphSequence>()>& make_sequence,
    std::vector<T> load, std::size_t rounds, double epsilon, std::size_t dense_cutoff) {
  // The factory is invoked exactly once; reset() replays the stream for
  // the run, so identically-seeded double construction is no longer
  // required (or possible to get wrong).
  auto seq = make_sequence();
  return run_dynamic(balancer, *seq, std::move(load), rounds, epsilon, dense_cutoff,
                     nullptr);
}

#define LB_INSTANTIATE(T)                                                    \
  template DynamicRunResult run_dynamic<T>(                                  \
      Balancer<T>&, graph::GraphSequence&, std::vector<T>, std::size_t,      \
      double, std::size_t, const EngineConfig*);                             \
  template DynamicRunResult run_dynamic<T>(                                  \
      Balancer<T>&,                                                          \
      const std::function<std::unique_ptr<graph::GraphSequence>()>&,         \
      std::vector<T>, std::size_t, double, std::size_t);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::core
