#include "lb/core/dynamic_runner.hpp"

#include "lb/core/bounds.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/graph/properties.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/util/assert.hpp"
#include "lb/util/thread_pool.hpp"

namespace lb::core {

namespace {

/// Forwards frames from an inner sequence while asserting each one's
/// fingerprint against the profiling pass's record: if a sequence's
/// reset() fails to replay the identical topology stream, the run dies
/// loudly instead of silently measuring a different network.
class ReplayCheckSequence final : public graph::GraphSequence {
 public:
  ReplayCheckSequence(graph::GraphSequence& inner,
                      const std::vector<std::uint64_t>& expected)
      : inner_(&inner), expected_(&expected) {}

  std::size_t num_nodes() const override { return inner_->num_nodes(); }

  const graph::TopologyFrame& frame_at(std::size_t k) override {
    const graph::TopologyFrame& frame = inner_->frame_at(k);
    if (k >= 1 && k <= expected_->size()) {
      LB_ASSERT_MSG(frame.fingerprint() == (*expected_)[k - 1],
                    "profile/run frame mismatch: sequence did not replay "
                    "identically after reset()");
    }
    return frame;
  }

  void reset() override { inner_->reset(); }
  std::string name() const override { return inner_->name(); }

 private:
  graph::GraphSequence* inner_;
  const std::vector<std::uint64_t>* expected_;
};

}  // namespace

DynamicSpectralProfile profile_sequence(graph::GraphSequence& seq, std::size_t rounds,
                                        const SpectralProfileOptions& options) {
  DynamicSpectralProfile profile;
  profile.lambda2_per_round.reserve(rounds);
  profile.delta_per_round.reserve(rounds);
  profile.edges_per_round.reserve(rounds);
  profile.frame_fingerprints.reserve(rounds);
  profile.status_per_round.reserve(rounds);

  // Pass-local cache when the caller didn't supply one: repeated frames
  // within this pass (periodic sequences, static stretches) still hit.
  linalg::SpectralCache local_cache;
  linalg::SpectralCache* cache = options.cache != nullptr ? options.cache : &local_cache;

  linalg::SpectralQuery query;
  query.dense_cutoff = options.dense_cutoff;
  query.warm_start = options.warm;
  query.bound_skip_tol = options.warm ? options.bound_skip_tol : 0.0;

  for (std::size_t k = 1; k <= rounds; ++k) {
    // Frames, not graphs: masked rounds are profiled off the base +
    // alive mask (degrees from the mask, union-find connectivity,
    // frame-assembled Laplacian) with no subgraph materialization.
    const graph::TopologyFrame& frame = seq.frame_at(k);
    profile.edges_per_round.push_back(frame.num_edges());
    profile.delta_per_round.push_back(frame.max_degree());
    profile.frame_fingerprints.push_back(frame.fingerprint());
    if (frame.num_edges() == 0 || !graph::is_connected(frame)) {
      // λ2 = 0 for disconnected rounds: they contribute nothing to A_K,
      // matching the theorem (such rounds cannot guarantee any drop).
      profile.lambda2_per_round.push_back(0.0);
      profile.status_per_round.push_back(bounds::RoundSpectralStatus::kDisconnected);
      ++profile.disconnected_rounds;
      continue;
    }
    if (!options.warm) {
      // Cold oracle: the pre-cache behaviour, bit-for-bit.  Guard checks
      // and solves go through the same linalg entry points the old
      // profiler called; only the bookkeeping (statuses) is new.
      const linalg::SpectralGuard guard =
          linalg::spectral_guard(frame.num_nodes(), options.dense_cutoff);
      if (guard != linalg::SpectralGuard::kNone) {
        profile.lambda2_per_round.push_back(0.0);
        profile.status_per_round.push_back(bounds::RoundSpectralStatus::kGuardSkipped);
        if (profile.spectral_skipped_rounds == 0) profile.guard_fired = guard;
        ++profile.spectral_skipped_rounds;
        continue;
      }
      profile.lambda2_per_round.push_back(
          linalg::lambda2(frame, options.dense_cutoff));
      profile.status_per_round.push_back(bounds::RoundSpectralStatus::kComputed);
      ++profile.solved_rounds;
      continue;
    }
    const linalg::Lambda2Answer answer = cache->lambda2(frame, query);
    profile.lambda2_per_round.push_back(answer.value);
    switch (answer.tier) {
      case linalg::SpectralTier::kGuardSkip:
        profile.status_per_round.push_back(bounds::RoundSpectralStatus::kGuardSkipped);
        if (profile.spectral_skipped_rounds == 0) profile.guard_fired = answer.guard;
        ++profile.spectral_skipped_rounds;
        break;
      case linalg::SpectralTier::kExactHit:
        profile.status_per_round.push_back(bounds::RoundSpectralStatus::kCacheHit);
        ++profile.cache_hit_rounds;
        break;
      case linalg::SpectralTier::kBoundSkip:
        profile.status_per_round.push_back(bounds::RoundSpectralStatus::kBoundSkipped);
        ++profile.bound_skipped_rounds;
        break;
      case linalg::SpectralTier::kSolvedWarm:
        profile.status_per_round.push_back(bounds::RoundSpectralStatus::kComputed);
        ++profile.solved_rounds;
        ++profile.warm_solved_rounds;
        break;
      case linalg::SpectralTier::kSolvedDense:
      case linalg::SpectralTier::kSolvedCold:
        profile.status_per_round.push_back(bounds::RoundSpectralStatus::kComputed);
        ++profile.solved_rounds;
        break;
    }
  }
  profile.average_ratio = bounds::dynamic_average_ratio(
      profile.lambda2_per_round, profile.delta_per_round, profile.status_per_round);
  return profile;
}

DynamicSpectralProfile profile_sequence(graph::GraphSequence& seq, std::size_t rounds,
                                        std::size_t dense_cutoff) {
  SpectralProfileOptions options;
  options.dense_cutoff = dense_cutoff;
  return profile_sequence(seq, rounds, options);
}

template <class T>
DynamicRunResult run_dynamic(Balancer<T>& balancer, graph::GraphSequence& seq,
                             std::vector<T> load, std::size_t rounds, double epsilon,
                             std::size_t dense_cutoff,
                             const EngineConfig* base_config,
                             const SpectralProfileOptions* profile_options) {
  SpectralProfileOptions popts;
  if (profile_options != nullptr) {
    popts = *profile_options;
  } else {
    popts.dense_cutoff = dense_cutoff;
  }
  // Run-local cache when the caller didn't supply one: the run's SOS/OPS
  // spectral lookups (Tier-1 exact, hence bit-identical) share it with
  // the profiling pass below.
  linalg::SpectralCache run_cache;
  if (popts.cache == nullptr) popts.cache = &run_cache;

  DynamicRunResult out;
  out.profile = profile_sequence(seq, rounds, popts);

  EngineConfig config;
  if (base_config != nullptr) {
    config = *base_config;
  } else {
    config.record_trace = true;
  }
  // Let the engine's schedule-feeding spectral paths (SOS auto-β, OPS
  // binding) reuse the profile's cache — Tier-1 only over there, so the
  // trajectory is bit-identical to a cold run.  A base_config that
  // already carries a cache wins, and a warm=false oracle leg runs the
  // engine cache-free, exactly like the pre-cache pipeline.
  if (config.spectral_cache == nullptr && popts.warm) {
    config.spectral_cache = popts.cache;
  }
  util::ThreadPool* pool =
      config.pool != nullptr ? config.pool : &util::ThreadPool::global();

  // Deterministic parallel summary (same reduction the engine uses) in
  // place of the sequential potential() sweep.
  const double initial_potential = summarize_parallel(load, pool).potential;
  config.max_rounds = rounds;
  config.target_potential = epsilon * initial_potential;

  // A balancer may be reused across run_dynamic calls with different
  // sequences; drop any per-graph caches before the measured run (the
  // engine also invalidates per round via the frame's revisions).
  balancer.on_topology_changed();

  // One sequence, two passes: rewind, then assert each run round replays
  // the exact frame the profiler measured.
  seq.reset();
  ReplayCheckSequence checked(seq, out.profile.frame_fingerprints);
  out.run = run(balancer, checked, load, config);
  out.run.spectral_skipped = out.profile.spectral_skipped_rounds > 0;
  out.run.spectral_guard = out.profile.guard_fired;

  if (out.profile.average_ratio > 0.0) {
    if constexpr (std::is_integral_v<T>) {
      out.threshold = bounds::theorem8_threshold(
          load.size(), out.profile.lambda2_per_round, out.profile.delta_per_round);
      out.theorem_bound_rounds = bounds::theorem8_rounds(
          out.profile.average_ratio, initial_potential, out.threshold);
    } else {
      out.theorem_bound_rounds =
          bounds::theorem7_rounds(out.profile.average_ratio, epsilon);
    }
  }
  return out;
}

template <class T>
DynamicRunResult run_dynamic(
    Balancer<T>& balancer,
    const std::function<std::unique_ptr<graph::GraphSequence>()>& make_sequence,
    std::vector<T> load, std::size_t rounds, double epsilon, std::size_t dense_cutoff) {
  // The factory is invoked exactly once; reset() replays the stream for
  // the run, so identically-seeded double construction is no longer
  // required (or possible to get wrong).
  auto seq = make_sequence();
  return run_dynamic(balancer, *seq, std::move(load), rounds, epsilon, dense_cutoff,
                     nullptr, nullptr);
}

#define LB_INSTANTIATE(T)                                                    \
  template DynamicRunResult run_dynamic<T>(                                  \
      Balancer<T>&, graph::GraphSequence&, std::vector<T>, std::size_t,      \
      double, std::size_t, const EngineConfig*,                              \
      const SpectralProfileOptions*);                                        \
  template DynamicRunResult run_dynamic<T>(                                  \
      Balancer<T>&,                                                          \
      const std::function<std::unique_ptr<graph::GraphSequence>()>&,         \
      std::vector<T>, std::size_t, double, std::size_t);

LB_INSTANTIATE(double)
LB_INSTANTIATE(std::int64_t)
#undef LB_INSTANTIATE

}  // namespace lb::core
