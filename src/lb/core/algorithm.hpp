// The balancing-algorithm interface shared by Algorithm 1, Algorithm 2 and
// every baseline.  One synchronous round = one step() call.
//
// Contract for implementations:
//   * step() reads the load vector as the round-start state L^{t-1},
//     computes all transfer amounts from that snapshot, and applies them —
//     the concurrent semantics of the paper (§4, Algorithm 1).
//   * Total load is conserved exactly (tested as a property for every
//     algorithm).
//   * For T = Tokens only integral amounts move and no entry goes
//     negative.
//   * Randomized algorithms draw exclusively from the context's Rng so
//     runs are reproducible.
//   * Parallel kernels run on the context's pool and must be bit-identical
//     to their sequential fallback at every pool size (the flow-ledger /
//     fixed-chunk determinism contract, DESIGN.md §2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lb/graph/graph.hpp"
#include "lb/util/rng.hpp"

namespace lb::core {

template <class T>
class RoundContext;
template <class T>
class RunArena;
template <class T>
struct FlowProgram;

/// What one round did, for traces and convergence detection.
struct StepStats {
  double transferred = 0.0;     ///< total load moved (absolute amounts)
  std::size_t active_edges = 0; ///< edges that moved a nonzero amount
  std::size_t links = 0;        ///< links considered (|E| or matching size)
};

template <class T>
class Balancer {
 public:
  Balancer();
  virtual ~Balancer();

  /// Human-readable algorithm name for tables ("diffusion-cont", ...).
  virtual std::string name() const = 0;

  /// Execute one synchronous round on `load` within `ctx` (graph view,
  /// rng, thread pool, shared scratch arena and flow-ledger epoch — see
  /// round_context.hpp).  Implementations whose apply phase sweeps every
  /// node should honour a requested fused summary via
  /// ctx.publish_summary(); the engine falls back to a standalone
  /// deterministic reduction otherwise.
  virtual StepStats step(RoundContext<T>& ctx, std::vector<T>& load) = 0;

  /// Deprecated pre-RoundContext signature, kept because a large body of
  /// tests and benches exercises it as the equivalence oracle.  Builds a
  /// context over the global pool and a lazily-created balancer-owned
  /// arena, then dispatches to the context step() — so both signatures
  /// execute the exact same kernels.  New code should construct a
  /// RoundContext (or use engine::run) instead.
  StepStats step(const graph::Graph& g, std::vector<T>& load, util::Rng& rng);

  /// True if the algorithm ignores `g` and builds its own communication
  /// pattern (Algorithm 2's random partners).
  virtual bool uses_network() const { return true; }

  /// Distributed-execution hook (lb/shard/): describe this round as a
  /// FlowProgram — a pure per-edge flow function plus optional structure
  /// (see flow_program.hpp) — and return true; the sharded engine then
  /// replays the identical arithmetic through its ownership/halo
  /// machinery instead of calling step().  All round-consumed RNG draws
  /// (matchings) and trajectory-state updates (SOS's L^{t-1} flag,
  /// dimension exchange's round-robin counter) must happen HERE, exactly
  /// as step() would perform them, so planned and stepped runs consume
  /// identical streams.  Default: not plannable — the sharded engine
  /// falls back to step() for such rounds (shared-memory execution,
  /// zero modeled comm).
  virtual bool plan_round(RoundContext<T>& ctx, FlowProgram<T>& program) {
    (void)ctx;
    (void)program;
    return false;
  }

  /// The network's topology epoch changed (dynamic sequences): drop any
  /// cached per-graph views.  The context's shared flow ledger re-keys
  /// itself on graph::Graph::revision(), so most implementations no
  /// longer need this; it remains for balancers with private per-graph
  /// caches.
  virtual void on_topology_changed() {}

  /// A new Engine::run is starting: discard every piece of *trajectory*
  /// state carried between rounds (SOS's L^{t-1}, OPS's schedule
  /// position, dimension exchange's round-robin counter) so a reused
  /// balancer produces runs bit-identical to a fresh instance's.  Caches
  /// that are pure functions of the topology (spectral schedules,
  /// per-revision denominators, CSR views) are deliberately KEPT — that
  /// reuse is the campaign layer's amortization (DESIGN.md §6).  The
  /// engine calls this before round 1; the legacy step() shim never does
  /// (manual stepping has no run boundary).  Default: no state, no-op.
  virtual void on_run_begin() {}

 private:
  // Arena backing the deprecated step() shim; untouched when callers go
  // through RoundContext.
  std::unique_ptr<RunArena<T>> legacy_arena_;
};

using ContinuousBalancer = Balancer<double>;
using DiscreteBalancer = Balancer<std::int64_t>;

}  // namespace lb::core
