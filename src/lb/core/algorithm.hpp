// The balancing-algorithm interface shared by Algorithm 1, Algorithm 2 and
// every baseline.  One synchronous round = one step() call.
//
// Contract for implementations:
//   * step() reads the load vector as the round-start state L^{t-1},
//     computes all transfer amounts from that snapshot, and applies them —
//     the concurrent semantics of the paper (§4, Algorithm 1).
//   * Total load is conserved exactly (tested as a property for every
//     algorithm).
//   * For T = Tokens only integral amounts move and no entry goes
//     negative.
//   * Randomized algorithms draw exclusively from the supplied Rng so
//     runs are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lb/graph/graph.hpp"
#include "lb/util/rng.hpp"

namespace lb::core {

/// What one round did, for traces and convergence detection.
struct StepStats {
  double transferred = 0.0;     ///< total load moved (absolute amounts)
  std::size_t active_edges = 0; ///< edges that moved a nonzero amount
  std::size_t links = 0;        ///< links considered (|E| or matching size)
};

template <class T>
class Balancer {
 public:
  virtual ~Balancer() = default;

  /// Human-readable algorithm name for tables ("diffusion-cont", ...).
  virtual std::string name() const = 0;

  /// Execute one synchronous round on `load` over network `g`.
  virtual StepStats step(const graph::Graph& g, std::vector<T>& load,
                         util::Rng& rng) = 0;

  /// True if the algorithm ignores `g` and builds its own communication
  /// pattern (Algorithm 2's random partners).
  virtual bool uses_network() const { return true; }

  /// The network's topology epoch changed (dynamic sequences): drop any
  /// cached per-graph views (e.g. the flow ledger's CSR).  The engine calls
  /// this whenever graph::Graph::revision() differs from the previous
  /// round; implementations that cache nothing ignore it.
  virtual void on_topology_changed() {}
};

using ContinuousBalancer = Balancer<double>;
using DiscreteBalancer = Balancer<std::int64_t>;

}  // namespace lb::core
