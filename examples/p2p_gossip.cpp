// Peer-to-peer scenario: work-stealing without any topology (Algorithm 2).
//
// A render farm's job queue is scattered across workers that know nothing
// about each other's location — each round every worker gossips with one
// uniformly random peer and they balance their queues by the paper's
// random-partner rule.  Section 6 promises logarithmic convergence with
// no network parameter at all; this example measures it across farm sizes
// and compares against the 120·c·lnΦ budget of Theorem 12.
#include <cstdio>
#include <iostream>

#include "lb/core/bounds.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/options.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/util/table.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "p2p_gossip: queue balancing between anonymous peers via Algorithm 2");
  opts.add_int("jobs_per_worker", 1000, "average queue length")
      .add_int("seed", 11, "RNG seed");
  opts.parse(argc, argv);

  const std::int64_t per_worker = opts.get_int("jobs_per_worker");
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  std::printf("Every worker picks one random peer per round; matched pairs move\n"
              "floor(|q_i - q_j| / (4*max(d_i,d_j))) jobs (discrete Algorithm 2).\n\n");

  // Algorithm 2 needs no network; the API placeholder is a 2-clique.
  const auto dummy = lb::graph::make_complete(2);

  lb::util::Table table({"workers", "Phi0", "threshold 3200n", "T bound (c=1)",
                         "rounds measured", "max queue at end", "jobs moved/worker"});

  for (std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    lb::util::Rng rng(seed);
    // All jobs start on one ingest node — the worst case.
    auto queue = lb::workload::spike<std::int64_t>(
        n, per_worker * static_cast<std::int64_t>(n));
    const double phi0 = lb::core::potential(queue);
    const double threshold = lb::core::bounds::random_partner_threshold(n);
    const double budget = lb::core::bounds::theorem14_rounds(1.0, phi0, n);

    lb::core::DiscreteRandomPartner alg;
    std::size_t rounds = 0;
    double moved = 0.0;
    while (lb::core::potential(queue) > threshold && rounds < 100000) {
      const auto stats = alg.step(dummy, queue, rng);
      moved += stats.transferred;
      ++rounds;
    }
    const auto summary =
        lb::core::summarize_parallel(queue, &lb::util::ThreadPool::global());
    table.row()
        .add(static_cast<std::int64_t>(n))
        .add_sci(phi0)
        .add_sci(threshold)
        .add(budget, 5)
        .add(static_cast<std::int64_t>(rounds))
        .add(static_cast<std::int64_t>(summary.max))
        .add(moved / static_cast<double>(n), 5);
  }
  table.print(std::cout, "Rounds to reach the 3200n threshold vs Theorem 14 budget");

  std::printf("Note how the measured rounds barely grow with the farm size —\n"
              "the logarithmic, topology-free convergence of Section 6.\n");
  return 0;
}
