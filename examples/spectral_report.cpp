// Capacity-planning scenario: predict balancing time from the network's
// spectrum before deploying.
//
// Given a topology, the paper's bounds turn two spectral numbers — λ2 of
// the Laplacian and the maximum degree δ — into concrete round budgets.
// This example prints a full spectral report for a family of candidate
// interconnects (λ2, λmax, γ, eigen gap, Cheeger bounds on expansion,
// diameter) together with the Theorem-4/6 predictions, then validates one
// prediction by running the actual protocol.
#include <cstdio>
#include <iostream>

#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/graph/generators.hpp"
#include "lb/graph/properties.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/util/options.hpp"
#include "lb/util/table.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "spectral_report: spectra and predicted balancing times for candidate "
      "interconnects");
  opts.add_int("n", 256, "approximate node count per topology")
      .add_double("eps", 1e-6, "balancing accuracy for the Theorem-4 budget")
      .add_int("seed", 3, "RNG seed for randomized topologies");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const double eps = opts.get_double("eps");
  lb::util::Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));

  lb::util::Table table({"topology", "n", "delta", "diameter", "lambda2", "lambda_max",
                         "gamma", "expansion in", "T4 budget", "T6 budget"});

  for (const std::string family :
       {"path", "cycle", "torus2d", "torus3d", "hypercube", "debruijn", "regular",
        "tree", "star", "complete"}) {
    const auto g = lb::graph::make_named(family, n, rng);
    const auto spec = lb::linalg::spectral_summary(g);
    const auto [cheeger_lo, cheeger_hi] = lb::linalg::cheeger_bounds(g);
    const auto diam = lb::graph::diameter(g);

    const double t4 =
        lb::core::bounds::theorem4_rounds(spec.lambda2, g.max_degree(), eps);
    // Theorem-6 budget for a 1000-tokens-per-node spike.
    const double phi0 = lb::core::potential(lb::workload::spike<std::int64_t>(
        g.num_nodes(), 1000 * static_cast<std::int64_t>(g.num_nodes())));
    const double t6 = lb::core::bounds::theorem6_rounds(spec.lambda2, g.max_degree(),
                                                        g.num_nodes(), phi0);

    char expansion[64];
    std::snprintf(expansion, sizeof expansion, "[%.3f, %.3f]", cheeger_lo, cheeger_hi);
    table.row()
        .add(g.name())
        .add(static_cast<std::int64_t>(g.num_nodes()))
        .add(static_cast<std::int64_t>(g.max_degree()))
        .add(diam ? static_cast<std::int64_t>(*diam) : -1)
        .add(spec.lambda2, 4)
        .add(spec.lambda_max, 4)
        .add(spec.gamma, 4)
        .add(expansion)
        .add(t4, 5)
        .add(t6, 5);
  }
  table.print(std::cout,
              "Spectral quantities (our eigensolvers) and the paper's round budgets");

  // Validate one prediction end to end.
  const auto g = lb::graph::make_named("torus2d", n, rng);
  const double lambda2 = lb::linalg::lambda2(g);
  const double budget = lb::core::bounds::theorem4_rounds(lambda2, g.max_degree(), eps);
  auto load = lb::workload::spike<double>(
      g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()));
  const double phi0 = lb::core::potential(load);
  lb::core::ContinuousDiffusion alg;
  lb::core::EngineConfig cfg;
  cfg.max_rounds = static_cast<std::size_t>(budget) + 10;
  cfg.target_potential = eps * phi0;
  cfg.stall_rounds = 0;
  const auto result = lb::core::run_static(alg, g, load, cfg);
  std::printf("\nvalidation on %s: predicted <= %.0f rounds, measured %zu "
              "(%.0f%% of budget) — prediction %s\n",
              g.name().c_str(), budget, result.rounds,
              100.0 * static_cast<double>(result.rounds) / budget,
              result.reached_target ? "HELD" : "FAILED");
  return result.reached_target ? 0 : 1;
}
