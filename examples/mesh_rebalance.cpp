// HPC scenario: rebalancing a domain-decomposed mesh after adaptive
// refinement.
//
// A finite-element code partitions its mesh across a 3D torus of compute
// nodes (the classic interconnect of the diffusion literature).  After a
// few adaptive-refinement steps the element counts are badly skewed — a
// Zipf-like distribution where a few subdomains hold most of the work.
// Elements are indivisible, so this is exactly the discrete neighbourhood
// balancing problem of the paper: we run discrete Algorithm 1, watch the
// maximum node load (the step-time proxy) fall, and compare against the
// dimension-exchange alternative a batch scheduler might use.
#include <cstdio>
#include <iostream>
#include <utility>

#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/options.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/util/table.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "mesh_rebalance: redistribute mesh elements across a 3D-torus machine "
      "after adaptive refinement");
  opts.add_int("side", 8, "torus side (machine is side^3 nodes)")
      .add_int("elements_per_node", 20000, "average mesh elements per node")
      .add_int("seed", 7, "workload seed");
  opts.parse(argc, argv);

  const std::size_t side = static_cast<std::size_t>(opts.get_int("side"));
  const auto machine = lb::graph::make_torus3d(side, side, side);
  const std::size_t n = machine.num_nodes();
  const std::int64_t total =
      opts.get_int("elements_per_node") * static_cast<std::int64_t>(n);

  lb::util::Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));
  // Adaptive refinement concentrated elements near a shock front: model as
  // a Zipf distribution over subdomains.
  auto elements = lb::workload::zipf<std::int64_t>(n, total, 1.2, rng);

  const auto before = lb::core::summarize(elements);
  std::printf("machine        : %s (%zu nodes, degree %zu)\n", machine.name().c_str(),
              n, machine.max_degree());
  std::printf("mesh           : %lld elements total, avg %.0f per node\n",
              static_cast<long long>(before.total), before.average);
  std::printf("after refine   : max/avg imbalance = %.2fx, Phi = %.3e\n\n",
              static_cast<double>(before.max) / before.average, before.potential);

  // A parallel step costs max-load; track it per migration round.
  lb::util::Table table({"round", "max load", "max/avg", "Phi", "moved this round"});
  auto run_with_reporting = [&](lb::core::DiscreteBalancer& alg,
                                std::vector<std::int64_t> load) {
    lb::util::Rng step_rng(1);
    std::size_t round = 0;
    double moved_total = 0.0;
    for (; round < 10000; ++round) {
      // Deterministic parallel reduction — the same observability kernel
      // the engine fuses into its rounds (DESIGN.md §4).
      const auto summary =
          lb::core::summarize_parallel(load, &lb::util::ThreadPool::global());
      if (round % 8 == 0) {
        table.row()
            .add(static_cast<std::int64_t>(round))
            .add(static_cast<std::int64_t>(summary.max))
            .add(static_cast<double>(summary.max) / summary.average, 4)
            .add_sci(summary.potential)
            .add(moved_total, 6);
      }
      const auto stats = alg.step(machine, load, step_rng);
      moved_total = stats.transferred;
      if (stats.transferred == 0.0) break;  // discrete fixed point
    }
    const auto final_summary =
        lb::core::summarize_parallel(load, &lb::util::ThreadPool::global());
    return std::make_pair(round, final_summary);
  };

  std::printf("--- discrete diffusion (Algorithm 1) ---\n");
  lb::core::DiscreteDiffusion diffusion;
  const auto [diff_rounds, diff_summary] = run_with_reporting(diffusion, elements);
  table.print(std::cout, "");

  std::printf("fixed point after %zu rounds: max/avg = %.4fx, discrepancy = %.0f "
              "elements\n\n",
              diff_rounds, static_cast<double>(diff_summary.max) / diff_summary.average,
              diff_summary.discrepancy);

  // Comparator: dimension exchange needs more rounds for the same result.
  lb::core::DiscreteDimensionExchange dimexch;
  lb::util::Rng de_rng(1);
  auto de_load = elements;
  std::size_t de_rounds = 0;
  std::size_t idle = 0;
  while (de_rounds < 100000 && idle < 64) {
    const auto stats = dimexch.step(machine, de_load, de_rng);
    idle = stats.transferred == 0.0 ? idle + 1 : 0;
    ++de_rounds;
  }
  const auto de_summary = lb::core::summarize(de_load);
  std::printf("--- dimension exchange [12] for comparison ---\n");
  std::printf("fixed point after ~%zu rounds: max/avg = %.4fx\n", de_rounds - idle,
              static_cast<double>(de_summary.max) / de_summary.average);
  std::printf("\ndiffusion reached balance in %zu rounds vs ~%zu — the paper's "
              "constant-factor advantage on a real rebalancing shape.\n",
              diff_rounds, de_rounds - idle);
  return 0;
}
