// Fault-tolerance scenario: balancing while interconnect links fail and
// recover (Section 5 of the paper).
//
// A cluster's torus interconnect suffers correlated link failures (each
// link is a two-state Markov chain).  We run discrete Algorithm 1 through
// the outage pattern, profile the per-round spectral ratio lambda2/delta,
// and compare the measured convergence against the Theorem-8 budget
// computed from the *actual* failure trace — demonstrating that the
// dynamic-network guarantee is usable operationally: measure A_K, predict
// the rebalance time.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "lb/core/diffusion.hpp"
#include "lb/core/dynamic_runner.hpp"
#include "lb/core/load.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/options.hpp"
#include "lb/util/table.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "dynamic_network: diffusion balancing across a failing interconnect");
  opts.add_int("side", 8, "torus side (side x side nodes)")
      .add_double("fail", 0.05, "per-round link failure probability")
      .add_double("recover", 0.3, "per-round link recovery probability")
      .add_int("rounds", 3000, "round budget")
      .add_int("seed", 5, "RNG seed");
  opts.parse(argc, argv);

  const std::size_t side = static_cast<std::size_t>(opts.get_int("side"));
  const double fail = opts.get_double("fail");
  const double recover = opts.get_double("recover");
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  const auto torus = lb::graph::make_torus2d(side, side);
  std::printf("interconnect : %s, per-link Markov failures "
              "(fail=%.2f, recover=%.2f -> steady-state uptime %.0f%%)\n",
              torus.name().c_str(), fail, recover,
              100.0 * recover / (fail + recover));

  auto load = lb::workload::spike<std::int64_t>(
      torus.num_nodes(), 100000 * static_cast<std::int64_t>(torus.num_nodes()));
  const double phi0 = lb::core::potential(load);
  std::printf("workload     : spike of %lld tokens on node 0 (Phi = %.3e)\n\n",
              static_cast<long long>(lb::core::total_load(load)), phi0);

  auto factory = [&torus, fail, recover, seed] {
    return lb::graph::make_markov_failure_sequence(torus, fail, recover, seed);
  };

  lb::core::DiscreteDiffusion alg;
  const auto result =
      lb::core::run_dynamic<std::int64_t>(alg, factory, load, rounds, 1e-12);

  std::printf("failure trace: %zu/%zu rounds disconnected, A_K = %.4f "
              "(static torus would give %.4f)\n",
              result.profile.disconnected_rounds, rounds,
              result.profile.average_ratio,
              0.25 * 2.0 * (1.0 - std::cos(2.0 * 3.14159265358979 /
                                           static_cast<double>(side))));
  std::printf("theorem 8    : threshold Phi* = %.3e, budget K = %.0f rounds\n",
              result.threshold, result.theorem_bound_rounds);

  const std::size_t reached =
      result.run.trace.first_round_at_or_below(result.threshold);
  std::printf("measured     : reached Phi* at round %zu (ratio %.3f of budget)\n\n",
              reached,
              result.theorem_bound_rounds > 0
                  ? static_cast<double>(reached) / result.theorem_bound_rounds
                  : 0.0);

  // Milestone table: how the imbalance decayed through the outages.
  lb::util::Table table({"round", "Phi", "discrepancy", "active edges"});
  for (std::size_t mark : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    if (mark > result.run.trace.size()) break;
    const auto& rec = result.run.trace[mark - 1];
    table.row()
        .add(static_cast<std::int64_t>(rec.round))
        .add_sci(rec.potential)
        .add(rec.discrepancy, 6)
        .add(static_cast<std::int64_t>(rec.active_edges));
  }
  table.print(std::cout, "Convergence through the failure trace");

  // Second act: rolling maintenance.  A contiguous band of racks is
  // drained while the wave front sweeps the torus — the masked-subgraph
  // substrate runs it straight off the base graph + alive mask, so we
  // can also show what the old per-round rebuild path used to cost.
  const std::size_t wave_width = std::max<std::size_t>(1, torus.num_nodes() / 8);
  std::printf("\nrolling maintenance: %zu-node failure wave, 1 node/round\n",
              wave_width);
  auto wave_load = lb::workload::spike<std::int64_t>(
      torus.num_nodes(), 100000 * static_cast<std::int64_t>(torus.num_nodes()));
  auto wave_seq = lb::graph::make_failure_wave_sequence(torus, wave_width, 1);
  lb::core::DiscreteDiffusion wave_alg;
  const auto wave = lb::core::run_dynamic<std::int64_t>(wave_alg, *wave_seq,
                                                        wave_load, rounds, 1e-12);

  // Time both substrates with a bare engine run over the identical
  // replayed stream (run_dynamic's measured pass carries the per-round
  // frame-replay fingerprint check, which would bias the comparison).
  const auto timed_run = [&](lb::graph::GraphSequence& seq) {
    auto load2 = lb::workload::spike<std::int64_t>(
        torus.num_nodes(), 100000 * static_cast<std::int64_t>(torus.num_nodes()));
    lb::core::DiscreteDiffusion alg2;
    lb::core::EngineConfig cfg;
    cfg.max_rounds = wave.run.rounds;
    cfg.target_potential = 0.0;
    return lb::core::run(alg2, seq, load2, cfg);
  };
  wave_seq->reset();
  const auto masked = timed_run(*wave_seq);
  std::printf("masked run   : %zu rounds, A_K = %.4f, %.2f us/round\n",
              wave.run.rounds, wave.profile.average_ratio,
              masked.rounds > 0
                  ? masked.total_seconds * 1e6 / static_cast<double>(masked.rounds)
                  : 0.0);

  // The same stream through the pre-mask rebuild path (every round a
  // fresh GraphBuilder::build()): identical trajectory, slower rounds.
  wave_seq->reset();
  auto rebuild_view = lb::graph::make_materialized_view(*wave_seq);
  const auto rebuild = timed_run(*rebuild_view);
  std::printf("rebuild run  : identical trajectory (Phi %.3e vs %.3e), "
              "%.2f us/round\n",
              rebuild.final_potential, masked.final_potential,
              rebuild.rounds > 0
                  ? rebuild.total_seconds * 1e6 / static_cast<double>(rebuild.rounds)
                  : 0.0);
  return reached > 0 ? 0 : 1;
}
