// Mixed-hardware scenario: balancing a token workload across a cluster
// where half the racks run 4x-faster nodes (the heterogeneous model of
// Elsässer-Monien-Preis, reference [9] of the paper).
//
// Plain diffusion would equalize token *counts*, leaving the fast nodes
// idle half the time; the speed-weighted rule equalizes *normalized*
// load ℓ_i/s_i, so every node finishes its share simultaneously.  The
// example runs both and compares the makespan proxy max_i(ℓ_i/s_i).
#include <cstdio>
#include <iostream>

#include "lb/core/diffusion.hpp"
#include "lb/core/heterogeneous.hpp"
#include "lb/core/load.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/options.hpp"
#include "lb/util/table.hpp"
#include "lb/workload/initial.hpp"

namespace {

double makespan(const std::vector<std::int64_t>& load, const std::vector<double>& speed) {
  double worst = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    worst = std::max(worst, static_cast<double>(load[i]) / speed[i]);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  lb::util::Options opts(
      "hetero_cluster: speed-aware balancing on a mixed-hardware torus");
  opts.add_int("side", 16, "torus side")
      .add_double("fast_factor", 4.0, "speed of the fast half of the nodes")
      .add_int("tokens_per_node", 10000, "average tokens per node")
      .add_int("rounds", 3000, "migration rounds");
  opts.parse(argc, argv);

  const std::size_t side = static_cast<std::size_t>(opts.get_int("side"));
  const double fast = opts.get_double("fast_factor");
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));

  const auto g = lb::graph::make_torus2d(side, side);
  const std::size_t n = g.num_nodes();
  std::vector<double> speed(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Fast nodes in even columns — racks alternate.
    speed[i] = (i % 2 == 0) ? fast : 1.0;
  }

  const std::int64_t total =
      opts.get_int("tokens_per_node") * static_cast<std::int64_t>(n);
  const auto start = lb::workload::spike<std::int64_t>(n, total);

  std::printf("cluster  : %s, %zu nodes, half at %.0fx speed\n", g.name().c_str(), n,
              fast);
  std::printf("workload : %lld tokens, all on node 0\n\n",
              static_cast<long long>(total));

  lb::util::Table table({"policy", "rounds", "makespan max(l/s)", "vs ideal",
                         "tokens on a fast node", "on a slow node"});
  const double total_speed = (fast + 1.0) * static_cast<double>(n) / 2.0;
  const double ideal = static_cast<double>(total) / total_speed;

  auto report = [&](const char* label, const std::vector<std::int64_t>& load,
                    std::size_t used_rounds) {
    table.row()
        .add(label)
        .add(static_cast<std::int64_t>(used_rounds))
        .add(makespan(load, speed), 5)
        .add(makespan(load, speed) / ideal, 4)
        .add(load[0 /*fast: even index*/], 6)
        .add(load[1], 6);
  };

  // Policy A: speed-blind diffusion (equal token counts).
  {
    lb::util::Rng rng(1);
    auto load = start;
    lb::core::DiscreteDiffusion alg;
    std::size_t r = 0;
    for (; r < rounds; ++r) {
      if (alg.step(g, load, rng).transferred == 0.0) break;
    }
    report("speed-blind diffusion", load, r);
  }

  // Policy B: speed-weighted diffusion (equal normalized load).
  {
    lb::util::Rng rng(1);
    auto load = start;
    lb::core::DiscreteHeterogeneousDiffusion alg(speed);
    std::size_t r = 0;
    for (; r < rounds; ++r) {
      if (alg.step(g, load, rng).transferred == 0.0) break;
    }
    report("speed-weighted diffusion", load, r);
  }

  table.print(std::cout, "Makespan proxy after rebalancing (lower is better; "
                         "ideal = W / sum(s))");
  std::printf("The speed-weighted rule hands the %.0fx nodes %.0fx the tokens,\n"
              "cutting the makespan toward the ideal; the speed-blind rule wastes\n"
              "the fast nodes.\n",
              fast, fast);
  return 0;
}
