// Sharded-execution tour: the K-domain partitioned engine (lb/shard/).
//
// The shared-memory engine computes every round centrally; the sharded
// engine splits node ownership across K domains, runs each domain's half
// of the round independently, and reconciles boundary state by explicit
// halo messages at a deterministic barrier.  The headline contract is
// that nothing about the trajectory changes — bit-identical RunResults —
// while the comm bill (messages, boundary bytes, modeled halo waits)
// becomes observable per domain.
//
// Three acts:
//   1. ownership — how the greedy edge-cut partitioner splits the torus
//      and how much load each domain starts with;
//   2. execution — the sharded run versus the shared-memory oracle,
//      with per-domain boundary traffic;
//   3. straggler — the same run with one slow link (latency override):
//      the modeled halo-wait pinpoints the domain stuck behind it.
#include <cstdio>
#include <iostream>
#include <vector>

#include "lb/core/diffusion.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/graph/generators.hpp"
#include "lb/shard/halo.hpp"
#include "lb/shard/ownership.hpp"
#include "lb/shard/sharded_engine.hpp"
#include "lb/util/options.hpp"
#include "lb/util/table.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "lb_sharded: K-domain partitioned execution with halo exchange, "
      "bit-identical to the shared-memory engine");
  opts.add_int("side", 16, "torus side (side x side nodes)")
      .add_int("domains", 4, "ownership domains K")
      .add_int("rounds", 400, "round budget")
      .add_int("seed", 7, "engine RNG seed");
  opts.parse(argc, argv);

  const std::size_t side = static_cast<std::size_t>(opts.get_int("side"));
  const std::size_t domains = static_cast<std::size_t>(opts.get_int("domains"));
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  const auto torus = lb::graph::make_torus2d(side, side);
  const auto load0 = lb::workload::two_spikes<double>(
      torus.num_nodes(), 1000.0 * static_cast<double>(torus.num_nodes()));

  // --- Act 1: ownership. -------------------------------------------------
  const auto map = lb::shard::OwnershipMap::build(
      torus, domains, lb::shard::PartitionPolicy::kGreedyEdgeCut);
  const auto halo = lb::shard::HaloExchange::build(torus, map);
  std::printf("topology  : %s (%zu nodes, %zu edges)\n", torus.name().c_str(),
              torus.num_nodes(), torus.num_edges());
  std::printf("partition : K=%zu greedy edge-cut, %zu cut edges (%.1f%% of "
              "all edges)\n\n",
              domains, map.cut_edges(),
              100.0 * static_cast<double>(map.cut_edges()) /
                  static_cast<double>(torus.num_edges()));

  lb::util::Table own({"domain", "nodes", "owned edges", "halo links",
                       "initial load"});
  for (std::size_t d = 0; d < domains; ++d) {
    double initial = 0.0;
    for (const lb::graph::NodeId u : map.nodes(d)) initial += load0[u];
    own.row()
        .add(static_cast<std::int64_t>(d))
        .add(static_cast<std::int64_t>(map.nodes(d).size()))
        .add(static_cast<std::int64_t>(halo.plan(d).owned_edges.size()))
        .add(static_cast<std::int64_t>(halo.plan(d).links.size()))
        .add(initial, 1);
  }
  own.print(std::cout, "Act 1: ownership map");

  // --- Act 2: sharded run vs the shared-memory oracle. -------------------
  lb::core::EngineConfig cfg;
  cfg.max_rounds = rounds;
  cfg.target_potential = 1e-6 * lb::core::potential(load0);
  cfg.seed = seed;

  auto oracle_alg = lb::core::make_diffusion_continuous();
  std::vector<double> oracle_load = load0;
  const auto oracle = lb::core::run_static(*oracle_alg, torus, oracle_load, cfg);

  lb::shard::ShardConfig shard;
  shard.domains = domains;
  auto alg = lb::core::make_diffusion_continuous();
  std::vector<double> load = load0;
  const auto run = lb::shard::run_static(*alg, torus, load, cfg, shard);

  const bool identical = run.rounds == oracle.rounds &&
                         run.final_potential == oracle.final_potential &&
                         load == oracle_load;
  std::printf("\nrounds    : %zu (target %s)\n", run.rounds,
              run.reached_target ? "reached" : "not reached");
  std::printf("identity  : sharded run %s the shared-memory oracle\n",
              identical ? "bit-identical to" : "DIVERGED from");
  std::printf("comm bill : %llu messages, %llu boundary bytes over %zu "
              "sharded rounds\n\n",
              static_cast<unsigned long long>(run.comm.messages),
              static_cast<unsigned long long>(run.comm.boundary_bytes),
              run.sharded_rounds);

  lb::util::Table traffic({"domain", "messages", "boundary bytes",
                           "final load"});
  for (std::size_t d = 0; d < domains; ++d) {
    double final_load = 0.0;
    for (const lb::graph::NodeId u : map.nodes(d)) final_load += load[u];
    traffic.row()
        .add(static_cast<std::int64_t>(d))
        .add(static_cast<std::int64_t>(run.domain_comm[d].messages))
        .add(static_cast<std::int64_t>(run.domain_comm[d].boundary_bytes))
        .add(final_load, 1);
  }
  traffic.print(std::cout, "Act 2: per-domain boundary traffic");

  // --- Act 3: one slow link. ---------------------------------------------
  // Every link ships at 1 GB/s with 1 µs latency, except 0 -> 1, which
  // models a degraded cable.  The trajectory cannot change (the cost
  // model never feeds back into the algorithm); only domain 1's modeled
  // halo-wait balloons.
  lb::shard::ShardConfig slow = shard;
  slow.default_link = {1.0, 0.001};
  slow.link_overrides.push_back({0, 1, {250.0, 0.5}});
  auto slow_alg = lb::core::make_diffusion_continuous();
  std::vector<double> slow_load = load0;
  const auto straggler = lb::shard::run_static(*slow_alg, torus, slow_load, cfg, slow);

  std::printf("\nstraggler : link 0->1 degraded to 250us latency + 0.5us/byte\n");
  lb::util::Table waits({"domain", "halo wait (us)", "wait share"});
  double total_wait = 0.0;
  for (std::size_t d = 0; d < domains; ++d) {
    total_wait += straggler.domain_comm[d].halo_wait_us;
  }
  for (std::size_t d = 0; d < domains; ++d) {
    waits.row()
        .add(static_cast<std::int64_t>(d))
        .add(straggler.domain_comm[d].halo_wait_us, 1)
        .add(total_wait > 0.0
                 ? straggler.domain_comm[d].halo_wait_us / total_wait
                 : 0.0,
             3);
  }
  waits.print(std::cout, "Act 3: modeled halo waits under one slow link");

  const bool slow_identical = slow_load == load &&
                              straggler.final_potential == run.final_potential;
  std::printf("trajectory: %s under the degraded link (cost model is "
              "observability only)\n",
              slow_identical ? "unchanged" : "CHANGED");

  return identical && slow_identical ? 0 : 1;
}
