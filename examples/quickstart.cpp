// Quickstart: balance a hot spot on a 2D torus with Algorithm 1 and
// check the measured convergence against the Theorem-4 prediction.
//
//   ./quickstart [--n=1024] [--eps=1e-6]
//
// This is the five-minute tour of the public API: build a graph, create a
// workload, pick an algorithm, run the engine, inspect the result.
#include <cstdio>

#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/graph/generators.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/util/options.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts("quickstart: diffusion load balancing on a torus");
  opts.add_int("n", 1024, "number of nodes (rounded to a square torus)")
      .add_double("eps", 1e-6, "stop when Phi <= eps * Phi0");
  opts.parse(argc, argv);

  // 1. Build the network.  Generators label graphs with a readable name.
  lb::util::Rng rng(2024);
  const auto g = lb::graph::make_named("torus2d", static_cast<std::size_t>(opts.get_int("n")), rng);
  std::printf("network : %s  (delta = %zu, %zu edges)\n", g.name().c_str(),
              g.max_degree(), g.num_edges());

  // 2. Create the workload: every token starts on node 0.
  auto load = lb::workload::spike<std::int64_t>(
      g.num_nodes(), 1000 * static_cast<std::int64_t>(g.num_nodes()));
  const double phi0 = lb::core::potential(load);
  std::printf("initial : Phi = %.3e, discrepancy = %.0f\n", phi0,
              lb::core::discrepancy(load));

  // 3. What does the paper predict?  Theorem 6 gives the discrete budget.
  const double lambda2 = lb::linalg::lambda2(g);
  const double threshold = lb::core::bounds::discrete_potential_threshold(
      g.max_degree(), g.num_nodes(), lambda2);
  const double bound =
      lb::core::bounds::theorem6_rounds(lambda2, g.max_degree(), g.num_nodes(), phi0);
  std::printf("theory  : lambda2 = %.4f, threshold Phi* = %.3e, T <= %.0f rounds\n",
              lambda2, threshold, bound);

  // 4. Run Algorithm 1 (discrete: whole tokens only).
  lb::core::DiscreteDiffusion algorithm;
  lb::core::EngineConfig config;
  config.target_potential = threshold;
  config.max_rounds = static_cast<std::size_t>(bound) + 1000;
  const auto result = lb::core::run_static(algorithm, g, load, config);

  // 5. Report.  The per-round Φ/K come from the engine's fused
  // deterministic parallel reduction (DESIGN.md §4); the wall-clock split
  // shows what observability costs on top of the balancing work itself.
  std::printf("run     : %zu rounds, Phi = %.3e, discrepancy = %.0f\n", result.rounds,
              result.final_potential, result.final_discrepancy);
  std::printf("time    : %.1f ms total (%.1f ms step, %.1f ms metrics)\n",
              result.total_seconds * 1e3, result.step_seconds * 1e3,
              result.metrics_seconds * 1e3);
  std::printf("verdict : reached the Theorem-6 threshold %s (bound %.0f rounds, "
              "measured %zu, ratio %.2f)\n",
              result.reached_target ? "YES" : "NO", bound, result.rounds,
              bound > 0 ? static_cast<double>(result.rounds) / bound : 0.0);

  const auto report = lb::core::analyze(result.trace, phi0);
  std::printf("rate    : mean per-round drop factor %.4f "
              "(theorem guarantees <= %.4f while above Phi*)\n",
              report.mean_drop_ratio,
              1.0 - lb::core::bounds::lemma5_drop_fraction(lambda2, g.max_degree()));
  return result.reached_target ? 0 : 1;
}
