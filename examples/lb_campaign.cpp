// Campaign tour: declare a (graph × scenario × workload × balancer ×
// scalar × seed) grid, execute it with per-cell run isolation and
// per-base artifact reuse, and read the replicate-aggregated report.
//
//   ./lb_campaign [--n=64] [--replicates=5] [--rounds=2000] [--csv]
//
// One CampaignRunner call replaces what used to be dozens of hand-wired
// Engine::run drivers: the runner builds each base graph once, computes
// its spectral profile once (SOS's optimal β, OPS's eigenvalue schedule),
// reuses balancer instances and flow-ledger CSRs across every cell on
// that base, and still produces per-cell results bit-identical to a
// fresh engine — that is the Balancer::on_run_begin() run-isolation
// contract (DESIGN.md §6).
#include <cstdio>

#include "lb/exp/campaign.hpp"
#include "lb/exp/plan.hpp"
#include "lb/exp/report.hpp"
#include "lb/util/options.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts("lb_campaign: experiment grids with artifact reuse");
  opts.add_int("n", 64, "nodes per base graph")
      .add_int("replicates", 5, "independent seeds per cell group")
      .add_int("rounds", 2000, "round budget per cell")
      .add_double("eps", 1e-4, "stop a cell at Phi <= eps * Phi0")
      .add_flag("csv", "print the per-cell CSV instead of the aggregate table");
  opts.parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));

  // 1. Declare the grid.  Axes are specs, not objects: the runner owns
  // construction (and caches it per base).
  lb::exp::ExperimentPlan plan;
  plan.graphs = {{"torus2d", n}, {"hypercube", n}, {"cycle", n}};
  plan.scenarios = {lb::exp::static_scenario(), lb::exp::bernoulli_scenario(0.85),
                    lb::exp::churn_scenario(0.85, 0.05)};
  plan.workloads = {{"spike", 1000.0}, {"bimodal", 1000.0}};
  plan.balancers = {{lb::exp::BalancerKind::kDiffusion, 0.0},
                    {lb::exp::BalancerKind::kSos, 0.0},
                    {lb::exp::BalancerKind::kOps, 0.0},
                    {lb::exp::BalancerKind::kDimensionExchange, 0.0},
                    {lb::exp::BalancerKind::kRandomPartner, 0.0},
                    {lb::exp::BalancerKind::kAsync, 0.5},
                    {lb::exp::BalancerKind::kHeterogeneous, 4.0}};
  plan.seeds.clear();
  for (std::int64_t r = 0; r < opts.get_int("replicates"); ++r) {
    plan.seeds.push_back(static_cast<std::uint64_t>(r + 1));
  }
  plan.engine.max_rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  plan.epsilon = opts.get_double("eps");

  const std::size_t cells = plan.cells().size();
  std::printf("plan    : %zu graphs x %zu scenarios x %zu workloads x %zu "
              "balancers x 2 scalars x %zu seeds -> %zu cells (after "
              "compatibility filtering)\n",
              plan.graphs.size(), plan.scenarios.size(), plan.workloads.size(),
              plan.balancers.size(), plan.seeds.size(), cells);

  // 2. Execute.  Cached mode shares per-base artifacts; every cell is
  // still bit-identical to a fresh-engine run of the same coordinates.
  lb::exp::CampaignRunner runner({lb::exp::ArtifactMode::kCached, nullptr});
  const lb::exp::CampaignReport report = runner.run(plan);
  std::printf("run     : %zu cells in %.2f s (%.1f us/cell)\n\n",
              report.cells.size(), report.wall_seconds, report.us_per_cell());

  // 3. Report: replicate aggregation with mean/CI (util::RunningStats)
  // and Phi-trajectory quantiles, as CSV artifacts or a summary table.
  if (opts.get_flag("csv")) {
    std::printf("%s", report.cells_csv(plan).c_str());
    return 0;
  }
  std::printf("%s", report.aggregate_csv(plan).c_str());
  return report.cells.empty() ? 1 : 0;
}
