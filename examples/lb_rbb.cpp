// Repeated Balls-into-Bins tour: open-system traffic meets a random-
// matching balancer (lb/workload/stream.hpp + lb/core/random_partner.hpp).
//
// The RBB process studied by Becchetti et al. — and the open-system view
// of the paper's diffusion framework — repeats two moves every round:
// balls arrive at and depart from random bins, then a rebalancing step
// smooths the bins it touched.  Here the arrivals are a Poisson stream
// (memoryless churn, the canonical RBB traffic), the rebalancer is the
// discrete random-partner protocol (Algorithm 2 of the paper), and the
// question the example answers is the steady-state one: with traffic
// that never stops, how far from balanced does the system hover?
//
// Three acts:
//   1. traffic — what one stream round looks like (the delta the engine
//      applies before the balancer plans flows);
//   2. steady state — the run's settling/peak report: the per-round max
//      load hovers near average instead of growing with the churn;
//   3. determinism — the same open-system run on a 1-thread pool and on
//      the hardware pool, byte-compared: the stream contract makes the
//      trajectory substrate-independent.  A mismatch exits nonzero, so
//      the smoke test doubles as an open-system determinism check.
#include <cstdio>
#include <vector>

#include "lb/core/engine.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/options.hpp"
#include "lb/util/rng.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/workload/initial.hpp"
#include "lb/workload/stream.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "lb_rbb: repeated balls-into-bins — Poisson arrivals/departures over "
      "a random-partner rebalancer, with pool bit-identity self-checked");
  opts.add_int("bins", 256, "number of bins (nodes)")
      .add_int("balls_per_bin", 50, "initial balls per bin")
      .add_int("rate", 16, "mean arrival and departure events per round")
      .add_int("rounds", 400, "round budget")
      .add_int("seed", 11, "engine/stream RNG seed");
  opts.parse(argc, argv);

  const std::size_t bins = static_cast<std::size_t>(opts.get_int("bins"));
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const std::int64_t total =
      static_cast<std::int64_t>(bins) * opts.get_int("balls_per_bin");

  // Bins gossip over a random 4-regular-ish graph, the standard sparse
  // RBB communication structure.
  lb::util::Rng grng(seed);
  const auto g = lb::graph::make_random_regular(bins, 4, grng);

  lb::workload::StreamSpec spec;
  spec.kind = lb::workload::StreamKind::kPoisson;
  spec.arrival_rate = static_cast<double>(opts.get_int("rate"));
  spec.departure_rate = static_cast<double>(opts.get_int("rate"));
  spec.quantum = 1.0;  // one ball per event

  // --- Act 1: one round of traffic. --------------------------------------
  {
    auto peek = lb::workload::make_stream<std::int64_t>(spec, bins, seed);
    const auto& delta = peek->delta_at(1);
    std::int64_t in = 0, out = 0;
    for (const auto& [node, amount] : delta.arrivals) in += amount;
    for (const auto& [node, amount] : delta.departures) out += amount;
    std::printf("Act 1: round-1 traffic on %zu bins: %zu arrival bins "
                "(+%lld balls), %zu departure bins (-%lld requested)\n\n",
                bins, delta.arrivals.size(), static_cast<long long>(in),
                delta.departures.size(), static_cast<long long>(out));
  }

  // --- Act 2: the open-system run and its steady state. ------------------
  lb::core::EngineConfig cfg;
  cfg.max_rounds = rounds;
  cfg.target_potential = 0.0;  // open systems never "finish" — run the budget
  cfg.record_trace = false;
  cfg.seed = seed;
  cfg.check_invariants = true;  // ledgered conservation on every round

  auto stream = lb::workload::make_stream<std::int64_t>(spec, bins, seed);
  cfg.stream = stream.get();
  auto balancer = lb::core::make_random_partner_discrete();
  auto load = lb::workload::uniform_random<std::int64_t>(bins, total, grng);
  const lb::core::RunResult run =
      lb::core::run_static(*balancer, g, load, cfg);

  const auto& s = run.steady;
  std::printf("Act 2: %zu rounds of churn (%+.0f balls net)\n",
              run.rounds, run.stream_arrivals - run.stream_departures);
  std::printf("  peak load    : p50 %.0f   p90 %.0f   p99 %.0f   max %.0f "
              "(average ~%lld)\n",
              s.peak_p50, s.peak_p90, s.peak_p99, s.peak_max,
              static_cast<long long>(opts.get_int("balls_per_bin")));
  std::printf("  busiest round: #%zu (+%.0f balls), re-settled in %zu "
              "rounds%s\n\n",
              s.burst_round, s.burst_arrivals, s.settling_rounds,
              s.settled ? "" : " (censored at run end)");

  // --- Act 3: substrate independence, self-checked. ----------------------
  std::size_t mismatches = 0;
  {
    lb::util::ThreadPool pool1(1);
    lb::core::EngineConfig check_cfg = cfg;
    check_cfg.pool = &pool1;
    auto replay = lb::workload::make_stream<std::int64_t>(spec, bins, seed);
    check_cfg.stream = replay.get();
    auto alg = lb::core::make_random_partner_discrete();
    // Rebuild the identical initial load: same generator chain as above.
    lb::util::Rng g2(seed);
    (void)lb::graph::make_random_regular(bins, 4, g2);
    auto load1 = lb::workload::uniform_random<std::int64_t>(bins, total, g2);
    const lb::core::RunResult run1 =
        lb::core::run_static(*alg, g, load1, check_cfg);

    if (run1.rounds != run.rounds) ++mismatches;
    if (run1.final_potential != run.final_potential) ++mismatches;
    if (run1.final_discrepancy != run.final_discrepancy) ++mismatches;
    if (run1.stream_arrivals != run.stream_arrivals) ++mismatches;
    if (run1.stream_departures != run.stream_departures) ++mismatches;
    if (run1.steady.peak_max != run.steady.peak_max) ++mismatches;
    if (load1 != load) ++mismatches;
    std::printf("Act 3: hardware pool vs 1-thread pool: %s\n",
                mismatches == 0 ? "bit-identical (7/7 fields)"
                                : "DIVERGED");
  }

  if (mismatches != 0) {
    std::fprintf(stderr, "lb_rbb: FAILED — open-system run is not "
                         "substrate-independent (%zu mismatches)\n",
                mismatches);
    return 1;
  }
  return 0;
}
