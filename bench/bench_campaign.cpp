// E15: campaign artifact-cache ablation — cold vs cached µs/cell.
//
// The same spectral-profiled grid (SOS with auto-β and OPS need the base
// spectrum; diffusion rides along for breadth) is executed twice on ONE
// worker:
//
//   cold    every cell rebuilds its graph, recomputes the spectrum /
//           eigenvalue schedule, and starts from an empty arena — the
//           fresh-engine oracle, cell by cell;
//   cached  graph bases, spectral profiles and flow-ledger CSRs are
//           computed once per base and reused across the base's cells
//           (CampaignRunner's kCached mode).
//
// Per-cell RunResults must be bit-identical between the two modes — and
// for the cached mode across pools {1, 2, hw} — or the bench exits
// nonzero: the cache may only ever move work, never change a trajectory.
// Only µs/cell may differ, and single-core at that (the container pins
// one core): the win is pass-count amortization, not parallelism.
#include "bench_common.hpp"

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "lb/exp/campaign.hpp"
#include "lb/exp/plan.hpp"
#include "lb/exp/report.hpp"
#include "lb/util/thread_pool.hpp"

namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Cell-by-cell trajectory equality between two reports.
bool reports_agree(const lb::exp::ExperimentPlan& plan,
                   const lb::exp::CampaignReport& a,
                   const lb::exp::CampaignReport& b, const char* label) {
  if (a.cells.size() != b.cells.size()) {
    std::fprintf(stderr, "CELL COUNT MISMATCH (%s)\n", label);
    return false;
  }
  bool ok = true;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const auto& ra = a.cells[i].run;
    const auto& rb = b.cells[i].run;
    if (ra.rounds != rb.rounds || ra.reached_target != rb.reached_target ||
        !bits_equal(ra.final_potential, rb.final_potential) ||
        !bits_equal(ra.final_discrepancy, rb.final_discrepancy)) {
      std::fprintf(stderr,
                   "CELL MISMATCH (%s) %s: (K=%zu, Phi=%.17g) vs (K=%zu, "
                   "Phi=%.17g)\n",
                   label, plan.cell_label(a.cells[i].cell).c_str(), ra.rounds,
                   ra.final_potential, rb.rounds, rb.final_potential);
      ok = false;
    }
  }
  return ok;
}

void write_json(const std::string& path, const lb::exp::ExperimentPlan& plan,
                double cold_us, double cached_us, std::size_t cells,
                bool verified) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_campaign\",\n  \"cells\": %zu,\n"
               "  \"graphs\": %zu,\n  \"replicates\": %zu,\n"
               "  \"cold_us_per_cell\": %.3f,\n  \"cached_us_per_cell\": %.3f,\n"
               "  \"speedup\": %.3f,\n  \"bit_identical\": %s\n}\n",
               cells, plan.graphs.size(), plan.seeds.size(), cold_us, cached_us,
               cached_us > 0.0 ? cold_us / cached_us : 0.0,
               verified ? "true" : "false");
  std::fclose(f);
}

void write_ablation_csv(const std::string& dir, const char* mode,
                        const lb::exp::ExperimentPlan& plan,
                        const lb::exp::CampaignReport& report) {
  const std::string path = dir + "/ablation_campaign_" + mode + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "%s", report.cells_csv(plan).c_str());
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E15: campaign cold-vs-cached ablation — per-base artifact reuse "
      "(graph bases, spectral profiles, CSR ledgers) vs fresh-everything cells");
  opts.add_int("n", 256, "nodes per base graph (dense spectral path)")
      .add_int("replicates", 3, "seeds per cell group")
      .add_int("rounds", 400, "round budget per cell")
      .add_double("eps", 1e-4, "stop a cell at Phi <= eps * Phi0")
      .add_int("seed", 42, "master seed")
      .add_string("json", "", "write machine-readable results to this path")
      .add_string("ablation-dir", "",
                  "write ablation_campaign_{cold,cached}.csv into this dir")
      .add_flag("quick", "CI smoke: n=64, 2 replicates, 150 rounds")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  std::size_t replicates = static_cast<std::size_t>(opts.get_int("replicates"));
  std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  if (opts.get_flag("quick")) {
    n = std::min<std::size_t>(n, 64);
    replicates = std::min<std::size_t>(replicates, 2);
    rounds = std::min<std::size_t>(rounds, 150);
  }

  lb::bench::banner(
      "E15: campaign artifact-cache ablation",
      "cached cells reuse per-base artifacts and stay bit-identical to the "
      "fresh-engine oracle; only us/cell may move",
      static_cast<std::uint64_t>(opts.get_int("seed")));

  lb::exp::ExperimentPlan plan;
  plan.graphs = {{"torus2d", n}, {"hypercube", n}, {"cycle", n}};
  plan.scenarios = {lb::exp::static_scenario()};
  plan.workloads = {{"spike", 1000.0}, {"uniform", 1000.0}};
  plan.balancers = {{lb::exp::BalancerKind::kSos, 0.0},
                    {lb::exp::BalancerKind::kOps, 0.0},
                    {lb::exp::BalancerKind::kDiffusion, 0.0}};
  plan.seeds.clear();
  for (std::size_t r = 0; r < replicates; ++r) plan.seeds.push_back(r + 1);
  plan.engine.max_rounds = rounds;
  plan.engine.record_trace = false;  // grids this size keep Φ-only rounds
  plan.epsilon = opts.get_double("eps");
  plan.master_seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  // Timing legs run on ONE worker: the claim is single-core pass-count
  // amortization, not parallel speedup.
  lb::util::ThreadPool pool1(1);
  lb::exp::CampaignRunner cold_runner({lb::exp::ArtifactMode::kCold, &pool1});
  lb::exp::CampaignRunner cached_runner({lb::exp::ArtifactMode::kCached, &pool1});
  const auto cold = cold_runner.run(plan);
  const auto cached = cached_runner.run(plan);

  bool verified = reports_agree(plan, cold, cached, "cold vs cached @1");

  // Pool matrix: the cached report must not move at any pool size.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (std::size_t ps : {std::size_t{2}, hw}) {
    lb::util::ThreadPool pool(ps);
    lb::exp::CampaignRunner runner({lb::exp::ArtifactMode::kCached, &pool});
    const auto report = runner.run(plan);
    char label[48];
    std::snprintf(label, sizeof label, "cold vs cached @%zu", ps);
    verified = reports_agree(plan, cold, report, label) && verified;
  }

  lb::util::Table table(
      {"mode", "cells", "wall s", "us/cell", "speedup", "bit-identical"});
  const double speedup =
      cached.us_per_cell() > 0.0 ? cold.us_per_cell() / cached.us_per_cell() : 0.0;
  table.row()
      .add("cold")
      .add(static_cast<std::int64_t>(cold.cells.size()))
      .add(cold.wall_seconds, 4)
      .add(cold.us_per_cell(), 6)
      .add(1.0, 3)
      .add("-");
  table.row()
      .add("cached")
      .add(static_cast<std::int64_t>(cached.cells.size()))
      .add(cached.wall_seconds, 4)
      .add(cached.us_per_cell(), 6)
      .add(speedup, 3)
      .add(verified ? "yes" : "NO");
  lb::bench::emit(table,
                  "campaign ablation: fresh-everything cells vs per-base "
                  "artifact reuse (single worker)",
                  opts.get_flag("csv"));

  if (!opts.get_string("json").empty()) {
    write_json(opts.get_string("json"), plan, cold.us_per_cell(),
               cached.us_per_cell(), cold.cells.size(), verified);
  }
  if (!opts.get_string("ablation-dir").empty()) {
    write_ablation_csv(opts.get_string("ablation-dir"), "cold", plan, cold);
    write_ablation_csv(opts.get_string("ablation-dir"), "cached", plan, cached);
  }
  return verified ? 0 : 1;
}
