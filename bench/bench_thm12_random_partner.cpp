// E8+E9 (Lemma 10, Lemma 11, Theorem 12): Algorithm 2, continuous case.
//
// Part 1 verifies the exact Lemma-10 identity Σ_ij(ℓ_i−ℓ_j)² = 2n·Φ(L).
// Part 2 measures the expected one-round drop factor against Lemma 11's
// 19/20 and the rounds to e^{-c} against Theorem 12's 120·c·lnΦ — across
// n, with no network parameter anywhere (the paper's headline for §6).
#include "bench_common.hpp"

#include <cmath>

#include "lb/core/bounds.hpp"
#include "lb/core/load.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/stats.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E8+E9 / Lemmas 10-11, Theorem 12: random balancing partners, continuous");
  opts.add_int("trials", 200, "independent one-round trials for the Lemma-11 mean")
      .add_int("seed", 42, "RNG seed")
      .add_double("c", 1.0, "Theorem-12 constant c")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const int trials = static_cast<int>(opts.get_int("trials"));
  const double c = opts.get_double("c");
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E8: Lemma 10 identity",
                    "sum_i sum_j (l_i - l_j)^2 == 2n * Phi(L), exactly", seed);
  {
    lb::util::Table table({"n", "workload", "lhs", "2n*Phi", "rel err"});
    lb::util::Rng rng(seed);
    for (std::size_t n : {16u, 256u, 4096u}) {
      for (const std::string workload : {"spike", "uniform", "zipf"}) {
        const auto load = lb::workload::make_named<double>(
            workload, n, 100.0 * static_cast<double>(n), rng);
        const double lhs = lb::core::pairwise_square_sum(load);
        const double rhs = 2.0 * static_cast<double>(n) * lb::core::potential(load);
        table.row()
            .add(static_cast<std::int64_t>(n))
            .add(workload)
            .add_sci(lhs)
            .add_sci(rhs)
            .add_sci(std::fabs(lhs - rhs) / std::max(1.0, std::fabs(rhs)));
      }
    }
    lb::bench::emit(table, "Lemma 10 identity check", opts.get_flag("csv"));
  }

  lb::bench::banner("E9: Lemma 11 + Theorem 12",
                    "E[Phi^{t+1}] <= (19/20) Phi^t; Phi <= e^{-c} after "
                    "T = 120*c*ln(Phi) rounds, independent of any topology",
                    seed);

  // Algorithm 2 ignores the network; a placeholder satisfies the API.
  const auto dummy = lb::graph::make_complete(2);

  lb::util::Table table({"n", "E[drop factor]", "95% CI", "Lemma11 bound", "holds",
                         "T bound", "T measured", "meas/bound"});
  for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
    // Lemma 11: mean one-round ratio from a spike.
    const auto start =
        lb::workload::spike<double>(n, 100.0 * static_cast<double>(n));
    const double phi0 = lb::core::potential(start);
    lb::util::Rng rng(seed + n);
    lb::util::RunningStats ratio;
    for (int t = 0; t < trials; ++t) {
      auto load = start;
      lb::core::ContinuousRandomPartner alg;
      alg.step(dummy, load, rng);
      ratio.add(lb::core::potential(load) / phi0);
    }

    // Theorem 12: measured rounds until Φ <= e^{-c}.
    const double bound_T = lb::core::bounds::theorem12_rounds(c, phi0);
    auto load = start;
    lb::core::ContinuousRandomPartner alg;
    std::size_t measured = 0;
    const auto budget = static_cast<std::size_t>(std::ceil(bound_T));
    for (std::size_t round = 1; round <= budget; ++round) {
      alg.step(dummy, load, rng);
      if (lb::core::potential(load) <= std::exp(-c)) {
        measured = round;
        break;
      }
    }

    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(ratio.mean(), 4)
        .add(ratio.ci_halfwidth(), 3)
        .add(lb::core::bounds::kLemma11Factor, 4)
        .add(ratio.mean() < lb::core::bounds::kLemma11Factor ? "yes" : "NO")
        .add(bound_T, 5)
        .add(static_cast<std::int64_t>(measured))
        .add(measured > 0 ? static_cast<double>(measured) / bound_T : 0.0, 3);
  }
  lb::bench::emit(table,
                  "Lemma 11 drop factor and Theorem 12 rounds (topology-free)",
                  opts.get_flag("csv"));
  return 0;
}
