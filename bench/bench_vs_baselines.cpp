// E11 (§3 prose): "our algorithm converges a constant times faster than
// the dimension exchange algorithm in [12]" — and how it compares to the
// classic diffusion baselines FOS [3], SOS [15] and OPS [7].
//
// The table reports rounds to reach ε·Φ(L⁰) for every algorithm per
// topology, plus the speedup of Algorithm 1 over dimension exchange.
#include "bench_common.hpp"

#include <cmath>
#include <memory>

#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/fos.hpp"
#include "lb/core/load.hpp"
#include "lb/core/ops.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/core/sos.hpp"
#include "lb/workload/initial.hpp"

namespace {

std::size_t rounds_to_eps(lb::core::ContinuousBalancer& alg, const lb::graph::Graph& g,
                          double eps, std::size_t max_rounds, std::uint64_t seed) {
  auto load = lb::workload::spike<double>(g.num_nodes(),
                                          1000.0 * static_cast<double>(g.num_nodes()));
  const double phi0 = lb::core::potential(load);
  lb::core::EngineConfig cfg;
  cfg.max_rounds = max_rounds;
  cfg.target_potential = eps * phi0;
  cfg.record_trace = false;
  cfg.stall_rounds = 0;
  cfg.seed = seed;
  const auto result = lb::core::run_static(alg, g, load, cfg);
  return result.reached_target ? result.rounds : 0;  // 0 = did not converge
}

}  // namespace

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E11: Algorithm 1 vs dimension exchange [12], FOS [3], SOS [15], OPS [7], "
      "and Algorithm 2 — rounds to eps-balance from a spike");
  opts.add_int("n", 256, "nodes per topology")
      .add_double("eps", 1e-6, "target potential fraction")
      .add_int("max_rounds", 2000000, "round budget per run")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const double eps = opts.get_double("eps");
  const std::size_t max_rounds = static_cast<std::size_t>(opts.get_int("max_rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E11: rounds-to-balance vs the baselines",
                    "Algorithm 1 beats dimension exchange [12] by a constant factor; "
                    "0 in a cell means 'did not reach eps within the budget'",
                    seed);

  lb::util::Table table({"topology", "diffusion(Alg1)", "dimexch[12]", "fos[3]",
                         "sos[15]", "ops[7]", "randpartner(Alg2)",
                         "dimexch/Alg1 speedup"});

  for (const std::string& family : lb::bench::default_families()) {
    lb::util::Rng rng(seed);
    const auto g = lb::graph::make_named(family, n, rng);

    lb::core::ContinuousDiffusion diffusion;
    lb::core::ContinuousDimensionExchange dimexch;
    lb::core::FirstOrderScheme fos;
    lb::core::SecondOrderScheme sos;
    lb::core::OptimalPolynomialScheme ops;
    lb::core::ContinuousRandomPartner randpartner;

    const std::size_t r_diff = rounds_to_eps(diffusion, g, eps, max_rounds, seed);
    const std::size_t r_de = rounds_to_eps(dimexch, g, eps, max_rounds, seed);
    const std::size_t r_fos = rounds_to_eps(fos, g, eps, max_rounds, seed);
    const std::size_t r_sos = rounds_to_eps(sos, g, eps, max_rounds, seed);
    // OPS on large non-structured graphs has huge schedules; cap via the
    // same budget (its dense eigensolve limits it to moderate n anyway).
    const std::size_t r_ops =
        g.num_nodes() <= 2048 ? rounds_to_eps(ops, g, eps, max_rounds, seed) : 0;
    const std::size_t r_rp = rounds_to_eps(randpartner, g, eps, max_rounds, seed);

    table.row()
        .add(g.name())
        .add(static_cast<std::int64_t>(r_diff))
        .add(static_cast<std::int64_t>(r_de))
        .add(static_cast<std::int64_t>(r_fos))
        .add(static_cast<std::int64_t>(r_sos))
        .add(static_cast<std::int64_t>(r_ops))
        .add(static_cast<std::int64_t>(r_rp))
        .add(r_diff > 0 && r_de > 0
                 ? static_cast<double>(r_de) / static_cast<double>(r_diff)
                 : 0.0,
             3);
  }
  lb::bench::emit(table, "Rounds to eps-balance (continuous algorithms, spike start)",
                  opts.get_flag("csv"));
  return 0;
}
