// E1 (Lemma 1): per-edge sequential activations drop the potential by at
// least w_ij·|ℓ_i − ℓ_j|.
//
// For each topology x workload instance the table reports the number of
// edge activations audited, how many satisfied the certificate, the
// minimum drop/bound ratio observed (>= 1 means the lemma holds with
// margin), and the Lemma-2 round bound versus the actual round drop.
#include "bench_common.hpp"

#include <algorithm>

#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/core/sequential.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E1 / Lemma 1: per-edge potential-drop certificates of the "
      "sequentialization ledger");
  opts.add_int("n", 256, "nodes per topology")
      .add_int("seed", 42, "base RNG seed")
      .add_int("rounds", 5, "rounds audited per instance (ledger re-derived each round)")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));

  lb::bench::banner("E1: Lemma 1 certificates",
                    "every sequential edge activation k satisfies "
                    "dPhi_k >= w_ij * |l_i - l_j|",
                    seed);

  lb::util::Table table({"topology", "workload", "activations", "certified",
                         "min drop/bound", "lemma2 bound", "round drop",
                         "drop/bound"});

  for (const std::string& family : lb::bench::default_families()) {
    for (const std::string workload : {"spike", "uniform", "bimodal", "zipf"}) {
      lb::util::Rng rng(seed);
      const auto g = lb::graph::make_named(family, n, rng);
      auto load = lb::workload::make_named<double>(
          workload, g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()), rng);

      std::size_t activations = 0, certified = 0;
      double min_ratio = 1e300;
      double lemma2_bound_first = 0.0, round_drop_first = 0.0;
      for (std::size_t r = 0; r < rounds; ++r) {
        const auto ledger = lb::core::sequentialize_round(g, load);
        if (r == 0) {
          lemma2_bound_first = ledger.lemma2_bound;
          round_drop_first = ledger.total_drop;
        }
        for (const auto& act : ledger.activations) {
          if (act.weight <= 0.0) continue;
          ++activations;
          certified += act.certified ? 1 : 0;
          if (act.lemma1_bound > 0.0) {
            min_ratio = std::min(min_ratio, act.potential_drop / act.lemma1_bound);
          }
        }
        // Advance the load to the post-round state for the next audit.
        lb::core::ContinuousDiffusion alg;
        alg.step(g, load, rng);
      }
      table.row()
          .add(g.name())
          .add(workload)
          .add(static_cast<std::int64_t>(activations))
          .add(static_cast<std::int64_t>(certified))
          .add(activations > 0 ? min_ratio : 1.0, 4)
          .add_sci(lemma2_bound_first)
          .add_sci(round_drop_first)
          .add(lb::core::safe_ratio(round_drop_first, lemma2_bound_first), 4);
    }
  }
  lb::bench::emit(table, "Lemma 1 / Lemma 2 certificates (continuous Algorithm 1)",
                  opts.get_flag("csv"));
  return 0;
}
