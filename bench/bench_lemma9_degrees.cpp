// E7 (Lemma 9): under random partner choice, a fixed link's endpoints
// both have at most 5 partners with probability > 1/2.
//
// Monte-Carlo over n; also reports the full distribution of
// max(d_i, d_j) and the marginal Pr[d_i > 5], Pr[d_j > 5] whose union
// bound the paper uses (0.05 + 0.25).
#include "bench_common.hpp"

#include "lb/core/bounds.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/util/stats.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E7 / Lemma 9: Pr[max(d_i,d_j) <= 5 | (i,j) in E] > 0.5 under random partners");
  opts.add_int("trials", 40000, "Monte-Carlo trials per n")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const int trials = static_cast<int>(opts.get_int("trials"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E7: Lemma 9 (random-partner degree bound)",
                    "for a fixed link (i,j): Pr[max(d_i,d_j) <= 5] > 1/2; "
                    "proof uses Pr[d_i>5] < 0.05 and Pr[d_j>5] < 0.25",
                    seed);

  lb::util::Table table({"n", "trials", "P[max<=5]", "bound", "holds",
                         "P[d_i>5]", "P[d_j>5]", "mean d_i", "mean d_j"});

  lb::util::Rng rng(seed);
  for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    int good = 0, di_over = 0, dj_over = 0;
    lb::util::RunningStats di_stats, dj_stats;
    for (int t = 0; t < trials; ++t) {
      const auto links = lb::core::sample_partner_links(n, rng);
      // Audit the link built by node 0 — a "fixed link" in the lemma's
      // conditioning.
      const auto j = links.partner[0];
      const auto di = links.degree[0];
      const auto dj = links.degree[j];
      if (std::max(di, dj) <= 5) ++good;
      if (di > 5) ++di_over;
      if (dj > 5) ++dj_over;
      di_stats.add(di);
      dj_stats.add(dj);
    }
    const double p = static_cast<double>(good) / trials;
    table.row()
        .add(static_cast<std::int64_t>(n))
        .add(static_cast<std::int64_t>(trials))
        .add(p, 4)
        .add(lb::core::bounds::kLemma9Probability, 2)
        .add(p > lb::core::bounds::kLemma9Probability ? "yes" : "NO")
        .add(static_cast<double>(di_over) / trials, 4)
        .add(static_cast<double>(dj_over) / trials, 4)
        .add(di_stats.mean(), 4)
        .add(dj_stats.mean(), 4);
  }
  lb::bench::emit(table, "Lemma 9 Monte-Carlo (link built by node 0)",
                  opts.get_flag("csv"));
  return 0;
}
