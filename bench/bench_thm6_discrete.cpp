// E3 (Lemma 5 + Theorem 6): discrete Algorithm 1 on fixed networks.
//
// The table reports the discrete potential threshold 64δ³n/λ2, the
// Theorem-6 round budget to reach it, the measured rounds, and the worst
// per-round drop fraction while above the threshold against the
// guaranteed λ2/8δ.
#include "bench_common.hpp"

#include <cmath>

#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E3 / Theorem 6: discrete diffusion reaches Phi < 64*delta^3*n/lambda2 "
      "within (8*delta/lambda2)*ln(lambda2*Phi0/(64*delta^3*n)) rounds");
  opts.add_int("n", 256, "nodes per topology")
      .add_int("seed", 42, "RNG seed")
      .add_double("headroom", 400.0,
                  "initial potential as a multiple of the threshold")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const double headroom = opts.get_double("headroom");

  lb::bench::banner("E3: Theorem 6 (discrete, fixed network)",
                    "above Phi* = 64*delta^3*n/lambda2 the discrete protocol drops "
                    "by >= lambda2/(8*delta) per round and reaches Phi* within the "
                    "Theorem-6 budget",
                    seed);

  lb::util::Table table({"topology", "n", "delta", "lambda2", "threshold",
                         "Phi0/thresh", "T bound", "T measured", "meas/bound",
                         "drop frac bound", "worst drop frac"});

  for (const std::string& family : lb::bench::default_families()) {
    lb::util::Rng rng(seed);
    const auto g = lb::graph::make_named(family, n, rng);
    const double l2 = lb::linalg::lambda2(g);
    const double threshold = lb::core::bounds::discrete_potential_threshold(
        g.max_degree(), g.num_nodes(), l2);
    const double frac_bound = lb::core::bounds::lemma5_drop_fraction(l2, g.max_degree());

    // Size the spike so Φ(L⁰) ≈ headroom × threshold.
    const double spike = std::sqrt(headroom * threshold /
                                   (1.0 - 1.0 / static_cast<double>(g.num_nodes())));
    auto load =
        lb::workload::spike<std::int64_t>(g.num_nodes(), static_cast<std::int64_t>(spike));
    const double phi0 = lb::core::potential(load);
    const double bound_T =
        lb::core::bounds::theorem6_rounds(l2, g.max_degree(), g.num_nodes(), phi0);

    lb::core::DiscreteDiffusion alg;
    lb::core::EngineConfig cfg;
    cfg.max_rounds = static_cast<std::size_t>(std::ceil(bound_T)) + 100;
    cfg.target_potential = threshold;
    const auto result = lb::core::run_static(alg, g, load, cfg);

    double worst_frac = 1.0;
    double prev = phi0;
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
      const double cur = result.trace[i].potential;
      if (prev >= threshold && prev > 0.0) {
        worst_frac = std::min(worst_frac, (prev - cur) / prev);
      }
      prev = cur;
    }

    table.row()
        .add(g.name())
        .add(static_cast<std::int64_t>(g.num_nodes()))
        .add(static_cast<std::int64_t>(g.max_degree()))
        .add(l2, 4)
        .add_sci(threshold)
        .add(phi0 / threshold, 4)
        .add(bound_T, 5)
        .add(static_cast<std::int64_t>(result.rounds))
        .add(bound_T > 0.0 ? static_cast<double>(result.rounds) / bound_T : 0.0, 3)
        .add(frac_bound, 4)
        .add(worst_frac, 4);
  }
  lb::bench::emit(table,
                  "Theorem 6: rounds to the discrete threshold (measured <= bound)",
                  opts.get_flag("csv"));
  return 0;
}
