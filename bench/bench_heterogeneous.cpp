// E17 (extension, [9]): heterogeneous diffusion on machines with mixed
// node speeds.  The weighted potential Φ_s decays geometrically just like
// the uniform case, and the fixed point puts load proportional to speed.
#include "bench_common.hpp"

#include "lb/core/heterogeneous.hpp"
#include "lb/core/load.hpp"
#include "lb/util/stats.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E17 / heterogeneous diffusion: speed-proportional balancing "
      "(Elsasser-Monien-Preis model, reference [9])");
  opts.add_int("n", 256, "nodes per topology")
      .add_int("rounds", 20000, "round budget")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E17: heterogeneous (speed-weighted) diffusion",
                    "normalized-load balancing converges to the proportional "
                    "share l_i = s_i*W/S with geometric weighted-potential decay",
                    seed);

  lb::util::Table table({"topology", "speed profile", "rounds to 1e-6",
                         "mean drop factor", "max share error (%)"});

  struct Profile {
    std::string label;
    double slow, fast;
  };
  const std::vector<Profile> profiles = {
      {"uniform (all 1x)", 1.0, 1.0},
      {"2-tier (1x / 4x)", 1.0, 4.0},
      {"2-tier (1x / 16x)", 1.0, 16.0},
  };

  for (const std::string family : {"torus2d", "hypercube", "regular", "cycle"}) {
    for (const auto& profile : profiles) {
      lb::util::Rng rng(seed);
      const auto g = lb::graph::make_named(family, n, rng);
      std::vector<double> speed(g.num_nodes());
      double total_speed = 0.0;
      for (std::size_t i = 0; i < speed.size(); ++i) {
        speed[i] = (i % 2 == 0) ? profile.fast : profile.slow;
        total_speed += speed[i];
      }

      const double total = 1000.0 * static_cast<double>(g.num_nodes());
      auto load = lb::workload::spike<double>(g.num_nodes(), total);
      const double phi0 = lb::core::weighted_potential(load, speed);

      lb::core::ContinuousHeterogeneousDiffusion alg(speed);
      lb::util::RunningStats drop;
      std::size_t converged_at = 0;
      double prev = phi0;
      for (std::size_t round = 1; round <= rounds; ++round) {
        alg.step(g, load, rng);
        const double cur = lb::core::weighted_potential(load, speed);
        if (prev > 1e-9 && cur > 1e-12) drop.add(cur / prev);
        prev = cur;
        if (converged_at == 0 && cur <= 1e-6 * phi0) {
          converged_at = round;
          break;
        }
      }

      double worst_err = 0.0;
      for (std::size_t i = 0; i < load.size(); ++i) {
        const double share = total * speed[i] / total_speed;
        worst_err = std::max(worst_err, std::abs(load[i] - share) / share);
      }

      table.row()
          .add(g.name())
          .add(profile.label)
          .add(static_cast<std::int64_t>(converged_at))
          .add(drop.mean(), 4)
          .add(100.0 * worst_err, 3);
    }
  }
  lb::bench::emit(table,
                  "Heterogeneous diffusion: convergence to speed shares "
                  "(0 rounds = budget exhausted before 1e-6)",
                  opts.get_flag("csv"));
  return 0;
}
