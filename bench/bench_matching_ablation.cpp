// E16 (ablation): how much of dimension exchange's slowness is the
// matching?  Compare the GM local protocol (the [12] comparator), greedy
// maximal matchings (denser), and round-robin dimension sweeps (the
// classic hypercube schedule) against Algorithm 1 — plus the async
// variants of Algorithm 1 to bridge between the two regimes.
#include "bench_common.hpp"

#include "lb/core/async.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/workload/initial.hpp"

namespace {

std::size_t rounds_to_eps(lb::core::DiscreteBalancer& alg, const lb::graph::Graph& g,
                          double eps, std::uint64_t seed) {
  auto load = lb::workload::spike<std::int64_t>(
      g.num_nodes(), 100000 * static_cast<std::int64_t>(g.num_nodes()));
  const double phi0 = lb::core::potential(load);
  lb::core::EngineConfig cfg;
  cfg.max_rounds = 500000;
  cfg.target_potential = eps * phi0;
  cfg.record_trace = false;
  cfg.stall_rounds = 200;
  cfg.seed = seed;
  const auto result = lb::core::run_static(alg, g, load, cfg);
  return result.reached_target ? result.rounds : 0;
}

}  // namespace

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E16: matching-strategy and activation ablation (discrete, rounds to eps)");
  opts.add_double("eps", 1e-5, "target potential fraction")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const double eps = opts.get_double("eps");
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E16: matching & activation ablation",
                    "diffusion uses every edge every round; matchings throttle to "
                    "<= 1 edge per node; async diffusion interpolates",
                    seed);

  lb::util::Table table({"topology", "diffusion", "async p=0.5", "async p=0.25",
                         "dimexch GM", "dimexch maximal", "dimexch RR"});

  lb::util::Rng rng(seed);
  std::vector<lb::graph::Graph> graphs;
  graphs.push_back(lb::graph::make_hypercube(8));
  graphs.push_back(lb::graph::make_torus2d(16, 16));
  graphs.push_back(lb::graph::make_named("regular", 256, rng));
  graphs.push_back(lb::graph::make_chordal_ring(256, {16}));
  graphs.push_back(lb::graph::make_cube_connected_cycles(6));

  for (const auto& g : graphs) {
    lb::core::DiscreteDiffusion diffusion;
    lb::core::DiscreteAsyncDiffusion async50(0.5), async25(0.25);
    lb::core::DiscreteDimensionExchange gm(
        lb::core::MatchingStrategy::kGhoshMuthukrishnan);
    lb::core::DiscreteDimensionExchange maximal(
        lb::core::MatchingStrategy::kRandomMaximal);

    const bool is_hypercube = g.name().rfind("hypercube", 0) == 0;
    std::size_t rr_rounds = 0;
    if (is_hypercube) {
      lb::core::DiscreteDimensionExchange rr(
          lb::core::MatchingStrategy::kHypercubeRoundRobin);
      rr_rounds = rounds_to_eps(rr, g, eps, seed);
    }

    table.row()
        .add(g.name())
        .add(static_cast<std::int64_t>(rounds_to_eps(diffusion, g, eps, seed)))
        .add(static_cast<std::int64_t>(rounds_to_eps(async50, g, eps, seed)))
        .add(static_cast<std::int64_t>(rounds_to_eps(async25, g, eps, seed)))
        .add(static_cast<std::int64_t>(rounds_to_eps(gm, g, eps, seed)))
        .add(static_cast<std::int64_t>(rounds_to_eps(maximal, g, eps, seed)))
        .add(is_hypercube ? std::to_string(rr_rounds) : std::string("n/a"));
  }
  lb::bench::emit(table,
                  "Rounds to eps-balance, discrete algorithms (0 = did not reach)",
                  opts.get_flag("csv"));
  return 0;
}
