// E15 (related-work reproduction, RSW [16]): the discrete trajectory's
// deviation from the continuous idealization is bounded by a topology
// constant — O(δ·log n/µ) — independent of how large the initial
// imbalance is.  This is the quantitative backbone of "discrete behaves
// like continuous", which the paper's Lemma 5 strengthens.
#include "bench_common.hpp"

#include "lb/core/divergence.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E15 / RSW local divergence: discrete-vs-continuous trajectory deviation "
      "stays below the O(delta*log n/mu) scale, independent of the spike height");
  opts.add_int("n", 256, "nodes per topology")
      .add_int("rounds", 600, "lockstep rounds")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E15: local divergence (Rabani-Sinclair-Wanka)",
                    "max_i |discrete_i - continuous_i| over the whole run is "
                    "bounded by delta*log(n)/mu for any initial imbalance",
                    seed);

  lb::util::Table table({"topology", "spike/node", "max Linf dev", "final Linf",
                         "Psi (sum rounding)", "RSW scale", "dev/scale"});

  for (const std::string& family : lb::bench::default_families()) {
    lb::util::Rng rng(seed);
    const auto g = lb::graph::make_named(family, n, rng);
    for (std::int64_t per_node : {1000L, 1000000L}) {
      const auto load = lb::workload::spike<std::int64_t>(
          g.num_nodes(), per_node * static_cast<std::int64_t>(g.num_nodes()));
      const auto result = lb::core::measure_divergence(g, load, rounds);
      table.row()
          .add(g.name())
          .add(per_node)
          .add(result.max_linf, 4)
          .add(result.final_linf, 4)
          .add(result.psi, 5)
          .add(result.rsw_scale, 5)
          .add(result.rsw_scale > 0.0 ? result.max_linf / result.rsw_scale : 0.0, 3);
    }
  }
  lb::bench::emit(table,
                  "Deviation vs the RSW scale (dev/scale <= 1 and flat across "
                  "spike heights confirms)",
                  opts.get_flag("csv"));
  return 0;
}
