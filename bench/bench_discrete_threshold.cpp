// E12 (Remark after Lemma 5 + §3): the discrete protocol tracks the
// continuous one above the threshold, the threshold is *linear* in n
// (the improvement over [15], which needed Φ = Ω(n²δ²/ε²)), and the
// denominator ablation shows why the paper divides by 4·max(d_i,d_j).
#include "bench_common.hpp"

#include <cmath>

#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E12: discrete-vs-continuous tracking, threshold scaling in n, and the "
      "transfer-denominator ablation");
  opts.add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  // --- Part 1: discrete tracks continuous above the threshold ---
  lb::bench::banner("E12a: discrete tracks continuous above the threshold",
                    "above Phi* the discrete rate lambda2/8delta is exactly half "
                    "the continuous lambda2/4delta (a constant factor)",
                    seed);
  {
    lb::util::Table table({"topology", "rounds in regime", "mean ratio disc/cont",
                          "max ratio", "cont rate", "disc rate"});
    for (const std::string family : {"torus2d", "hypercube", "cycle", "regular"}) {
      lb::util::Rng rng(seed);
      const auto g = lb::graph::make_named(family, 256, rng);
      const double l2 = lb::linalg::lambda2(g);
      const double threshold = lb::core::bounds::discrete_potential_threshold(
          g.max_degree(), g.num_nodes(), l2);
      const std::int64_t total = static_cast<std::int64_t>(
          50.0 * std::sqrt(threshold) * static_cast<double>(g.num_nodes()));

      auto disc = lb::workload::spike<std::int64_t>(g.num_nodes(), total);
      auto cont = lb::workload::spike<double>(g.num_nodes(),
                                              static_cast<double>(total));
      lb::core::DiscreteDiffusion disc_alg;
      lb::core::ContinuousDiffusion cont_alg;

      double sum_ratio = 0.0, max_ratio = 0.0;
      std::size_t rounds = 0;
      double cont_rate_sum = 0.0, disc_rate_sum = 0.0;
      while (lb::core::potential(disc) >= threshold && rounds < 2000) {
        const double dp = lb::core::potential(disc);
        const double cp = lb::core::potential(cont);
        disc_alg.step(g, disc, rng);
        cont_alg.step(g, cont, rng);
        const double dp2 = lb::core::potential(disc);
        const double cp2 = lb::core::potential(cont);
        const double ratio = dp2 / std::max(cp2, 1e-300);
        sum_ratio += ratio;
        max_ratio = std::max(max_ratio, ratio);
        cont_rate_sum += (cp - cp2) / cp;
        disc_rate_sum += (dp - dp2) / dp;
        ++rounds;
      }
      table.row()
          .add(g.name())
          .add(static_cast<std::int64_t>(rounds))
          .add(rounds ? sum_ratio / static_cast<double>(rounds) : 0.0, 4)
          .add(max_ratio, 4)
          .add(rounds ? cont_rate_sum / static_cast<double>(rounds) : 0.0, 4)
          .add(rounds ? disc_rate_sum / static_cast<double>(rounds) : 0.0, 4);
    }
    lb::bench::emit(table, "Discrete/continuous potential ratio while above Phi*",
                    opts.get_flag("csv"));
  }

  // --- Part 2: threshold shape — Φ* = 64δ³n/λ2 tracks the fixed point,
  // and on expanders (λ2 = Θ(1)) the residual potential is linear in n,
  // the paper's improvement over the quadratic requirement of [15].
  lb::bench::banner("E12b: residual potential vs the threshold formula",
                    "the discrete fixed-point potential stays below Phi* = "
                    "64*delta^3*n/lambda2, and on expanders (lambda2 ~ const) it "
                    "grows only linearly in n — linear, not quadratic as in [15]",
                    seed);
  {
    lb::util::Table table({"graph", "n", "lambda2", "Phi*", "Phi fixed point",
                           "fp/Phi*", "fp/n"});
    auto run_to_fixed_point = [&](const lb::graph::Graph& g) {
      auto load = lb::workload::spike<std::int64_t>(
          g.num_nodes(), 10000 * static_cast<std::int64_t>(g.num_nodes()));
      lb::core::DiscreteDiffusion alg;
      lb::core::EngineConfig cfg;
      cfg.max_rounds = 1000000;
      cfg.target_potential = 0.0;  // run to the fixed point
      return lb::core::run_static(alg, g, load, cfg).final_potential;
    };
    auto add_row = [&](const lb::graph::Graph& g) {
      const double l2 = lb::linalg::lambda2(g);
      const double threshold = lb::core::bounds::discrete_potential_threshold(
          g.max_degree(), g.num_nodes(), l2);
      const double fp = run_to_fixed_point(g);
      table.row()
          .add(g.name())
          .add(static_cast<std::int64_t>(g.num_nodes()))
          .add(l2, 4)
          .add_sci(threshold)
          .add_sci(fp)
          .add(fp / threshold, 4)
          .add(fp / static_cast<double>(g.num_nodes()), 4);
    };
    for (std::size_t side : {8u, 12u, 16u, 24u}) {
      add_row(lb::graph::make_torus2d(side, side));
    }
    lb::util::Rng rng(seed);
    for (std::size_t n : {64u, 256u, 1024u}) {
      add_row(lb::graph::make_random_regular(n, 6, rng));
    }
    lb::bench::emit(table,
                    "Fixed-point potential vs Phi* (tori: lambda2 ~ 1/n; "
                    "6-regular expanders: lambda2 ~ const, fp/n ~ const)",
                    opts.get_flag("csv"));
  }

  // --- Part 3: denominator ablation ---
  lb::bench::banner("E12c: transfer-denominator ablation",
                    "factor*max(d_i,d_j) for factor in {1,2,4,8}: small factors "
                    "move more per round but risk overshoot; factor 4 is the "
                    "paper's provable choice",
                    seed);
  {
    lb::util::Table table({"factor", "rounds to 1e-6 (torus)", "monotone drops",
                          "overshoot rounds"});
    for (double factor : {1.0, 2.0, 4.0, 8.0}) {
      lb::util::Rng rng(seed);
      const auto g = lb::graph::make_torus2d(16, 16);
      auto load = lb::workload::spike<double>(g.num_nodes(), 256000.0);
      const double phi0 = lb::core::potential(load);
      lb::core::DiffusionConfig cfg;
      cfg.factor = factor;
      lb::core::ContinuousDiffusion alg(cfg);
      std::size_t rounds = 0, overshoot = 0;
      double prev = phi0;
      while (lb::core::potential(load) > 1e-6 * phi0 && rounds < 100000) {
        alg.step(g, load, rng);
        const double cur = lb::core::potential(load);
        if (cur > prev + 1e-9 * prev) ++overshoot;
        prev = cur;
        ++rounds;
      }
      table.row()
          .add(factor, 2)
          .add(static_cast<std::int64_t>(rounds))
          .add(overshoot == 0 ? "yes" : "no")
          .add(static_cast<std::int64_t>(overshoot));
    }
    lb::bench::emit(table, "Denominator ablation on torus2d(16x16), spike start",
                    opts.get_flag("csv"));
  }
  return 0;
}
