// E10 (Lemma 13 + Theorem 14): Algorithm 2, discrete case.
//
// While Φ >= 3200n the expected one-round factor is <= 39/40 (Lemma 13);
// the threshold is reached within 240·c·ln(Φ⁰/3200n) rounds (Theorem 14).
#include "bench_common.hpp"

#include <cmath>

#include "lb/core/bounds.hpp"
#include "lb/core/load.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/stats.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E10 / Lemma 13 + Theorem 14: random balancing partners, discrete");
  opts.add_int("trials", 200, "independent one-round trials for the Lemma-13 mean")
      .add_double("c", 1.0, "Theorem-14 constant c")
      .add_double("headroom", 10000.0, "Phi0 as a multiple of 3200n")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const int trials = static_cast<int>(opts.get_int("trials"));
  const double c = opts.get_double("c");
  const double headroom = opts.get_double("headroom");
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E10: Lemma 13 + Theorem 14 (random partners, discrete)",
                    "while Phi >= 3200n: E[Phi^{t+1}] <= (39/40) Phi^t; threshold "
                    "reached within 240*c*ln(Phi0/3200n) rounds",
                    seed);

  const auto dummy = lb::graph::make_complete(2);

  lb::util::Table table({"n", "threshold", "Phi0/thresh", "E[drop factor]",
                         "Lemma13 bound", "holds", "T bound", "T measured",
                         "meas/bound"});

  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const double threshold = lb::core::bounds::random_partner_threshold(n);
    const double target_phi0 = headroom * threshold;
    const auto spike = static_cast<std::int64_t>(
        std::sqrt(target_phi0 / (1.0 - 1.0 / static_cast<double>(n))));
    const auto start = lb::workload::spike<std::int64_t>(n, spike);
    const double phi0 = lb::core::potential(start);

    lb::util::Rng rng(seed + n);
    lb::util::RunningStats ratio;
    for (int t = 0; t < trials; ++t) {
      auto load = start;
      lb::core::DiscreteRandomPartner alg;
      alg.step(dummy, load, rng);
      ratio.add(lb::core::potential(load) / phi0);
    }

    const double bound_T = lb::core::bounds::theorem14_rounds(c, phi0, n);
    auto load = start;
    lb::core::DiscreteRandomPartner alg;
    std::size_t measured = 0;
    const auto budget = static_cast<std::size_t>(std::ceil(bound_T));
    for (std::size_t round = 1; round <= budget; ++round) {
      alg.step(dummy, load, rng);
      if (lb::core::potential(load) <= threshold) {
        measured = round;
        break;
      }
    }

    table.row()
        .add(static_cast<std::int64_t>(n))
        .add_sci(threshold)
        .add(phi0 / threshold, 4)
        .add(ratio.mean(), 4)
        .add(lb::core::bounds::kLemma13Factor, 4)
        .add(ratio.mean() < lb::core::bounds::kLemma13Factor ? "yes" : "NO")
        .add(bound_T, 5)
        .add(static_cast<std::int64_t>(measured))
        .add(measured > 0 ? static_cast<double>(measured) / bound_T : 0.0, 3);
  }
  lb::bench::emit(table, "Lemma 13 drop factor and Theorem 14 rounds (discrete)",
                  opts.get_flag("csv"));
  return 0;
}
