// E16: sharded-execution cost model — µs/round and messages/round versus
// the domain count K on a large torus.
//
// For each K the sharded engine runs the identical diffusion instance the
// shared-memory engine runs, and the bench *verifies* bit-identity
// (rounds, per-round Φ trace, final load vector) before reporting the
// cost columns; any divergence makes the process exit nonzero, so the
// bench doubles as the determinism gate for CI (--quick keeps that gate
// cheap).  Cost columns are the modeled comm quantities (messages/round,
// boundary bytes/round, halo-wait share) plus the measured wall µs/round.
// The LB_SHARDS environment variable (comma-separated domain counts)
// restricts which K legs run — CI uses it to split the smoke across
// matrix jobs; unset means the full {1, 2, 4, 8} sweep.
#include "bench_common.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "lb/core/diffusion.hpp"
#include "lb/core/engine.hpp"
#include "lb/shard/ownership.hpp"
#include "lb/shard/sharded_engine.hpp"
#include "lb/util/timer.hpp"
#include "lb/workload/initial.hpp"

namespace {

struct Leg {
  std::size_t domains = 1;
  std::size_t cut_edges = 0;
  lb::core::RunResult run;
  double wall_seconds = 0.0;
  std::size_t divergence = 0;  ///< mismatched fields vs the oracle
};

/// Bitwise comparison of the deterministic RunResult surface.  Returns
/// the number of mismatched fields (0 = identical).
std::size_t count_divergence(const lb::core::RunResult& oracle, const Leg& leg,
                             const std::vector<double>& oracle_load,
                             const std::vector<double>& leg_load) {
  std::size_t bad = 0;
  if (oracle.rounds != leg.run.rounds) ++bad;
  if (oracle.final_potential != leg.run.final_potential) ++bad;
  if (oracle.final_discrepancy != leg.run.final_discrepancy) ++bad;
  const auto& a = oracle.trace.records();
  const auto& b = leg.run.trace.records();
  if (a.size() != b.size()) {
    ++bad;
  } else {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].potential != b[i].potential ||
          a[i].transferred != b[i].transferred) {
        ++bad;
        break;
      }
    }
  }
  if (oracle_load.size() != leg_load.size()) {
    ++bad;
  } else {
    for (std::size_t i = 0; i < oracle_load.size(); ++i) {
      if (oracle_load[i] != leg_load[i]) {
        ++bad;
        break;
      }
    }
  }
  return bad;
}

void write_json(const std::string& path, std::size_t n, std::size_t rounds,
                const std::vector<Leg>& legs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"shard\", \"n\": %zu, \"rounds\": %zu,\n"
                  "  \"legs\": [\n", n, rounds);
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const Leg& l = legs[i];
    const double per_round =
        l.run.rounds > 0 ? static_cast<double>(l.run.rounds) : 1.0;
    std::fprintf(
        f,
        "    {\"domains\": %zu, \"cut_edges\": %zu, \"us_per_round\": %.3f, "
        "\"messages_per_round\": %.3f, \"bytes_per_round\": %.1f, "
        "\"halo_wait_us\": %.3f}%s\n",
        l.domains, l.cut_edges, l.wall_seconds * 1e6 / per_round,
        static_cast<double>(l.run.comm.messages) / per_round,
        static_cast<double>(l.run.comm.boundary_bytes) / per_round,
        l.run.comm.halo_wait_us, i + 1 < legs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void write_trace_csv(const std::string& dir, std::size_t domains,
                     const lb::core::RunResult& run) {
  const std::string path =
      dir + "/ablation_shard_k" + std::to_string(domains) + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string csv = run.trace.to_csv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
}

/// Domain counts to bench: LB_SHARDS="1,4"-style env override, or the
/// full default sweep.
std::vector<std::size_t> shard_counts() {
  const std::vector<std::size_t> all{1, 2, 4, 8};
  const char* env = std::getenv("LB_SHARDS");
  if (env == nullptr || *env == '\0') return all;
  std::vector<std::size_t> ks;
  std::size_t value = 0;
  bool in_number = false;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      value = value * 10 + static_cast<std::size_t>(*p - '0');
      in_number = true;
    } else {
      if (in_number && value > 0) ks.push_back(value);
      value = 0;
      in_number = false;
      if (*p == '\0') break;
    }
  }
  return ks.empty() ? all : ks;
}

}  // namespace

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E16: sharded K-domain execution — comm cost versus domain count, "
      "with bit-identity to the shared-memory oracle enforced");
  opts.add_int("n", 65536, "torus node count (rounded to a square side)")
      .add_int("rounds", 50, "rounds per leg")
      .add_int("seed", 42, "engine RNG seed")
      .add_flag("quick", "CI smoke: 4096 nodes, 15 rounds")
      .add_flag("csv", "emit CSV instead of a table")
      .add_string("json", "", "write machine-readable summary JSON here")
      .add_string("ablation-dir", "",
                  "write ablation_shard_k{1,4}.csv trace pair here");
  opts.parse(argc, argv);

  const bool quick = opts.get_flag("quick");
  const std::size_t n = quick ? 4096 : static_cast<std::size_t>(opts.get_int("n"));
  const std::size_t rounds =
      quick ? 15 : static_cast<std::size_t>(opts.get_int("rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const bool csv = opts.get_flag("csv");

  lb::util::Rng rng(seed);
  const lb::graph::Graph g = lb::graph::make_named("torus2d", n, rng);
  const auto load0 = lb::workload::spike<double>(
      g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()));

  if (!csv) {
    lb::bench::banner(
        "E16: sharded ownership/halo execution",
        "K-domain halo exchange is bit-identical to the shared-memory "
        "engine; only the comm bill varies with K",
        seed);
    std::printf("graph: %s (%zu nodes, %zu edges)\n\n", g.name().c_str(),
                g.num_nodes(), g.num_edges());
  }

  lb::core::EngineConfig cfg;
  cfg.max_rounds = rounds;
  cfg.target_potential = 0.0;
  cfg.record_trace = true;
  cfg.seed = seed;

  // Shared-memory oracle.
  lb::core::RunResult oracle;
  std::vector<double> oracle_load;
  {
    auto alg = lb::core::make_diffusion_continuous();
    oracle_load = load0;
    oracle = lb::core::run_static(*alg, g, oracle_load, cfg);
  }

  std::vector<Leg> legs;
  std::size_t divergent = 0;
  for (const std::size_t k : shard_counts()) {
    Leg leg;
    leg.domains = k;
    lb::shard::ShardConfig shard;
    shard.domains = k;
    leg.cut_edges =
        lb::shard::OwnershipMap::build(g, k, shard.policy).cut_edges();
    auto alg = lb::core::make_diffusion_continuous();
    std::vector<double> load = load0;
    const lb::util::Stopwatch watch;
    leg.run = lb::shard::run_static(*alg, g, load, cfg, shard);
    leg.wall_seconds = watch.elapsed_seconds();
    leg.divergence = count_divergence(oracle, leg, oracle_load, load);
    if (leg.divergence != 0) {
      std::fprintf(stderr, "DIVERGENCE: K=%zu differs from the K=1 oracle "
                           "(%zu mismatched fields)\n", k, leg.divergence);
      divergent += leg.divergence;
    }
    legs.push_back(std::move(leg));
  }

  lb::util::Table table({"domains", "cut_edges", "us/round", "messages/round",
                         "bytes/round", "halo_wait_us", "identical"});
  for (const Leg& l : legs) {
    const double per_round =
        l.run.rounds > 0 ? static_cast<double>(l.run.rounds) : 1.0;
    table.row()
        .add(static_cast<std::int64_t>(l.domains))
        .add(static_cast<std::int64_t>(l.cut_edges))
        .add(l.wall_seconds * 1e6 / per_round, 3)
        .add(static_cast<double>(l.run.comm.messages) / per_round, 3)
        .add(static_cast<double>(l.run.comm.boundary_bytes) / per_round, 1)
        .add(l.run.comm.halo_wait_us, 3)
        .add(l.divergence == 0 ? 1 : 0);
  }
  lb::bench::emit(table, "sharded execution cost vs K (bit-identity enforced)",
                  csv);

  if (!opts.get_string("json").empty()) {
    write_json(opts.get_string("json"), g.num_nodes(), rounds, legs);
  }
  if (!opts.get_string("ablation-dir").empty()) {
    for (const Leg& l : legs) {
      if (l.domains == 1 || l.domains == 4) {
        write_trace_csv(opts.get_string("ablation-dir"), l.domains, l.run);
      }
    }
  }

  if (divergent != 0) {
    std::fprintf(stderr, "bench_shard: FAILED — sharded runs diverged from "
                         "the shared-memory oracle\n");
    return 1;
  }
  return 0;
}
