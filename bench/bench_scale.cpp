// E17: million-node substrate — µs/round and bytes/node along the
// n = 2^16 .. 2^21 trajectory (DESIGN.md §9).
//
// For every (n, balancer) cell the cache-blocked fused round (the
// default single-worker path) runs against the flat unblocked oracle
// (LB_BLOCK_NODES disabled via the programmatic override), plus pool-2,
// pool-hw and an invariant-checked (LB_CHECK-equivalent) leg.  The bench
// *verifies* bit-identity — rounds, per-round Φ trace, final loads —
// before reporting any cost column, and exits nonzero on divergence, so
// it doubles as the scale determinism gate for CI (--quick keeps that
// gate cheap).
//
// Two substrate metrics ride along:
//   bytes/node  — measured resident topology bytes (Graph + FlowLedger)
//                 against the analytic legacy layout (8-byte offsets and
//                 row pointers, 8-byte signs), proving the compact
//                 uint32/int8 storage actually shrank the working set;
//   allocs/round — a global operator-new counting hook runs the blocked
//                 pool-1 leg at R and 2R rounds; the difference divided
//                 by the extra rounds is the steady-state allocation
//                 rate, which must be zero (the RunArena/FlowLedger
//                 audit).  Nonzero fails the bench.
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "lb/core/diffusion.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/flow_ledger.hpp"
#include "lb/core/sos.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/util/timer.hpp"
#include "lb/workload/initial.hpp"

namespace {
std::atomic<long long> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};
}  // namespace

// Replaceable global allocation functions: count while the audit flag is
// up, delegate to malloc/free otherwise.  Only the pool-1 blocked leg is
// audited (parallel_for legs allocate std::function state by design).
void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

/// Blocked-path overrides are process-global; scope them so an early
/// return can never leak a disabled width into a later leg.
struct WidthOverride {
  explicit WidthOverride(long long w) { lb::core::set_blocked_width_override(w); }
  ~WidthOverride() { lb::core::set_blocked_width_override(-1); }
};

/// Number of mismatched deterministic fields between two runs (0 =
/// bit-identical; wall-clock fields excluded by design).
template <class T>
std::size_t count_divergence(const lb::core::RunResult& oracle,
                             const lb::core::RunResult& run,
                             const std::vector<T>& oracle_load,
                             const std::vector<T>& run_load) {
  std::size_t bad = 0;
  if (oracle.rounds != run.rounds) ++bad;
  if (oracle.final_potential != run.final_potential) ++bad;
  if (oracle.final_discrepancy != run.final_discrepancy) ++bad;
  const auto& a = oracle.trace.records();
  const auto& b = run.trace.records();
  if (a.size() != b.size()) {
    ++bad;
  } else {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].potential != b[i].potential ||
          a[i].transferred != b[i].transferred) {
        ++bad;
        break;
      }
    }
  }
  if (oracle_load != run_load) ++bad;
  return bad;
}

/// Analytic bytes of the pre-§9 layout: 8-byte offsets/row pointers,
/// 8-byte signs, no second edge index.  The measured column must beat it.
double legacy_bytes_per_node(std::size_t n, std::size_t m) {
  const double graph_bytes = 8.0 * static_cast<double>(n + 1)   // offsets
                             + 4.0 * 2.0 * static_cast<double>(m)  // adjacency
                             + 8.0 * static_cast<double>(m);       // edges
  const double ledger_bytes = 8.0 * static_cast<double>(n + 1)     // row_ptr
                              + 4.0 * 2.0 * static_cast<double>(m)  // edge_idx
                              + 8.0 * 2.0 * static_cast<double>(m); // signs
  return (graph_bytes + ledger_bytes) / static_cast<double>(n);
}

struct CellResult {
  std::size_t n = 0;
  std::size_t edges = 0;
  std::string balancer;
  double us_flat = 0.0;
  double us_blocked = 0.0;
  double us_pool2 = 0.0;
  double us_poolhw = 0.0;
  double bytes_per_node = 0.0;
  double legacy_bytes = 0.0;
  double allocs_per_round = 0.0;
  std::size_t divergence = 0;
  lb::core::RunResult flat_run;     // kept for the ablation traces
  lb::core::RunResult blocked_run;
};

template <class T>
using MakeBalancer = std::function<std::unique_ptr<lb::core::Balancer<T>>()>;

template <class T>
CellResult run_cell(const lb::graph::Graph& g, const std::string& name,
                    const MakeBalancer<T>& make, const std::vector<T>& load0,
                    std::size_t rounds, std::uint64_t seed, bool audit_allocs,
                    std::size_t reps) {
  CellResult cell;
  cell.n = g.num_nodes();
  cell.edges = g.num_edges();
  cell.balancer = name;

  {
    lb::core::FlowLedger ledger;
    ledger.rebuild(g);
    cell.bytes_per_node =
        static_cast<double>(g.memory_bytes() + ledger.memory_bytes()) /
        static_cast<double>(g.num_nodes());
  }
  cell.legacy_bytes = legacy_bytes_per_node(g.num_nodes(), g.num_edges());

  lb::core::EngineConfig cfg;
  cfg.max_rounds = rounds;
  cfg.target_potential = 0.0;
  cfg.record_trace = true;
  cfg.seed = seed;

  // One timed run; the caller owns best-of selection.
  auto timed = [&](lb::util::ThreadPool& pool, bool checked, double& best_s,
                   std::vector<T>& load_out) {
    cfg.pool = &pool;
    cfg.check_invariants = checked;
    auto alg = make();
    load_out = load0;
    const lb::util::Stopwatch watch;
    lb::core::RunResult run = lb::core::run_static(*alg, g, load_out, cfg);
    const double wall = watch.elapsed_seconds();
    if (best_s <= 0.0 || wall < best_s) best_s = wall;
    cfg.check_invariants = false;
    return run;
  };

  // Best-of-`reps`, with the legs INTERLEAVED inside each repetition:
  // every repetition is bit-identical (that is the whole determinism
  // contract), so the minimum wall time per leg is the cleanest estimate
  // of its kernel cost — it sheds first-touch page faults and scheduler
  // noise — and interleaving means slow machine phases (throttling,
  // noisy neighbours on a shared core) hit every leg alike instead of
  // biasing whichever leg happens to run later.
  double flat_s = 0.0, blocked_s = 0.0, pool2_s = 0.0, poolhw_s = 0.0;
  std::vector<T> flat_load;
  double ignored = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const bool last = rep + 1 == reps;
    {
      // Flat oracle: blocking disabled, sequential.
      WidthOverride flat(0);
      lb::util::ThreadPool pool(1);
      cell.flat_run = timed(pool, false, flat_s, flat_load);
    }
    {
      // Blocked leg: the default single-worker path.
      lb::util::ThreadPool pool(1);
      std::vector<T> load;
      cell.blocked_run = timed(pool, false, blocked_s, load);
      if (last) {
        cell.divergence +=
            count_divergence(cell.flat_run, cell.blocked_run, flat_load, load);
      }
    }
    {
      lb::util::ThreadPool pool(2);
      std::vector<T> load;
      const lb::core::RunResult run = timed(pool, false, pool2_s, load);
      if (last) {
        cell.divergence += count_divergence(cell.flat_run, run, flat_load, load);
      }
    }
    {
      lb::util::ThreadPool pool(0);  // hardware concurrency
      std::vector<T> load;
      const lb::core::RunResult run = timed(pool, false, poolhw_s, load);
      if (last) {
        cell.divergence += count_divergence(cell.flat_run, run, flat_load, load);
      }
    }
    if (last) {
      // Invariant-checked leg: same as LB_CHECK=1 in the environment.
      // Untimed, so one repetition suffices for the identity gate.
      lb::util::ThreadPool pool(1);
      std::vector<T> checked_load;
      const lb::core::RunResult checked =
          timed(pool, true, ignored, checked_load);
      cell.divergence +=
          count_divergence(cell.flat_run, checked, flat_load, checked_load);
    }
  }
  const double denom =
      cell.flat_run.rounds > 0 ? static_cast<double>(cell.flat_run.rounds) : 1.0;
  cell.us_flat = flat_s * 1e6 / denom;
  cell.us_blocked = blocked_s * 1e6 / denom;
  cell.us_pool2 = pool2_s * 1e6 / denom;
  cell.us_poolhw = poolhw_s * 1e6 / denom;

  if (audit_allocs) {
    // Steady-state allocation rate of the blocked pool-1 leg: run at R
    // and at 2R rounds with the counting hook armed; identical setup
    // cancels and the difference is pure per-round allocation.
    lb::util::ThreadPool pool(1);
    cfg.pool = &pool;
    auto measure = [&](std::size_t r) {
      cfg.max_rounds = r;
      auto alg = make();
      std::vector<T> load = load0;
      g_alloc_count.store(0, std::memory_order_relaxed);
      g_count_allocs.store(true, std::memory_order_relaxed);
      lb::core::RunResult run = lb::core::run_static(*alg, g, load, cfg);
      g_count_allocs.store(false, std::memory_order_relaxed);
      return std::pair<long long, std::size_t>(
          g_alloc_count.load(std::memory_order_relaxed), run.rounds);
    };
    const auto [a1, r1] = measure(rounds);
    const auto [a2, r2] = measure(2 * rounds);
    cfg.max_rounds = rounds;
    cell.allocs_per_round =
        r2 > r1 ? static_cast<double>(a2 - a1) / static_cast<double>(r2 - r1)
                : 0.0;
  }
  return cell;
}

void write_json(const std::string& path, std::size_t rounds,
                const std::vector<CellResult>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale\", \"rounds\": %zu,\n"
                  "  \"cells\": [\n", rounds);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        f,
        "    {\"n\": %zu, \"edges\": %zu, \"balancer\": \"%s\", "
        "\"us_per_round_flat\": %.3f, \"us_per_round_blocked\": %.3f, "
        "\"us_per_round_pool2\": %.3f, \"us_per_round_poolhw\": %.3f, "
        "\"bytes_per_node\": %.2f, \"legacy_bytes_per_node\": %.2f, "
        "\"allocs_per_round\": %.3f, \"identical\": %d}%s\n",
        c.n, c.edges, c.balancer.c_str(), c.us_flat, c.us_blocked, c.us_pool2,
        c.us_poolhw, c.bytes_per_node, c.legacy_bytes, c.allocs_per_round,
        c.divergence == 0 ? 1 : 0, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void write_trace_csv(const std::string& path, const lb::core::RunResult& run) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string csv = run.trace.to_csv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
}

/// 2^ceil(k/2) x 2^floor(k/2) torus: the square-ish power-of-two slice
/// the whole trajectory uses, so n is exactly 2^k at every point.
lb::graph::Graph make_scale_torus(std::size_t log2_n) {
  const std::size_t a = std::size_t{1} << ((log2_n + 1) / 2);
  const std::size_t b = std::size_t{1} << (log2_n / 2);
  return lb::graph::make_torus2d(a, b);
}

}  // namespace

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E17: million-node substrate — blocked vs flat µs/round, bytes/node, "
      "and the zero-allocation steady state, bit-identity enforced");
  opts.add_int("log2-min", 16, "smallest n as a power of two")
      .add_int("log2-max", 21, "largest n as a power of two")
      .add_int("rounds", 24, "rounds per leg")
      .add_int("reps", 3, "repetitions per leg; best (min) time is kept")
      .add_int("seed", 42, "engine RNG seed")
      .add_flag("quick", "CI smoke: n = 2^12..2^13, 10 rounds")
      .add_flag("csv", "emit CSV instead of a table")
      .add_string("json", "", "write machine-readable summary JSON here")
      .add_string("ablation-dir", "",
                  "write ablation_scale_{blocked,flat}.csv trace pair here");
  opts.parse(argc, argv);

  const bool quick = opts.get_flag("quick");
  const std::size_t log2_min =
      quick ? 12 : static_cast<std::size_t>(opts.get_int("log2-min"));
  const std::size_t log2_max =
      quick ? 13 : static_cast<std::size_t>(opts.get_int("log2-max"));
  const std::size_t rounds =
      quick ? 10 : static_cast<std::size_t>(opts.get_int("rounds"));
  const std::size_t reps =
      quick ? 1
            : std::max<std::size_t>(
                  1, static_cast<std::size_t>(opts.get_int("reps")));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const bool csv = opts.get_flag("csv");

  if (!csv) {
    lb::bench::banner(
        "E17: million-node substrate",
        "compact CSR + cache-blocked fused rounds along n = 2^k; every leg "
        "bit-identical to the flat oracle or the bench fails",
        seed);
  }

  std::vector<CellResult> cells;
  std::size_t divergent = 0;
  double worst_alloc_rate = 0.0;
  for (std::size_t k = log2_min; k <= log2_max; ++k) {
    const lb::graph::Graph g = make_scale_torus(k);
    const std::size_t n = g.num_nodes();

    lb::util::Rng wrng(seed + k);
    const auto cont0 = lb::workload::bimodal<double>(
        n, 1000.0 * static_cast<double>(n), wrng);
    const auto disc0 = lb::workload::uniform_random<std::int64_t>(
        n, static_cast<std::int64_t>(1000 * n), wrng);

    const MakeBalancer<double> diffusion_cont = [] {
      return lb::core::make_diffusion_continuous();
    };
    const MakeBalancer<double> sos = [] { return lb::core::make_sos(1.5); };
    const MakeBalancer<std::int64_t> diffusion_disc = [] {
      return lb::core::make_diffusion_discrete();
    };

    cells.push_back(run_cell<double>(g, "diffusion-cont", diffusion_cont,
                                     cont0, rounds, seed, /*audit=*/true,
                                     reps));
    cells.push_back(run_cell<double>(g, "sos", sos, cont0, rounds, seed,
                                     /*audit=*/false, reps));
    cells.push_back(run_cell<std::int64_t>(g, "diffusion-disc", diffusion_disc,
                                           disc0, rounds, seed,
                                           /*audit=*/false, reps));
    for (std::size_t i = cells.size() - 3; i < cells.size(); ++i) {
      divergent += cells[i].divergence;
      if (cells[i].allocs_per_round > worst_alloc_rate) {
        worst_alloc_rate = cells[i].allocs_per_round;
      }
      if (cells[i].divergence != 0) {
        std::fprintf(stderr,
                     "DIVERGENCE: n=%zu %s differs from the flat oracle "
                     "(%zu mismatched fields)\n",
                     cells[i].n, cells[i].balancer.c_str(),
                     cells[i].divergence);
      }
    }
  }

  lb::util::Table table({"n", "balancer", "us/rd flat", "us/rd blocked",
                         "us/rd pool2", "us/rd poolhw", "B/node", "B/node legacy",
                         "allocs/rd", "identical"});
  for (const CellResult& c : cells) {
    table.row()
        .add(static_cast<std::int64_t>(c.n))
        .add(c.balancer)
        .add(c.us_flat, 3)
        .add(c.us_blocked, 3)
        .add(c.us_pool2, 3)
        .add(c.us_poolhw, 3)
        .add(c.bytes_per_node, 2)
        .add(c.legacy_bytes, 2)
        .add(c.allocs_per_round, 3)
        .add(c.divergence == 0 ? 1 : 0);
  }
  lb::bench::emit(table,
                  "scale trajectory (blocked fused rounds vs flat oracle)", csv);

  if (!opts.get_string("json").empty()) {
    write_json(opts.get_string("json"), rounds, cells);
  }
  if (!opts.get_string("ablation-dir").empty()) {
    // Trace pair from the largest diffusion-cont cell: blocked vs flat.
    for (auto it = cells.rbegin(); it != cells.rend(); ++it) {
      if (it->balancer == "diffusion-cont") {
        const std::string dir = opts.get_string("ablation-dir");
        write_trace_csv(dir + "/ablation_scale_blocked.csv", it->blocked_run);
        write_trace_csv(dir + "/ablation_scale_flat.csv", it->flat_run);
        break;
      }
    }
  }

  bool failed = false;
  if (divergent != 0) {
    std::fprintf(stderr, "bench_scale: FAILED — blocked/parallel/checked legs "
                         "diverged from the flat oracle\n");
    failed = true;
  }
  if (worst_alloc_rate > 0.0) {
    std::fprintf(stderr,
                 "bench_scale: FAILED — blocked pool-1 leg allocates %.3f "
                 "times/round in steady state (expected 0)\n",
                 worst_alloc_rate);
    failed = true;
  }
  return failed ? 1 : 0;
}
