// Shared helpers for the experiment binaries.  Each bench reproduces one
// experiment from DESIGN.md's per-experiment index (E1..E14) and prints a
// paper-style table; pass --csv for machine-readable output and --help
// for the parameters.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "lb/graph/generators.hpp"
#include "lb/util/options.hpp"
#include "lb/util/table.hpp"

namespace lb::bench {

/// The topology suite most experiments sweep over.
inline std::vector<std::string> default_families() {
  return {"path", "cycle", "torus2d", "hypercube", "debruijn", "regular", "star",
          "complete"};
}

/// Print a table in text or CSV form.
inline void emit(const util::Table& table, const std::string& caption, bool csv) {
  if (csv) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout, caption);
  }
}

/// Header line every experiment prints first.
inline void banner(const std::string& experiment, const std::string& claim,
                   std::uint64_t seed) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("seed: %llu\n\n", static_cast<unsigned long long>(seed));
}

}  // namespace lb::bench
