// E13 (scaling "figure"): rounds-to-balance versus n per topology follow
// the spectral prediction T ≈ 4δ·ln(1/ε)/λ2 — Θ(n²·ln(1/ε)) on paths and
// cycles, Θ(n·ln(1/ε)) on 2D tori, Θ(ln(1/ε)) on hypercubes and expanders.
//
// Printed as a series (one row per (topology, n)) — the data behind the
// log-log convergence figure.
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/util/stats.hpp"
#include "lb/util/timer.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E13: rounds-to-balance vs n per topology (the scaling figure): measured "
      "rounds track 4*delta*ln(1/eps)/lambda2");
  opts.add_double("eps", 1e-4, "target potential fraction")
      .add_int("seed", 42, "RNG seed")
      .add_string("apply", "ledger",
                  "apply-phase substrate: 'ledger' (parallel node-centric) or "
                  "'edge' (sequential edge sweep) — the ISSUE 2 ablation axis")
      .add_string("metrics", "fused",
                  "per-round observability: 'fused' (deterministic parallel "
                  "reduction riding the apply) or 'serial' (the PR-2 sequential "
                  "summarize) — the ISSUE 3 ablation axis")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const double eps = opts.get_double("eps");
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const std::string& apply_name = opts.get_string("apply");
  if (apply_name != "edge" && apply_name != "ledger") {
    std::fprintf(stderr, "unknown --apply value '%s' (want 'edge' or 'ledger')\n",
                 apply_name.c_str());
    return 2;
  }
  const lb::core::ApplyPath apply = apply_name == "edge"
                                        ? lb::core::ApplyPath::kEdgeSweep
                                        : lb::core::ApplyPath::kLedger;
  const std::string& metrics_name = opts.get_string("metrics");
  if (metrics_name != "fused" && metrics_name != "serial") {
    std::fprintf(stderr,
                 "unknown --metrics value '%s' (want 'fused' or 'serial')\n",
                 metrics_name.c_str());
    return 2;
  }
  const lb::core::MetricsPath metrics = metrics_name == "serial"
                                            ? lb::core::MetricsPath::kSequential
                                            : lb::core::MetricsPath::kFusedParallel;

  lb::bench::banner("E13: topology scaling figure",
                    "measured rounds follow the spectral prediction: ~n^2 on "
                    "path/cycle, ~n on torus2d, ~const on hypercube/expander",
                    seed);

  lb::util::Table table({"topology", "n", "apply", "metrics", "lambda2", "T bound",
                         "T measured", "meas/bound", "us/round", "step us/rd",
                         "metrics us/rd"});

  struct Series {
    std::string family;
    std::vector<std::size_t> sizes;
  };
  const std::vector<Series> series = {
      {"path", {16, 32, 64, 128, 256}},
      {"cycle", {16, 32, 64, 128, 256}},
      {"torus2d", {16, 64, 256, 1024}},
      {"hypercube", {16, 64, 256, 1024}},
      {"regular", {16, 64, 256, 1024}},
      {"debruijn", {16, 64, 256, 1024}},
  };

  // For the per-family growth-exponent summary.
  lb::util::Table fits({"topology", "fitted exponent (T ~ n^e)", "r^2",
                        "spectral prediction"});

  for (const auto& s : series) {
    std::vector<double> log_n, log_t;
    for (std::size_t n : s.sizes) {
      lb::util::Rng rng(seed);
      const auto g = lb::graph::make_named(s.family, n, rng);
      const double l2 = lb::linalg::lambda2(g, /*dense_cutoff=*/512);
      const double bound = lb::core::bounds::theorem4_rounds(l2, g.max_degree(), eps);

      auto load = lb::workload::spike<double>(
          g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()));
      const double phi0 = lb::core::potential(load);
      lb::core::DiffusionConfig alg_cfg;
      alg_cfg.apply = apply;
      lb::core::ContinuousDiffusion alg(alg_cfg);
      lb::core::EngineConfig cfg;
      cfg.max_rounds = static_cast<std::size_t>(std::ceil(bound)) + 10;
      cfg.target_potential = eps * phi0;
      cfg.record_trace = false;
      cfg.stall_rounds = 0;
      cfg.metrics = metrics;
      const lb::util::Stopwatch watch;
      const auto result = lb::core::run_static(alg, g, load, cfg);
      const double rounds_d =
          result.rounds == 0 ? 1.0 : static_cast<double>(result.rounds);
      const double us_per_round =
          result.rounds == 0 ? 0.0 : watch.elapsed_seconds() * 1e6 / rounds_d;

      table.row()
          .add(g.name())
          .add(static_cast<std::int64_t>(g.num_nodes()))
          .add(apply_name)
          .add(metrics_name)
          .add(l2, 4)
          .add(bound, 5)
          .add(static_cast<std::int64_t>(result.rounds))
          .add(static_cast<double>(result.rounds) / bound, 3)
          .add(us_per_round, 2)
          .add(result.step_seconds * 1e6 / rounds_d, 2)
          .add(result.metrics_seconds * 1e6 / rounds_d, 2);
      if (result.rounds > 0) {
        log_n.push_back(std::log(static_cast<double>(g.num_nodes())));
        log_t.push_back(std::log(static_cast<double>(result.rounds)));
      }
    }
    if (log_n.size() >= 2) {
      const auto fit = lb::util::linear_fit(log_n, log_t);
      const char* prediction =
          (s.family == "path" || s.family == "cycle") ? "2 (lambda2 ~ 1/n^2)"
          : (s.family == "torus2d")                   ? "1 (lambda2 ~ 1/n)"
                                                      : "0 (lambda2 ~ const)";
      fits.row().add(s.family).add(fit.slope, 3).add(fit.r_squared, 3).add(prediction);
    }
  }

  lb::bench::emit(table, "Rounds to eps-balance per (topology, n)",
                  opts.get_flag("csv"));
  lb::bench::emit(fits, "Log-log growth exponents (measured vs spectral prediction)",
                  opts.get_flag("csv"));
  return 0;
}
