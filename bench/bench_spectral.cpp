// E17: three-tier spectral-cache ablation — µs/frame warm vs cold.
//
// The dynamic profiler used to pay one cold eigensolve per connected
// round.  The SpectralCache (DESIGN.md §10) removes the redundant work in
// three tiers: exact fingerprint hits (bit-identical), delta-bound skips
// (within a documented tolerance), and warm-started Lanczos.  This bench
// profiles the same frame streams twice —
//
//   cold    SpectralProfileOptions{warm = false}: the pre-cache oracle,
//           a fresh cold solve for every connected frame;
//   warm    the default three-tier policy through one SpectralCache;
//
// across churn / partition / periodic / wave scenarios and a hypercube
// size sweep, and reports µs/frame plus the tier counters (solves /
// exact hits / bound skips / warm solves).  Expected shape: periodic and
// partition streams repeat frames, so Tier 1 collapses them to one solve
// per distinct frame (≫5× µs/frame); churn never repeats a frame, so its
// win comes from Tiers 2/3; wave rounds are disconnected (downed nodes)
// and spend nothing in either leg.
//
// Verification, enforced by a nonzero exit: every exact-tier λ2 entry
// must equal the cold leg's bit for bit, and full warm-vs-cold
// run_dynamic trajectories (diffusion over the same streams) must be
// bit-identical at pools {1, 2, hw} — the cache may move profiling work,
// never a trajectory.
#include "bench_common.hpp"

#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lb/core/diffusion.hpp"
#include "lb/core/dynamic_runner.hpp"
#include "lb/graph/dynamic.hpp"
#include "lb/graph/generators.hpp"
#include "lb/linalg/spectral_cache.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/util/timer.hpp"
#include "lb/workload/initial.hpp"

namespace {

using lb::core::SpectralProfileOptions;
using lb::graph::Graph;
using lb::graph::GraphSequence;

struct ScenarioDef {
  const char* name;
  std::function<std::unique_ptr<GraphSequence>(const Graph&)> make;
};

std::vector<ScenarioDef> scenarios(std::uint64_t seed) {
  return {
      // Period-1 repetition: every frame identical, the Tier-1 best case.
      {"periodic", [](const Graph& base) {
         return lb::graph::make_static_view(base);
       }},
      {"partition", [](const Graph& base) {
         return lb::graph::make_partition_sequence(base, 8);
       }},
      {"churn", [seed](const Graph& base) {
         return lb::graph::make_churn_sequence(base, 0.9, 0.02, seed);
       }},
      {"wave", [](const Graph& base) {
         return lb::graph::make_failure_wave_sequence(
             base, std::max<std::size_t>(base.num_nodes() / 8, 1), 1);
       }},
  };
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct LegResult {
  lb::core::DynamicSpectralProfile profile;
  double us_per_frame = 0.0;
  lb::linalg::SpectralCacheStats stats;  // warm leg only
};

LegResult profile_leg(const ScenarioDef& scenario, const Graph& base,
                      std::size_t frames, bool warm) {
  LegResult leg;
  auto seq = scenario.make(base);
  SpectralProfileOptions opts;
  opts.warm = warm;
  lb::linalg::SpectralCache cache;
  if (warm) opts.cache = &cache;
  const lb::util::Stopwatch watch;
  leg.profile = lb::core::profile_sequence(*seq, frames, opts);
  leg.us_per_frame =
      watch.elapsed_seconds() * 1e6 / static_cast<double>(frames);
  leg.stats = cache.stats();
  return leg;
}

/// Profile-grade contract (DESIGN.md §10): Tier-1 hits return the cached
/// anchor's bits verbatim (self-consistency against the first solve of the
/// same fingerprint); solved rounds agree with the cold oracle to solver
/// tolerance (warm starts move the Krylov iterates, not the answer); Tier-2
/// skips sit inside their documented bracket.  Engine-side bit-exactness is
/// enforced separately by trajectories_agree().
bool profiles_agree(const lb::core::DynamicSpectralProfile& warm,
                    const lb::core::DynamicSpectralProfile& cold,
                    const char* label) {
  using S = lb::core::bounds::RoundSpectralStatus;
  if (warm.lambda2_per_round.size() != cold.lambda2_per_round.size() ||
      warm.frame_fingerprints != cold.frame_fingerprints) {
    std::fprintf(stderr, "PROFILE STREAM MISMATCH (%s)\n", label);
    return false;
  }
  bool ok = true;
  std::map<std::uint64_t, double> first_solve;
  for (std::size_t k = 0; k < warm.lambda2_per_round.size(); ++k) {
    const double w = warm.lambda2_per_round[k];
    const double c = cold.lambda2_per_round[k];
    const std::uint64_t fp = warm.frame_fingerprints[k];
    switch (warm.status_per_round[k]) {
      case S::kComputed:
        first_solve.emplace(fp, w);
        if (std::abs(w - c) > 1e-8 * std::max(std::abs(c), 1.0)) {
          std::fprintf(stderr,
                       "SOLVE DRIFT (%s) round %zu: %.17g vs %.17g\n", label,
                       k + 1, w, c);
          ok = false;
        }
        break;
      case S::kCacheHit: {
        const auto it = first_solve.find(fp);
        if (it == first_solve.end() || !bits_equal(w, it->second)) {
          std::fprintf(stderr,
                       "TIER-1 HIT NOT BIT-IDENTICAL (%s) round %zu: %.17g\n",
                       label, k + 1, w);
          ok = false;
        }
        break;
      }
      case S::kBoundSkipped: {
        const double tol = SpectralProfileOptions::kDefaultBoundSkipTol;
        // Skip answer and truth share a bracket of relative width 2·tol.
        if (std::abs(w - c) > 2.0 * tol * std::max(std::abs(c), 1e-12)) {
          std::fprintf(stderr,
                       "BOUND-SKIP OUT OF TOLERANCE (%s) round %zu: %.17g vs "
                       "%.17g\n",
                       label, k + 1, w, c);
          ok = false;
        }
        break;
      }
      case S::kGuardSkipped:
      case S::kDisconnected:
        if (!bits_equal(w, 0.0) || warm.status_per_round[k] != cold.status_per_round[k]) {
          std::fprintf(stderr, "SKIP STATUS MISMATCH (%s) round %zu\n", label,
                       k + 1);
          ok = false;
        }
        break;
    }
  }
  return ok;
}

/// Full warm-vs-cold run_dynamic trajectories at pools {1, 2, hw}.
bool trajectories_agree(const ScenarioDef& scenario, const Graph& base,
                        std::size_t frames) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  bool ok = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    lb::util::ThreadPool pool(threads);
    lb::core::EngineConfig cfg;
    cfg.record_trace = true;
    cfg.pool = &pool;
    const auto load =
        lb::workload::spike<double>(base.num_nodes(),
                                    static_cast<double>(base.num_nodes()) * 100.0);

    auto run_leg = [&](bool warm) {
      auto seq = scenario.make(base);
      lb::core::ContinuousDiffusion alg;
      SpectralProfileOptions opts;
      opts.warm = warm;
      return lb::core::run_dynamic<double>(alg, *seq, load, frames, 1e-9, 512,
                                           &cfg, &opts);
    };
    const auto warm = run_leg(true);
    const auto cold = run_leg(false);
    const auto& rw = warm.run;
    const auto& rc = cold.run;
    bool equal = rw.rounds == rc.rounds &&
                 rw.reached_target == rc.reached_target &&
                 bits_equal(rw.final_potential, rc.final_potential) &&
                 bits_equal(rw.final_discrepancy, rc.final_discrepancy) &&
                 rw.trace.size() == rc.trace.size();
    if (equal) {
      for (std::size_t i = 0; i < rw.trace.size(); ++i) {
        if (!bits_equal(rw.trace[i].potential, rc.trace[i].potential) ||
            !bits_equal(rw.trace[i].transferred, rc.trace[i].transferred)) {
          equal = false;
          break;
        }
      }
    }
    if (!equal) {
      std::fprintf(stderr, "TRAJECTORY DIVERGENCE %s n=%zu threads=%zu\n",
                   scenario.name, base.num_nodes(), threads);
      ok = false;
    }
  }
  return ok;
}

struct Row {
  std::string scenario;
  std::size_t n = 0;
  std::size_t frames = 0;
  LegResult cold;
  LegResult warm;
  bool verified = true;

  double speedup() const {
    return warm.us_per_frame > 0.0 ? cold.us_per_frame / warm.us_per_frame : 0.0;
  }
};

void write_json(const std::string& path, const std::vector<Row>& rows,
                bool verified) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_spectral\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"n\": %zu, \"frames\": %zu,\n"
        "     \"cold_us_per_frame\": %.3f, \"warm_us_per_frame\": %.3f,\n"
        "     \"speedup\": %.3f, \"solves\": %zu, \"exact_hits\": %zu,\n"
        "     \"bound_skips\": %zu, \"warm_solves\": %zu,\n"
        "     \"cold_iterations\": %zu, \"warm_iterations\": %zu,\n"
        "     \"disconnected\": %zu, \"bit_identical\": %s}%s\n",
        r.scenario.c_str(), r.n, r.frames, r.cold.us_per_frame,
        r.warm.us_per_frame, r.speedup(), r.warm.profile.solved_rounds,
        r.warm.profile.cache_hit_rounds, r.warm.profile.bound_skipped_rounds,
        r.warm.profile.warm_solved_rounds, r.warm.stats.cold_iterations,
        r.warm.stats.warm_iterations, r.warm.profile.disconnected_rounds,
        r.verified ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"bit_identical\": %s\n}\n",
               verified ? "true" : "false");
  std::fclose(f);
}

void write_ablation_csv(const std::string& dir, const char* mode,
                        const std::vector<Row>& rows) {
  const std::string path = dir + "/ablation_spectral_" + mode + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "scenario,n,frames,us_per_frame,solves,exact_hits,bound_skips,"
               "warm_solves,disconnected,average_ratio\n");
  for (const Row& r : rows) {
    const LegResult& leg = std::strcmp(mode, "warm") == 0 ? r.warm : r.cold;
    std::fprintf(f, "%s,%zu,%zu,%.3f,%zu,%zu,%zu,%zu,%zu,%.12g\n",
                 r.scenario.c_str(), r.n, r.frames, leg.us_per_frame,
                 leg.profile.solved_rounds, leg.profile.cache_hit_rounds,
                 leg.profile.bound_skipped_rounds,
                 leg.profile.warm_solved_rounds,
                 leg.profile.disconnected_rounds, leg.profile.average_ratio);
  }
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E17: spectral-cache ablation — three-tier incremental lambda2 "
      "maintenance vs per-frame cold eigensolves over dynamic frame streams");
  opts.add_int("nmax", 16384, "largest hypercube size in the sweep (<= 131072)")
      .add_int("frames", 32, "frames profiled per (scenario, n)")
      .add_int("seed", 42, "churn scenario seed")
      .add_int("verify-nmax", 4096,
               "run full warm-vs-cold trajectory checks up to this n")
      .add_string("json", "", "write machine-readable results to this path")
      .add_string("ablation-dir", "",
                  "write ablation_spectral_{warm,cold}.csv into this dir")
      .add_flag("quick", "CI smoke: n=1024 only, 16 frames")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  std::size_t nmax = static_cast<std::size_t>(opts.get_int("nmax"));
  std::size_t frames = static_cast<std::size_t>(opts.get_int("frames"));
  std::size_t verify_nmax = static_cast<std::size_t>(opts.get_int("verify-nmax"));
  if (opts.get_flag("quick")) {
    nmax = std::min<std::size_t>(nmax, 1024);
    frames = std::min<std::size_t>(frames, 16);
    verify_nmax = std::min<std::size_t>(verify_nmax, 1024);
  }

  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  lb::bench::banner(
      "E17: three-tier spectral cache",
      "repeated frames resolve from the exact cache, near-identical frames "
      "from delta bounds or warm starts; trajectories never move",
      seed);

  std::vector<std::size_t> sizes;
  for (const std::size_t n : {std::size_t{1} << 10, std::size_t{1} << 12,
                              std::size_t{1} << 14, std::size_t{1} << 16,
                              std::size_t{1} << 17}) {
    if (n <= nmax) sizes.push_back(n);
  }

  std::vector<Row> rows;
  bool verified = true;
  for (const std::size_t n : sizes) {
    // Hypercubes keep the Laplacian eigengap wide (λ2 = 2 at every n), so
    // the Lanczos path converges at 2^17 as reliably as at 2^10.
    std::size_t dim = 0;
    while ((std::size_t{1} << (dim + 1)) <= n) ++dim;
    const Graph base = lb::graph::make_hypercube(dim);
    for (const ScenarioDef& scenario : scenarios(seed)) {
      Row row;
      row.scenario = scenario.name;
      row.n = base.num_nodes();
      row.frames = frames;
      row.cold = profile_leg(scenario, base, frames, /*warm=*/false);
      row.warm = profile_leg(scenario, base, frames, /*warm=*/true);
      char label[64];
      std::snprintf(label, sizeof label, "%s n=%zu", scenario.name, row.n);
      row.verified = profiles_agree(row.warm.profile, row.cold.profile, label);
      if (base.num_nodes() <= verify_nmax) {
        row.verified =
            trajectories_agree(scenario, base, frames) && row.verified;
      }
      verified = row.verified && verified;
      rows.push_back(std::move(row));
    }
  }

  lb::util::Table table({"scenario", "n", "cold us/frame", "warm us/frame",
                         "speedup", "solves", "hits", "bskips", "warm-solves",
                         "ok"});
  for (const Row& r : rows) {
    table.row()
        .add(r.scenario)
        .add(static_cast<std::int64_t>(r.n))
        .add(r.cold.us_per_frame, 3)
        .add(r.warm.us_per_frame, 3)
        .add(r.speedup(), 2)
        .add(static_cast<std::int64_t>(r.warm.profile.solved_rounds))
        .add(static_cast<std::int64_t>(r.warm.profile.cache_hit_rounds))
        .add(static_cast<std::int64_t>(r.warm.profile.bound_skipped_rounds))
        .add(static_cast<std::int64_t>(r.warm.profile.warm_solved_rounds))
        .add(r.verified ? "yes" : "NO");
  }
  lb::bench::emit(table,
                  "spectral profiling ablation: cold per-frame eigensolves vs "
                  "the three-tier cache (hypercube bases)",
                  opts.get_flag("csv"));

  if (!opts.get_string("json").empty()) {
    write_json(opts.get_string("json"), rows, verified);
  }
  if (!opts.get_string("ablation-dir").empty()) {
    write_ablation_csv(opts.get_string("ablation-dir"), "cold", rows);
    write_ablation_csv(opts.get_string("ablation-dir"), "warm", rows);
  }
  return verified ? 0 : 1;
}
