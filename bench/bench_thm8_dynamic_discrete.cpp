// E6 (Theorem 8): discrete diffusion on dynamic networks.
//
// Reports the Theorem-8 threshold Φ* = 64n·max_k(δ(k)³/λ2(k)), the round
// budget K = (8/A_K)·ln(Φ⁰/Φ*), the measured rounds to dip below Φ*, and
// the ratio.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/dynamic_runner.hpp"
#include "lb/core/load.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E6 / Theorem 8: dynamic networks, discrete case — reach Phi* = "
      "64n*max(delta^3/lambda2) in K = (8/A_K)*ln(Phi0/Phi*) rounds");
  opts.add_int("n", 64, "nodes in the base graph")
      .add_int("rounds", 6000, "round budget / profiling horizon")
      .add_double("headroom", 1000.0, "Phi0 as a multiple of the worst threshold")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  const double headroom = opts.get_double("headroom");
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E6: Theorem 8 (dynamic networks, discrete)",
                    "discrete Algorithm 1 reaches Phi* = 64n*max_k(delta_k^3/lambda2_k) "
                    "within K = (8/A_K)*ln(Phi0/Phi*) rounds",
                    seed);

  lb::util::Rng topo_rng(seed);
  const auto torus = lb::graph::make_named("torus2d", n, topo_rng);

  struct Scenario {
    std::string label;
    std::function<std::unique_ptr<lb::graph::GraphSequence>()> factory;
  };
  const std::vector<Scenario> scenarios = {
      {"static torus", [&torus] { return lb::graph::make_static_sequence(torus); }},
      {"torus, Bernoulli keep=0.8",
       [&torus, seed] { return lb::graph::make_bernoulli_sequence(torus, 0.8, seed + 1); }},
      {"torus, Bernoulli keep=0.6",
       [&torus, seed] { return lb::graph::make_bernoulli_sequence(torus, 0.6, seed + 2); }},
      {"torus, Markov fail=.05 rec=.4",
       [&torus, seed] {
         return lb::graph::make_markov_failure_sequence(torus, 0.05, 0.4, seed + 3);
       }},
      {"torus, churn alive=.85 turn=.05",
       [&torus, seed] {
         return lb::graph::make_churn_sequence(torus, 0.85, 0.05, seed + 4);
       }},
      {"torus, partition/heal period=8",
       [&torus] { return lb::graph::make_partition_sequence(torus, 8); }},
      {"torus, failure wave w=n/8 s=1",
       [&torus, n] {
         return lb::graph::make_failure_wave_sequence(
             torus, std::max<std::size_t>(1, n / 8), 1);
       }},
  };

  lb::util::Table table({"sequence", "A_K", "Phi*", "Phi0/Phi*", "K bound",
                         "K measured", "meas/bound", "reached"});

  for (const auto& scenario : scenarios) {
    // Pre-profile once to size the initial spike above the threshold.
    double threshold_guess;
    {
      auto seq = scenario.factory();
      const auto profile = lb::core::profile_sequence(*seq, std::min<std::size_t>(rounds, 200));
      threshold_guess = lb::core::bounds::theorem8_threshold(
          torus.num_nodes(), profile.lambda2_per_round, profile.delta_per_round);
    }
    const double target_phi0 = headroom * std::max(threshold_guess, 1.0);
    const double spike = std::sqrt(
        target_phi0 / (1.0 - 1.0 / static_cast<double>(torus.num_nodes())));
    auto load = lb::workload::spike<std::int64_t>(torus.num_nodes(),
                                                  static_cast<std::int64_t>(spike));
    const double phi0 = lb::core::potential(load);

    lb::core::DiscreteDiffusion alg;
    const auto result = lb::core::run_dynamic<std::int64_t>(alg, scenario.factory,
                                                            load, rounds, 1e-12);
    const std::size_t reached =
        result.run.trace.first_round_at_or_below(result.threshold);

    table.row()
        .add(scenario.label)
        .add(result.profile.average_ratio, 4)
        .add_sci(result.threshold)
        .add(result.threshold > 0.0 ? phi0 / result.threshold : 0.0, 4)
        .add(result.theorem_bound_rounds, 5)
        .add(static_cast<std::int64_t>(reached))
        .add(result.theorem_bound_rounds > 0.0 && reached > 0
                 ? static_cast<double>(reached) / result.theorem_bound_rounds
                 : 0.0,
             3)
        .add(reached > 0 ? "yes" : "NO");
  }
  lb::bench::emit(table, "Theorem 8: dynamic discrete convergence vs bound",
                  opts.get_flag("csv"));
  return 0;
}
