// E5 (Theorem 7): continuous diffusion on dynamic networks — and the
// masked-topology ablation.
//
// For several dynamic-sequence models over torus/hypercube bases, the
// table reports the measured A_K (average λ2(G_k)/δ(G_k)), the Theorem-7
// round budget 4·ln(1/ε)/A_K, the measured rounds, the ratio, and the
// measured µs/round — once per requested topology substrate:
//
//   masked   frames off the fixed base + EdgeMask (no per-round builds)
//   rebuild  every round materialized as a fresh Graph via
//            GraphBuilder::build() (the pre-mask path, the oracle)
//
// Each scenario is profiled once; the sequence is reset() and replayed
// for every run leg, so the two substrates traverse the identical
// topology stream and their convergence trajectories must coincide
// exactly — only µs/round may differ.  The bench verifies that equality
// and fails loudly if the substrates diverge.
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/dynamic_runner.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/workload/initial.hpp"

namespace {

struct LegResult {
  std::string sequence;
  std::string topology;
  double a_k = 0.0;
  std::size_t disconnected = 0;
  double k_bound = 0.0;
  std::size_t k_measured = 0;
  bool reached = false;
  double us_per_round = 0.0;
  double final_potential = 0.0;
};

void write_json(const std::string& path, std::size_t n, std::size_t rounds,
                double eps, const std::vector<LegResult>& legs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_thm7_dynamic\",\n  \"n\": %zu,\n"
               "  \"round_budget\": %zu,\n  \"eps\": %g,\n  \"scenarios\": [\n",
               n, rounds, eps);
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = legs[i];
    std::fprintf(f,
                 "    {\"sequence\": \"%s\", \"topology\": \"%s\", "
                 "\"us_per_round\": %.3f, \"rounds_to_eps\": %zu, "
                 "\"reached_eps\": %s, \"a_k\": %.6f, \"k_bound\": %.3f}%s\n",
                 r.sequence.c_str(), r.topology.c_str(), r.us_per_round,
                 r.k_measured, r.reached ? "true" : "false", r.a_k, r.k_bound,
                 i + 1 < legs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void write_ablation_csv(const std::string& dir, const char* topology,
                        const std::vector<LegResult>& legs) {
  const std::string path = dir + "/ablation_dynamic_" + topology + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "sequence,topology,us_per_round,rounds_to_eps,reached_eps\n");
  for (const LegResult& r : legs) {
    if (r.topology != topology) continue;
    std::fprintf(f, "\"%s\",%s,%.3f,%zu,%d\n", r.sequence.c_str(),
                 r.topology.c_str(), r.us_per_round, r.k_measured,
                 r.reached ? 1 : 0);
  }
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E5 / Theorem 7: dynamic networks, continuous case — K = O(ln(1/eps)/A_K), "
      "masked-frame vs per-round-rebuild substrates");
  opts.add_int("n", 64, "nodes in the base graph (per-round lambda2 is O(n^3))")
      .add_double("eps", 1e-5, "target potential fraction")
      .add_int("rounds", 4000, "round budget (also the profiling horizon)")
      .add_int("seed", 42, "RNG seed")
      .add_string("topology", "both",
                  "substrates to run: masked | rebuild | both")
      .add_string("json", "", "write machine-readable results to this path")
      .add_string("ablation-dir", "",
                  "write ablation_dynamic_{masked,rebuild}.csv into this dir")
      .add_flag("quick", "CI smoke: shrink the round budget to 300")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const double eps = opts.get_double("eps");
  std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  if (opts.get_flag("quick")) rounds = std::min<std::size_t>(rounds, 300);
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const std::string topology = opts.get_string("topology");

  std::vector<std::string> legs;
  if (topology == "both" || topology == "masked") legs.push_back("masked");
  if (topology == "both" || topology == "rebuild") legs.push_back("rebuild");
  if (legs.empty()) {
    std::fprintf(stderr, "unknown --topology '%s'\n", topology.c_str());
    return 2;
  }

  lb::bench::banner("E5: Theorem 7 (dynamic networks, continuous)",
                    "K rounds with K = 4*ln(1/eps)/A_K reduce Phi to eps*Phi(L); "
                    "masked frames vs per-round graph rebuilds",
                    seed);

  lb::util::Rng topo_rng(seed);
  const auto torus = lb::graph::make_named("torus2d", n, topo_rng);
  const auto cube = lb::graph::make_named("hypercube", n, topo_rng);

  struct Scenario {
    std::string label;
    std::function<std::unique_ptr<lb::graph::GraphSequence>()> factory;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"static torus", [&torus] {
                         return lb::graph::make_static_sequence(torus);
                       }});
  scenarios.push_back({"torus Bernoulli keep=0.8", [&torus, seed] {
                         return lb::graph::make_bernoulli_sequence(torus, 0.8, seed + 1);
                       }});
  scenarios.push_back({"torus Bernoulli keep=0.5", [&torus, seed] {
                         return lb::graph::make_bernoulli_sequence(torus, 0.5, seed + 2);
                       }});
  scenarios.push_back({"torus Markov fail=.1 rec=.5", [&torus, seed] {
                         return lb::graph::make_markov_failure_sequence(torus, 0.1, 0.5,
                                                                        seed + 3);
                       }});
  scenarios.push_back({"torus churn alive=.85 turn=.05", [&torus, seed] {
                         return lb::graph::make_churn_sequence(torus, 0.85, 0.05,
                                                               seed + 5);
                       }});
  scenarios.push_back({"torus partition/heal period=8", [&torus] {
                         return lb::graph::make_partition_sequence(torus, 8);
                       }});
  scenarios.push_back({"torus failure wave w=n/8 s=1", [&torus, n] {
                         return lb::graph::make_failure_wave_sequence(
                             torus, std::max<std::size_t>(1, n / 8), 1);
                       }});
  if (cube.num_nodes() == torus.num_nodes()) {
    scenarios.push_back({"hypercube Bernoulli keep=0.7", [&cube, seed] {
                           return lb::graph::make_bernoulli_sequence(cube, 0.7, seed + 4);
                         }});
    scenarios.push_back({"alternate torus/hypercube", [&torus, &cube] {
                           std::vector<lb::graph::Graph> gs{torus, cube};
                           return lb::graph::make_periodic_sequence(std::move(gs));
                         }});
  }

  lb::util::Table table({"sequence", "topology", "A_K", "disconnected rounds",
                         "K bound", "K measured", "meas/bound", "reached eps",
                         "us/round"});
  std::vector<LegResult> results;
  bool substrates_agree = true;

  for (const auto& scenario : scenarios) {
    // Profile ONCE per scenario (λ2 per round is the expensive part);
    // every run leg replays the identical stream via reset().
    auto seq = scenario.factory();
    const auto profile = lb::core::profile_sequence(*seq, rounds);
    const double bound =
        profile.average_ratio > 0.0
            ? lb::core::bounds::theorem7_rounds(profile.average_ratio, eps)
            : 0.0;

    LegResult masked_leg;  // by value: results may reallocate between legs
    bool have_masked_leg = false;
    for (const std::string& leg : legs) {
      seq->reset();
      std::unique_ptr<lb::graph::GraphSequence> rebuild_view;
      lb::graph::GraphSequence* run_seq = seq.get();
      if (leg == "rebuild") {
        rebuild_view = lb::graph::make_materialized_view(*seq);
        run_seq = rebuild_view.get();
      }

      auto load = lb::workload::spike<double>(
          torus.num_nodes(), 1000.0 * static_cast<double>(torus.num_nodes()));
      const double phi0 =
          lb::core::summarize_parallel(load, &lb::util::ThreadPool::global())
              .potential;
      lb::core::ContinuousDiffusion alg;
      lb::core::EngineConfig config;
      config.max_rounds = rounds;
      config.target_potential = eps * phi0;
      config.record_trace = true;
      const auto run = lb::core::run(alg, *run_seq, load, config);

      LegResult r;
      r.sequence = scenario.label;
      r.topology = leg;
      r.a_k = profile.average_ratio;
      r.disconnected = profile.disconnected_rounds;
      r.k_bound = bound;
      r.k_measured = run.rounds;
      r.reached = run.reached_target;
      r.us_per_round =
          run.rounds > 0 ? run.total_seconds * 1e6 / static_cast<double>(run.rounds)
                         : 0.0;
      r.final_potential = run.final_potential;
      results.push_back(r);

      // The substrates must traverse identical topologies and produce
      // identical trajectories — any divergence is a masked-kernel bug.
      if (r.topology == "masked") {
        masked_leg = r;
        have_masked_leg = true;
      } else if (have_masked_leg) {
        if (masked_leg.k_measured != r.k_measured ||
            masked_leg.final_potential != r.final_potential) {
          std::fprintf(stderr,
                       "SUBSTRATE MISMATCH on '%s': masked (K=%zu, Phi=%.17g) vs "
                       "rebuild (K=%zu, Phi=%.17g)\n",
                       scenario.label.c_str(), masked_leg.k_measured,
                       masked_leg.final_potential, r.k_measured,
                       r.final_potential);
          substrates_agree = false;
        }
      }

      table.row()
          .add(r.sequence)
          .add(r.topology)
          .add(r.a_k, 4)
          .add(static_cast<std::int64_t>(r.disconnected))
          .add(r.k_bound, 5)
          .add(static_cast<std::int64_t>(r.k_measured))
          .add(r.k_bound > 0.0 ? static_cast<double>(r.k_measured) / r.k_bound : 0.0,
               3)
          .add(r.reached ? "yes" : "NO")
          .add(r.us_per_round, 2);
    }
  }
  lb::bench::emit(table, "Theorem 7: dynamic continuous convergence vs bound "
                         "(masked vs rebuild substrate)",
                  opts.get_flag("csv"));

  if (!opts.get_string("json").empty()) {
    write_json(opts.get_string("json"), torus.num_nodes(), rounds, eps, results);
  }
  if (!opts.get_string("ablation-dir").empty()) {
    write_ablation_csv(opts.get_string("ablation-dir"), "masked", results);
    write_ablation_csv(opts.get_string("ablation-dir"), "rebuild", results);
  }
  return substrates_agree ? 0 : 1;
}
