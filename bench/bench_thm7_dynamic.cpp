// E5 (Theorem 7): continuous diffusion on dynamic networks.
//
// For several dynamic-sequence models over torus/hypercube bases, the
// table reports the measured A_K (average λ2(G_k)/δ(G_k)), the Theorem-7
// round budget 4·ln(1/ε)/A_K, the measured rounds, and the ratio.
#include "bench_common.hpp"

#include <cmath>
#include <functional>

#include "lb/core/diffusion.hpp"
#include "lb/core/dynamic_runner.hpp"
#include "lb/core/load.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E5 / Theorem 7: dynamic networks, continuous case — K = O(ln(1/eps)/A_K)");
  opts.add_int("n", 64, "nodes in the base graph (per-round lambda2 is O(n^3))")
      .add_double("eps", 1e-5, "target potential fraction")
      .add_int("rounds", 4000, "round budget (also the profiling horizon)")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const double eps = opts.get_double("eps");
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E5: Theorem 7 (dynamic networks, continuous)",
                    "K rounds with K = 4*ln(1/eps)/A_K reduce Phi to eps*Phi(L), "
                    "A_K the average lambda2(G_k)/delta(G_k)",
                    seed);

  lb::util::Rng topo_rng(seed);
  const auto torus = lb::graph::make_named("torus2d", n, topo_rng);
  const auto cube = lb::graph::make_named("hypercube", n, topo_rng);

  struct Scenario {
    std::string label;
    std::function<std::unique_ptr<lb::graph::GraphSequence>()> factory;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"static torus", [&torus] {
                         return lb::graph::make_static_sequence(torus);
                       }});
  scenarios.push_back({"torus, Bernoulli keep=0.8", [&torus, seed] {
                         return lb::graph::make_bernoulli_sequence(torus, 0.8, seed + 1);
                       }});
  scenarios.push_back({"torus, Bernoulli keep=0.5", [&torus, seed] {
                         return lb::graph::make_bernoulli_sequence(torus, 0.5, seed + 2);
                       }});
  scenarios.push_back({"torus, Markov fail=.1 rec=.5", [&torus, seed] {
                         return lb::graph::make_markov_failure_sequence(torus, 0.1, 0.5,
                                                                        seed + 3);
                       }});
  if (cube.num_nodes() == torus.num_nodes()) {
    scenarios.push_back({"hypercube, Bernoulli keep=0.7", [&cube, seed] {
                           return lb::graph::make_bernoulli_sequence(cube, 0.7, seed + 4);
                         }});
    scenarios.push_back({"alternate torus/hypercube", [&torus, &cube] {
                           std::vector<lb::graph::Graph> gs{torus, cube};
                           return lb::graph::make_periodic_sequence(std::move(gs));
                         }});
  }

  lb::util::Table table({"sequence", "A_K", "disconnected rounds", "K bound",
                         "K measured", "meas/bound", "reached eps"});

  for (const auto& scenario : scenarios) {
    auto load = lb::workload::spike<double>(
        torus.num_nodes(), 1000.0 * static_cast<double>(torus.num_nodes()));
    lb::core::ContinuousDiffusion alg;
    const auto result =
        lb::core::run_dynamic<double>(alg, scenario.factory, load, rounds, eps);

    table.row()
        .add(scenario.label)
        .add(result.profile.average_ratio, 4)
        .add(static_cast<std::int64_t>(result.profile.disconnected_rounds))
        .add(result.theorem_bound_rounds, 5)
        .add(static_cast<std::int64_t>(result.run.rounds))
        .add(result.theorem_bound_rounds > 0.0
                 ? static_cast<double>(result.run.rounds) / result.theorem_bound_rounds
                 : 0.0,
             3)
        .add(result.run.reached_target ? "yes" : "NO");
  }
  lb::bench::emit(table, "Theorem 7: dynamic continuous convergence vs bound",
                  opts.get_flag("csv"));
  return 0;
}
