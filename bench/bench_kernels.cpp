// E14: engineering microbenchmarks (google-benchmark) for the library's
// hot kernels — diffusion round throughput, SpMV, λ2 computation, matching
// generation, and the sequentialization ledger.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/flow_ledger.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/core/round_context.hpp"
#include "lb/core/sequential.hpp"
#include "lb/graph/generators.hpp"
#include "lb/graph/matching.hpp"
#include "lb/linalg/lanczos.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/util/rng.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/workload/initial.hpp"

namespace {

lb::graph::Graph torus_of(std::size_t n) {
  const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  return lb::graph::make_torus2d(side, side);
}

// Edge-list vs flow-ledger ablation (ISSUE 2): the same diffusion round
// with the seed's sequential edge-sweep apply (range(1) == 0) versus the
// node-parallel CSR ledger apply (range(1) == 1).  Phase 1 (flow
// computation) is identical; only the apply substrate differs.
void BM_DiffusionRoundContinuous(benchmark::State& state) {
  const auto g = torus_of(static_cast<std::size_t>(state.range(0)));
  lb::util::Rng rng(1);
  auto load = lb::workload::uniform_random<double>(
      g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()), rng);
  lb::core::DiffusionConfig cfg;
  cfg.apply = state.range(1) == 0 ? lb::core::ApplyPath::kEdgeSweep
                                  : lb::core::ApplyPath::kLedger;
  lb::core::ContinuousDiffusion alg(cfg);
  for (auto _ : state) {
    alg.step(g, load, rng);
    benchmark::DoNotOptimize(load.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
  state.SetLabel(state.range(1) == 0 ? "apply=edge-sweep" : "apply=ledger");
}
BENCHMARK(BM_DiffusionRoundContinuous)
    ->ArgsProduct({{1024, 16384, 65536}, {0, 1}});

void BM_DiffusionRoundDiscrete(benchmark::State& state) {
  const auto g = torus_of(static_cast<std::size_t>(state.range(0)));
  lb::util::Rng rng(2);
  auto load = lb::workload::uniform_random<std::int64_t>(
      g.num_nodes(), 1000 * static_cast<std::int64_t>(g.num_nodes()), rng);
  lb::core::DiffusionConfig cfg;
  cfg.apply = state.range(1) == 0 ? lb::core::ApplyPath::kEdgeSweep
                                  : lb::core::ApplyPath::kLedger;
  lb::core::DiscreteDiffusion alg(cfg);
  for (auto _ : state) {
    alg.step(g, load, rng);
    benchmark::DoNotOptimize(load.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
  state.SetLabel(state.range(1) == 0 ? "apply=edge-sweep" : "apply=ledger");
}
BENCHMARK(BM_DiffusionRoundDiscrete)
    ->ArgsProduct({{1024, 16384, 65536}, {0, 1}});

// Isolated apply-phase ablation on a fixed flow vector: the purest view of
// the sequential-sweep vs parallel-ledger gap, without phase-1 noise.
void BM_ApplyPhaseOnly(benchmark::State& state) {
  const auto g = torus_of(static_cast<std::size_t>(state.range(0)));
  lb::util::Rng rng(7);
  auto load = lb::workload::uniform_random<double>(
      g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()), rng);
  std::vector<double> flows;
  lb::core::DiffusionConfig cfg;
  lb::core::compute_edge_flows(
      g, load, flows, nullptr,
      [&g, &cfg](std::size_t, const lb::graph::Edge& e, double lu, double lv) {
        if (lu == lv) return 0.0;
        const double w = lb::core::diffusion_edge_weight(g, e.u, e.v, lu, lv, cfg);
        return lu > lv ? w : -w;
      });
  lb::core::FlowLedger ledger;
  ledger.rebuild(g);
  const bool use_ledger = state.range(1) != 0;
  for (auto _ : state) {
    auto work = load;
    if (use_ledger) {
      ledger.apply(g, flows, work, &lb::util::ThreadPool::global());
    } else {
      lb::core::apply_edge_sweep(g, flows, work);
    }
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
  state.SetLabel(use_ledger ? "apply=ledger" : "apply=edge-sweep");
}
BENCHMARK(BM_ApplyPhaseOnly)->ArgsProduct({{16384, 65536, 1048576}, {0, 1}});

// Fused-metrics ablation (ISSUE 3): one observed engine round — step plus
// the post-round Φ/discrepancy summary — down the PR-2 path (ledger apply,
// then the sequential O(n) summarize()) versus the fused path (the
// deterministic fixed-chunk reduction riding inside the ledger's
// node-parallel apply).  range(1) == 0 is step+summarize, 1 is fused.
template <class T>
void observed_round_body(benchmark::State& state, std::uint64_t seed) {
  const auto g = torus_of(static_cast<std::size_t>(state.range(0)));
  lb::util::Rng rng(seed);
  auto load = lb::workload::uniform_random<T>(
      g.num_nodes(), static_cast<T>(1000 * g.num_nodes()), rng);
  const bool fused = state.range(1) != 0;
  lb::core::DiffusionBalancer<T> alg;
  lb::core::RunArena<T> arena;
  lb::util::ThreadPool& pool = lb::util::ThreadPool::global();
  const double average = lb::core::summarize_parallel(load, &pool).average;
  for (auto _ : state) {
    lb::core::RoundContext<T> ctx(g, rng, &pool, arena);
    if (fused) ctx.request_summary(lb::core::SummaryMode::kFull, average);
    alg.step(ctx, load);
    lb::core::LoadSummary<T> summary;
    if (fused) {
      summary = ctx.has_summary()
                    ? ctx.summary()
                    : lb::core::summarize_deterministic(
                          load, average, &pool, lb::core::SummaryMode::kFull);
    } else {
      summary = lb::core::summarize(load);
    }
    benchmark::DoNotOptimize(summary.potential);
    benchmark::DoNotOptimize(load.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_nodes()));
  state.SetLabel(fused ? "metrics=fused" : "metrics=step+summarize");
}

void BM_ObservedRoundContinuous(benchmark::State& state) {
  observed_round_body<double>(state, 9);
}
BENCHMARK(BM_ObservedRoundContinuous)->ArgsProduct({{16384, 65536}, {0, 1}});

void BM_ObservedRoundDiscrete(benchmark::State& state) {
  observed_round_body<std::int64_t>(state, 10);
}
BENCHMARK(BM_ObservedRoundDiscrete)->ArgsProduct({{16384, 65536}, {0, 1}});

// The isolated metrics sweep: sequential summarize() vs the deterministic
// fixed-chunk parallel reduction, standalone (no apply fusion).
void BM_SummarizeOnly(benchmark::State& state) {
  lb::util::Rng rng(11);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto load = lb::workload::uniform_random<double>(
      n, 1000.0 * static_cast<double>(n), rng);
  const bool parallel = state.range(1) != 0;
  lb::util::ThreadPool& pool = lb::util::ThreadPool::global();
  const double average = lb::core::summarize_parallel(load, &pool).average;
  for (auto _ : state) {
    if (parallel) {
      benchmark::DoNotOptimize(lb::core::summarize_deterministic(
          load, average, &pool, lb::core::SummaryMode::kFull));
    } else {
      benchmark::DoNotOptimize(lb::core::summarize(load));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(parallel ? "summarize=chunked-parallel" : "summarize=sequential");
}
BENCHMARK(BM_SummarizeOnly)->ArgsProduct({{16384, 65536, 1048576}, {0, 1}});

void BM_RandomPartnerRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  lb::util::Rng rng(3);
  auto load = lb::workload::uniform_random<double>(
      n, 1000.0 * static_cast<double>(n), rng);
  const auto dummy = lb::graph::make_complete(2);
  lb::core::ContinuousRandomPartner alg;
  for (auto _ : state) {
    alg.step(dummy, load, rng);
    benchmark::DoNotOptimize(load.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RandomPartnerRound)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_SpmvLaplacian(benchmark::State& state) {
  const auto g = torus_of(static_cast<std::size_t>(state.range(0)));
  const auto l = lb::linalg::laplacian_csr(g);
  lb::util::Rng rng(4);
  lb::linalg::Vector x(g.num_nodes());
  for (double& v : x) v = rng.next_double();
  lb::linalg::Vector y;
  for (auto _ : state) {
    l.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(l.nonzeros()));
}
BENCHMARK(BM_SpmvLaplacian)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_Lambda2Lanczos(benchmark::State& state) {
  const auto g = torus_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    // Force the sparse Lanczos path regardless of size.
    benchmark::DoNotOptimize(lb::linalg::lambda2(g, /*dense_cutoff=*/2));
  }
}
BENCHMARK(BM_Lambda2Lanczos)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_Lambda2Dense(benchmark::State& state) {
  const auto g = torus_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb::linalg::lambda2(g, /*dense_cutoff=*/100000));
  }
}
BENCHMARK(BM_Lambda2Dense)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_GmRandomMatching(benchmark::State& state) {
  const auto g = torus_of(static_cast<std::size_t>(state.range(0)));
  lb::util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb::graph::gm_random_matching(g, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_nodes()));
}
BENCHMARK(BM_GmRandomMatching)->Arg(1024)->Arg(16384);

void BM_SequentializeRound(benchmark::State& state) {
  const auto g = torus_of(static_cast<std::size_t>(state.range(0)));
  lb::util::Rng rng(6);
  const auto load = lb::workload::uniform_random<double>(
      g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb::core::sequentialize_round(g, load));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_SequentializeRound)->Arg(1024)->Arg(16384);

void BM_GraphConstructionTorus(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(torus_of(n));
  }
}
BENCHMARK(BM_GraphConstructionTorus)->Arg(1024)->Arg(65536)->Arg(1048576);

}  // namespace

BENCHMARK_MAIN();
