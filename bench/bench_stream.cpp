// E18: open-system traffic — settling time and peak-load quantiles under
// the four stream families, with substrate independence enforced.
//
// For each stream family × balancer × n leg the shared-memory pool-1
// engine is the oracle; the same open-system instance then reruns on a
// 2-thread pool, the hardware pool, and the sharded engine at K ∈ {2, 4},
// and the bench *verifies* bit-identity (rounds, per-round Φ/traffic
// trace, applied arrival/departure totals, final load vector) before
// reporting a single number.  Any divergence makes the process exit
// nonzero, so the bench doubles as the open-system determinism gate for
// CI (--quick keeps that gate cheap).  Reported columns are the
// steady-state reducer's headline quantities — burst settling rounds,
// peak-load quantiles (p50/p99/max of the per-round max load), the share
// of rounds above ε — plus measured wall µs/round on the oracle leg.
#include "bench_common.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/shard/sharded_engine.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/util/timer.hpp"
#include "lb/workload/initial.hpp"
#include "lb/workload/stream.hpp"

namespace {

using lb::core::EngineConfig;
using lb::core::RunResult;
using lb::workload::StreamKind;
using lb::workload::StreamSpec;

struct Leg {
  std::string stream;
  std::string balancer;
  std::size_t n = 0;
  RunResult run;            ///< the pool-1 oracle run
  double wall_seconds = 0;  ///< oracle wall time
  std::size_t divergence = 0;  ///< mismatched fields across all substrates
};

/// Bitwise comparison of the deterministic open-system result surface.
/// Returns the number of mismatched fields (0 = identical).
std::size_t count_divergence(const RunResult& oracle, const RunResult& leg,
                             const std::vector<double>& oracle_load,
                             const std::vector<double>& leg_load) {
  std::size_t bad = 0;
  if (oracle.rounds != leg.rounds) ++bad;
  if (oracle.final_potential != leg.final_potential) ++bad;
  if (oracle.final_discrepancy != leg.final_discrepancy) ++bad;
  if (oracle.stream_arrivals != leg.stream_arrivals) ++bad;
  if (oracle.stream_departures != leg.stream_departures) ++bad;
  if (oracle.steady.settling_rounds != leg.steady.settling_rounds) ++bad;
  if (oracle.steady.peak_max != leg.steady.peak_max) ++bad;
  const auto& a = oracle.trace.records();
  const auto& b = leg.trace.records();
  if (a.size() != b.size()) {
    ++bad;
  } else {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].potential != b[i].potential ||
          a[i].transferred != b[i].transferred ||
          a[i].arrivals != b[i].arrivals ||
          a[i].departures != b[i].departures) {
        ++bad;
        break;
      }
    }
  }
  if (oracle_load != leg_load) ++bad;
  return bad;
}

StreamSpec spec_for(const std::string& name, double quantum) {
  StreamSpec spec;
  spec.kind = lb::workload::parse_stream_kind(name);
  spec.arrival_rate = 8.0;
  spec.departure_rate = 8.0;
  spec.quantum = quantum;
  spec.burst_prob = 0.1;
  spec.period = 32;
  return spec;
}

struct BalancerCase {
  std::string name;
  std::unique_ptr<lb::core::Balancer<double>> (*make)();
};

void write_json(const std::string& path, std::size_t rounds,
                const std::vector<Leg>& legs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"stream\", \"rounds\": %zu,\n"
                  "  \"legs\": [\n", rounds);
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const Leg& l = legs[i];
    const double per_round =
        l.run.rounds > 0 ? static_cast<double>(l.run.rounds) : 1.0;
    const auto& s = l.run.steady;
    std::fprintf(
        f,
        "    {\"stream\": \"%s\", \"balancer\": \"%s\", \"n\": %zu, "
        "\"us_per_round\": %.3f, \"settling_rounds\": %zu, \"settled\": %s, "
        "\"burst_round\": %zu, \"peak_p50\": %.6g, \"peak_p90\": %.6g, "
        "\"peak_p99\": %.6g, \"peak_max\": %.6g, "
        "\"fraction_above_epsilon\": %.4f, \"net_load\": %.6g}%s\n",
        l.stream.c_str(), l.balancer.c_str(), l.n,
        l.wall_seconds * 1e6 / per_round, s.settling_rounds,
        s.settled ? "true" : "false", s.burst_round, s.peak_p50, s.peak_p90,
        s.peak_p99, s.peak_max, s.fraction_above_epsilon,
        l.run.stream_arrivals - l.run.stream_departures,
        i + 1 < legs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E18: open-system traffic — settling time and peak-load quantiles "
      "per stream family, with pool/shard bit-identity enforced");
  opts.add_int("rounds", 200, "rounds per leg")
      .add_int("seed", 42, "engine/stream RNG seed")
      .add_flag("quick", "CI smoke: 1024 nodes, 60 rounds")
      .add_flag("csv", "emit CSV instead of a table")
      .add_string("json", "", "write machine-readable summary JSON here");
  opts.parse(argc, argv);

  const bool quick = opts.get_flag("quick");
  const std::size_t rounds =
      quick ? 60 : static_cast<std::size_t>(opts.get_int("rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const bool csv = opts.get_flag("csv");
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1024}
            : std::vector<std::size_t>{4096, 16384};

  if (!csv) {
    lb::bench::banner(
        "E18: open-system traffic streams",
        "per-round arrivals/departures land before flows are planned; the "
        "trajectory is bit-identical across pools and shard counts, and the "
        "steady-state reducer measures how fast each balancer absorbs it",
        seed);
  }

  const std::vector<BalancerCase> balancers{
      {"diffusion", [] { return lb::core::make_diffusion_continuous(); }},
      {"dimexch",
       [] {
         return lb::core::make_dimension_exchange_continuous(
             lb::core::MatchingStrategy::kGhoshMuthukrishnan);
       }},
  };

  std::vector<Leg> legs;
  std::size_t divergent = 0;
  for (const std::size_t n : sizes) {
    lb::util::Rng grng(seed);
    const lb::graph::Graph g = lb::graph::make_named("torus2d", n, grng);
    const auto load0 = lb::workload::uniform_random<double>(
        g.num_nodes(), 100.0 * static_cast<double>(g.num_nodes()), grng);
    for (const std::string& family :
         {std::string("poisson"), std::string("bursty"), std::string("diurnal"),
          std::string("hotspot")}) {
      const StreamSpec spec = spec_for(family, 50.0);
      for (const BalancerCase& bc : balancers) {
        EngineConfig cfg;
        cfg.max_rounds = rounds;
        cfg.target_potential = 0.0;
        cfg.record_trace = true;
        cfg.seed = seed;

        Leg leg;
        leg.stream = family;
        leg.balancer = bc.name;
        leg.n = g.num_nodes();

        // Pool-1 oracle.
        lb::util::ThreadPool pool1(1);
        cfg.pool = &pool1;
        auto oracle_stream =
            lb::workload::make_stream<double>(spec, g.num_nodes(), seed);
        cfg.stream = oracle_stream.get();
        auto oracle_alg = bc.make();
        std::vector<double> oracle_load = load0;
        const lb::util::Stopwatch watch;
        leg.run = lb::core::run_static(*oracle_alg, g, oracle_load, cfg);
        leg.wall_seconds = watch.elapsed_seconds();

        // Substrate legs: pools {2, hw} shared-memory, then the sharded
        // engine at K ∈ {2, 4} on the hardware pool.
        for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
          lb::util::ThreadPool pool(threads);
          EngineConfig leg_cfg = cfg;
          leg_cfg.pool = &pool;
          auto stream =
              lb::workload::make_stream<double>(spec, g.num_nodes(), seed);
          leg_cfg.stream = stream.get();
          auto alg = bc.make();
          std::vector<double> load = load0;
          const RunResult r = lb::core::run_static(*alg, g, load, leg_cfg);
          leg.divergence += count_divergence(leg.run, r, oracle_load, load);
        }
        for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
          lb::shard::ShardConfig shard;
          shard.domains = k;
          EngineConfig leg_cfg = cfg;
          leg_cfg.pool = nullptr;  // hardware pool
          auto stream =
              lb::workload::make_stream<double>(spec, g.num_nodes(), seed);
          leg_cfg.stream = stream.get();
          auto alg = bc.make();
          std::vector<double> load = load0;
          const RunResult r = lb::shard::run_static(*alg, g, load, leg_cfg, shard);
          leg.divergence += count_divergence(leg.run, r, oracle_load, load);
        }
        if (leg.divergence != 0) {
          std::fprintf(stderr,
                       "DIVERGENCE: %s/%s/n=%zu differs across substrates "
                       "(%zu mismatched fields)\n",
                       family.c_str(), bc.name.c_str(), g.num_nodes(),
                       leg.divergence);
          divergent += leg.divergence;
        }
        legs.push_back(std::move(leg));
      }
    }
  }

  lb::util::Table table({"stream", "balancer", "n", "us/round", "settle_rounds",
                         "settled", "burst_round", "peak_p50", "peak_p99",
                         "peak_max", "frac>eps", "identical"});
  for (const Leg& l : legs) {
    const double per_round =
        l.run.rounds > 0 ? static_cast<double>(l.run.rounds) : 1.0;
    table.row()
        .add(l.stream)
        .add(l.balancer)
        .add(static_cast<std::int64_t>(l.n))
        .add(l.wall_seconds * 1e6 / per_round, 3)
        .add(static_cast<std::int64_t>(l.run.steady.settling_rounds))
        .add(l.run.steady.settled ? 1 : 0)
        .add(static_cast<std::int64_t>(l.run.steady.burst_round))
        .add(l.run.steady.peak_p50, 3)
        .add(l.run.steady.peak_p99, 3)
        .add(l.run.steady.peak_max, 3)
        .add(l.run.steady.fraction_above_epsilon, 4)
        .add(l.divergence == 0 ? 1 : 0);
  }
  lb::bench::emit(table,
                  "open-system settling/peak metrics (bit-identity enforced)",
                  csv);

  if (!opts.get_string("json").empty()) {
    write_json(opts.get_string("json"), rounds, legs);
  }

  if (divergent != 0) {
    std::fprintf(stderr, "bench_stream: FAILED — open-system runs diverged "
                         "across pools or shard counts\n");
    return 1;
  }
  return 0;
}
