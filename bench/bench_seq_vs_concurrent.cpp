// E4 (factor-2 sequentialization, §3): "the concurrency can degrade our
// algorithm performance by at most a factor of two."
//
// For each instance we compare the one-round potential drop of the
// concurrent Algorithm 1 against the greedy-sequential comparator (which
// re-evaluates every transfer from the freshest state — no concurrency at
// all), repeated along the convergence trajectory.  The paper predicts
// concurrent/greedy >= ~0.5 throughout.
#include "bench_common.hpp"

#include <algorithm>

#include "lb/core/diffusion.hpp"
#include "lb/core/load.hpp"
#include "lb/core/sequential.hpp"
#include "lb/util/stats.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E4 / factor-2 claim: concurrent round drop vs greedy-sequential round drop");
  opts.add_int("n", 256, "nodes per topology")
      .add_int("rounds", 40, "rounds sampled along the trajectory")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const std::size_t rounds = static_cast<std::size_t>(opts.get_int("rounds"));
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E4: concurrency costs at most a factor 2 (Section 3)",
                    "per-round potential drop of concurrent Algorithm 1 is >= 0.5x "
                    "the drop of the fully sequential (greedy) execution",
                    seed);

  lb::util::Table table({"topology", "workload", "rounds", "min ratio",
                         "mean ratio", "max ratio", "claim (>=0.5) holds"});

  for (const std::string& family : lb::bench::default_families()) {
    for (const std::string workload : {"spike", "uniform"}) {
      lb::util::Rng rng(seed);
      const auto g = lb::graph::make_named(family, n, rng);
      auto load = lb::workload::make_named<double>(
          workload, g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()), rng);

      lb::util::RunningStats ratio;
      lb::core::ContinuousDiffusion alg;
      for (std::size_t r = 0; r < rounds; ++r) {
        const double phi_before = lb::core::potential(load);
        if (phi_before < 1e-9) break;

        // Greedy-sequential drop from the same start state (on a copy).
        std::vector<double> greedy_load = load;
        const auto greedy = lb::core::greedy_sequential_round(g, greedy_load);

        // Concurrent drop (advances the trajectory).
        alg.step(g, load, rng);
        const double concurrent_drop = phi_before - lb::core::potential(load);

        if (greedy.total_drop > 1e-12 * phi_before) {
          ratio.add(concurrent_drop / greedy.total_drop);
        }
      }

      table.row()
          .add(g.name())
          .add(workload)
          .add(static_cast<std::int64_t>(ratio.count()))
          .add(ratio.min(), 4)
          .add(ratio.mean(), 4)
          .add(ratio.max(), 4)
          .add(ratio.min() >= 0.5 ? "yes" : "NO");
    }
  }
  lb::bench::emit(table,
                  "Concurrent vs greedy-sequential potential drop per round",
                  opts.get_flag("csv"));
  return 0;
}
