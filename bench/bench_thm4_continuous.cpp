// E2 (Lemma 2 + Theorem 4): continuous Algorithm 1 on fixed networks.
//
// For each topology the table reports λ2 and δ, the Theorem-4 round
// budget T = 4δ·ln(1/ε)/λ2, the measured rounds to reach ε·Φ(L⁰), the
// measured/bound ratio (<= 1 confirms the theorem; the margin shows the
// bound's slack), and the worst per-round drop fraction against the
// guaranteed λ2/4δ.
#include "bench_common.hpp"

#include <cmath>

#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/core/metrics.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/workload/initial.hpp"

int main(int argc, char** argv) {
  lb::util::Options opts(
      "E2 / Theorem 4: continuous diffusion convergence versus the "
      "4*delta*ln(1/eps)/lambda2 bound");
  opts.add_int("n", 256, "nodes per topology")
      .add_double("eps", 1e-6, "target potential fraction")
      .add_int("seed", 42, "RNG seed")
      .add_flag("csv", "emit CSV instead of a table");
  opts.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(opts.get_int("n"));
  const double eps = opts.get_double("eps");
  const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  lb::bench::banner("E2: Theorem 4 (continuous, fixed network)",
                    "Phi(L^T) <= eps*Phi(L^0) after T = 4*delta*ln(1/eps)/lambda2; "
                    "per-round drop >= lambda2/(4*delta)",
                    seed);

  lb::util::Table table({"topology", "n", "delta", "lambda2", "T bound",
                         "T measured", "meas/bound", "drop frac bound",
                         "worst drop frac"});

  for (const std::string& family : lb::bench::default_families()) {
    lb::util::Rng rng(seed);
    const auto g = lb::graph::make_named(family, n, rng);
    const double l2 = lb::linalg::lambda2(g);
    const double bound_T = lb::core::bounds::theorem4_rounds(l2, g.max_degree(), eps);
    const double frac_bound =
        lb::core::bounds::theorem4_drop_fraction(l2, g.max_degree());

    auto load = lb::workload::spike<double>(
        g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()));
    const double phi0 = lb::core::potential(load);

    lb::core::ContinuousDiffusion alg;
    lb::core::EngineConfig cfg;
    cfg.max_rounds = static_cast<std::size_t>(std::ceil(bound_T)) + 10;
    cfg.target_potential = eps * phi0;
    cfg.stall_rounds = 0;
    const auto result = lb::core::run_static(alg, g, load, cfg);

    // Worst per-round drop fraction over the recorded trace.
    double worst_frac = 1.0;
    double prev = phi0;
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
      const double cur = result.trace[i].potential;
      if (prev > 1e-12) {
        worst_frac = std::min(worst_frac, (prev - cur) / prev);
      }
      prev = cur;
    }

    table.row()
        .add(g.name())
        .add(static_cast<std::int64_t>(g.num_nodes()))
        .add(static_cast<std::int64_t>(g.max_degree()))
        .add(l2, 4)
        .add(bound_T, 5)
        .add(static_cast<std::int64_t>(result.rounds))
        .add(static_cast<double>(result.rounds) / bound_T, 3)
        .add(frac_bound, 4)
        .add(worst_frac, 4);
  }
  lb::bench::emit(table,
                  "Theorem 4: rounds to eps-balance (measured <= bound confirms)",
                  opts.get_flag("csv"));
  return 0;
}
