// Tests for the spectral graph utilities (lb/linalg/spectral.hpp): the λ2
// and γ every theorem bound depends on, validated against closed forms.
#include "lb/linalg/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lb/graph/generators.hpp"
#include "lb/graph/properties.hpp"
#include "lb/linalg/dense.hpp"
#include "lb/linalg/jacobi_eigen.hpp"
#include "lb/util/rng.hpp"

namespace {

using lb::graph::Graph;
using lb::linalg::Vector;

TEST(LaplacianTest, DiagonalIsDegree) {
  const Graph g = lb::graph::make_star(5);
  const auto l = lb::linalg::laplacian_dense(g);
  EXPECT_DOUBLE_EQ(l(0, 0), 4.0);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_DOUBLE_EQ(l(i, i), 1.0);
  EXPECT_DOUBLE_EQ(l(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(l(1, 2), 0.0);
}

TEST(LaplacianTest, SymmetricWithZeroRowSums) {
  const Graph g = lb::graph::make_torus2d(4, 4);
  const auto l = lb::linalg::laplacian_dense(g);
  EXPECT_TRUE(l.is_symmetric());
  for (std::size_t r = 0; r < g.num_nodes(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < g.num_nodes(); ++c) sum += l(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(DiffusionMatrixTest, DoublyStochastic) {
  const Graph g = lb::graph::make_wheel(8);
  const auto m = lb::linalg::diffusion_matrix_dense(g);
  for (std::size_t r = 0; r < g.num_nodes(); ++r) {
    double row = 0.0, col = 0.0;
    for (std::size_t c = 0; c < g.num_nodes(); ++c) {
      row += m(r, c);
      col += m(c, r);
      EXPECT_GE(m(r, c), 0.0);
    }
    EXPECT_NEAR(row, 1.0, 1e-12);
    EXPECT_NEAR(col, 1.0, 1e-12);
  }
}

TEST(DiffusionMatrixTest, EqualsIdentityMinusScaledLaplacian) {
  const Graph g = lb::graph::make_binary_tree(15);
  const auto m = lb::linalg::diffusion_matrix_dense(g);
  const auto l = lb::linalg::laplacian_dense(g);
  const double alpha = 1.0 / (static_cast<double>(g.max_degree()) + 1.0);
  for (std::size_t r = 0; r < g.num_nodes(); ++r) {
    for (std::size_t c = 0; c < g.num_nodes(); ++c) {
      const double expect = (r == c ? 1.0 : 0.0) - alpha * l(r, c);
      EXPECT_NEAR(m(r, c), expect, 1e-12);
    }
  }
}

// --- closed-form λ2 sweep ---

struct ClosedFormCase {
  const char* label;
  Graph graph;
  double expected;
};

class Lambda2ClosedFormTest : public ::testing::TestWithParam<int> {};

std::vector<ClosedFormCase> closed_form_cases() {
  std::vector<ClosedFormCase> cases;
  cases.push_back({"path16", lb::graph::make_path(16),
                   2.0 * (1.0 - std::cos(M_PI / 16.0))});
  cases.push_back({"path63", lb::graph::make_path(63),
                   2.0 * (1.0 - std::cos(M_PI / 63.0))});
  cases.push_back({"cycle24", lb::graph::make_cycle(24),
                   2.0 * (1.0 - std::cos(2.0 * M_PI / 24.0))});
  cases.push_back({"cycle101", lb::graph::make_cycle(101),
                   2.0 * (1.0 - std::cos(2.0 * M_PI / 101.0))});
  cases.push_back({"complete12", lb::graph::make_complete(12), 12.0});
  cases.push_back({"star20", lb::graph::make_star(20), 1.0});
  cases.push_back({"hypercube5", lb::graph::make_hypercube(5), 2.0});
  cases.push_back({"hypercube7", lb::graph::make_hypercube(7), 2.0});
  cases.push_back({"torus6x6", lb::graph::make_torus2d(6, 6),
                   2.0 * (1.0 - std::cos(2.0 * M_PI / 6.0))});
  cases.push_back({"torus4x8", lb::graph::make_torus2d(4, 8),
                   2.0 * (1.0 - std::cos(2.0 * M_PI / 8.0))});
  return cases;
}

TEST_P(Lambda2ClosedFormTest, MatchesTheory) {
  static const auto cases = closed_form_cases();
  const auto& c = cases[static_cast<std::size_t>(GetParam())];
  EXPECT_NEAR(lb::linalg::lambda2(c.graph), c.expected, 1e-8) << c.label;
}

TEST_P(Lambda2ClosedFormTest, ClosedFormHelperAgrees) {
  static const auto cases = closed_form_cases();
  const auto& c = cases[static_cast<std::size_t>(GetParam())];
  const auto cf = lb::linalg::lambda2_closed_form(c.graph);
  ASSERT_TRUE(cf.has_value()) << c.label;
  EXPECT_NEAR(*cf, c.expected, 1e-12) << c.label;
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, Lambda2ClosedFormTest,
                         ::testing::Range(0, 10));

TEST(Lambda2Test, LanczosPathAgreesWithDensePath) {
  // Force the sparse path with a small dense cutoff and compare.
  const Graph g = lb::graph::make_torus2d(9, 9);
  const double dense = lb::linalg::lambda2(g, /*dense_cutoff=*/512);
  const double sparse = lb::linalg::lambda2(g, /*dense_cutoff=*/4);
  EXPECT_NEAR(dense, sparse, 1e-7);
}

TEST(Lambda2Test, DisconnectedGraphHasZeroLambda2) {
  lb::graph::GraphBuilder b(4, "two-pairs");
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_NEAR(lb::linalg::lambda2(g), 0.0, 1e-10);
}

TEST(LambdaMaxTest, CompleteGraphIsN) {
  const Graph g = lb::graph::make_complete(9);
  EXPECT_NEAR(lb::linalg::lambda_max(g), 9.0, 1e-9);
}

TEST(LambdaMaxTest, BipartiteCycleIsFour) {
  const Graph g = lb::graph::make_cycle(10);  // even cycle is bipartite
  EXPECT_NEAR(lb::linalg::lambda_max(g), 4.0, 1e-9);
}

TEST(GammaTest, MatchesDirectEigenvaluesOfM) {
  const Graph g = lb::graph::make_petersen();
  const auto m = lb::linalg::diffusion_matrix_dense(g);
  const auto decomp = lb::linalg::jacobi_eigen(m);
  double direct = 0.0;
  for (double mu : decomp.values) {
    if (std::fabs(mu - 1.0) < 1e-9) continue;
    direct = std::max(direct, std::fabs(mu));
  }
  EXPECT_NEAR(lb::linalg::diffusion_gamma(g), direct, 1e-9);
}

TEST(GammaTest, LiesInUnitInterval) {
  lb::util::Rng rng(3);
  for (const char* family : {"cycle", "torus2d", "hypercube", "tree"}) {
    const Graph g = lb::graph::make_named(family, 32, rng);
    const double gamma = lb::linalg::diffusion_gamma(g);
    EXPECT_GE(gamma, 0.0) << family;
    EXPECT_LT(gamma, 1.0) << family;
  }
}

TEST(SpectralSummaryTest, ConsistentFields) {
  const Graph g = lb::graph::make_torus2d(5, 5);
  const auto s = lb::linalg::spectral_summary(g);
  EXPECT_EQ(s.n, 25u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_GT(s.lambda2, 0.0);
  EXPECT_GE(s.lambda_max, s.lambda2);
  EXPECT_NEAR(s.eigen_gap, 1.0 - s.gamma, 1e-14);
}

TEST(FiedlerTest, OrthogonalToOnesAndUnit) {
  const Graph g = lb::graph::make_path(30);
  const Vector f = lb::linalg::fiedler_vector(g);
  double dot_ones = 0.0, norm = 0.0;
  for (double v : f) {
    dot_ones += v;
    norm += v * v;
  }
  EXPECT_NEAR(dot_ones, 0.0, 1e-8);
  EXPECT_NEAR(norm, 1.0, 1e-8);
}

TEST(FiedlerTest, SplitsPathInHalf) {
  // The path's Fiedler vector is monotone: cos(π(i+1/2)/n) up to sign.
  const Graph g = lb::graph::make_path(40);
  Vector f = lb::linalg::fiedler_vector(g);
  if (f.front() > f.back()) {
    for (double& v : f) v = -v;
  }
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_LE(f[i - 1], f[i] + 1e-9);
  }
}

TEST(SpectrumTest, CompleteGraphSpectrum) {
  // K_n: eigenvalue 0 once and n with multiplicity n-1.
  const Graph g = lb::graph::make_complete(7);
  const Vector spec = lb::linalg::laplacian_spectrum(g);
  EXPECT_NEAR(spec[0], 0.0, 1e-9);
  for (std::size_t i = 1; i < spec.size(); ++i) EXPECT_NEAR(spec[i], 7.0, 1e-9);
}

TEST(SpectrumTest, HypercubeMultiplicities) {
  // Q_d has eigenvalue 2k with multiplicity C(d, k).
  const Graph g = lb::graph::make_hypercube(4);
  const Vector spec = lb::linalg::laplacian_spectrum(g);
  std::vector<int> counts(5, 0);
  for (double v : spec) {
    const int k = static_cast<int>(std::lround(v / 2.0));
    ASSERT_NEAR(v, 2.0 * k, 1e-8);
    ++counts[k];
  }
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 4);
  EXPECT_EQ(counts[2], 6);
  EXPECT_EQ(counts[3], 4);
  EXPECT_EQ(counts[4], 1);
}

TEST(CheegerTest, BoundsBracketExactExpansion) {
  // h(G) (conductance-style, per-vertex denominator) obeys
  // λ2/2 <= h <= sqrt(2 δ λ2).
  for (std::size_t n : {6u, 8u, 10u}) {
    const Graph g = lb::graph::make_cycle(n);
    const auto [lo, hi] = lb::linalg::cheeger_bounds(g);
    const double exact = lb::graph::edge_expansion_exact(g);
    EXPECT_LE(lo, exact + 1e-9) << "cycle " << n;
    EXPECT_GE(hi, exact - 1e-9) << "cycle " << n;
  }
}

TEST(ClosedFormTest, UnknownFamilyReturnsNullopt) {
  const Graph g = lb::graph::make_petersen();
  EXPECT_FALSE(lb::linalg::lambda2_closed_form(g).has_value());
}

TEST(Lambda2Test, ChordalRingBeatsPlainCycle) {
  // Adding chords can only raise λ2 (edge addition is Laplacian-monotone).
  const double cycle = lb::linalg::lambda2(lb::graph::make_cycle(64));
  const double chordal = lb::linalg::lambda2(lb::graph::make_chordal_ring(64, {8}));
  EXPECT_GT(chordal, cycle);
}

TEST(Lambda2Test, CccPositiveAndBelowHypercube) {
  // CCC trades the hypercube's λ2 = 2 for constant degree; its gap is
  // strictly positive but smaller.
  const auto ccc = lb::graph::make_cube_connected_cycles(4);
  const double l2 = lb::linalg::lambda2(ccc);
  EXPECT_GT(l2, 0.0);
  EXPECT_LT(l2, 2.0);
}

TEST(Lambda2Test, EdgeAdditionIsMonotone) {
  // λ2(G + e) >= λ2(G): interlacing for Laplacians under edge addition.
  lb::util::Rng rng(5);
  const Graph sparse = lb::graph::make_random_regular(32, 4, rng);
  lb::graph::GraphBuilder b(32, "augmented");
  for (const auto& e : sparse.edges()) b.add_edge(e.u, e.v);
  // Add a few random chords not already present.
  std::size_t added = 0;
  while (added < 8) {
    const auto u = static_cast<lb::graph::NodeId>(rng.next_below(32));
    const auto v = static_cast<lb::graph::NodeId>(rng.next_below(32));
    if (u == v || sparse.has_edge(u, v)) continue;
    b.add_edge(u, v);
    ++added;
  }
  const Graph dense = b.build();
  EXPECT_GE(lb::linalg::lambda2(dense), lb::linalg::lambda2(sparse) - 1e-9);
}

}  // namespace
