// Kernel-equivalence tests for the flow-ledger substrate
// (lb/core/flow_ledger.hpp): the node-parallel ledger apply must produce
// BIT-identical load vectors to the seed's sequential edge-list sweep for
// every ported balancer, discrete and continuous, on random/torus/
// hypercube graphs, at every thread-pool size.
#include "lb/core/flow_ledger.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/fos.hpp"
#include "lb/core/load.hpp"
#include "lb/core/sos.hpp"
#include "lb/graph/dynamic.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/workload/initial.hpp"

namespace {

using lb::core::ApplyPath;
using lb::core::FlowLedger;
using lb::graph::Graph;

// Bitwise equality: for doubles, value equality would conflate 0.0/-0.0
// and hide representation drift; the determinism guarantee is stronger.
template <class T>
::testing::AssertionResult bits_equal(const std::vector<T>& a,
                                      const std::vector<T>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(T)) != 0) {
        return ::testing::AssertionFailure()
               << "first divergence at node " << i << ": " << a[i] << " vs "
               << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<Graph> test_graphs() {
  lb::util::Rng rng(7);
  std::vector<Graph> graphs;
  graphs.push_back(lb::graph::make_erdos_renyi(150, 0.06, rng,
                                               /*require_connected=*/true));
  graphs.push_back(lb::graph::make_torus2d(12, 12));
  graphs.push_back(lb::graph::make_hypercube(7));
  return graphs;
}

template <class T>
std::vector<T> initial_load(const Graph& g, std::uint64_t seed) {
  lb::util::Rng rng(seed);
  return lb::workload::uniform_random<T>(
      g.num_nodes(), static_cast<T>(1000 * g.num_nodes()), rng);
}

// Run `rounds` steps of identically-configured balancers down both apply
// paths (same RNG seed) and require bit-identical loads after every round.
template <class T, class MakeBalancer>
void expect_paths_identical(const Graph& g, MakeBalancer&& make, int rounds) {
  auto ledger_alg = make(ApplyPath::kLedger);
  auto sweep_alg = make(ApplyPath::kEdgeSweep);
  std::vector<T> ledger_load = initial_load<T>(g, 99);
  std::vector<T> sweep_load = ledger_load;
  lb::util::Rng ledger_rng(5), sweep_rng(5);
  const T total = std::accumulate(ledger_load.begin(), ledger_load.end(), T{});
  for (int r = 0; r < rounds; ++r) {
    const auto ls = ledger_alg->step(g, ledger_load, ledger_rng);
    const auto ss = sweep_alg->step(g, sweep_load, sweep_rng);
    ASSERT_TRUE(bits_equal(ledger_load, sweep_load))
        << g.name() << " round " << r;
    EXPECT_EQ(ls.active_edges, ss.active_edges);
    EXPECT_EQ(ls.transferred, ss.transferred);
  }
  const T final_total =
      std::accumulate(ledger_load.begin(), ledger_load.end(), T{});
  if constexpr (std::is_integral_v<T>) {
    EXPECT_EQ(final_total, total);  // tokens conserve exactly
  } else {
    EXPECT_NEAR(static_cast<double>(final_total), static_cast<double>(total),
                1e-6 * static_cast<double>(total));
  }
}

TEST(FlowLedgerEquivalenceTest, DiffusionContinuous) {
  for (const Graph& g : test_graphs()) {
    expect_paths_identical<double>(
        g,
        [](ApplyPath apply) {
          lb::core::DiffusionConfig cfg;
          cfg.apply = apply;
          return std::make_unique<lb::core::ContinuousDiffusion>(cfg);
        },
        25);
  }
}

TEST(FlowLedgerEquivalenceTest, DiffusionDiscrete) {
  for (const Graph& g : test_graphs()) {
    expect_paths_identical<std::int64_t>(
        g,
        [](ApplyPath apply) {
          lb::core::DiffusionConfig cfg;
          cfg.apply = apply;
          return std::make_unique<lb::core::DiscreteDiffusion>(cfg);
        },
        25);
  }
}

TEST(FlowLedgerEquivalenceTest, FosFlowFormDiscrete) {
  for (const Graph& g : test_graphs()) {
    expect_paths_identical<std::int64_t>(
        g,
        [](ApplyPath apply) {
          lb::core::DiffusionConfig cfg;
          cfg.rule = lb::core::DenominatorRule::kDegreePlusOne;
          cfg.apply = apply;
          return std::make_unique<lb::core::DiscreteDiffusion>(cfg);
        },
        25);
  }
}

TEST(FlowLedgerEquivalenceTest, FirstOrderScheme) {
  for (const Graph& g : test_graphs()) {
    expect_paths_identical<double>(
        g,
        [](ApplyPath apply) {
          return std::make_unique<lb::core::FirstOrderScheme>(/*parallel=*/true,
                                                              apply);
        },
        25);
  }
}

TEST(FlowLedgerEquivalenceTest, SecondOrderScheme) {
  for (const Graph& g : test_graphs()) {
    expect_paths_identical<double>(
        g,
        [](ApplyPath apply) {
          return std::make_unique<lb::core::SecondOrderScheme>(
              /*beta=*/1.5, /*parallel=*/true, apply);
        },
        25);
  }
}

TEST(FlowLedgerEquivalenceTest, DimensionExchangeContinuous) {
  for (const Graph& g : test_graphs()) {
    expect_paths_identical<double>(
        g,
        [](ApplyPath apply) {
          return std::make_unique<lb::core::ContinuousDimensionExchange>(
              lb::core::MatchingStrategy::kGhoshMuthukrishnan, apply);
        },
        25);
  }
}

TEST(FlowLedgerEquivalenceTest, DimensionExchangeDiscrete) {
  for (const Graph& g : test_graphs()) {
    expect_paths_identical<std::int64_t>(
        g,
        [](ApplyPath apply) {
          return std::make_unique<lb::core::DiscreteDimensionExchange>(
              lb::core::MatchingStrategy::kRandomMaximal, apply);
        },
        25);
  }
}

// The core determinism guarantee: ledger apply is bit-identical to the
// sequential edge sweep at pool sizes 1, 2, and hardware_concurrency.
template <class T>
void expect_apply_identical_across_pools(const Graph& g) {
  // Flows from a real diffusion round so magnitudes/signs are realistic.
  std::vector<T> snapshot = initial_load<T>(g, 31);
  std::vector<double> flows;
  lb::core::DiffusionConfig cfg;
  lb::core::compute_edge_flows(
      g, snapshot, flows, nullptr,
      [&g, &cfg](std::size_t, const lb::graph::Edge& e, double lu, double lv) {
        if (lu == lv) return 0.0;
        double w = lb::core::diffusion_edge_weight(g, e.u, e.v, lu, lv, cfg);
        if constexpr (std::is_integral_v<T>) w = std::floor(w);
        return lu > lv ? w : -w;
      });

  std::vector<T> oracle = snapshot;
  lb::core::apply_edge_sweep(g, flows, oracle);

  FlowLedger ledger;
  ledger.rebuild(g);
  {
    std::vector<T> seq = snapshot;
    ledger.apply(g, flows, seq, nullptr);
    ASSERT_TRUE(bits_equal(seq, oracle)) << g.name() << " sequential ledger";
  }
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    lb::util::ThreadPool pool(threads);
    std::vector<T> out = snapshot;
    ledger.apply(g, flows, out, &pool);
    ASSERT_TRUE(bits_equal(out, oracle))
        << g.name() << " pool size " << threads;
  }
}

TEST(FlowLedgerPoolMatrixTest, ContinuousBitIdenticalAtEveryPoolSize) {
  for (const Graph& g : test_graphs()) {
    expect_apply_identical_across_pools<double>(g);
  }
}

TEST(FlowLedgerPoolMatrixTest, DiscreteBitIdenticalAtEveryPoolSize) {
  for (const Graph& g : test_graphs()) {
    expect_apply_identical_across_pools<std::int64_t>(g);
  }
}

TEST(FlowLedgerEpochTest, RevisionsAreUniquePerBuild) {
  const Graph a = lb::graph::make_torus2d(4, 4);
  const Graph b = lb::graph::make_torus2d(4, 4);
  EXPECT_NE(a.revision(), 0u);
  EXPECT_NE(a.revision(), b.revision());
  const Graph copy = a;  // copies share the topology, hence the epoch
  EXPECT_EQ(copy.revision(), a.revision());
}

TEST(FlowLedgerEpochTest, ValidityTracksRevision) {
  const Graph a = lb::graph::make_hypercube(4);
  const Graph b = lb::graph::make_hypercube(4);
  FlowLedger ledger;
  EXPECT_FALSE(ledger.valid_for(a));
  ledger.rebuild(a);
  EXPECT_TRUE(ledger.valid_for(a));
  EXPECT_FALSE(ledger.valid_for(b));  // identical shape, different epoch
  ledger.invalidate();
  EXPECT_FALSE(ledger.valid_for(a));
  ledger.ensure(a);
  EXPECT_TRUE(ledger.valid_for(a));
}

TEST(FlowLedgerEpochTest, SubgraphRebuildChangesRevision) {
  const Graph base = lb::graph::make_torus2d(6, 6);
  std::vector<lb::graph::Edge> keep(base.edges().begin(),
                                    base.edges().end() - 4);
  const Graph sub = lb::graph::subgraph_with_edges(base, keep, "sub");
  EXPECT_NE(sub.revision(), base.revision());
}

// Dynamic networks: the sequence rebuilds its graph each round (often in
// place), so the ledger must re-key per epoch.  Both apply paths must stay
// bit-identical through a full engine run over a changing topology.
TEST(FlowLedgerDynamicTest, LedgerTracksBernoulliSequence) {
  const Graph base = lb::graph::make_torus2d(8, 8);
  auto run_with = [&](ApplyPath apply) {
    lb::core::DiffusionConfig cfg;
    cfg.apply = apply;
    lb::core::ContinuousDiffusion alg(cfg);
    auto seq = lb::graph::make_bernoulli_sequence(base, 0.7, /*seed=*/11);
    std::vector<double> load = initial_load<double>(base, 3);
    lb::core::EngineConfig ecfg;
    ecfg.max_rounds = 40;
    ecfg.target_potential = 0.0;
    ecfg.stall_rounds = 0;
    ecfg.record_trace = false;
    lb::core::run(alg, *seq, load, ecfg);
    return load;
  };
  const auto ledger_load = run_with(ApplyPath::kLedger);
  const auto sweep_load = run_with(ApplyPath::kEdgeSweep);
  EXPECT_TRUE(bits_equal(ledger_load, sweep_load));
}

TEST(FlowLedgerDynamicTest, LedgerTracksMarkovSequence) {
  const Graph base = lb::graph::make_hypercube(6);
  auto run_with = [&](ApplyPath apply) {
    lb::core::DiffusionConfig cfg;
    cfg.apply = apply;
    lb::core::DiscreteDiffusion alg(cfg);
    auto seq =
        lb::graph::make_markov_failure_sequence(base, 0.2, 0.5, /*seed=*/23);
    std::vector<std::int64_t> load = initial_load<std::int64_t>(base, 17);
    lb::core::EngineConfig ecfg;
    ecfg.max_rounds = 40;
    ecfg.target_potential = 0.0;
    ecfg.stall_rounds = 0;
    ecfg.record_trace = false;
    lb::core::run(alg, *seq, load, ecfg);
    return load;
  };
  const auto ledger_load = run_with(ApplyPath::kLedger);
  const auto sweep_load = run_with(ApplyPath::kEdgeSweep);
  EXPECT_TRUE(bits_equal(ledger_load, sweep_load));
}

TEST(FlowLedgerStructureTest, CsrRowsCoverEveryEdgeTwice) {
  const Graph g = lb::graph::make_torus2d(5, 5);
  FlowLedger ledger;
  ledger.rebuild(g);
  EXPECT_EQ(ledger.num_nodes(), g.num_nodes());
  EXPECT_EQ(ledger.num_edges(), g.num_edges());
  // Moving exactly one unit along every edge u->v changes each node's load
  // by (in-degree − out-degree) under the canonical orientation.
  std::vector<double> flows(g.num_edges(), 1.0);
  std::vector<double> load(g.num_nodes(), 0.0);
  ledger.apply(g, flows, load, nullptr);
  std::vector<double> expected(g.num_nodes(), 0.0);
  for (const lb::graph::Edge& e : g.edges()) {
    expected[e.u] -= 1.0;
    expected[e.v] += 1.0;
  }
  EXPECT_TRUE(bits_equal(load, expected));
}

TEST(FlowLedgerStructureTest, EdgeIndexFindsEveryEdge) {
  lb::util::Rng rng(13);
  const Graph g = lb::graph::make_erdos_renyi(60, 0.1, rng);
  for (std::size_t k = 0; k < g.num_edges(); ++k) {
    const lb::graph::Edge& e = g.edges()[k];
    EXPECT_EQ(g.edge_index(e.u, e.v), k);
    EXPECT_EQ(g.edge_index(e.v, e.u), k);  // order-insensitive
  }
  EXPECT_EQ(g.edge_index(0, 0), g.num_edges());  // absent
}

}  // namespace
