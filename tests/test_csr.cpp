// Unit tests for the CSR sparse matrix (lb/linalg/csr.hpp).
#include "lb/linalg/csr.hpp"

#include <gtest/gtest.h>

#include "lb/graph/generators.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/util/rng.hpp"

namespace {

using lb::linalg::CsrMatrix;
using lb::linalg::DenseMatrix;
using lb::linalg::Vector;

TEST(CsrTest, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::from_triplets(3, {}, {}, {});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.nonzeros(), 0u);
  const Vector y = m.multiply({1.0, 2.0, 3.0});
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CsrTest, SimpleMultiply) {
  // [[1, 2], [0, 3]]
  const CsrMatrix m = CsrMatrix::from_triplets(2, {0, 0, 1}, {0, 1, 1}, {1.0, 2.0, 3.0});
  const Vector y = m.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(CsrTest, DuplicateTripletsAreSummed) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, {0, 0, 0}, {1, 1, 1}, {1.0, 2.0, 3.0});
  EXPECT_EQ(m.nonzeros(), 1u);
  const Vector y = m.multiply({0.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

TEST(CsrTest, UnsortedTripletsAreSorted) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(3, {2, 0, 1}, {0, 2, 1}, {7.0, 8.0, 9.0});
  const DenseMatrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 8.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 9.0);
}

TEST(CsrTest, RowsWithNoEntries) {
  const CsrMatrix m = CsrMatrix::from_triplets(4, {0, 3}, {3, 0}, {1.0, 1.0});
  EXPECT_EQ(m.row_begin(1), m.row_end(1));
  EXPECT_EQ(m.row_begin(2), m.row_end(2));
  EXPECT_EQ(m.row_end(0) - m.row_begin(0), 1u);
}

TEST(CsrTest, DenseRoundTripOnLaplacian) {
  const auto g = lb::graph::make_torus2d(4, 5);
  const CsrMatrix sparse = lb::linalg::laplacian_csr(g);
  const DenseMatrix dense = lb::linalg::laplacian_dense(g);
  EXPECT_DOUBLE_EQ(sparse.to_dense().max_abs_diff(dense), 0.0);
}

TEST(CsrTest, MultiplyMatchesDense) {
  const auto g = lb::graph::make_cycle(17);
  const CsrMatrix sparse = lb::linalg::laplacian_csr(g);
  const DenseMatrix dense = lb::linalg::laplacian_dense(g);
  lb::util::Rng rng(5);
  Vector x(g.num_nodes());
  for (double& v : x) v = rng.next_double(-2.0, 2.0);
  const Vector ys = sparse.multiply(x);
  const Vector yd = dense.multiply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(CsrTest, ParallelMultiplyMatchesSequential) {
  const auto g = lb::graph::make_hypercube(9);  // n = 512
  const CsrMatrix l = lb::linalg::laplacian_csr(g);
  lb::util::Rng rng(9);
  Vector x(g.num_nodes());
  for (double& v : x) v = rng.next_double(-1.0, 1.0);
  Vector seq, par;
  l.multiply(x, seq);
  l.multiply_parallel(x, par);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) EXPECT_DOUBLE_EQ(seq[i], par[i]);
}

TEST(CsrTest, LaplacianRowsSumToZero) {
  const auto g = lb::graph::make_de_bruijn(6);
  const CsrMatrix l = lb::linalg::laplacian_csr(g);
  const Vector ones(g.num_nodes(), 1.0);
  const Vector y = l.multiply(ones);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(CsrTest, NonzeroCountOnGraph) {
  const auto g = lb::graph::make_complete(6);
  const CsrMatrix l = lb::linalg::laplacian_csr(g);
  // n diagonal entries + 2m off-diagonal entries.
  EXPECT_EQ(l.nonzeros(), 6u + 2u * g.num_edges());
}

}  // namespace
