// End-to-end integration sweep: every algorithm on every topology family
// from every workload must (a) conserve load exactly, (b) keep loads
// non-negative (where guaranteed), and (c) make substantial progress
// toward balance within a generous round budget.
#include <gtest/gtest.h>

#include <memory>

#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/fos.hpp"
#include "lb/core/load.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/graph/generators.hpp"
#include "lb/workload/initial.hpp"

namespace {

using lb::graph::Graph;

// ---- continuous sweep ----

class ContinuousIntegrationTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

std::unique_ptr<lb::core::ContinuousBalancer> make_continuous(const std::string& algo) {
  if (algo == "diffusion") return lb::core::make_diffusion_continuous();
  if (algo == "fos") return lb::core::make_fos_continuous();
  if (algo == "dimexch") return lb::core::make_dimension_exchange_continuous();
  if (algo == "randpartner") return lb::core::make_random_partner_continuous();
  ADD_FAILURE() << "unknown algorithm " << algo;
  return nullptr;
}

TEST_P(ContinuousIntegrationTest, ConservesAndConverges) {
  const auto& [algo, family] = GetParam();
  lb::util::Rng rng(1234);
  const Graph g = lb::graph::make_named(family, 36, rng);
  auto load = lb::workload::spike<double>(g.num_nodes(),
                                          100.0 * static_cast<double>(g.num_nodes()));
  const double total_before = lb::core::total_load(load);
  const double phi0 = lb::core::potential(load);

  auto alg = make_continuous(algo);
  ASSERT_NE(alg, nullptr);
  lb::core::EngineConfig cfg;
  cfg.max_rounds = 20000;
  cfg.target_potential = 1e-4 * phi0;
  cfg.stall_rounds = 0;  // continuous transfers never fully stop
  const auto result = lb::core::run_static(*alg, g, load, cfg);

  EXPECT_TRUE(result.reached_target)
      << algo << " on " << g.name() << " final=" << result.final_potential;
  EXPECT_NEAR(lb::core::total_load(load), total_before, 1e-6 * total_before);
  if (algo != "fos") {
    // FOS can transiently move load through fractional exchanges but is
    // also non-negative; diffusion/dimexch/randpartner are guaranteed.
    EXPECT_TRUE(lb::core::all_non_negative(load)) << algo << " on " << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmTopologySweep, ContinuousIntegrationTest,
    ::testing::Combine(::testing::Values("diffusion", "fos", "dimexch", "randpartner"),
                       ::testing::Values("cycle", "torus2d", "hypercube", "star",
                                         "tree", "regular", "complete")));

// ---- discrete sweep ----

class DiscreteIntegrationTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

std::unique_ptr<lb::core::DiscreteBalancer> make_discrete(const std::string& algo) {
  if (algo == "diffusion") return lb::core::make_diffusion_discrete();
  if (algo == "fos") return lb::core::make_fos_discrete();
  if (algo == "dimexch") return lb::core::make_dimension_exchange_discrete();
  if (algo == "randpartner") return lb::core::make_random_partner_discrete();
  ADD_FAILURE() << "unknown algorithm " << algo;
  return nullptr;
}

TEST_P(DiscreteIntegrationTest, ConservesTokensAndReducesPotential) {
  const auto& [algo, family] = GetParam();
  lb::util::Rng rng(4321);
  const Graph g = lb::graph::make_named(family, 36, rng);
  auto load = lb::workload::spike<std::int64_t>(
      g.num_nodes(), 10000 * static_cast<std::int64_t>(g.num_nodes()));
  const std::int64_t total_before = lb::core::total_load(load);
  const double phi0 = lb::core::potential(load);

  auto alg = make_discrete(algo);
  ASSERT_NE(alg, nullptr);
  lb::core::EngineConfig cfg;
  cfg.max_rounds = 20000;
  cfg.target_potential = 0.01 * phi0;
  // Randomized matchings can idle for a few consecutive rounds while the
  // spike's node is unmatched; only a long silence means a fixed point.
  cfg.stall_rounds = 100;
  const auto result = lb::core::run_static(*alg, g, load, cfg);

  EXPECT_EQ(lb::core::total_load(load), total_before) << algo << " on " << g.name();
  EXPECT_TRUE(lb::core::all_non_negative(load)) << algo << " on " << g.name();
  // Either the run reached 1% of the initial potential or it stalled at
  // the discrete fixed point — and the fixed-point potential above the
  // 1% mark would mean the algorithm failed to spread a 10000x spike.
  EXPECT_TRUE(result.reached_target)
      << algo << " on " << g.name() << " final=" << result.final_potential
      << " (stalled=" << result.stalled << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmTopologySweep, DiscreteIntegrationTest,
    ::testing::Combine(::testing::Values("diffusion", "fos", "dimexch", "randpartner"),
                       ::testing::Values("cycle", "torus2d", "hypercube", "star",
                                         "tree", "regular", "complete")));

// ---- workload sweep on a fixed machine ----

class WorkloadIntegrationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadIntegrationTest, DiscreteDiffusionHandlesEveryWorkload) {
  lb::util::Rng rng(99);
  const Graph g = lb::graph::make_torus2d(6, 6);
  auto load = lb::workload::make_named<std::int64_t>(GetParam(), g.num_nodes(),
                                                     360000, rng);
  const std::int64_t before = lb::core::total_load(load);
  lb::core::DiscreteDiffusion alg;
  lb::core::EngineConfig cfg;
  cfg.max_rounds = 10000;
  cfg.target_potential = 0.0;  // run to the fixed point
  const auto result = lb::core::run_static(alg, g, load, cfg);
  EXPECT_EQ(lb::core::total_load(load), before);
  EXPECT_TRUE(lb::core::all_non_negative(load));
  EXPECT_TRUE(result.stalled || result.reached_target);
  // At the fixed point the discrepancy is bounded by what floors can hide:
  // every neighbouring pair differs by < 4·max(d_i,d_j)+... conservatively
  // diameter * 4δ; on the 6x6 torus (δ=4, diam=6) allow 2·6·16.
  EXPECT_LE(lb::core::discrepancy(load), 2.0 * 6.0 * 16.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadIntegrationTest,
                         ::testing::ValuesIn(lb::workload::named_workloads()));

// ---- failure injection ----

TEST(FailureInjectionTest, DisconnectedNetworkBalancesWithinComponents) {
  // Two disjoint cycles: totals inside each component are conserved and
  // the potential converges to the two-component fixed point, not to 0.
  lb::graph::GraphBuilder b(8, "two-cycles");
  for (lb::graph::NodeId i = 0; i < 4; ++i) {
    b.add_edge(i, static_cast<lb::graph::NodeId>((i + 1) % 4));
    b.add_edge(static_cast<lb::graph::NodeId>(4 + i),
               static_cast<lb::graph::NodeId>(4 + (i + 1) % 4));
  }
  const Graph g = b.build();
  std::vector<double> load{8.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  lb::util::Rng rng(3);
  lb::core::ContinuousDiffusion alg;
  for (int round = 0; round < 2000; ++round) alg.step(g, load, rng);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(load[i], 2.0, 1e-6);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_NEAR(load[i], 0.0, 1e-12);
}

TEST(FailureInjectionTest, ZeroLoadIsFixedPointEverywhere) {
  lb::util::Rng rng(5);
  const Graph g = lb::graph::make_torus2d(4, 4);
  std::vector<std::int64_t> load(16, 0);
  lb::core::DiscreteDiffusion alg;
  const auto stats = alg.step(g, load, rng);
  EXPECT_EQ(stats.transferred, 0.0);
  for (auto v : load) EXPECT_EQ(v, 0);
}

TEST(FailureInjectionTest, SingleNodeGraphIsTrivial) {
  lb::graph::GraphBuilder b(1);
  const Graph g = b.build();
  std::vector<std::int64_t> load{42};
  lb::util::Rng rng(7);
  lb::core::DiscreteDiffusion alg;
  const auto stats = alg.step(g, load, rng);
  EXPECT_EQ(stats.transferred, 0.0);
  EXPECT_EQ(load[0], 42);
}

TEST(FailureInjectionTest, EdgelessRoundsInDynamicSequenceAreHarmless) {
  // A Bernoulli sequence with keep=0 gives edgeless graphs; the engine
  // must stall gracefully with load untouched.
  auto seq = lb::graph::make_bernoulli_sequence(lb::graph::make_cycle(6), 0.0, 1);
  std::vector<std::int64_t> load{6, 0, 0, 0, 0, 0};
  lb::core::DiscreteDiffusion alg;
  lb::core::EngineConfig cfg;
  cfg.max_rounds = 100;
  const auto result = lb::core::run(alg, *seq, load, cfg);
  EXPECT_TRUE(result.stalled);
  EXPECT_EQ(load[0], 6);
}

TEST(FailureInjectionTest, HugeTokenCountsDoNotOverflow) {
  // 2^40 tokens on 16 nodes: all arithmetic stays in int64/double range.
  lb::util::Rng rng(11);
  const Graph g = lb::graph::make_hypercube(4);
  const std::int64_t total = std::int64_t{1} << 40;
  auto load = lb::workload::spike<std::int64_t>(16, total);
  lb::core::DiscreteDiffusion alg;
  for (int round = 0; round < 200; ++round) alg.step(g, load, rng);
  EXPECT_EQ(lb::core::total_load(load), total);
  EXPECT_TRUE(lb::core::all_non_negative(load));
  EXPECT_LT(lb::core::discrepancy(load), 1e6);
}

}  // namespace
