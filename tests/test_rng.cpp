// Unit tests for the deterministic PRNG substrate (lb/util/rng.hpp).
#include "lb/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace {

using lb::util::Rng;
using lb::util::SplitMix64;

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next() != b.next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 50; ++i) vals.insert(r.next_u64());
  EXPECT_GT(vals.size(), 45u);
}

TEST(RngTest, SplitDecorrelates) {
  Rng parent(5);
  Rng child = parent.split();
  // Child and parent streams should not coincide.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next_u64() == child.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(5), b(5);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng r(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng r(23);
  constexpr std::uint64_t kBound = 10;
  constexpr int kTrials = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kTrials; ++i) ++counts[r.next_below(kBound)];
  // Each bucket expects 10000; allow 5% deviation (well beyond 5 sigma).
  for (int c : counts) {
    EXPECT_GT(c, 9500);
    EXPECT_LT(c, 10500);
  }
}

TEST(RngTest, NextInCoversRangeInclusive) {
  Rng r(31);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(37);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng r(41);
  double sum = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kTrials, 0.5, 0.01);
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng r(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng r(47);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng r(53);
  double sum = 0, sum_sq = 0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kTrials, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kTrials, 1.0, 0.03);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng r(59);
  EXPECT_EQ(r.next_binomial(0, 0.5), 0);
  EXPECT_EQ(r.next_binomial(10, 0.0), 0);
  EXPECT_EQ(r.next_binomial(10, 1.0), 10);
}

TEST(RngTest, BinomialSmallNpMoments) {
  // The Lemma-9 regime: B(n-1, 1/n) with mean about 1.
  Rng r(61);
  constexpr int kTrials = 200000;
  constexpr std::int64_t kN = 1000;
  const double p = 1.0 / static_cast<double>(kN);
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kTrials; ++i) {
    const double v = static_cast<double>(r.next_binomial(kN - 1, p));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kTrials;
  const double var = sum_sq / kTrials - mean * mean;
  const double expect_mean = static_cast<double>(kN - 1) * p;
  EXPECT_NEAR(mean, expect_mean, 0.02);
  EXPECT_NEAR(var, expect_mean * (1 - p), 0.05);
}

TEST(RngTest, BinomialLargeNpMoments) {
  Rng r(67);
  constexpr int kTrials = 50000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) {
    const std::int64_t v = r.next_binomial(10000, 0.25);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 10000);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / kTrials, 2500.0, 5.0);
}

TEST(RngTest, BinomialMirroredP) {
  Rng r(71);
  double sum = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) sum += static_cast<double>(r.next_binomial(10, 0.9));
  EXPECT_NEAR(sum / kTrials, 9.0, 0.05);
}

TEST(RngTest, GeometricMean) {
  Rng r(73);
  constexpr double kP = 0.2;
  constexpr int kTrials = 100000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) sum += static_cast<double>(r.next_geometric(kP));
  // Mean of failures-before-success is (1-p)/p = 4.
  EXPECT_NEAR(sum / kTrials, 4.0, 0.1);
}

TEST(RngTest, GeometricPOneIsZero) {
  Rng r(79);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_geometric(1.0), 0);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng r(83);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = r.next_zipf(100, 1.0);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(RngTest, ZipfRankOneIsMostFrequent) {
  Rng r(89);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 100000; ++i) ++counts[r.next_zipf(10, 1.2)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng r(97);
  std::vector<int> counts(6, 0);
  constexpr int kTrials = 60000;
  for (int i = 0; i < kTrials; ++i) ++counts[r.next_zipf(5, 0.0)];
  for (int k = 1; k <= 5; ++k) EXPECT_NEAR(counts[k], kTrials / 5, kTrials / 50);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng r(101);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto sorted = v;
  r.shuffle(v);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // astronomically unlikely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng r(103);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = r.sample_without_replacement(100, 30);
    EXPECT_EQ(s.size(), 30u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 30u);
    for (std::size_t x : s) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng r(107);
  const auto s = r.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng r(109);
  EXPECT_TRUE(r.sample_without_replacement(10, 0).empty());
}

}  // namespace
