// Tests for structural graph properties (lb/graph/properties.hpp).
#include "lb/graph/properties.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "lb/graph/generators.hpp"

namespace {

using lb::graph::Graph;
using lb::graph::GraphBuilder;

TEST(ConnectivityTest, ConnectedFamilies) {
  EXPECT_TRUE(lb::graph::is_connected(lb::graph::make_path(10)));
  EXPECT_TRUE(lb::graph::is_connected(lb::graph::make_cycle(10)));
  EXPECT_TRUE(lb::graph::is_connected(lb::graph::make_star(10)));
  EXPECT_TRUE(lb::graph::is_connected(lb::graph::make_hypercube(4)));
}

TEST(ConnectivityTest, DisconnectedDetected) {
  GraphBuilder b(5);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_FALSE(lb::graph::is_connected(g));
  EXPECT_EQ(lb::graph::component_count(g), 3u);  // {0,1}, {2,3}, {4}
}

TEST(ConnectivityTest, SingleNodeIsConnected) {
  GraphBuilder b(1);
  EXPECT_TRUE(lb::graph::is_connected(b.build()));
}

TEST(BfsTest, PathDistances) {
  const Graph g = lb::graph::make_path(6);
  const auto dist = lb::graph::bfs_distances(g, 0);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsTest, UnreachableIsInfinite) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto dist = lb::graph::bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[2], std::numeric_limits<std::size_t>::max());
}

TEST(DiameterTest, KnownValues) {
  EXPECT_EQ(lb::graph::diameter(lb::graph::make_path(10)), 9u);
  EXPECT_EQ(lb::graph::diameter(lb::graph::make_cycle(10)), 5u);
  EXPECT_EQ(lb::graph::diameter(lb::graph::make_cycle(11)), 5u);
  EXPECT_EQ(lb::graph::diameter(lb::graph::make_complete(5)), 1u);
  EXPECT_EQ(lb::graph::diameter(lb::graph::make_star(8)), 2u);
  EXPECT_EQ(lb::graph::diameter(lb::graph::make_hypercube(6)), 6u);
}

TEST(DiameterTest, DisconnectedIsNullopt) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  EXPECT_FALSE(lb::graph::diameter(b.build()).has_value());
}

TEST(ExpansionTest, CompleteGraph) {
  // K_4: every subset S has |E(S, S̄)| = |S|·|S̄|; minimized at |S|=2:
  // 4/2 = 2.
  EXPECT_NEAR(lb::graph::edge_expansion_exact(lb::graph::make_complete(4)), 2.0,
              1e-12);
}

TEST(ExpansionTest, CycleIsTwoOverHalf) {
  // C_n: best cut is an arc of n/2 nodes with 2 crossing edges.
  const Graph g = lb::graph::make_cycle(8);
  EXPECT_NEAR(lb::graph::edge_expansion_exact(g), 2.0 / 4.0, 1e-12);
}

TEST(ExpansionTest, PathEndpointCut) {
  // P_n: cutting in the middle gives 1/(n/2).
  const Graph g = lb::graph::make_path(8);
  EXPECT_NEAR(lb::graph::edge_expansion_exact(g), 1.0 / 4.0, 1e-12);
}

TEST(ExpansionTest, BarbellBridgeDominates) {
  const Graph g = lb::graph::make_barbell(4);  // n=8, bridge cut = 1/4
  EXPECT_NEAR(lb::graph::edge_expansion_exact(g), 0.25, 1e-12);
}

TEST(DegreeHistogramTest, StarShape) {
  const auto hist = lb::graph::degree_histogram(lb::graph::make_star(6));
  ASSERT_EQ(hist.size(), 6u);  // degrees 0..5
  EXPECT_EQ(hist[1], 5u);
  EXPECT_EQ(hist[5], 1u);
  EXPECT_EQ(hist[2], 0u);
}

TEST(DegreeHistogramTest, RegularGraphSingleBucket) {
  const auto hist = lb::graph::degree_histogram(lb::graph::make_cycle(7));
  EXPECT_EQ(hist[2], 7u);
}

}  // namespace
