// Determinism tests for the fixed-chunk parallel reduction
// (lb/core/metrics.hpp) and the engine's fused metrics path: LoadSummary
// and whole-engine RunResults must be BIT-identical across thread-pool
// sizes 1, 2 and hardware_concurrency, for both scalar types, including
// on adversarial float orderings where naive parallel summation would
// diverge between schedules.
#include "lb/core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "lb/core/async.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/flow_ledger.hpp"
#include "lb/core/load.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/core/round_context.hpp"
#include "lb/core/sos.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/rng.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/workload/initial.hpp"

namespace {

using lb::core::EngineConfig;
using lb::core::LoadSummary;
using lb::core::MetricsPath;
using lb::core::RunResult;
using lb::core::SummaryMode;
using lb::util::ThreadPool;

template <class T>
bool bits_equal(T a, T b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

template <class T>
::testing::AssertionResult summaries_bits_equal(const LoadSummary<T>& a,
                                                const LoadSummary<T>& b) {
  if (!bits_equal(a.total, b.total)) {
    return ::testing::AssertionFailure() << "total " << a.total << " vs " << b.total;
  }
  if (!bits_equal(a.average, b.average)) {
    return ::testing::AssertionFailure()
           << "average " << a.average << " vs " << b.average;
  }
  if (!bits_equal(a.potential, b.potential)) {
    return ::testing::AssertionFailure()
           << "potential " << a.potential << " vs " << b.potential;
  }
  if (!bits_equal(a.discrepancy, b.discrepancy)) {
    return ::testing::AssertionFailure()
           << "discrepancy " << a.discrepancy << " vs " << b.discrepancy;
  }
  if (!bits_equal(a.min, b.min) || !bits_equal(a.max, b.max)) {
    return ::testing::AssertionFailure() << "extrema differ";
  }
  return ::testing::AssertionSuccess();
}

template <class T>
::testing::AssertionResult vectors_bits_equal(const std::vector<T>& a,
                                              const std::vector<T>& b) {
  if (a.size() != b.size()) return ::testing::AssertionFailure() << "size mismatch";
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!bits_equal(a[i], b[i])) {
        return ::testing::AssertionFailure()
               << "first divergence at index " << i << ": " << a[i] << " vs "
               << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<std::size_t> pool_sizes() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return {1, 2, hw};
}

// Values spanning ~600 orders of magnitude with sign flips: any reduction
// whose summation order depends on the schedule diverges immediately.
std::vector<double> adversarial_doubles(std::size_t n) {
  lb::util::Rng rng(1234);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mantissa = rng.next_double() * 2.0 - 1.0;
    const int exponent = static_cast<int>(rng.next_below(600)) - 300;
    v[i] = std::ldexp(mantissa, exponent);
  }
  return v;
}

TEST(MetricsParallelTest, SingleChunkBitEqualsSequentialSummarize) {
  // n <= kSummaryChunkWidth: the deterministic reduction must reproduce
  // the seed's sequential summarize() bit for bit, both scalar types.
  lb::util::Rng rng(7);
  const auto real = lb::workload::uniform_random<double>(1000, 1e6, rng);
  const auto tokens = lb::workload::uniform_random<std::int64_t>(1000, 1000000, rng);
  ThreadPool pool(4);
  EXPECT_TRUE(summaries_bits_equal(lb::core::summarize(real),
                                   lb::core::summarize_parallel(real, &pool)));
  EXPECT_TRUE(summaries_bits_equal(lb::core::summarize(tokens),
                                   lb::core::summarize_parallel(tokens, &pool)));
}

TEST(MetricsParallelTest, AdversarialOrderingBitIdenticalAcrossPools) {
  // Multi-chunk adversarial vector: every pool size (and the inline
  // nullptr path) must land on identical bits for every field.
  const auto v = adversarial_doubles(3 * lb::core::kSummaryChunkWidth + 17);
  const LoadSummary<double> reference = lb::core::summarize_parallel(v, nullptr);
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    EXPECT_TRUE(
        summaries_bits_equal(reference, lb::core::summarize_parallel(v, &pool)))
        << "pool size " << threads;
    EXPECT_TRUE(summaries_bits_equal(
        lb::core::summarize_deterministic(v, reference.average, nullptr,
                                          SummaryMode::kFull),
        lb::core::summarize_deterministic(v, reference.average, &pool,
                                          SummaryMode::kFull)))
        << "pool size " << threads;
  }
}

TEST(MetricsParallelTest, TokenTotalsExactBeyondDoublePrecision) {
  // Chunk totals accumulate in T, so int64 sums stay exact where a
  // double-accumulated reduction would round (2^53 + 1 is not
  // representable as a double).
  const std::int64_t big = (std::int64_t{1} << 53) + 1;
  std::vector<std::int64_t> v(2 * lb::core::kSummaryChunkWidth, 0);
  v[0] = big;
  v[v.size() - 1] = 1;
  ThreadPool pool(4);
  const auto s = lb::core::summarize_parallel(v, &pool);
  EXPECT_EQ(s.total, big + 1);
}

TEST(MetricsParallelTest, ModesAgreeOnSharedFields) {
  const auto v = adversarial_doubles(2 * lb::core::kSummaryChunkWidth + 5);
  ThreadPool pool(3);
  const double avg = lb::core::summarize_parallel(v, &pool).average;
  const auto full =
      lb::core::summarize_deterministic(v, avg, &pool, SummaryMode::kFull);
  const auto phi =
      lb::core::summarize_deterministic(v, avg, &pool, SummaryMode::kPotentialOnly);
  const auto extrema =
      lb::core::summarize_deterministic(v, avg, &pool, SummaryMode::kExtremaOnly);
  EXPECT_TRUE(bits_equal(full.potential, phi.potential));
  EXPECT_TRUE(bits_equal(full.discrepancy, extrema.discrepancy));
  EXPECT_TRUE(bits_equal(full.min, extrema.min));
  EXPECT_TRUE(bits_equal(full.max, extrema.max));
  EXPECT_TRUE(bits_equal(full.total, phi.total));
  EXPECT_TRUE(bits_equal(full.total, extrema.total));
}

TEST(MetricsParallelTest, FusedLedgerApplyMatchesStandaloneReduction) {
  // apply_with_summary == apply() followed by summarize_deterministic(),
  // loads and summary both, at every pool size.
  const auto g = lb::graph::make_torus2d(96, 96);  // 9216 nodes, 3 chunks
  lb::util::Rng rng(5);
  const auto start = lb::workload::uniform_random<double>(
      g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()), rng);
  const double avg = lb::core::summarize_parallel(start, nullptr).average;

  std::vector<double> flows;
  lb::core::DiffusionConfig cfg;
  lb::core::compute_edge_flows(
      g, start, flows, nullptr,
      [&g, &cfg](std::size_t, const lb::graph::Edge& e, double lu, double lv) {
        if (lu == lv) return 0.0;
        const double w = lb::core::diffusion_edge_weight(g, e.u, e.v, lu, lv, cfg);
        return lu > lv ? w : -w;
      });

  lb::core::FlowLedger ledger;
  ledger.rebuild(g);
  std::vector<double> oracle_load = start;
  ledger.apply(g, flows, oracle_load, nullptr);
  const LoadSummary<double> oracle_summary = lb::core::summarize_deterministic(
      oracle_load, avg, nullptr, SummaryMode::kFull);

  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    std::vector<double> load = start;
    LoadSummary<double> summary;
    std::vector<lb::core::SummaryPartial<double>> parts;
    ledger.apply_with_summary(g, flows, load, &pool, avg, SummaryMode::kFull,
                              parts, summary);
    EXPECT_TRUE(vectors_bits_equal(oracle_load, load)) << "pool " << threads;
    EXPECT_TRUE(summaries_bits_equal(oracle_summary, summary))
        << "pool " << threads;
  }
}

// --- Whole-engine determinism -------------------------------------------

template <class T, class MakeBalancer>
void expect_engine_identical_across_pools(const lb::graph::Graph& g,
                                          MakeBalancer&& make,
                                          std::size_t rounds) {
  lb::util::Rng rng(42);
  const auto start = lb::workload::uniform_random<T>(
      g.num_nodes(), static_cast<T>(1000 * g.num_nodes()), rng);

  struct Outcome {
    RunResult result;
    std::vector<T> load;
  };
  std::vector<Outcome> outcomes;
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    auto balancer = make();
    std::vector<T> load = start;
    EngineConfig cfg;
    cfg.max_rounds = rounds;
    cfg.target_potential = 0.0;
    cfg.stall_rounds = 0;
    cfg.seed = 9;
    cfg.pool = &pool;
    outcomes.push_back({lb::core::run_static(*balancer, g, load, cfg), load});
  }
  const Outcome& ref = outcomes.front();
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    ASSERT_TRUE(vectors_bits_equal(ref.load, o.load)) << "pool variant " << i;
    EXPECT_EQ(ref.result.rounds, o.result.rounds);
    EXPECT_TRUE(bits_equal(ref.result.initial_potential, o.result.initial_potential));
    EXPECT_TRUE(bits_equal(ref.result.final_potential, o.result.final_potential))
        << ref.result.final_potential << " vs " << o.result.final_potential;
    EXPECT_TRUE(bits_equal(ref.result.final_discrepancy, o.result.final_discrepancy));
    ASSERT_EQ(ref.result.trace.size(), o.result.trace.size());
    for (std::size_t r = 0; r < ref.result.trace.size(); ++r) {
      ASSERT_TRUE(bits_equal(ref.result.trace[r].potential, o.result.trace[r].potential))
          << "round " << r + 1;
      ASSERT_TRUE(
          bits_equal(ref.result.trace[r].discrepancy, o.result.trace[r].discrepancy))
          << "round " << r + 1;
      ASSERT_TRUE(
          bits_equal(ref.result.trace[r].transferred, o.result.trace[r].transferred))
          << "round " << r + 1;
    }
  }
}

TEST(EngineDeterminismTest, DiffusionContinuousBitIdenticalAcrossPools) {
  const auto g = lb::graph::make_torus2d(96, 96);
  expect_engine_identical_across_pools<double>(
      g, [] { return std::make_unique<lb::core::ContinuousDiffusion>(); }, 30);
}

TEST(EngineDeterminismTest, DiffusionDiscreteBitIdenticalAcrossPools) {
  const auto g = lb::graph::make_torus2d(96, 96);
  expect_engine_identical_across_pools<std::int64_t>(
      g, [] { return std::make_unique<lb::core::DiscreteDiffusion>(); }, 30);
}

TEST(EngineDeterminismTest, SecondOrderSchemeBitIdenticalAcrossPools) {
  const auto g = lb::graph::make_hypercube(13);  // 8192 nodes, 2 chunks
  expect_engine_identical_across_pools<double>(
      g, [] { return std::make_unique<lb::core::SecondOrderScheme>(1.5); }, 20);
}

TEST(EngineDeterminismTest, RandomPartnerBitIdenticalAcrossPools) {
  lb::util::Rng rng(42);
  const std::size_t n = 2 * lb::core::kSummaryChunkWidth + 100;
  // The balancer ignores the topology (uses_network() is false) but the
  // engine still requires a matching node count.
  const auto g = lb::graph::make_cycle(n);
  const auto start = lb::workload::uniform_random<double>(
      n, 1000.0 * static_cast<double>(n), rng);
  std::vector<std::vector<double>> loads;
  std::vector<RunResult> results;
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    lb::core::ContinuousRandomPartner alg;
    std::vector<double> load = start;
    EngineConfig cfg;
    cfg.max_rounds = 25;
    cfg.target_potential = 0.0;
    cfg.stall_rounds = 0;
    cfg.pool = &pool;
    results.push_back(lb::core::run_static(alg, g, load, cfg));
    loads.push_back(std::move(load));
  }
  for (std::size_t i = 1; i < loads.size(); ++i) {
    ASSERT_TRUE(vectors_bits_equal(loads.front(), loads[i]));
    EXPECT_TRUE(bits_equal(results.front().final_potential,
                           results[i].final_potential));
  }
}

TEST(EngineDeterminismTest, DimensionExchangeBitIdenticalAcrossPools) {
  // A cycle makes random-maximal matchings cover ~half the edge list, so
  // the ledger gather (and its fused summary) actually engages on the
  // multi-worker pools while the single-worker leg stays on the direct
  // sparse loop — the cross-path case the determinism contract must hold.
  const auto g = lb::graph::make_cycle(2 * lb::core::kSummaryChunkWidth + 64);
  expect_engine_identical_across_pools<std::int64_t>(
      g,
      [] {
        return std::make_unique<lb::core::DiscreteDimensionExchange>(
            lb::core::MatchingStrategy::kRandomMaximal);
      },
      25);
}

TEST(EngineDeterminismTest, AsyncDiffusionBitIdenticalAcrossPools) {
  const auto g = lb::graph::make_torus2d(72, 72);  // 5184 nodes, 2 chunks
  expect_engine_identical_across_pools<std::int64_t>(
      g, [] { return std::make_unique<lb::core::DiscreteAsyncDiffusion>(0.6); },
      25);
}

TEST(EngineDeterminismTest, FusedMatchesSequentialOracleForTokens) {
  // Tokens conserve totals exactly and n fits one chunk, so the fused
  // path (run-start average) and the sequential oracle (average
  // recomputed per round) must agree bit for bit, trace included.
  const auto g = lb::graph::make_torus2d(20, 20);
  lb::util::Rng rng(3);
  const auto start = lb::workload::uniform_random<std::int64_t>(
      g.num_nodes(), 400000, rng);
  auto run_with = [&](MetricsPath metrics) {
    lb::core::DiscreteDiffusion alg;
    std::vector<std::int64_t> load = start;
    EngineConfig cfg;
    cfg.max_rounds = 50;
    cfg.target_potential = 0.0;
    cfg.stall_rounds = 0;
    cfg.metrics = metrics;
    return lb::core::run_static(alg, g, load, cfg);
  };
  const RunResult fused = run_with(MetricsPath::kFusedParallel);
  const RunResult serial = run_with(MetricsPath::kSequential);
  EXPECT_TRUE(bits_equal(fused.initial_potential, serial.initial_potential));
  EXPECT_TRUE(bits_equal(fused.final_potential, serial.final_potential));
  EXPECT_TRUE(bits_equal(fused.final_discrepancy, serial.final_discrepancy));
  ASSERT_EQ(fused.trace.size(), serial.trace.size());
  for (std::size_t r = 0; r < fused.trace.size(); ++r) {
    ASSERT_TRUE(bits_equal(fused.trace[r].potential, serial.trace[r].potential));
    ASSERT_TRUE(
        bits_equal(fused.trace[r].discrepancy, serial.trace[r].discrepancy));
  }
}

TEST(EngineDeterminismTest, NoTraceRunMatchesTracedTerminals) {
  // record_trace = false skips per-round bookkeeping but the terminal
  // Φ/K must be bit-identical to the traced run's.
  const auto g = lb::graph::make_torus2d(96, 96);
  lb::util::Rng rng(11);
  const auto start = lb::workload::uniform_random<double>(
      g.num_nodes(), 1000.0 * static_cast<double>(g.num_nodes()), rng);
  auto run_with = [&](bool record_trace) {
    lb::core::ContinuousDiffusion alg;
    std::vector<double> load = start;
    EngineConfig cfg;
    cfg.max_rounds = 30;
    cfg.target_potential = 0.0;
    cfg.stall_rounds = 0;
    cfg.record_trace = record_trace;
    return lb::core::run_static(alg, g, load, cfg);
  };
  const RunResult traced = run_with(true);
  const RunResult bare = run_with(false);
  EXPECT_TRUE(bare.trace.empty());
  EXPECT_EQ(traced.rounds, bare.rounds);
  EXPECT_TRUE(bits_equal(traced.final_potential, bare.final_potential));
  EXPECT_TRUE(bits_equal(traced.final_discrepancy, bare.final_discrepancy));
}

TEST(EngineDeterminismTest, WallClockObservabilityPopulated) {
  const auto g = lb::graph::make_torus2d(32, 32);
  auto load = lb::workload::spike<double>(g.num_nodes(), 102400.0);
  lb::core::ContinuousDiffusion alg;
  EngineConfig cfg;
  cfg.max_rounds = 20;
  cfg.target_potential = 0.0;
  cfg.stall_rounds = 0;
  const RunResult r = lb::core::run_static(alg, g, load, cfg);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.step_seconds, 0.0);
  EXPECT_GE(r.metrics_seconds, 0.0);
  EXPECT_GE(r.total_seconds, r.step_seconds);
  ASSERT_EQ(r.trace.size(), 20u);
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    EXPECT_GT(r.trace[i].step_us, 0.0);
    EXPECT_GE(r.trace[i].metrics_us, 0.0);
  }
}

}  // namespace
