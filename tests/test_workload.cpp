// Tests for the workload generators (lb/workload/initial.hpp).
#include "lb/workload/initial.hpp"

#include <gtest/gtest.h>

#include "lb/core/load.hpp"

namespace {

TEST(SpikeTest, AllLoadOnNodeZero) {
  const auto load = lb::workload::spike<std::int64_t>(10, 500);
  EXPECT_EQ(load[0], 500);
  for (std::size_t i = 1; i < 10; ++i) EXPECT_EQ(load[i], 0);
}

TEST(SpikeTest, ContinuousVariant) {
  const auto load = lb::workload::spike<double>(4, 7.5);
  EXPECT_DOUBLE_EQ(load[0], 7.5);
  EXPECT_DOUBLE_EQ(lb::core::total_load(load), 7.5);
}

TEST(UniformRandomTest, DiscreteTotalIsExact) {
  lb::util::Rng rng(1);
  for (std::int64_t total : {0L, 100L, 99999L}) {
    const auto load = lb::workload::uniform_random<std::int64_t>(13, total, rng);
    EXPECT_EQ(lb::core::total_load(load), total);
    EXPECT_TRUE(lb::core::all_non_negative(load));
  }
}

TEST(UniformRandomTest, ContinuousTotalMatches) {
  lb::util::Rng rng(2);
  const auto load = lb::workload::uniform_random<double>(50, 1234.5, rng);
  EXPECT_NEAR(lb::core::total_load(load), 1234.5, 1e-9);
  EXPECT_TRUE(lb::core::all_non_negative(load));
}

TEST(UniformRandomTest, ValuesVary) {
  lb::util::Rng rng(3);
  const auto load = lb::workload::uniform_random<std::int64_t>(100, 100000, rng);
  EXPECT_GT(lb::core::discrepancy(load), 0.0);
}

TEST(BimodalTest, TotalExactAndSkewed) {
  lb::util::Rng rng(4);
  const auto load = lb::workload::bimodal<std::int64_t>(20, 10000, rng);
  EXPECT_EQ(lb::core::total_load(load), 10000);
  // Two load levels: heavy nodes carry ~9x the light ones.
  std::int64_t mx = *std::max_element(load.begin(), load.end());
  std::int64_t mn = *std::min_element(load.begin(), load.end());
  EXPECT_GT(mx, 5 * std::max<std::int64_t>(mn, 1));
}

TEST(RampTest, LinearInIndex) {
  const auto load = lb::workload::ramp<std::int64_t>(6);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(load[i], static_cast<std::int64_t>(i));
}

TEST(RampTest, ScaledContinuous) {
  const auto load = lb::workload::ramp<double>(4, 2.5);
  EXPECT_DOUBLE_EQ(load[3], 7.5);
}

TEST(ZipfTest, TotalExactAndHeavyTailed) {
  lb::util::Rng rng(5);
  const auto load = lb::workload::zipf<std::int64_t>(64, 64000, 1.0, rng);
  EXPECT_EQ(lb::core::total_load(load), 64000);
  // Heavy tail: the max holds far more than the average.
  EXPECT_GT(*std::max_element(load.begin(), load.end()), 3 * 1000);
}

TEST(BalancedTest, DiscreteSpreadsRemainder) {
  const auto load = lb::workload::balanced<std::int64_t>(4, 10);
  EXPECT_EQ(lb::core::total_load(load), 10);
  EXPECT_LE(lb::core::discrepancy(load), 1.0);
  // 10 = 3+3+2+2.
  EXPECT_EQ(load[0], 3);
  EXPECT_EQ(load[3], 2);
}

TEST(BalancedTest, ContinuousHasZeroPotential) {
  const auto load = lb::workload::balanced<double>(7, 42.0);
  EXPECT_NEAR(lb::core::potential(load), 0.0, 1e-18);
}

TEST(NamedWorkloadTest, AllNamesProduceExactTotals) {
  lb::util::Rng rng(6);
  for (const std::string& name : lb::workload::named_workloads()) {
    if (name == "ramp") continue;  // ramp ignores the total by design
    const auto load = lb::workload::make_named<std::int64_t>(name, 16, 4096, rng);
    EXPECT_EQ(lb::core::total_load(load), 4096) << name;
    EXPECT_TRUE(lb::core::all_non_negative(load)) << name;
  }
}

TEST(NamedWorkloadTest, UnknownNameDies) {
  lb::util::Rng rng(7);
  EXPECT_DEATH((void)lb::workload::make_named<double>("bogus", 4, 1.0, rng),
               "unknown workload");
}

TEST(UniformRandomTest, FractionalCapIsNotFloored) {
  // Regression: with cap = 2·total/n = 6.5, the old draw floored the cap
  // (next_below(6+1): uniform over {0..6}, mean 3.0 < total/n = 3.25) and
  // fix_total back-filled the ~0.27·n deficit with random increments,
  // pushing ~4% of nodes past the cap to 7+.  The rounded draw keeps the
  // mean at ~cap/2, so values above the cap stay rare (~0.6%: only
  // remainder tokens landing on capped nodes).  n is large enough that
  // the draw-sum's own variance (≈ sqrt(n)·1.9 tokens either way) stays
  // small against the pre-fix bias, keeping the two regimes separated.
  lb::util::Rng rng(99);
  std::size_t above_cap = 0, samples = 0;
  for (int rep = 0; rep < 500; ++rep) {
    const auto load = lb::workload::uniform_random<std::int64_t>(400, 1300, rng);
    ASSERT_EQ(lb::core::total_load(load), 1300);
    for (std::int64_t v : load) {
      ASSERT_GE(v, 0);
      if (v >= 7) ++above_cap;
      ++samples;
    }
  }
  EXPECT_LT(static_cast<double>(above_cap) / static_cast<double>(samples), 0.02);
}

TEST(UniformRandomTest, SurplusDrawsAreTrimmedExactly) {
  // Rounding can push the draw sum above the total (small caps round up
  // often); the trim path must land on the exact total without going
  // negative, across many realizations.
  lb::util::Rng rng(123);
  for (int rep = 0; rep < 500; ++rep) {
    const auto load = lb::workload::uniform_random<std::int64_t>(3, 2, rng);
    EXPECT_EQ(lb::core::total_load(load), 2);
    EXPECT_TRUE(lb::core::all_non_negative(load));
  }
}

TEST(UniformRandomTest, HugeCorrectionIsBulkDistributed) {
  // Regression for the O(deficit) fix_total loop: with two nodes and a
  // 4e9 total, a low draw leaves a deficit of ~1e9 tokens, which the old
  // loop paid for one RNG call at a time.  The bulk distribution makes
  // this instantaneous; the exact-total postcondition is unchanged.
  lb::util::Rng rng(7);
  for (int rep = 0; rep < 50; ++rep) {
    const std::int64_t total = 4'000'000'000LL;
    const auto load = lb::workload::uniform_random<std::int64_t>(2, total, rng);
    EXPECT_EQ(lb::core::total_load(load), total);
    EXPECT_TRUE(lb::core::all_non_negative(load));
  }
}

TEST(WorkloadDeterminismTest, SameSeedSameLoad) {
  lb::util::Rng a(42), b(42);
  EXPECT_EQ(lb::workload::uniform_random<std::int64_t>(32, 3200, a),
            lb::workload::uniform_random<std::int64_t>(32, 3200, b));
}

TEST(CheckerboardTest, AlternatesAndSumsExactly) {
  const auto load = lb::workload::checkerboard<std::int64_t>(8, 100);
  EXPECT_EQ(lb::core::total_load(load), 100);
  for (std::size_t i = 1; i < 8; i += 2) EXPECT_EQ(load[i], 0);
  for (std::size_t i = 0; i < 8; i += 2) EXPECT_GT(load[i], 0);
}

TEST(CheckerboardTest, OddNodeCount) {
  const auto load = lb::workload::checkerboard<std::int64_t>(5, 31);
  EXPECT_EQ(lb::core::total_load(load), 31);
  EXPECT_EQ(load[1], 0);
  EXPECT_EQ(load[3], 0);
}

TEST(CheckerboardTest, ContinuousVariant) {
  const auto load = lb::workload::checkerboard<double>(4, 10.0);
  EXPECT_DOUBLE_EQ(load[0], 5.0);
  EXPECT_DOUBLE_EQ(load[1], 0.0);
  EXPECT_DOUBLE_EQ(lb::core::total_load(load), 10.0);
}

TEST(TwoSpikesTest, SplitsBetweenEnds) {
  const auto load = lb::workload::two_spikes<std::int64_t>(10, 101);
  EXPECT_EQ(load[0], 51);
  EXPECT_EQ(load[5], 50);
  EXPECT_EQ(lb::core::total_load(load), 101);
  for (std::size_t i : {1u, 4u, 6u, 9u}) EXPECT_EQ(load[i], 0);
}

TEST(TwoSpikesTest, ContinuousHalves) {
  const auto load = lb::workload::two_spikes<double>(6, 12.0);
  EXPECT_DOUBLE_EQ(load[0], 6.0);
  EXPECT_DOUBLE_EQ(load[3], 6.0);
}

TEST(SpikeTest, PotentialIsWorstCaseForGivenTotal) {
  // Among non-negative distributions with a fixed total on n nodes, the
  // spike maximizes Φ; verify against a few alternatives.
  lb::util::Rng rng(8);
  const std::int64_t total = 1000;
  const std::size_t n = 10;
  const double spike_phi = lb::core::potential(lb::workload::spike<std::int64_t>(n, total));
  EXPECT_GE(spike_phi,
            lb::core::potential(lb::workload::uniform_random<std::int64_t>(n, total, rng)));
  EXPECT_GE(spike_phi,
            lb::core::potential(lb::workload::bimodal<std::int64_t>(n, total, rng)));
  EXPECT_GE(spike_phi,
            lb::core::potential(lb::workload::zipf<std::int64_t>(n, total, 1.0, rng)));
}

}  // namespace
