// Tests for the open-system traffic layer (DESIGN.md §11).
//
// Four contracts.  (1) Stream determinism: delta_at is pure in (spec,
// seed, round) — random access, reset()/replay and a second stream with
// the same coordinates all yield the same bytes, and every delta obeys
// the sorted/unique/positive shape the engines rely on.  (2) Closed-
// system equivalence: a null stream — or one that never emits traffic —
// leaves the deterministic result surface bit-identical to a run with no
// stream attached, across every balancer family.  (3) Open-system
// substrate independence: with live Poisson/hotspot traffic the sharded
// engine is bit-identical to the shared-memory oracle over pools
// {1, 2, hw} × K {1, 2, 4}, with the invariant layer armed.  (4) The
// ledgered conservation check catches the two canonical bookkeeping
// bugs: an arrival credited to the ledger but never applied, and a
// departure applied twice.
#include "lb/workload/stream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lb/check/invariants.hpp"
#include "lb/core/async.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/fos.hpp"
#include "lb/core/heterogeneous.hpp"
#include "lb/core/ops.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/core/sos.hpp"
#include "lb/core/steady_state.hpp"
#include "lb/graph/generators.hpp"
#include "lb/shard/ownership.hpp"
#include "lb/shard/sharded_engine.hpp"
#include "lb/util/rng.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/workload/initial.hpp"

namespace {

using lb::core::EngineConfig;
using lb::core::RunResult;
using lb::graph::Graph;
using lb::workload::AppliedStream;
using lb::workload::Stream;
using lb::workload::StreamDelta;
using lb::workload::StreamKind;
using lb::workload::StreamSpec;

template <class T>
StreamDelta<T> copy_delta(const StreamDelta<T>& d) {
  return {d.arrivals, d.departures};
}

template <class T>
void expect_same_delta(const StreamDelta<T>& a, const StreamDelta<T>& b,
                       std::size_t round) {
  EXPECT_EQ(a.arrivals, b.arrivals) << "round " << round;
  EXPECT_EQ(a.departures, b.departures) << "round " << round;
}

std::vector<StreamSpec> live_specs() {
  StreamSpec poisson;
  poisson.kind = StreamKind::kPoisson;
  StreamSpec bursty;
  bursty.kind = StreamKind::kBursty;
  bursty.burst_prob = 0.3;  // make bursts likely inside short test runs
  StreamSpec diurnal;
  diurnal.kind = StreamKind::kDiurnal;
  diurnal.period = 16;
  StreamSpec hotspot;
  hotspot.kind = StreamKind::kHotspot;
  return {poisson, bursty, diurnal, hotspot};
}

// ------------------------------------------------------------- determinism

TEST(StreamDeterminism, DeltaAtIsPureInSpecSeedRound) {
  for (const StreamSpec& spec : live_specs()) {
    SCOPED_TRACE(spec.label());
    auto forward = lb::workload::make_stream<double>(spec, 64, 2024);
    auto random_access = lb::workload::make_stream<double>(spec, 64, 2024);
    ASSERT_NE(forward, nullptr);
    // Walk one stream forward and the other backwards: with per-round
    // derivation the access order cannot matter.
    std::vector<StreamDelta<double>> forward_deltas;
    for (std::size_t r = 1; r <= 32; ++r) {
      forward_deltas.push_back(copy_delta(forward->delta_at(r)));
    }
    for (std::size_t r = 32; r >= 1; --r) {
      expect_same_delta(forward_deltas[r - 1], random_access->delta_at(r), r);
    }
  }
}

TEST(StreamDeterminism, ResetReplaysByteIdenticalDeltas) {
  for (const StreamSpec& spec : live_specs()) {
    SCOPED_TRACE(spec.label());
    auto stream = lb::workload::make_stream<std::int64_t>(spec, 48, 7);
    std::vector<StreamDelta<std::int64_t>> first;
    for (std::size_t r = 1; r <= 20; ++r) {
      first.push_back(copy_delta(stream->delta_at(r)));
    }
    stream->reset();
    for (std::size_t r = 1; r <= 20; ++r) {
      expect_same_delta(first[r - 1], stream->delta_at(r), r);
    }
  }
}

TEST(StreamDeterminism, DeltasAreSortedUniquePositiveAndInRange) {
  const std::size_t n = 40;
  for (const StreamSpec& spec : live_specs()) {
    SCOPED_TRACE(spec.label());
    auto stream = lb::workload::make_stream<std::int64_t>(spec, n, 99);
    for (std::size_t r = 1; r <= 64; ++r) {
      const StreamDelta<std::int64_t>& d = stream->delta_at(r);
      for (const auto* list : {&d.arrivals, &d.departures}) {
        for (std::size_t i = 0; i < list->size(); ++i) {
          EXPECT_LT((*list)[i].first, n) << "round " << r;
          EXPECT_GT((*list)[i].second, 0) << "round " << r;
          if (i > 0) {
            EXPECT_LT((*list)[i - 1].first, (*list)[i].first)
                << "round " << r << " entry " << i;
          }
        }
      }
    }
  }
}

TEST(StreamDeterminism, SeedsAndRoundsDecorrelate) {
  // Different seeds must give different traffic, and the per-round seed
  // chain must not collide between adjacent rounds.
  EXPECT_NE(lb::workload::stream_round_seed(1, 1),
            lb::workload::stream_round_seed(1, 2));
  EXPECT_NE(lb::workload::stream_round_seed(1, 1),
            lb::workload::stream_round_seed(2, 1));
  StreamSpec spec;
  spec.kind = StreamKind::kPoisson;
  auto a = lb::workload::make_stream<double>(spec, 64, 1);
  auto b = lb::workload::make_stream<double>(spec, 64, 2);
  bool any_difference = false;
  for (std::size_t r = 1; r <= 16 && !any_difference; ++r) {
    any_difference = a->delta_at(r).arrivals != b->delta_at(r).arrivals;
  }
  EXPECT_TRUE(any_difference);
}

TEST(StreamDeterminism, HotspotArrivalsConcentrateOnClosedFormNode) {
  StreamSpec spec;
  spec.kind = StreamKind::kHotspot;
  spec.rotate_period = 4;
  spec.stride = 7;
  const std::size_t n = 30;
  auto stream = lb::workload::make_stream<std::int64_t>(spec, n, 5);
  for (std::size_t r = 1; r <= 40; ++r) {
    const std::size_t hot = ((r / 4) * 7) % n;
    for (const auto& [node, amount] : stream->delta_at(r).arrivals) {
      EXPECT_EQ(node, static_cast<lb::graph::NodeId>(hot)) << "round " << r;
    }
  }
}

// ------------------------------------------------------------- application

TEST(StreamApply, TallyMatchesApplyAndClampsAtZero) {
  // One node of each interesting shape: plain arrival, plain departure,
  // arrival-then-overdraw (clamped to arrival + stock), dry overdraw.
  std::vector<std::int64_t> load{5, 0, 3, 0};
  StreamDelta<std::int64_t> delta;
  delta.arrivals = {{0, 2}, {1, 2}};
  delta.departures = {{1, 5}, {2, 1}, {3, 4}};
  const AppliedStream<std::int64_t> applied =
      lb::workload::tally_stream_delta(delta, load);
  EXPECT_EQ(applied.arrivals, 4);
  // Node 1: arrival of 2 credited before the clamp, so the departure
  // takes 2, not 0.  Node 3 is dry: takes nothing.
  EXPECT_EQ(applied.departures, 2 + 1 + 0);
  EXPECT_EQ(applied.net(), 1);

  std::int64_t before = 0;
  for (std::int64_t v : load) before += v;
  lb::workload::apply_stream_delta(delta, load);
  std::int64_t after = 0;
  for (std::int64_t v : load) {
    EXPECT_GE(v, 0);
    after += v;
  }
  EXPECT_EQ(after, before + applied.net());
  EXPECT_EQ(load, (std::vector<std::int64_t>{7, 0, 2, 0}));
}

TEST(StreamApply, OwnedAppliesComposeToTheWholeVectorApply) {
  const Graph g = lb::graph::make_torus2d(8, 8);
  StreamSpec spec;
  spec.kind = StreamKind::kBursty;
  spec.burst_prob = 0.5;
  auto stream = lb::workload::make_stream<double>(spec, g.num_nodes(), 31);
  lb::util::Rng wrng(3);
  const auto load0 =
      lb::workload::uniform_random<double>(g.num_nodes(), 640.0, wrng);
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const auto map = lb::shard::OwnershipMap::build(
        g, k, lb::shard::PartitionPolicy::kGreedyEdgeCut);
    std::vector<double> whole = load0;
    std::vector<double> sharded = load0;
    for (std::size_t r = 1; r <= 12; ++r) {
      const StreamDelta<double>& d = stream->delta_at(r);
      lb::workload::apply_stream_delta(d, whole);
      for (std::size_t dom = 0; dom < k; ++dom) {
        lb::workload::apply_stream_delta_owned(d, sharded, map.owners(),
                                               static_cast<std::uint32_t>(dom));
      }
      ASSERT_EQ(whole, sharded) << "K=" << k << " round " << r;
    }
  }
}

// -------------------------------------------------- closed-system identity

/// A live Stream<T> that never emits traffic: attaching it exercises the
/// engine's open-system plumbing with a net ledger of zero.
template <class T>
class SilentStream final : public Stream<T> {
 public:
  void reset() override {}
  std::string name() const override { return "silent"; }
  const StreamDelta<T>& delta_at(std::size_t) override { return empty_; }

 private:
  StreamDelta<T> empty_;
};

/// The deterministic numeric surface two runs must share bit for bit.
void expect_same_numbers(const RunResult& a, const RunResult& b,
                         const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.reached_target, b.reached_target);
  EXPECT_EQ(a.stalled, b.stalled);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.initial_potential, b.initial_potential);
  EXPECT_EQ(a.final_potential, b.final_potential);
  EXPECT_EQ(a.final_discrepancy, b.final_discrepancy);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].potential, b.trace[i].potential) << i;
    EXPECT_EQ(a.trace[i].discrepancy, b.trace[i].discrepancy) << i;
    EXPECT_EQ(a.trace[i].transferred, b.trace[i].transferred) << i;
    EXPECT_EQ(a.trace[i].active_edges, b.trace[i].active_edges) << i;
  }
}

TEST(StreamZeroEquivalence, MakeStreamNoneIsTheClosedSystem) {
  StreamSpec spec;  // kind defaults to kNone
  EXPECT_EQ(lb::workload::make_stream<double>(spec, 64, 1), nullptr);
  EXPECT_EQ(lb::workload::make_stream<std::int64_t>(spec, 64, 1), nullptr);
}

/// Per-node speeds for the heterogeneous balancer: alternating 1×/4×.
std::vector<double> hetero_speeds(std::size_t n) {
  std::vector<double> speed(n, 1.0);
  for (std::size_t i = 1; i < n; i += 2) speed[i] = 4.0;
  return speed;
}

template <class T>
struct BalancerCase {
  std::string name;
  std::function<std::unique_ptr<lb::core::Balancer<T>>()> make;
};

template <class T>
void run_zero_stream_matrix(const std::vector<BalancerCase<T>>& cases,
                            const std::vector<T>& load0, const Graph& g) {
  EngineConfig cfg;
  cfg.max_rounds = 40;
  cfg.target_potential = 0.0;
  cfg.record_trace = true;
  cfg.check_invariants = true;
  for (const BalancerCase<T>& c : cases) {
    auto detached_alg = c.make();
    std::vector<T> detached_load = load0;
    const RunResult detached =
        lb::core::run_static(*detached_alg, g, detached_load, cfg);
    EXPECT_FALSE(detached.open_system);
    EXPECT_FALSE(detached.steady.valid);

    SilentStream<T> silent;
    EngineConfig open_cfg = cfg;
    open_cfg.stream = &silent;
    auto attached_alg = c.make();
    std::vector<T> attached_load = load0;
    const RunResult attached =
        lb::core::run_static(*attached_alg, g, attached_load, open_cfg);
    EXPECT_TRUE(attached.open_system);
    EXPECT_EQ(attached.stream_arrivals, 0.0);
    EXPECT_EQ(attached.stream_departures, 0.0);
    expect_same_numbers(detached, attached, c.name);
    EXPECT_EQ(detached_load, attached_load) << c.name;
  }
}

TEST(StreamZeroEquivalence, SilentStreamMatchesDetachedRunEveryBalancer) {
  const Graph g = lb::graph::make_torus2d(8, 8);
  lb::util::Rng wrng(11);
  const auto cont0 = lb::workload::bimodal<double>(64, 6400.0, wrng);
  using lb::core::MatchingStrategy;
  // All eight balancer families on the continuous scalar...
  run_zero_stream_matrix<double>(
      {
          {"diffusion", [] { return lb::core::make_diffusion_continuous(); }},
          {"fos", [] { return lb::core::make_fos_continuous(); }},
          {"sos", [] { return lb::core::make_sos(); }},
          {"ops", [] { return lb::core::make_ops(); }},
          {"dimexch",
           [] {
             return lb::core::make_dimension_exchange_continuous(
                 MatchingStrategy::kGhoshMuthukrishnan);
           }},
          {"randpartner",
           [] { return lb::core::make_random_partner_continuous(); }},
          {"async", [] { return lb::core::make_async_continuous(0.5); }},
          {"hetero",
           [] {
             return lb::core::make_heterogeneous_continuous(hetero_speeds(64));
           }},
      },
      cont0, g);
  // ...and the token-conserving families on the discrete scalar.
  const auto disc0 = lb::workload::uniform_random<std::int64_t>(64, 64000, wrng);
  run_zero_stream_matrix<std::int64_t>(
      {
          {"diffusion", [] { return lb::core::make_diffusion_discrete(); }},
          {"dimexch",
           [] {
             return lb::core::make_dimension_exchange_discrete(
                 MatchingStrategy::kRandomMaximal);
           }},
          {"randpartner",
           [] { return lb::core::make_random_partner_discrete(); }},
          {"async", [] { return lb::core::make_async_discrete(0.5); }},
          {"hetero",
           [] {
             return lb::core::make_heterogeneous_discrete(hetero_speeds(64));
           }},
      },
      disc0, g);
}

// --------------------------------------------- open-system shard identity

template <class T>
void run_open_oracle_matrix(
    const std::function<std::unique_ptr<lb::core::Balancer<T>>()>& make,
    const StreamSpec& spec, const std::vector<T>& load0, const Graph& g,
    const std::string& label) {
  EngineConfig cfg;
  cfg.max_rounds = 30;
  cfg.target_potential = 0.0;
  cfg.record_trace = true;
  cfg.check_invariants = true;  // ledgered conservation armed on every leg
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    lb::util::ThreadPool pool(threads);
    cfg.pool = &pool;

    auto oracle_stream = lb::workload::make_stream<T>(spec, g.num_nodes(), 77);
    cfg.stream = oracle_stream.get();
    auto oracle_alg = make();
    std::vector<T> oracle_load = load0;
    const RunResult oracle =
        lb::core::run_static(*oracle_alg, g, oracle_load, cfg);
    EXPECT_TRUE(oracle.open_system);
    EXPECT_GT(oracle.stream_arrivals, 0.0);

    for (const std::size_t k :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      lb::shard::ShardConfig shard;
      shard.domains = k;
      auto stream = lb::workload::make_stream<T>(spec, g.num_nodes(), 77);
      EngineConfig leg_cfg = cfg;
      leg_cfg.stream = stream.get();
      auto alg = make();
      std::vector<T> load = load0;
      const RunResult run = lb::shard::run_static(*alg, g, load, leg_cfg, shard);
      const std::string leg = label + "/pool" + std::to_string(pool.size()) +
                              "/k" + std::to_string(k);
      expect_same_numbers(oracle, run, leg);
      SCOPED_TRACE(leg);
      EXPECT_EQ(oracle.stream_arrivals, run.stream_arrivals);
      EXPECT_EQ(oracle.stream_departures, run.stream_departures);
      ASSERT_EQ(oracle.trace.size(), run.trace.size());
      for (std::size_t i = 0; i < oracle.trace.size(); ++i) {
        EXPECT_EQ(oracle.trace[i].arrivals, run.trace[i].arrivals) << i;
        EXPECT_EQ(oracle.trace[i].departures, run.trace[i].departures) << i;
        EXPECT_EQ(oracle.trace[i].net_load, run.trace[i].net_load) << i;
      }
      ASSERT_EQ(load.size(), oracle_load.size());
      for (std::size_t i = 0; i < load.size(); ++i) {
        EXPECT_EQ(load[i], oracle_load[i]) << "node " << i;
      }
    }
  }
}

TEST(StreamShardOracle, PoissonContinuousBitIdenticalAcrossPoolsAndK) {
  const Graph g = lb::graph::make_torus2d(8, 8);
  StreamSpec spec;
  spec.kind = StreamKind::kPoisson;
  spec.quantum = 25.0;
  lb::util::Rng wrng(23);
  const auto load0 =
      lb::workload::uniform_random<double>(g.num_nodes(), 6400.0, wrng);
  run_open_oracle_matrix<double>(
      [] { return lb::core::make_diffusion_continuous(); }, spec, load0, g,
      "poisson/diffusion");
}

TEST(StreamShardOracle, HotspotDiscreteBitIdenticalAcrossPoolsAndK) {
  const Graph g = lb::graph::make_hypercube(6);
  StreamSpec spec;
  spec.kind = StreamKind::kHotspot;
  spec.quantum = 50.0;
  const auto load0 = lb::workload::spike<std::int64_t>(g.num_nodes(), 64000);
  run_open_oracle_matrix<std::int64_t>(
      [] { return lb::core::make_diffusion_discrete(); }, spec, load0, g,
      "hotspot/diffusion-disc");
}

TEST(StreamShardOracle, BurstyDiscreteBitIdenticalAcrossPoolsAndK) {
  const Graph g = lb::graph::make_torus2d(8, 8);
  StreamSpec spec;
  spec.kind = StreamKind::kBursty;
  spec.burst_prob = 0.4;
  const auto load0 = lb::workload::two_spikes<std::int64_t>(64, 64000);
  using lb::core::MatchingStrategy;
  run_open_oracle_matrix<std::int64_t>(
      [] {
        return lb::core::make_dimension_exchange_discrete(
            MatchingStrategy::kRandomMaximal);
      },
      spec, load0, g, "bursty/dimexch-disc");
}

// ------------------------------------------------- ledgered conservation

TEST(StreamConservation, LeakedArrivalIsCaughtDiscrete) {
  // The ledger credits an arrival of 3 that was never applied to the
  // load vector: the books no longer balance, 0 ULP.
  std::vector<std::int64_t> load{5, 5, 5, 5};
  const auto baseline = lb::check::conservation_baseline(load);
  EXPECT_THROW(lb::check::check_conservation(baseline, load, 1, 4, "test",
                                             std::int64_t{3}),
               lb::check::InvariantViolation);
  load[0] += 3;  // actually apply it and the ledgered check passes
  EXPECT_NO_THROW(lb::check::check_conservation(baseline, load, 1, 4, "test",
                                                std::int64_t{3}));
}

TEST(StreamConservation, DoubleAppliedDepartureIsCaughtDiscrete) {
  std::vector<std::int64_t> load{8, 8, 8, 8};
  const auto baseline = lb::check::conservation_baseline(load);
  load[1] -= 2;  // the single legitimate departure
  EXPECT_NO_THROW(lb::check::check_conservation(baseline, load, 1, 4, "test",
                                                std::int64_t{-2}));
  load[1] -= 2;  // ...applied a second time, with the same ledger entry
  EXPECT_THROW(lb::check::check_conservation(baseline, load, 1, 4, "test",
                                             std::int64_t{-2}),
               lb::check::InvariantViolation);
}

TEST(StreamConservation, LedgeredChecksTrackContinuousNet) {
  std::vector<double> load{100.0, 100.0, 100.0, 100.0};
  const auto baseline = lb::check::conservation_baseline(load);
  load[2] += 37.5;
  EXPECT_NO_THROW(
      lb::check::check_conservation(baseline, load, 1, 4, "test", 37.5));
  // Leaked arrival (ledger says 75, only 37.5 landed) is far beyond the
  // eps-scaled drift bound.
  EXPECT_THROW(
      lb::check::check_conservation(baseline, load, 1, 4, "test", 75.0),
      lb::check::InvariantViolation);
}

TEST(StreamConservation, ZeroNetLedgerIsTheClosedSystemCheck) {
  std::vector<std::int64_t> load{4, 4, 4, 4};
  const auto baseline = lb::check::conservation_baseline(load);
  EXPECT_NO_THROW(lb::check::check_conservation(baseline, load, 1, 4, "test",
                                                std::int64_t{0}));
  EXPECT_NO_THROW(lb::check::check_conservation(baseline, load, 1, 4, "test"));
}

// ----------------------------------------------------------- steady state

TEST(StreamSteadyState, ReducerShapesMatchASyntheticBurst) {
  lb::core::metrics::SteadyState steady;
  // Quiet rounds, a burst at round 3, then Φ decays back under
  // settle_ratio × pre-burst by round 6 (default settle_ratio = 2).
  const double phis[] = {10.0, 10.0, 400.0, 100.0, 40.0, 15.0};
  const double arr[] = {1.0, 1.0, 50.0, 1.0, 1.0, 1.0};
  for (std::size_t r = 1; r <= 6; ++r) {
    steady.observe(r, phis[r - 1], 2.0, 12.0, arr[r - 1], 0.5);
  }
  const auto rep = steady.finalize();
  EXPECT_TRUE(rep.valid);
  EXPECT_EQ(rep.rounds, 6u);
  EXPECT_EQ(rep.burst_round, 3u);
  EXPECT_EQ(rep.burst_arrivals, 50.0);
  EXPECT_EQ(rep.pre_burst_potential, 10.0);
  EXPECT_TRUE(rep.settled);
  // Φ first drops to <= 2 × 10 at round 6: three rounds after the burst.
  EXPECT_EQ(rep.settling_rounds, 3u);
  EXPECT_EQ(rep.total_arrivals, 55.0);
  EXPECT_EQ(rep.total_departures, 3.0);
  EXPECT_EQ(rep.peak_max, 12.0);
  EXPECT_LE(rep.peak_p50, rep.peak_p90);
  EXPECT_LE(rep.peak_p90, rep.peak_p99);
  EXPECT_LE(rep.peak_p99, rep.peak_max);
}

TEST(StreamSteadyState, CensoredSettlingIsFlagged) {
  lb::core::metrics::SteadyState steady;
  steady.observe(1, 10.0, 1.0, 5.0, 0.0, 0.0);
  steady.observe(2, 500.0, 9.0, 50.0, 80.0, 0.0);
  steady.observe(3, 400.0, 8.0, 45.0, 0.0, 0.0);  // never re-settles
  const auto rep = steady.finalize();
  EXPECT_TRUE(rep.valid);
  EXPECT_EQ(rep.burst_round, 2u);
  EXPECT_FALSE(rep.settled);
  EXPECT_EQ(rep.settling_rounds, 2u);  // censored at run end
}

TEST(StreamSteadyState, EngineRunPopulatesTheReport) {
  const Graph g = lb::graph::make_torus2d(8, 8);
  StreamSpec spec;
  spec.kind = StreamKind::kBursty;
  spec.burst_prob = 0.5;
  spec.quantum = 20.0;
  auto stream = lb::workload::make_stream<double>(spec, g.num_nodes(), 17);
  EngineConfig cfg;
  cfg.max_rounds = 40;
  cfg.target_potential = 0.0;
  cfg.record_trace = false;  // the reducer must not depend on the trace
  cfg.stream = stream.get();
  auto alg = lb::core::make_diffusion_continuous();
  lb::util::Rng wrng(29);
  auto load = lb::workload::uniform_random<double>(g.num_nodes(), 6400.0, wrng);
  const RunResult r = lb::core::run_static(*alg, g, load, cfg);
  EXPECT_TRUE(r.open_system);
  ASSERT_TRUE(r.steady.valid);
  EXPECT_EQ(r.steady.rounds, r.rounds);
  EXPECT_EQ(r.steady.total_arrivals, r.stream_arrivals);
  EXPECT_EQ(r.steady.total_departures, r.stream_departures);
  EXPECT_GE(r.steady.burst_round, 1u);
  EXPECT_LE(r.steady.burst_round, r.rounds);
  EXPECT_GE(r.steady.fraction_above_epsilon, 0.0);
  EXPECT_LE(r.steady.fraction_above_epsilon, 1.0);
  EXPECT_LE(r.steady.peak_p50, r.steady.peak_max);
}

// ------------------------------------------------------------- satellites

TEST(StreamSatellites, ClosedRunTraceCsvKeepsItsColumns) {
  const Graph g = lb::graph::make_torus2d(4, 4);
  auto load = lb::workload::spike<double>(16, 160.0);
  EngineConfig cfg;
  cfg.max_rounds = 5;
  cfg.target_potential = 0.0;
  auto alg = lb::core::make_diffusion_continuous();
  const RunResult closed = lb::core::run_static(*alg, g, load, cfg);
  const std::string csv = closed.trace.to_csv();
  EXPECT_EQ(csv.find("arrivals"), std::string::npos);

  StreamSpec spec;
  spec.kind = StreamKind::kPoisson;
  auto stream = lb::workload::make_stream<double>(spec, 16, 3);
  cfg.stream = stream.get();
  auto alg2 = lb::core::make_diffusion_continuous();
  auto load2 = lb::workload::spike<double>(16, 160.0);
  const RunResult open = lb::core::run_static(*alg2, g, load2, cfg);
  const std::string open_csv = open.trace.to_csv();
  EXPECT_NE(open_csv.find("arrivals,departures,net_load"), std::string::npos);
}

TEST(StreamSatellites, FixTotalDrawOrderContract) {
  // Pin the draw budget documented in initial.hpp: uniform_random draws
  // exactly one next_double(0, cap) per node, the bulk total-correction
  // phase draws NOTHING, and the sub-n remainder places one
  // next_below(n) per leftover token (re-drawing when a removal lands on
  // an empty node).  A replica that replays that exact sequence must
  // produce the same vector AND leave its generator in the same state.
  const std::size_t n = 37;
  const std::int64_t total = 12345;  // far from n·mean, exercises the bulk phase
  lb::util::Rng rng(4242);
  const auto load = lb::workload::uniform_random<std::int64_t>(n, total, rng);

  lb::util::Rng replica(4242);
  std::vector<std::int64_t> mine(n);
  const double cap = 2.0 * static_cast<double>(total) / static_cast<double>(n);
  for (std::int64_t& v : mine) {
    v = std::llround(replica.next_double(0.0, cap));
  }
  std::int64_t sum = 0;
  for (std::int64_t v : mine) sum += v;
  if (sum < total && total - sum >= static_cast<std::int64_t>(n)) {
    const std::int64_t share =
        (total - sum) / static_cast<std::int64_t>(n);  // bulk add: no draws
    for (std::int64_t& v : mine) v += share;
    sum += share * static_cast<std::int64_t>(n);
  }
  while (sum > total) {  // bulk cut: no draws
    const std::int64_t share = (sum - total) / static_cast<std::int64_t>(n);
    if (share == 0) break;
    for (std::int64_t& v : mine) {
      const std::int64_t cut = std::min(v, share);
      v -= cut;
      sum -= cut;
    }
  }
  while (sum < total) {  // remainder: one draw per token
    ++mine[static_cast<std::size_t>(replica.next_below(n))];
    ++sum;
  }
  while (sum > total) {  // removal: re-draw on empty nodes
    const std::size_t i = static_cast<std::size_t>(replica.next_below(n));
    if (mine[i] > 0) {
      --mine[i];
      --sum;
    }
  }
  EXPECT_EQ(load, mine);
  // The generators are in lockstep afterwards — the strongest statement
  // that not one extra or missing draw hid inside the generator.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rng.next_u64(), replica.next_u64()) << "post-draw " << i;
  }
}

}  // namespace
