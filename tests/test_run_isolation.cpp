// Run-isolation and campaign-equivalence suite.
//
// The contract (DESIGN.md §6): Engine::run calls Balancer::on_run_begin()
// so a REUSED balancer produces runs bit-identical to a FRESH instance's —
// for all eight balancers, both scalar types, every pool size.  Before
// the protocol existed, SecondOrderScheme carried prev_/have_prev_ and
// OptimalPolynomialScheme carried position_ across runs whenever the
// graph revision did not change, silently corrupting the second run;
// these tests fail on that behaviour.
//
// The campaign half: CampaignRunner's cached mode (shared graph bases,
// spectral profiles, reused balancers and arenas) must be bit-identical
// per cell to the fresh-everything oracle and to the cold mode, at every
// pool size.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include "lb/core/async.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/fos.hpp"
#include "lb/core/heterogeneous.hpp"
#include "lb/core/ops.hpp"
#include "lb/core/random_partner.hpp"
#include "lb/core/round_context.hpp"
#include "lb/core/sos.hpp"
#include "lb/exp/campaign.hpp"
#include "lb/exp/plan.hpp"
#include "lb/graph/dynamic.hpp"
#include "lb/graph/generators.hpp"
#include "lb/util/thread_pool.hpp"
#include "lb/workload/initial.hpp"

namespace {

using lb::core::EngineConfig;
using lb::core::RunResult;
using lb::util::ThreadPool;

template <class T>
bool bits_equal(T a, T b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

::testing::AssertionResult runs_bits_equal(const RunResult& a, const RunResult& b) {
  if (a.rounds != b.rounds) {
    return ::testing::AssertionFailure()
           << "rounds " << a.rounds << " vs " << b.rounds;
  }
  if (a.reached_target != b.reached_target || a.stalled != b.stalled) {
    return ::testing::AssertionFailure() << "termination flags differ";
  }
  if (!bits_equal(a.initial_potential, b.initial_potential) ||
      !bits_equal(a.final_potential, b.final_potential) ||
      !bits_equal(a.final_discrepancy, b.final_discrepancy)) {
    return ::testing::AssertionFailure()
           << "potentials differ: " << a.final_potential << " vs "
           << b.final_potential;
  }
  if (a.trace.size() != b.trace.size()) {
    return ::testing::AssertionFailure() << "trace length differs";
  }
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    if (!bits_equal(a.trace[i].potential, b.trace[i].potential) ||
        !bits_equal(a.trace[i].transferred, b.trace[i].transferred) ||
        a.trace[i].active_edges != b.trace[i].active_edges) {
      return ::testing::AssertionFailure() << "trace diverges at round " << i + 1;
    }
  }
  return ::testing::AssertionSuccess();
}

template <class T>
::testing::AssertionResult loads_bits_equal(const std::vector<T>& a,
                                            const std::vector<T>& b) {
  if (a.size() != b.size()) return ::testing::AssertionFailure() << "size mismatch";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i], b[i])) {
      return ::testing::AssertionFailure()
             << "loads diverge at node " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<std::size_t> pool_sizes() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return {1, 2, hw};
}

std::vector<double> test_speeds(std::size_t n) {
  std::vector<double> speed(n, 1.0);
  for (std::size_t i = 1; i < n; i += 2) speed[i] = 4.0;
  return speed;
}

/// All eight balancers, by stable index (continuous-only kinds return
/// nullptr for Tokens and are skipped).
constexpr const char* kBalancerNames[] = {
    "diffusion", "dimexch", "randpartner", "async", "hetero", "fos", "sos", "ops"};

template <class T>
std::unique_ptr<lb::core::Balancer<T>> make_test_balancer(std::size_t kind,
                                                          std::size_t n) {
  switch (kind) {
    case 0:
      return std::make_unique<lb::core::DiffusionBalancer<T>>();
    case 1:
      return std::make_unique<lb::core::DimensionExchange<T>>();
    case 2:
      return std::make_unique<lb::core::RandomPartnerBalancer<T>>();
    case 3:
      return std::make_unique<lb::core::AsyncDiffusion<T>>(0.5);
    case 4:
      return std::make_unique<lb::core::HeterogeneousDiffusion<T>>(test_speeds(n));
    default:
      break;
  }
  if constexpr (std::is_same_v<T, double>) {
    switch (kind) {
      case 5:
        return std::make_unique<lb::core::FirstOrderScheme>();
      case 6:
        return std::make_unique<lb::core::SecondOrderScheme>();  // auto β
      case 7:
        return std::make_unique<lb::core::OptimalPolynomialScheme>();
      default:
        break;
    }
  }
  return nullptr;
}

/// The two-run protocol: run 1 on a spike (short — stops an OPS schedule
/// mid-way, an SOS with prev_ set, a round-robin mid-cycle), then run 2
/// on an unrelated workload.  Returns run 2's result + final loads.
template <class T>
std::pair<RunResult, std::vector<T>> second_run(lb::core::Balancer<T>& balancer,
                                                const lb::graph::Graph& g,
                                                ThreadPool* pool,
                                                bool do_first_run) {
  EngineConfig cfg;
  cfg.record_trace = true;
  cfg.pool = pool;
  if (do_first_run) {
    cfg.max_rounds = 7;
    cfg.seed = 11;
    // Unreachable target: run 1 executes all 7 rounds even on schedules
    // that balance perfectly sooner (OPS, hypercube round-robin), so it
    // always ends MID-schedule — the state the reset must clear.
    cfg.target_potential = -1.0;
    auto load = lb::workload::spike<T>(g.num_nodes(),
                                       static_cast<T>(1000 * g.num_nodes()));
    (void)lb::core::run_static(balancer, g, load, cfg);
  }
  cfg.max_rounds = 40;
  cfg.seed = 22;
  cfg.target_potential = EngineConfig{}.target_potential;
  lb::util::Rng rng(77);
  auto load = lb::workload::uniform_random<T>(
      g.num_nodes(), static_cast<T>(500 * g.num_nodes()), rng);
  RunResult r = lb::core::run_static(balancer, g, load, cfg);
  return {std::move(r), std::move(load)};
}

template <class T>
void expect_reuse_clean(const lb::graph::Graph& g) {
  for (std::size_t ps : pool_sizes()) {
    ThreadPool pool(ps);
    for (std::size_t kind = 0; kind < 8; ++kind) {
      auto reused = make_test_balancer<T>(kind, g.num_nodes());
      if (!reused) continue;  // continuous-only kind under Tokens
      auto fresh = make_test_balancer<T>(kind, g.num_nodes());
      // Reused: two consecutive runs.  Fresh: the second run only, on a
      // brand-new instance — the behaviour a reused balancer must match.
      const auto got = second_run(*reused, g, &pool, /*do_first_run=*/true);
      const auto want = second_run(*fresh, g, &pool, /*do_first_run=*/false);
      EXPECT_TRUE(runs_bits_equal(got.first, want.first))
          << kBalancerNames[kind] << " pool=" << ps;
      EXPECT_TRUE(loads_bits_equal(got.second, want.second))
          << kBalancerNames[kind] << " pool=" << ps;
    }
  }
}

TEST(RunIsolationTest, ReusedBalancerBitIdenticalToFreshContinuous) {
  expect_reuse_clean<double>(lb::graph::make_torus2d(6, 6));
}

TEST(RunIsolationTest, ReusedBalancerBitIdenticalToFreshDiscrete) {
  expect_reuse_clean<std::int64_t>(lb::graph::make_torus2d(6, 6));
}

TEST(RunIsolationTest, SosSecondRunForgetsPrev) {
  // The historical leak: prev_/have_prev_ survived into the next run, so
  // the reused scheme's first round was a β-combination against the OLD
  // run's trajectory instead of a plain FOS step.
  const auto g = lb::graph::make_torus2d(4, 4);
  lb::core::SecondOrderScheme reused(1.6), fresh(1.6);
  const auto got = second_run(reused, g, nullptr, true);
  const auto want = second_run(fresh, g, nullptr, false);
  EXPECT_TRUE(runs_bits_equal(got.first, want.first));
  EXPECT_TRUE(loads_bits_equal(got.second, want.second));
}

TEST(RunIsolationTest, OpsRestartsSchedulePerRun) {
  // Q_4 has a 4-factor schedule; run 1 stops after 3 rounds, so the
  // pre-fix scheme resumed run 2 at λ_4 instead of λ_1.
  const auto g = lb::graph::make_hypercube(4);
  lb::core::OptimalPolynomialScheme reused, fresh;
  const auto got = second_run(reused, g, nullptr, true);
  const auto want = second_run(fresh, g, nullptr, false);
  EXPECT_TRUE(runs_bits_equal(got.first, want.first));
  EXPECT_TRUE(loads_bits_equal(got.second, want.second));
  EXPECT_EQ(reused.schedule_length(), 4u);
}

TEST(RunIsolationTest, HypercubeRoundRobinRestartsPerRun) {
  // Round-robin dimension exchange: run 1 ends mid-cycle (7 % 4 != 0);
  // without the reset run 2 starts on dimension 3 instead of 0.
  const auto g = lb::graph::make_hypercube(4);
  lb::core::ContinuousDimensionExchange reused(
      lb::core::MatchingStrategy::kHypercubeRoundRobin);
  lb::core::ContinuousDimensionExchange fresh(
      lb::core::MatchingStrategy::kHypercubeRoundRobin);
  const auto got = second_run(reused, g, nullptr, true);
  const auto want = second_run(fresh, g, nullptr, false);
  EXPECT_TRUE(runs_bits_equal(got.first, want.first));
  EXPECT_TRUE(loads_bits_equal(got.second, want.second));
}

TEST(RunIsolationTest, SosAutoBetaRebindsAcrossGraphs) {
  // An auto-β SOS reused on a DIFFERENT graph must re-derive β from the
  // new spectrum, exactly as a fresh instance would.
  const auto torus = lb::graph::make_torus2d(4, 4);
  const auto cycle = lb::graph::make_cycle(16);
  lb::core::SecondOrderScheme reused, fresh;
  {
    EngineConfig cfg;
    cfg.max_rounds = 7;
    auto load = lb::workload::spike<double>(16, 16000.0);
    (void)lb::core::run_static(reused, torus, load, cfg);
  }
  EngineConfig cfg;
  cfg.max_rounds = 40;
  cfg.record_trace = true;
  auto load_a = lb::workload::spike<double>(16, 16000.0);
  auto load_b = load_a;
  const RunResult got = lb::core::run_static(reused, cycle, load_a, cfg);
  const RunResult want = lb::core::run_static(fresh, cycle, load_b, cfg);
  EXPECT_TRUE(runs_bits_equal(got, want));
  EXPECT_TRUE(loads_bits_equal(load_a, load_b));
  EXPECT_DOUBLE_EQ(reused.beta(), fresh.beta());
}

TEST(RunIsolationTest, OpsRebindsAcrossGraphsAtRunBoundary) {
  // OPS reused across graphs: the revision-keyed schedule is recomputed
  // at the next run start instead of tripping the mid-schedule assert.
  const auto complete = lb::graph::make_complete(8);
  const auto cube = lb::graph::make_hypercube(3);
  lb::core::OptimalPolynomialScheme reused, fresh;
  {
    EngineConfig cfg;
    cfg.max_rounds = 5;
    auto load = lb::workload::spike<double>(8, 800.0);
    (void)lb::core::run_static(reused, complete, load, cfg);
    EXPECT_EQ(reused.schedule_length(), 1u);  // K_8: single eigenvalue
  }
  EngineConfig cfg;
  cfg.max_rounds = 20;
  cfg.record_trace = true;
  auto load_a = lb::workload::spike<double>(8, 800.0);
  auto load_b = load_a;
  const RunResult got = lb::core::run_static(reused, cube, load_a, cfg);
  const RunResult want = lb::core::run_static(fresh, cube, load_b, cfg);
  EXPECT_EQ(reused.schedule_length(), 3u);  // Q_3: eigenvalues {2, 4, 6}
  EXPECT_TRUE(runs_bits_equal(got, want));
  EXPECT_TRUE(loads_bits_equal(load_a, load_b));
}

TEST(RunIsolationTest, ExternalArenaMatchesInternal) {
  // The engine's caller-owned-arena overload (campaign reuse) must be
  // bit-identical to the run-local default, including back-to-back runs
  // reusing one arena's flow-ledger CSR.
  const auto g = lb::graph::make_torus2d(6, 6);
  auto seq = lb::graph::make_static_view(g);
  lb::core::RunArena<double> arena;
  for (int rep = 0; rep < 2; ++rep) {
    lb::core::ContinuousDiffusion a, b;
    EngineConfig cfg;
    cfg.max_rounds = 30;
    cfg.record_trace = true;
    auto load_a = lb::workload::spike<double>(36, 36000.0);
    auto load_b = load_a;
    const RunResult ra = lb::core::run(a, *seq, load_a, cfg, arena);
    const RunResult rb = lb::core::run(b, *seq, load_b, cfg);
    EXPECT_TRUE(runs_bits_equal(ra, rb)) << "rep " << rep;
    EXPECT_TRUE(loads_bits_equal(load_a, load_b)) << "rep " << rep;
  }
}

// --- Campaign-vs-oracle equivalence ----------------------------------

lb::exp::ExperimentPlan small_plan() {
  lb::exp::ExperimentPlan plan;
  plan.graphs = {{"torus2d", 16}, {"cycle", 12}};
  plan.scenarios = {lb::exp::static_scenario(), lb::exp::bernoulli_scenario(0.8)};
  plan.workloads = {{"spike", 1000.0}, {"uniform", 500.0}};
  plan.balancers = {{lb::exp::BalancerKind::kDiffusion, 0.0},
                    {lb::exp::BalancerKind::kSos, 0.0},
                    {lb::exp::BalancerKind::kOps, 0.0},
                    {lb::exp::BalancerKind::kAsync, 0.5}};
  plan.seeds = {1, 2};
  plan.engine.max_rounds = 50;
  plan.engine.record_trace = true;
  plan.epsilon = 1e-4;
  return plan;
}

TEST(CampaignTest, CellGridFiltersIncompatibleAxes) {
  const auto plan = small_plan();
  const auto cells = plan.cells();
  for (const lb::exp::Cell& c : cells) {
    EXPECT_TRUE(
        lb::exp::supports_scalar(plan.balancers[c.balancer].kind, c.scalar));
    EXPECT_TRUE(lb::exp::supports_scenario(plan.balancers[c.balancer],
                                           plan.scenarios[c.scenario].kind));
  }
  // Per (graph, workload, seed): static carries diffusion×2 + sos + ops +
  // async×2 = 6 cells; bernoulli loses OPS and auto-β SOS = 4.
  EXPECT_EQ(cells.size(), 2u * 2u * 2u * (6u + 4u));
}

TEST(CampaignTest, CachedBitIdenticalToFreshOracleEveryPoolSize) {
  const auto plan = small_plan();
  const auto cells = plan.cells();

  std::vector<lb::exp::CampaignReport> reports;
  for (std::size_t ps : pool_sizes()) {
    ThreadPool pool(ps);
    lb::exp::CampaignRunner runner(
        {lb::exp::ArtifactMode::kCached, &pool});
    reports.push_back(runner.run(plan));
    ASSERT_EQ(reports.back().cells.size(), cells.size());
  }

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto oracle = lb::exp::CampaignRunner::run_cell_fresh(plan, cells[i]);
    for (std::size_t p = 0; p < reports.size(); ++p) {
      EXPECT_TRUE(runs_bits_equal(reports[p].cells[i].run, oracle.run))
          << plan.cell_label(cells[i]) << " pool#" << p;
    }
  }
}

TEST(CampaignTest, ColdModeMatchesCachedMode) {
  const auto plan = small_plan();
  lb::exp::CampaignRunner cold({lb::exp::ArtifactMode::kCold, nullptr});
  lb::exp::CampaignRunner cached({lb::exp::ArtifactMode::kCached, nullptr});
  const auto a = cold.run(plan);
  const auto b = cached.run(plan);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_TRUE(runs_bits_equal(a.cells[i].run, b.cells[i].run))
        << plan.cell_label(a.cells[i].cell);
  }
}

TEST(CampaignTest, ReportAggregatesReplicates) {
  const auto plan = small_plan();
  lb::exp::CampaignRunner runner({lb::exp::ArtifactMode::kCached, nullptr});
  const auto report = runner.run(plan);
  const auto rows = report.aggregate(plan);
  ASSERT_FALSE(rows.empty());
  std::size_t total = 0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.replicates, plan.seeds.size()) << row.label;
    EXPECT_LE(row.reached, row.replicates);
    EXPECT_GT(row.rounds.mean(), 0.0);
    total += row.replicates;
  }
  EXPECT_EQ(total, report.cells.size());
  // Cached mode profiled the bases SOS-static cells run on.
  ASSERT_EQ(report.lambda2_per_graph.size(), plan.graphs.size());
  for (double l2 : report.lambda2_per_graph) EXPECT_GT(l2, 0.0);
  // Emitters produce non-trivial artifacts.
  EXPECT_NE(report.cells_csv(plan).find("rounds"), std::string::npos);
  EXPECT_NE(report.aggregate_csv(plan).find("rounds_mean"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/campaign.json";
  EXPECT_TRUE(report.write_json(plan, path));
}

TEST(CampaignTest, SingleReplicateEmitsFiniteStatistics) {
  // One seed -> RunningStats' CI half-width is infinite; the emitters
  // must degrade it to 0 instead of printing "inf" (invalid JSON, a
  // poisoned CSV cell).
  auto plan = small_plan();
  plan.seeds = {1};
  lb::exp::CampaignRunner runner({lb::exp::ArtifactMode::kCached, nullptr});
  const auto report = runner.run(plan);
  EXPECT_EQ(report.aggregate_csv(plan).find("inf"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/campaign_single.json";
  ASSERT_TRUE(report.write_json(plan, path));
  std::ifstream in(path);
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"rounds_ci95\": 0.000"), std::string::npos);
}

}  // namespace
