// Tests for the logging utility (lb/util/logging.hpp).
#include "lb/util/logging.hpp"

#include <gtest/gtest.h>

namespace {

using lb::util::LogLevel;

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(lb::util::log_level()) {}
  ~LogLevelGuard() { lb::util::set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarn) {
  // The suite may have changed it; only check the setter/getter contract.
  LogLevelGuard guard;
  lb::util::set_log_level(LogLevel::kWarn);
  EXPECT_EQ(lb::util::log_level(), LogLevel::kWarn);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    lb::util::set_log_level(level);
    EXPECT_EQ(lb::util::log_level(), level);
  }
}

TEST(LoggingTest, EmitsToStderrAtOrAboveThreshold) {
  LogLevelGuard guard;
  lb::util::set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  lb::util::log_info("visible message");
  lb::util::log_debug("hidden message");
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("visible message"), std::string::npos);
  EXPECT_EQ(captured.find("hidden message"), std::string::npos);
  EXPECT_NE(captured.find("[lb info]"), std::string::npos);
}

TEST(LoggingTest, OffSilencesEverything) {
  LogLevelGuard guard;
  lb::util::set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  lb::util::log_error("should not appear");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingTest, ConvenienceWrappersUseTheirLevels) {
  LogLevelGuard guard;
  lb::util::set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  lb::util::log_debug("d");
  lb::util::log_warn("w");
  lb::util::log_error("e");
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[lb debug]"), std::string::npos);
  EXPECT_NE(captured.find("[lb warn]"), std::string::npos);
  EXPECT_NE(captured.find("[lb error]"), std::string::npos);
}

}  // namespace
