// Theorem-level validation: runs Algorithm 1 and checks the measured
// behaviour against the paper's quantitative guarantees (Lemma 2,
// Theorem 4, Lemma 5, Theorem 6) on real topologies.  These are the
// test-suite versions of the bench experiments E2/E3.
#include <gtest/gtest.h>

#include <cmath>

#include "lb/core/bounds.hpp"
#include "lb/core/diffusion.hpp"
#include "lb/core/dimension_exchange.hpp"
#include "lb/core/engine.hpp"
#include "lb/core/load.hpp"
#include "lb/graph/generators.hpp"
#include "lb/linalg/spectral.hpp"
#include "lb/workload/initial.hpp"

namespace {

namespace bounds = lb::core::bounds;
using lb::graph::Graph;

class TheoremTopologyTest : public ::testing::TestWithParam<std::string> {
 protected:
  Graph make_graph() const {
    lb::util::Rng rng(7);
    return lb::graph::make_named(GetParam(), 32, rng);
  }
};

TEST_P(TheoremTopologyTest, Lemma2PerRoundDropHolds) {
  // Every round of continuous Algorithm 1 must drop the potential by at
  // least (1/4δ)·Σ_E (ℓ_i − ℓ_j)².
  const Graph g = make_graph();
  lb::util::Rng rng(11);
  auto load = lb::workload::uniform_random<double>(g.num_nodes(),
                                                   100.0 * g.num_nodes(), rng);
  lb::core::ContinuousDiffusion alg;
  for (int round = 0; round < 60; ++round) {
    const double phi_before = lb::core::potential(load);
    const double bound = bounds::lemma2_drop_lower_bound(
        lb::core::edge_difference_sum(g, load), g.max_degree());
    alg.step(g, load, rng);
    const double drop = phi_before - lb::core::potential(load);
    ASSERT_GE(drop, bound - 1e-7 * std::max(1.0, bound))
        << GetParam() << " round " << round;
  }
}

TEST_P(TheoremTopologyTest, Theorem4RateHoldsEveryRound) {
  // Φ(L^t) <= (1 − λ2/4δ)·Φ(L^{t-1}).
  const Graph g = make_graph();
  const double fraction =
      bounds::theorem4_drop_fraction(lb::linalg::lambda2(g), g.max_degree());
  lb::util::Rng rng(13);
  auto load = lb::workload::spike<double>(g.num_nodes(), 1000.0 * g.num_nodes());
  lb::core::ContinuousDiffusion alg;
  double prev = lb::core::potential(load);
  for (int round = 0; round < 80 && prev > 1e-9; ++round) {
    alg.step(g, load, rng);
    const double cur = lb::core::potential(load);
    ASSERT_LE(cur, (1.0 - fraction) * prev + 1e-7 * prev)
        << GetParam() << " round " << round;
    prev = cur;
  }
}

TEST_P(TheoremTopologyTest, Theorem4RoundBoundHolds) {
  // T = 4δ·ln(1/ε)/λ2 rounds suffice to reach ε·Φ(L⁰).
  const Graph g = make_graph();
  const double epsilon = 1e-5;
  const double T =
      bounds::theorem4_rounds(lb::linalg::lambda2(g), g.max_degree(), epsilon);
  lb::util::Rng rng(17);
  auto load = lb::workload::spike<double>(g.num_nodes(), 1000.0 * g.num_nodes());
  const double phi0 = lb::core::potential(load);
  lb::core::ContinuousDiffusion alg;
  const std::size_t budget = static_cast<std::size_t>(std::ceil(T));
  for (std::size_t round = 0; round < budget; ++round) alg.step(g, load, rng);
  EXPECT_LE(lb::core::potential(load), epsilon * phi0) << GetParam();
}

TEST_P(TheoremTopologyTest, Lemma5DiscreteRateAboveThreshold) {
  // While Φ >= 64δ³n/λ2 the discrete protocol drops by >= λ2/8δ per round.
  const Graph g = make_graph();
  const double l2 = lb::linalg::lambda2(g);
  const double threshold =
      bounds::discrete_potential_threshold(g.max_degree(), g.num_nodes(), l2);
  const double fraction = bounds::lemma5_drop_fraction(l2, g.max_degree());

  // Start far above the threshold so several in-regime rounds happen.
  const std::int64_t total =
      static_cast<std::int64_t>(20.0 * std::sqrt(threshold)) *
      static_cast<std::int64_t>(g.num_nodes());
  auto load = lb::workload::spike<std::int64_t>(g.num_nodes(), total);
  ASSERT_GT(lb::core::potential(load), threshold) << GetParam();

  lb::util::Rng rng(19);
  lb::core::DiscreteDiffusion alg;
  for (int round = 0; round < 400; ++round) {
    const double prev = lb::core::potential(load);
    if (prev < threshold) break;
    alg.step(g, load, rng);
    const double cur = lb::core::potential(load);
    ASSERT_LE(cur, (1.0 - fraction) * prev + 1e-7 * prev)
        << GetParam() << " round " << round;
  }
}

TEST_P(TheoremTopologyTest, Theorem6ReachesThresholdWithinBound) {
  const Graph g = make_graph();
  const double l2 = lb::linalg::lambda2(g);
  const double threshold =
      bounds::discrete_potential_threshold(g.max_degree(), g.num_nodes(), l2);
  const std::int64_t total =
      static_cast<std::int64_t>(20.0 * std::sqrt(threshold)) *
      static_cast<std::int64_t>(g.num_nodes());
  auto load = lb::workload::spike<std::int64_t>(g.num_nodes(), total);
  const double phi0 = lb::core::potential(load);
  const double T = bounds::theorem6_rounds(l2, g.max_degree(), g.num_nodes(), phi0);
  ASSERT_GT(T, 0.0);

  lb::util::Rng rng(23);
  lb::core::DiscreteDiffusion alg;
  std::size_t reached = 0;
  const std::size_t budget = static_cast<std::size_t>(std::ceil(T));
  for (std::size_t round = 1; round <= budget; ++round) {
    alg.step(g, load, rng);
    if (lb::core::potential(load) < threshold) {
      reached = round;
      break;
    }
  }
  EXPECT_GT(reached, 0u) << GetParam() << ": not below threshold in " << budget
                         << " rounds";
}

INSTANTIATE_TEST_SUITE_P(Topologies, TheoremTopologyTest,
                         ::testing::Values("path", "cycle", "torus2d", "hypercube",
                                           "star", "complete", "tree", "regular"));

TEST(PaperComparisonTest, DiffusionBeatsDimensionExchangeOnTorus) {
  // §3: "our algorithm converges a constant times faster than the
  // dimension exchange algorithm in [12]."  Measure rounds to ε on a
  // torus from a spike.
  const Graph g = lb::graph::make_torus2d(6, 6);
  const double epsilon = 1e-4;
  auto diff_load = lb::workload::spike<double>(36, 36000.0);
  auto de_load = diff_load;
  const double phi0 = lb::core::potential(diff_load);

  lb::util::Rng rng(29);
  lb::core::ContinuousDiffusion diff;
  std::size_t diff_rounds = 0;
  while (lb::core::potential(diff_load) > epsilon * phi0 && diff_rounds < 100000) {
    diff.step(g, diff_load, rng);
    ++diff_rounds;
  }

  lb::core::ContinuousDimensionExchange de;
  std::size_t de_rounds = 0;
  while (lb::core::potential(de_load) > epsilon * phi0 && de_rounds < 100000) {
    de.step(g, de_load, rng);
    ++de_rounds;
  }
  EXPECT_LT(diff_rounds, de_rounds);
}

TEST(PaperComparisonTest, DiscreteTracksContinuousAboveThreshold) {
  // Remark after Lemma 5 / §3: above the threshold the discrete protocol
  // behaves like the continuous one up to a multiplicative constant.
  const Graph g = lb::graph::make_hypercube(5);
  const std::int64_t total = 320000000;
  auto disc = lb::workload::spike<std::int64_t>(32, total);
  auto cont = lb::workload::spike<double>(32, static_cast<double>(total));
  const double threshold = bounds::discrete_potential_threshold(
      g.max_degree(), g.num_nodes(), lb::linalg::lambda2(g));

  lb::util::Rng rng(31);
  lb::core::DiscreteDiffusion disc_alg;
  lb::core::ContinuousDiffusion cont_alg;
  for (int round = 0; round < 200; ++round) {
    if (lb::core::potential(disc) < threshold) break;
    disc_alg.step(g, disc, rng);
    cont_alg.step(g, cont, rng);
    const double ratio = lb::core::potential(disc) / lb::core::potential(cont);
    // Discrete lags by at most a constant factor (paper: 2x rate halving;
    // we allow a bit of slack for rounding noise at the start).
    ASSERT_LT(ratio, 16.0) << "round " << round;
  }
}

}  // namespace
