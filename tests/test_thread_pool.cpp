// Unit tests for the thread pool and parallel_for (lb/util/thread_pool.hpp).
#include "lb/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using lb::util::ThreadPool;

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 10, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&called](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForReversedRangeIsEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(10, 5, 1, [&called](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(3, 0);
  pool.parallel_for(0, 3, 100, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<double> values(kN);
  std::iota(values.begin(), values.end(), 0.0);
  std::atomic<long long> total{0};
  pool.parallel_for(0, kN, 1000, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(values[i]);
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPoolTest, SingleWorkerPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> hits(50, 0);
  pool.parallel_for(0, 50, 5, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPoolTest, ParallelForEachElementwise) {
  std::vector<std::atomic<int>> hits(500);
  lb::util::parallel_for_each(500, 10, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RepeatedParallelForIsStable) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 997, 13, [&count](std::size_t lo, std::size_t hi) {
      count.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(count.load(), 997);
  }
}

TEST(ThreadPoolTest, TasksSubmittedFromTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

// Regression (ISSUE 2): parallel_for from inside a worker task used to
// queue its chunks behind the caller's own task and wait on the shared
// in-flight counter — a guaranteed deadlock.  It must detect reentrancy
// and run inline.
TEST(ThreadPoolRegressionTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, 1, [&pool, &inner_total](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallel_for(0, 100, 10, [&inner_total](std::size_t l, std::size_t h) {
        inner_total.fetch_add(static_cast<int>(h - l));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 100);
}

TEST(ThreadPoolRegressionTest, InWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.in_worker_thread());
  std::atomic<bool> seen_inside{false};
  pool.submit([&pool, &seen_inside] { seen_inside = pool.in_worker_thread(); });
  pool.wait_idle();
  EXPECT_TRUE(seen_inside.load());
  // A different pool's worker is not "inside" this pool.
  ThreadPool other(1);
  std::atomic<bool> cross{true};
  other.submit([&pool, &cross] { cross = pool.in_worker_thread(); });
  other.wait_idle();
  EXPECT_FALSE(cross.load());
}

// Regression (ISSUE 2): two concurrent callers used to share the global
// in-flight counter, so each wait blocked on the other's tasks.  The
// per-batch latch lets both finish independently and correctly.
TEST(ThreadPoolRegressionTest, ConcurrentParallelForCallers) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<long long>> totals(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &totals, c] {
      for (int repeat = 0; repeat < 10; ++repeat) {
        long long sum = 0;
        std::mutex m;
        pool.parallel_for(0, kN, 100, [&sum, &m](std::size_t lo, std::size_t hi) {
          long long local = 0;
          for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(i);
          std::lock_guard lock(m);
          sum += local;
        });
        totals[c].store(sum);
      }
    });
  }
  for (auto& t : callers) t.join();
  const long long expected = static_cast<long long>(kN) * (kN - 1) / 2;
  for (const auto& total : totals) EXPECT_EQ(total.load(), expected);
}

// Regression (ISSUE 2): a throwing task used to leak the in-flight
// increment, hanging every later parallel_for.  The exception must reach
// the submitting batch and leave the pool usable.
TEST(ThreadPoolRegressionTest, ParallelForPropagatesChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 10,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::runtime_error("chunk failed");
                        }),
      std::runtime_error);
  // The pool must still drain subsequent batches (the seed hung here).
  std::atomic<int> count{0};
  pool.parallel_for(0, 500, 10, [&count](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolRegressionTest, SubmittedTaskExceptionSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed; the pool keeps working.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

// Stress regression (ISSUE 7): concurrent external callers each driving a
// parallel_for whose chunks nest a reentrant parallel_for, with a stream of
// plain submit()s mixed in.  Every synchronization path — batch latches,
// reentrancy detection, the exception slot, wait_idle — is exercised at
// once; the TSan preset runs this to certify the pool race-free.
TEST(ThreadPoolStressTest, ConcurrentNestedCallersUnderContention) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kRepeats = 8;
  constexpr std::size_t kOuter = 32;
  constexpr std::size_t kInner = 128;
  const long long inner_sum = static_cast<long long>(kInner) * (kInner - 1) / 2;
  std::atomic<int> background{0};
  std::vector<std::atomic<long long>> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &background, &results, c] {
      for (int r = 0; r < kRepeats; ++r) {
        pool.submit([&background] { background.fetch_add(1); });
        std::atomic<long long> total{0};
        pool.parallel_for(0, kOuter, 4, [&pool, &total](std::size_t lo,
                                                        std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            std::atomic<long long> inner{0};
            pool.parallel_for(0, kInner, 16,
                              [&inner](std::size_t l, std::size_t h) {
                                long long local = 0;
                                for (std::size_t k = l; k < h; ++k)
                                  local += static_cast<long long>(k);
                                inner.fetch_add(local);
                              });
            total.fetch_add(inner.load());
          }
        });
        results[c].store(total.load());
      }
    });
  }
  for (auto& t : callers) t.join();
  pool.wait_idle();
  EXPECT_EQ(background.load(), kCallers * kRepeats);
  for (const auto& result : results)
    EXPECT_EQ(result.load(), static_cast<long long>(kOuter) * inner_sum);
}

TEST(ThreadPoolRegressionTest, InlineFallbackStillPropagatesExceptions) {
  ThreadPool pool(1);  // single worker -> inline execution path
  EXPECT_THROW(pool.parallel_for(0, 10, 1,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("inline failed");
                                 }),
               std::runtime_error);
}

}  // namespace
