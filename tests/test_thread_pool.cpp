// Unit tests for the thread pool and parallel_for (lb/util/thread_pool.hpp).
#include "lb/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

using lb::util::ThreadPool;

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 10, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&called](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForReversedRangeIsEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(10, 5, 1, [&called](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(3, 0);
  pool.parallel_for(0, 3, 100, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<double> values(kN);
  std::iota(values.begin(), values.end(), 0.0);
  std::atomic<long long> total{0};
  pool.parallel_for(0, kN, 1000, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(values[i]);
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPoolTest, SingleWorkerPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> hits(50, 0);
  pool.parallel_for(0, 50, 5, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPoolTest, ParallelForEachElementwise) {
  std::vector<std::atomic<int>> hits(500);
  lb::util::parallel_for_each(500, 10, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RepeatedParallelForIsStable) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 997, 13, [&count](std::size_t lo, std::size_t hi) {
      count.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(count.load(), 997);
  }
}

TEST(ThreadPoolTest, TasksSubmittedFromTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
